#pragma once
// Runs one Automaton instance as a network Actor.
//
// Semantics implemented (matching the paper's informal description):
//  - Entering an output state starts a computation lasting a bounded random
//    true-time duration in [0, processing_bound]; the state is then left by
//    performing its send action.
//  - Entering an input state first replays buffered messages (the network
//    may deliver a message while the automaton is busy elsewhere; ANTA
//    message channels are asynchronous and non-blocking), then arms a timer
//    for the earliest time-out guard, if any.
//  - A receive transition fires on the first buffered or arriving message
//    whose (sender, kind) matches and whose accept-callback passes.
//  - Reaching a final state records a Terminate trace event and invokes the
//    completion callback with the local/global termination times.
//
// Byzantine strategies are interposed via a SendInterceptor: a deviating
// participant runs the honest automaton but its sends can be dropped,
// delayed or substituted (see proto/byzantine.hpp). This mirrors the model:
// a Byzantine process may do anything *except* forge signatures or receipts.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "anta/automaton.hpp"
#include "net/network.hpp"
#include "props/trace.hpp"

namespace xcp::anta {

/// What a send interceptor decides about an outgoing message.
struct SendAction {
  enum class Kind { kAllow, kDrop, kDelay, kHalt, kSubstitute };
  Kind kind = Kind::kAllow;
  Duration delay;           // for kDelay: extra true-time before the send
  net::BodyPtr substitute;  // for kSubstitute: body sent instead of make_body

  static SendAction allow() { return {Kind::kAllow, Duration::zero(), nullptr}; }
  static SendAction drop() { return {Kind::kDrop, Duration::zero(), nullptr}; }
  static SendAction delayed(Duration d) { return {Kind::kDelay, d, nullptr}; }
  static SendAction halt() { return {Kind::kHalt, Duration::zero(), nullptr}; }
  static SendAction substituted(net::BodyPtr body) {
    return {Kind::kSubstitute, Duration::zero(), std::move(body)};
  }
};

class Interpreter : public net::Actor {
 public:
  /// `processing_bound` is the true-time bound on output-state computation
  /// (the paper's epsilon); the interpreter samples uniformly within it.
  Interpreter(std::shared_ptr<const Automaton> automaton,
              Duration processing_bound);

  // --- configuration (before the simulation starts) ---

  using SendInterceptor =
      std::function<SendAction(const Transition&, Interpreter&)>;
  void set_send_interceptor(SendInterceptor f) { interceptor_ = std::move(f); }

  using CompletionFn = std::function<void(Interpreter&)>;
  void set_on_final(CompletionFn f) { on_final_ = std::move(f); }

  /// Crash the participant at a given global time (stops all activity).
  void schedule_crash_at(TimePoint global_time);

  // --- runtime state accessible to transition callbacks ---

  /// Clock variables (x := now).
  TimePoint var(VarId v) const;
  void assign_now(VarId v);

  /// Free-form per-instance slots for protocol data (receipt ids, promised
  /// durations as microsecond counts, etc.).
  std::uint64_t slot(const std::string& key) const;
  bool has_slot(const std::string& key) const;
  void set_slot(const std::string& key, std::uint64_t value);

  /// Retained message bodies, keyed by message kind (e.g. the received
  /// certificate, to be forwarded later).
  net::BodyPtr stashed(net::MsgKind key) const;
  void stash(net::MsgKind key, net::BodyPtr body);

  StateId state() const { return state_; }
  bool finished() const { return finished_; }
  bool halted() const { return halted_; }
  TimePoint terminated_local() const { return terminated_local_; }
  TimePoint terminated_global() const { return terminated_global_; }
  const Automaton& automaton() const { return *automaton_; }

  /// Count of state transitions taken; used by liveness diagnostics.
  std::size_t steps_taken() const { return steps_; }

  /// The process's RNG stream, exposed for interceptors (e.g. forging a
  /// junk signature deterministically).
  Rng& runtime_rng() { return rng(); }

  // --- Actor interface ---
  void on_start() override;
  void on_message(const net::Message& m) override;
  void on_timer(std::uint64_t token) override;

 private:
  /// Outcome of offering a message to the current input state.
  enum class Consume {
    kNoMatch,    // no transition matched; caller should buffer
    kDiscarded,  // shape matched but content invalid; message dropped
    kTaken,      // a transition fired (and the next state was entered)
  };

  void enter(StateId s);
  void arm_timeouts();
  void disarm_timeouts();
  Consume try_consume(const net::Message& m);
  void perform_send(const Transition& t);
  void take(const Transition& t);
  void record_terminate();

  std::shared_ptr<const Automaton> automaton_;
  Duration processing_bound_;
  StateId state_ = kNoState;
  std::vector<TimePoint> vars_;
  std::unordered_map<std::string, std::uint64_t> slots_;
  std::unordered_map<net::MsgKind, net::BodyPtr> stash_;
  std::deque<net::Message> pending_;
  std::vector<sim::TimerId> armed_timers_;
  SendInterceptor interceptor_;
  CompletionFn on_final_;
  bool finished_ = false;
  bool halted_ = false;
  TimePoint terminated_local_;
  TimePoint terminated_global_;
  std::size_t steps_ = 0;

  // Timer token space: low values = timeout transition index; high = send.
  static constexpr std::uint64_t kSendToken = 1ull << 62;
  static constexpr std::uint64_t kCrashToken = 1ull << 63;
  const Transition* pending_send_ = nullptr;
};

}  // namespace xcp::anta
