#include "anta/interpreter.hpp"

#include <algorithm>

#include "support/log.hpp"
#include "support/status.hpp"

namespace xcp::anta {

Interpreter::Interpreter(std::shared_ptr<const Automaton> automaton,
                         Duration processing_bound)
    : automaton_(std::move(automaton)), processing_bound_(processing_bound) {
  XCP_REQUIRE(automaton_ != nullptr, "null automaton");
  automaton_->validate();
  vars_.assign(automaton_->var_count(), TimePoint::origin());
}

TimePoint Interpreter::var(VarId v) const {
  XCP_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < vars_.size(), "bad var");
  return vars_[v];
}

void Interpreter::assign_now(VarId v) {
  XCP_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < vars_.size(), "bad var");
  vars_[v] = local_now();
}

std::uint64_t Interpreter::slot(const std::string& key) const {
  auto it = slots_.find(key);
  XCP_REQUIRE(it != slots_.end(), "missing slot: " + key);
  return it->second;
}

bool Interpreter::has_slot(const std::string& key) const {
  return slots_.count(key) != 0;
}

void Interpreter::set_slot(const std::string& key, std::uint64_t value) {
  slots_[key] = value;
}

net::BodyPtr Interpreter::stashed(net::MsgKind key) const {
  auto it = stash_.find(key);
  return it == stash_.end() ? nullptr : it->second;
}

void Interpreter::stash(net::MsgKind key, net::BodyPtr body) {
  stash_[key] = std::move(body);
}

void Interpreter::schedule_crash_at(TimePoint global_time) {
  sim().schedule_at(global_time, [this] {
    halted_ = true;
    disarm_timeouts();
  });
}

void Interpreter::on_start() { enter(automaton_->initial()); }

void Interpreter::enter(StateId s) {
  XCP_REQUIRE(!finished_, "entering state after termination");
  state_ = s;
  ++steps_;
  XCP_LOG(LogLevel::kTrace, name() << " enters " << automaton_->state_name(s));

  switch (automaton_->state_kind(s)) {
    case StateKind::kFinal: {
      finished_ = true;
      terminated_local_ = local_now();
      terminated_global_ = global_now();
      disarm_timeouts();
      record_terminate();
      if (on_final_) on_final_(*this);
      return;
    }
    case StateKind::kOutput: {
      // Bounded computation, then the unique send exit.
      const auto outs = automaton_->out_of(s);
      XCP_REQUIRE(outs.size() == 1 && outs[0]->kind == Transition::Kind::kSend,
                  "output state exits malformed");
      pending_send_ = outs[0];
      const Duration d =
          rng().next_duration(Duration::zero(), processing_bound_);
      sim().schedule_after(d, [this] { on_timer(kSendToken); });
      return;
    }
    case StateKind::kInput: {
      // First drain anything already buffered, oldest first. The message is
      // removed before consumption so the recursive enter() of the next
      // state re-scans a buffer that no longer contains it.
      for (std::size_t i = 0; i < pending_.size();) {
        net::Message m = std::move(pending_[i]);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        const Consume outcome = try_consume(m);
        if (outcome == Consume::kTaken) return;  // next state already entered
        if (outcome == Consume::kNoMatch) {
          pending_.insert(pending_.begin() + static_cast<std::ptrdiff_t>(i),
                          std::move(m));
          ++i;
        }
        // kDiscarded: invalid content; drop it and keep scanning at i.
      }
      arm_timeouts();
      return;
    }
  }
}

void Interpreter::arm_timeouts() {
  disarm_timeouts();
  const auto outs = automaton_->out_of(state_);
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const Transition* t = outs[i];
    if (t->kind != Transition::Kind::kTimeout) continue;
    const TimePoint deadline = var(t->guard->var) + t->guard->offset;
    armed_timers_.push_back(set_timer_local_at(deadline, i));
  }
}

void Interpreter::disarm_timeouts() {
  for (sim::TimerId id : armed_timers_) cancel_timer(id);
  armed_timers_.clear();
}

Interpreter::Consume Interpreter::try_consume(const net::Message& m) {
  if (automaton_->state_kind(state_) != StateKind::kInput) {
    return Consume::kNoMatch;
  }
  for (const Transition* t : automaton_->out_of(state_)) {
    if (t->kind != Transition::Kind::kReceive) continue;
    if (t->expect_from != m.from || t->expect_kind != m.kind) continue;
    if (t->accept && !t->accept(m, *this)) {
      // Shape matched but content invalid (bad receipt / signature): the
      // automaton ignores it, as an abiding participant must.
      XCP_LOG(LogLevel::kDebug,
              name() << " rejected " << m.describe() << " (accept failed)");
      return Consume::kDiscarded;
    }
    // Matched: stash the body under the message kind so effects/forwards can
    // use it, run the effect, move on.
    if (m.body) stash_[m.kind] = m.body;
    disarm_timeouts();
    take(*t);
    return Consume::kTaken;
  }
  return Consume::kNoMatch;
}

void Interpreter::take(const Transition& t) {
  if (t.effect) t.effect(*this);
  enter(t.to);
}

void Interpreter::perform_send(const Transition& t) {
  SendAction action = SendAction::allow();
  if (interceptor_) action = interceptor_(t, *this);

  switch (action.kind) {
    case SendAction::Kind::kHalt:
      halted_ = true;
      disarm_timeouts();
      return;
    case SendAction::Kind::kDrop:
      // The (Byzantine) participant silently skips the send but continues.
      take(t);
      return;
    case SendAction::Kind::kDelay: {
      const Transition* tp = &t;
      sim().schedule_after(action.delay, [this, tp] {
        if (halted_ || finished_) return;
        net::BodyPtr body = tp->make_body ? tp->make_body(*this) : nullptr;
        send(tp->send_to, tp->send_kind, std::move(body));
        take(*tp);
      });
      return;
    }
    case SendAction::Kind::kSubstitute:
      // The deviating participant sends a forged/garbled body instead of the
      // honest payload; honest receivers must reject it in `accept`.
      send(t.send_to, t.send_kind, std::move(action.substitute));
      take(t);
      return;
    case SendAction::Kind::kAllow:
      break;
  }
  net::BodyPtr body = t.make_body ? t.make_body(*this) : nullptr;
  send(t.send_to, t.send_kind, std::move(body));
  take(t);
}

void Interpreter::on_message(const net::Message& m) {
  if (finished_ || halted_) return;
  if (try_consume(m) == Consume::kNoMatch) {
    pending_.push_back(m);
  }
}

void Interpreter::on_timer(std::uint64_t token) {
  if (finished_ || halted_) return;
  if (token == kSendToken) {
    XCP_REQUIRE(pending_send_ != nullptr, "send timer without pending send");
    const Transition* t = pending_send_;
    pending_send_ = nullptr;
    perform_send(*t);
    return;
  }
  // Timeout transition #token of the current input state; verify the guard
  // actually holds now (it does by construction of to_global, but a stale
  // timer could race with a state change — armed timers are cancelled on
  // transition, so reaching here means the state is unchanged).
  const auto outs = automaton_->out_of(state_);
  XCP_REQUIRE(token < outs.size(), "stale timeout token");
  const Transition* t = outs[token];
  XCP_REQUIRE(t->kind == Transition::Kind::kTimeout, "token not a timeout");
  XCP_REQUIRE(local_now() >= var(t->guard->var) + t->guard->offset,
              "timeout fired before guard holds");
  disarm_timeouts();
  take(*t);
}

void Interpreter::record_terminate() {
  if (net().trace() == nullptr) return;
  props::TraceEvent e;
  e.kind = props::EventKind::kTerminate;
  e.at = terminated_global_;
  e.local_at = terminated_local_;
  e.actor = id();
  e.label = automaton_->state_name(state_);
  net().trace()->record(e);
}

}  // namespace xcp::anta
