#include "anta/automaton.hpp"

#include "support/status.hpp"

namespace xcp::anta {

StateId Automaton::add_state(std::string name, StateKind kind) {
  states_.push_back(State{std::move(name), kind});
  return static_cast<StateId>(states_.size() - 1);
}

VarId Automaton::add_var(std::string name) {
  vars_.push_back(std::move(name));
  return static_cast<VarId>(vars_.size() - 1);
}

void Automaton::set_initial(StateId s) {
  XCP_REQUIRE(s >= 0 && static_cast<std::size_t>(s) < states_.size(),
              "bad initial state");
  initial_ = s;
}

Transition& Automaton::add_receive(StateId from, StateId to,
                                   sim::ProcessId sender, net::MsgKind kind,
                                   std::string label) {
  Transition t;
  t.kind = Transition::Kind::kReceive;
  t.from = from;
  t.to = to;
  t.expect_from = sender;
  t.expect_kind = kind;
  t.label = label.empty() ? "r(p" + std::to_string(sender.value()) + "," +
                                kind.str() + ")"
                          : std::move(label);
  transitions_.push_back(std::move(t));
  return transitions_.back();
}

Transition& Automaton::add_timeout(StateId from, StateId to, TimeGuard guard,
                                   std::string label) {
  Transition t;
  t.kind = Transition::Kind::kTimeout;
  t.from = from;
  t.to = to;
  t.guard = guard;
  t.label = label.empty() ? "now >= " + vars_.at(guard.var) + " + " +
                                guard.offset.str()
                          : std::move(label);
  transitions_.push_back(std::move(t));
  return transitions_.back();
}

Transition& Automaton::set_send(StateId from, StateId to, sim::ProcessId dest,
                                net::MsgKind kind, std::string label) {
  Transition t;
  t.kind = Transition::Kind::kSend;
  t.from = from;
  t.to = to;
  t.send_to = dest;
  t.send_kind = kind;
  t.label = label.empty()
                ? "s(p" + std::to_string(dest.value()) + "," + kind.str() + ")"
                : std::move(label);
  transitions_.push_back(std::move(t));
  return transitions_.back();
}

std::vector<const Transition*> Automaton::out_of(StateId s) const {
  std::vector<const Transition*> out;
  for (const auto& t : transitions_) {
    if (t.from == s) out.push_back(&t);
  }
  return out;
}

void Automaton::validate() const {
  XCP_REQUIRE(initial_ != kNoState, "automaton '" + name_ + "' has no initial state");
  for (const auto& t : transitions_) {
    XCP_REQUIRE(t.from >= 0 && static_cast<std::size_t>(t.from) < states_.size(),
                "transition from unknown state");
    XCP_REQUIRE(t.to >= 0 && static_cast<std::size_t>(t.to) < states_.size(),
                "transition to unknown state");
    const StateKind from_kind = states_[t.from].kind;
    switch (t.kind) {
      case Transition::Kind::kSend:
        XCP_REQUIRE(from_kind == StateKind::kOutput,
                    "send transition must leave an output state");
        break;
      case Transition::Kind::kReceive:
      case Transition::Kind::kTimeout:
        XCP_REQUIRE(from_kind == StateKind::kInput,
                    "receive/timeout must leave an input state");
        break;
    }
    if (t.guard) {
      XCP_REQUIRE(t.guard->var >= 0 &&
                      static_cast<std::size_t>(t.guard->var) < vars_.size(),
                  "guard references unknown clock variable");
    }
  }
  for (StateId s = 0; static_cast<std::size_t>(s) < states_.size(); ++s) {
    if (states_[s].kind == StateKind::kOutput) {
      int sends = 0;
      for (const auto& t : transitions_) {
        if (t.from == s) {
          XCP_REQUIRE(t.kind == Transition::Kind::kSend,
                      "output state with non-send exit");
          ++sends;
        }
      }
      XCP_REQUIRE(sends == 1, "output state '" + states_[s].name +
                                  "' must have exactly one send exit");
    }
    if (states_[s].kind == StateKind::kFinal) {
      for (const auto& t : transitions_) {
        XCP_REQUIRE(t.from != s, "final state must have no exits");
      }
    }
  }
}

}  // namespace xcp::anta
