#pragma once
// Rendering of automata, for the Figure-2 reproduction bench and for
// debugging protocol builders: Graphviz dot and a compact ASCII listing.

#include <string>

#include "anta/automaton.hpp"

namespace xcp::anta {

/// Graphviz dot: output states are grey (as in Fig. 2), input states white,
/// final states doubly circled.
std::string to_dot(const Automaton& a);

/// One line per transition: `state --label--> state`.
std::string to_ascii(const Automaton& a);

}  // namespace xcp::anta
