#include "anta/analysis.hpp"

#include <deque>
#include <sstream>

namespace xcp::anta {

std::vector<bool> reachable_states(const Automaton& a) {
  std::vector<bool> seen(a.state_count(), false);
  std::deque<StateId> queue{a.initial()};
  seen[static_cast<std::size_t>(a.initial())] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (const Transition* t : a.out_of(s)) {
      if (!seen[static_cast<std::size_t>(t->to)]) {
        seen[static_cast<std::size_t>(t->to)] = true;
        queue.push_back(t->to);
      }
    }
  }
  return seen;
}

std::vector<bool> can_reach_final(const Automaton& a) {
  // Backward closure from final states over the reversed transition graph.
  const std::size_t n = a.state_count();
  std::vector<std::vector<StateId>> rev(n);
  for (const auto& t : a.transitions()) {
    rev[static_cast<std::size_t>(t.to)].push_back(t.from);
  }
  std::vector<bool> ok(n, false);
  std::deque<StateId> queue;
  for (StateId s = 0; static_cast<std::size_t>(s) < n; ++s) {
    if (a.state_kind(s) == StateKind::kFinal) {
      ok[static_cast<std::size_t>(s)] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (StateId p : rev[static_cast<std::size_t>(s)]) {
      if (!ok[static_cast<std::size_t>(p)]) {
        ok[static_cast<std::size_t>(p)] = true;
        queue.push_back(p);
      }
    }
  }
  return ok;
}

AnalysisReport analyze(const Automaton& a) {
  AnalysisReport r;
  const auto reach = reachable_states(a);
  const auto final_ok = can_reach_final(a);
  for (StateId s = 0; static_cast<std::size_t>(s) < a.state_count(); ++s) {
    const bool reachable = reach[static_cast<std::size_t>(s)];
    if (!reachable) {
      r.unreachable.push_back(s);
      continue;  // dead-end / sink checks only meaningful for live states
    }
    if (a.state_kind(s) == StateKind::kFinal) {
      r.has_final = true;
      continue;
    }
    if (!final_ok[static_cast<std::size_t>(s)]) r.dead_ends.push_back(s);
    if (a.state_kind(s) == StateKind::kInput && a.out_of(s).empty()) {
      r.input_sinks.push_back(s);
    }
  }
  return r;
}

std::string AnalysisReport::str(const Automaton& a) const {
  std::ostringstream os;
  os << a.name() << ": " << (clean() ? "clean" : "ISSUES");
  for (StateId s : unreachable) os << "\n  unreachable: " << a.state_name(s);
  for (StateId s : dead_ends) os << "\n  dead-end: " << a.state_name(s);
  for (StateId s : input_sinks) os << "\n  wait-forever: " << a.state_name(s);
  if (!has_final) os << "\n  no final state";
  return os.str();
}

}  // namespace xcp::anta
