#pragma once
// Static analysis of ANTA automata: reachability and dead-end detection.
//
// Requirement C (consistency) demands that "for each participant in the
// protocol it is possible to abide by the protocol". The runtime checkers
// test this on executions; these structural checks complement them at
// build time: every state of a well-formed protocol automaton must be
// reachable from the initial state, and every non-final state must have a
// path to some final state (no dead ends: a participant can always finish,
// given cooperative inputs).

#include <string>
#include <vector>

#include "anta/automaton.hpp"

namespace xcp::anta {

struct AnalysisReport {
  std::vector<StateId> unreachable;       // states no path reaches
  std::vector<StateId> dead_ends;         // non-final states with no path to
                                          // any final state
  std::vector<StateId> input_sinks;       // input states with no exits at all
                                          // (wait-forever; legal in ANTA but
                                          // worth surfacing)
  bool has_final = false;

  bool clean() const {
    return unreachable.empty() && dead_ends.empty() && has_final;
  }
  std::string str(const Automaton& a) const;
};

/// Runs all structural checks (assumes a.validate() already passed).
AnalysisReport analyze(const Automaton& a);

/// States reachable from the initial state following any transition.
std::vector<bool> reachable_states(const Automaton& a);

/// For each state: does some path lead to a final state?
std::vector<bool> can_reach_final(const Automaton& a);

}  // namespace xcp::anta
