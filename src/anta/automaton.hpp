#pragma once
// Asynchronous Networks of Timed Automata (ANTA) — the specification
// formalism the paper introduces and uses to present the time-bounded
// protocol (Fig. 2).
//
// Faithful to the paper's description:
//  - each automaton has a finite set of states; *output* states (grey) spend
//    a bounded amount of time calculating and are left by sending a message;
//    *input* states (white) are left when an outgoing transition becomes
//    enabled: either a message of the awaited shape arrives (r(id, m)) or a
//    time-out guard over the local clock becomes true (now >= x + d);
//  - transitions may carry assignments x := now recording the local time at
//    which they are taken;
//  - every automaton reads time from its own (drifting) clock.
//
// An Automaton is a pure description; the Interpreter (anta/interpreter.hpp)
// runs one instance of it as a network actor. Effects and validations attach
// to transitions as callbacks, so protocol semantics (ledger movements,
// certificate verification) live with the protocol builder, not the engine.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "support/time.hpp"

namespace xcp::anta {

class Interpreter;

using StateId = int;
using VarId = int;
inline constexpr StateId kNoState = -1;

enum class StateKind {
  kInput,   // white: waits for a receive or time-out transition
  kOutput,  // grey: computes for bounded time, then sends
  kFinal,   // terminal: the participant has terminated
};

/// Time-out guard: enabled when the local clock reads >= var + offset.
struct TimeGuard {
  VarId var = -1;
  Duration offset;
};

struct Transition {
  enum class Kind { kReceive, kTimeout, kSend };
  Kind kind = Kind::kReceive;
  StateId from = kNoState;
  StateId to = kNoState;
  std::string label;  // for rendering / traces

  // --- kReceive ---
  sim::ProcessId expect_from;  // r(id, m): the awaited sender
  net::MsgKind expect_kind;    // the awaited message tag (interned)
  /// Optional extra validation (verify a receipt, a certificate, a promise).
  /// A message matching (from, kind) but failing `accept` is *consumed and
  /// ignored* — the paper's automata simply never react to ill-formed input.
  std::function<bool(const net::Message&, Interpreter&)> accept;

  // --- kTimeout ---
  std::optional<TimeGuard> guard;

  // --- kSend (the unique exit of an output state) ---
  sim::ProcessId send_to;
  net::MsgKind send_kind;
  /// Builds the payload at send time (may consult interpreter slots).
  std::function<net::BodyPtr(Interpreter&)> make_body;

  /// Effect executed when the transition is taken (after accept / guard).
  /// Typical uses: x := now assignments, storing payload fields in slots,
  /// ledger transfers.
  std::function<void(Interpreter&)> effect;
};

class Automaton {
 public:
  explicit Automaton(std::string name) : name_(std::move(name)) {}

  StateId add_state(std::string name, StateKind kind);
  VarId add_var(std::string name);

  void set_initial(StateId s);

  /// Adds r(sender, kind) transition from an input state.
  Transition& add_receive(StateId from, StateId to, sim::ProcessId sender,
                          net::MsgKind kind, std::string label = "");

  /// Adds a time-out transition (now >= var + offset) from an input state.
  Transition& add_timeout(StateId from, StateId to, TimeGuard guard,
                          std::string label = "");

  /// Sets the send action leaving an output state: s(dest, kind).
  Transition& set_send(StateId from, StateId to, sim::ProcessId dest,
                       net::MsgKind kind, std::string label = "");

  const std::string& name() const { return name_; }
  StateId initial() const { return initial_; }
  StateKind state_kind(StateId s) const { return states_.at(s).kind; }
  const std::string& state_name(StateId s) const { return states_.at(s).name; }
  std::size_t state_count() const { return states_.size(); }
  std::size_t var_count() const { return vars_.size(); }
  const std::string& var_name(VarId v) const { return vars_.at(v); }

  /// Transitions leaving `s`, in declaration order (matching priority).
  std::vector<const Transition*> out_of(StateId s) const;
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Structural validation: initial set, output states have exactly one
  /// send exit, receive/timeout only leave input states, all targets exist.
  void validate() const;

 private:
  struct State {
    std::string name;
    StateKind kind;
  };
  std::string name_;
  std::vector<State> states_;
  std::vector<std::string> vars_;
  std::vector<Transition> transitions_;
  StateId initial_ = kNoState;
};

}  // namespace xcp::anta
