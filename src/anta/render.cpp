#include "anta/render.hpp"

#include <sstream>

namespace xcp::anta {

std::string to_dot(const Automaton& a) {
  std::ostringstream os;
  os << "digraph \"" << a.name() << "\" {\n  rankdir=LR;\n";
  for (StateId s = 0; static_cast<std::size_t>(s) < a.state_count(); ++s) {
    os << "  s" << s << " [label=\"" << a.state_name(s) << "\"";
    switch (a.state_kind(s)) {
      case StateKind::kOutput:
        os << ", style=filled, fillcolor=lightgrey";
        break;
      case StateKind::kFinal:
        os << ", shape=doublecircle";
        break;
      case StateKind::kInput:
        break;
    }
    os << "];\n";
  }
  os << "  init [shape=point];\n  init -> s" << a.initial() << ";\n";
  for (const auto& t : a.transitions()) {
    os << "  s" << t.from << " -> s" << t.to << " [label=\"" << t.label
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_ascii(const Automaton& a) {
  std::ostringstream os;
  os << a.name() << " (initial: " << a.state_name(a.initial()) << ")\n";
  for (const auto& t : a.transitions()) {
    os << "  " << a.state_name(t.from) << " --" << t.label << "--> "
       << a.state_name(t.to) << "\n";
  }
  return os.str();
}

}  // namespace xcp::anta
