#include "props/trace.hpp"

#include <sstream>

namespace xcp::props {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kSend: return "send";
    case EventKind::kDeliver: return "deliver";
    case EventKind::kDrop: return "drop";
    case EventKind::kTransfer: return "transfer";
    case EventKind::kEscrowLock: return "escrow-lock";
    case EventKind::kEscrowComplete: return "escrow-complete";
    case EventKind::kEscrowRefund: return "escrow-refund";
    case EventKind::kCertIssued: return "cert-issued";
    case EventKind::kCertReceived: return "cert-received";
    case EventKind::kTerminate: return "terminate";
    case EventKind::kDecide: return "decide";
    case EventKind::kAbortRequested: return "abort-requested";
    case EventKind::kViolation: return "violation";
    case EventKind::kCustom: return "custom";
  }
  return "?";
}

std::string TraceEvent::str() const {
  std::ostringstream os;
  os << at.str() << " " << event_kind_name(kind) << " actor=p" << actor.value();
  if (peer.valid()) os << " peer=p" << peer.value();
  if (!label.empty()) os << " [" << label << "]";
  if (amount) os << " " << amount->str();
  return os.str();
}

std::size_t TraceRecorder::count(EventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_) n += (e.kind == kind);
  return n;
}

std::size_t TraceRecorder::count(EventKind kind, sim::ProcessId actor) const {
  std::size_t n = 0;
  for (const auto& e : events_) n += (e.kind == kind && e.actor == actor);
  return n;
}

std::size_t TraceRecorder::count_label(EventKind kind, const std::string& label) const {
  std::size_t n = 0;
  for (const auto& e : events_) n += (e.kind == kind && e.label == label);
  return n;
}

std::size_t TraceRecorder::count(EventKind kind, sim::ProcessId actor,
                                 const std::string& label) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    n += (e.kind == kind && e.actor == actor && e.label == label);
  }
  return n;
}

const TraceEvent* TraceRecorder::first(EventKind kind, sim::ProcessId actor) const {
  for (const auto& e : events_) {
    if (e.kind == kind && e.actor == actor) return &e;
  }
  return nullptr;
}

const TraceEvent* TraceRecorder::first_label(EventKind kind,
                                             const std::string& label) const {
  for (const auto& e : events_) {
    if (e.kind == kind && e.label == label) return &e;
  }
  return nullptr;
}

std::vector<const TraceEvent*> TraceRecorder::all(EventKind kind) const {
  std::vector<const TraceEvent*> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(&e);
  }
  return out;
}

std::string TraceRecorder::render(std::size_t max_lines) const {
  std::ostringstream os;
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (n++ >= max_lines) {
      os << "... (" << events_.size() - max_lines << " more)\n";
      break;
    }
    os << e.str() << "\n";
  }
  return os.str();
}

}  // namespace xcp::props
