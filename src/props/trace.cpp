#include "props/trace.hpp"

#include <mutex>
#include <new>
#include <sstream>
#include <utility>

namespace xcp::props {

namespace {

// Two-level pool of fixed-size raw chunks, shared by event storage and the
// per-kind index lists (one block size, interchangeable).
//
// Level 1 is a thread-local freelist — the steady-state path: pop/push with
// no lock and no allocation, like the message-body pools. Level 2 is a
// shared mutex-protected overflow pool that rebalances chunks *across*
// threads: sweep workers fill traces, but buffered sweeps destroy the
// RunRecords on the calling thread, so without rebalancing every chunk
// would migrate one-way into the caller's freelist and workers would
// malloc fresh ones each sweep, growing the process by a sweep's footprint
// per sweep. A thread's freelist therefore spills half its chunks to the
// shared pool past a small cap, acquire refills a batch from it before
// touching the heap, and thread exit donates the remainder. One lock per
// ~hundreds of recorded events; the record() fast path never sees it.
// (support/pool.hpp's BlockPool is deliberately not reused here: it has no
// cross-thread rebalancing, which is the whole point of level 2.)
//
// Cross-thread handoff of chunk *contents* is synchronised by whoever
// hands the recorder over (the sweep pool's quiescence, for sweeps).
struct ChunkNode {
  ChunkNode* next;
};

struct SharedChunkPool {
  std::mutex mu;
  ChunkNode* head = nullptr;
};

SharedChunkPool& shared_chunks() {
  // Leaked: threads may donate chunks during static destruction (the sweep
  // pool joins its workers then); the shared pool must outlive them all.
  // Chunks parked here at process exit go back to the OS with the process.
  static SharedChunkPool* pool = new SharedChunkPool;
  return *pool;
}

struct ChunkFreelist {
  // Cap ~1 MB of idle chunks per thread before spilling half to the
  // shared pool; refill in batches so a draining/refilling cycle pays one
  // lock per kRefillBatch chunks, not one per chunk.
  static constexpr std::size_t kMaxLocal = 64;
  static constexpr std::size_t kRefillBatch = 16;

  ChunkNode* head = nullptr;
  std::size_t count = 0;

  ~ChunkFreelist() {
    if (head == nullptr) return;
    // Donate everything to the shared pool: chunks freed on a short-lived
    // thread stay reusable by the rest of the process.
    ChunkNode* tail = head;
    while (tail->next != nullptr) tail = tail->next;
    SharedChunkPool& shared = shared_chunks();
    const std::lock_guard<std::mutex> lock(shared.mu);
    tail->next = shared.head;
    shared.head = head;
  }
};

thread_local ChunkFreelist g_trace_chunks;

void* acquire_chunk() {
  ChunkFreelist& fl = g_trace_chunks;
  if (fl.head != nullptr) {
    ChunkNode* n = fl.head;
    fl.head = n->next;
    --fl.count;
    return static_cast<void*>(n);
  }
  // Refill a batch from the shared pool before falling back to the heap.
  SharedChunkPool& shared = shared_chunks();
  {
    const std::lock_guard<std::mutex> lock(shared.mu);
    for (std::size_t i = 0; i < ChunkFreelist::kRefillBatch; ++i) {
      ChunkNode* n = shared.head;
      if (n == nullptr) break;
      shared.head = n->next;
      n->next = fl.head;
      fl.head = n;
      ++fl.count;
    }
  }
  if (fl.head != nullptr) {
    ChunkNode* n = fl.head;
    fl.head = n->next;
    --fl.count;
    return static_cast<void*>(n);
  }
  return ::operator new(TraceRecorder::kChunkBytes);
}

void release_chunk(void* p) {
  auto* n = static_cast<ChunkNode*>(p);
  ChunkFreelist& fl = g_trace_chunks;
  n->next = fl.head;
  fl.head = n;
  if (++fl.count <= ChunkFreelist::kMaxLocal) return;
  // Spill half to the shared pool so other threads (sweep workers, after a
  // buffered caller consumed their traces) can reuse them.
  ChunkNode* keep_tail = fl.head;
  for (std::size_t i = 1; i < ChunkFreelist::kMaxLocal / 2; ++i) {
    keep_tail = keep_tail->next;
  }
  ChunkNode* spill = keep_tail->next;
  keep_tail->next = nullptr;
  ChunkNode* spill_tail = spill;
  while (spill_tail->next != nullptr) spill_tail = spill_tail->next;
  fl.count = ChunkFreelist::kMaxLocal / 2;
  SharedChunkPool& shared = shared_chunks();
  const std::lock_guard<std::mutex> lock(shared.mu);
  spill_tail->next = shared.head;
  shared.head = spill;
}

}  // namespace

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kSend: return "send";
    case EventKind::kDeliver: return "deliver";
    case EventKind::kDrop: return "drop";
    case EventKind::kTransfer: return "transfer";
    case EventKind::kEscrowLock: return "escrow-lock";
    case EventKind::kEscrowComplete: return "escrow-complete";
    case EventKind::kEscrowRefund: return "escrow-refund";
    case EventKind::kCertIssued: return "cert-issued";
    case EventKind::kCertReceived: return "cert-received";
    case EventKind::kTerminate: return "terminate";
    case EventKind::kDecide: return "decide";
    case EventKind::kAbortRequested: return "abort-requested";
    case EventKind::kViolation: return "violation";
    case EventKind::kCustom: return "custom";
  }
  return "?";
}

std::string TraceEvent::str() const {
  std::ostringstream os;
  os << at.str() << " " << event_kind_name(kind) << " actor=p" << actor.value();
  if (peer.valid()) os << " peer=p" << peer.value();
  if (!label.empty()) os << " [" << label.name() << "]";
  if (amount) os << " " << amount->str();
  return os.str();
}

void TraceRecorder::next_event_chunk() {
  if (used_chunks_ == chunks_.size()) {
    chunks_.push_back(static_cast<TraceEvent*>(acquire_chunk()));
  }
  bump_ = chunks_[used_chunks_++];
  bump_end_ = bump_ + kEventsPerChunk;
}

void TraceRecorder::next_index_chunk(KindIndex& ix) {
  if (ix.used_chunks == ix.chunks.size()) {
    ix.chunks.push_back(static_cast<const TraceEvent**>(acquire_chunk()));
  }
  ix.bump = ix.chunks[ix.used_chunks++];
  ix.bump_end = ix.bump + kPtrsPerChunk;
}

void TraceRecorder::clear() {
  size_ = 0;
  used_chunks_ = 0;
  bump_ = nullptr;
  bump_end_ = nullptr;
  for (KindIndex& ix : index_) {
    ix.size = 0;
    ix.used_chunks = 0;
    ix.bump = nullptr;
    ix.bump_end = nullptr;
  }
}

void TraceRecorder::release_all() {
  for (TraceEvent* c : chunks_) release_chunk(static_cast<void*>(c));
  chunks_.clear();
  for (KindIndex& ix : index_) {
    for (const TraceEvent** c : ix.chunks) {
      release_chunk(static_cast<void*>(c));
    }
    ix.chunks.clear();
  }
  clear();
}

void TraceRecorder::steal(TraceRecorder&& o) {
  chunks_ = std::move(o.chunks_);
  used_chunks_ = o.used_chunks_;
  bump_ = o.bump_;
  bump_end_ = o.bump_end_;
  size_ = o.size_;
  index_ = std::move(o.index_);
  sink_ = o.sink_;
  o.sink_ = nullptr;
  o.chunks_.clear();
  for (KindIndex& ix : o.index_) ix.chunks.clear();
  o.clear();
}

std::size_t TraceRecorder::count(EventKind kind, sim::ProcessId actor) const {
  std::size_t n = 0;
  for (const TraceEvent* e : all(kind)) n += (e->actor == actor);
  return n;
}

std::size_t TraceRecorder::count_label(EventKind kind, Label label) const {
  std::size_t n = 0;
  for (const TraceEvent* e : all(kind)) n += (e->label == label);
  return n;
}

std::size_t TraceRecorder::count(EventKind kind, sim::ProcessId actor,
                                 Label label) const {
  std::size_t n = 0;
  for (const TraceEvent* e : all(kind)) {
    n += (e->actor == actor && e->label == label);
  }
  return n;
}

const TraceEvent* TraceRecorder::first(EventKind kind,
                                       sim::ProcessId actor) const {
  for (const TraceEvent* e : all(kind)) {
    if (e->actor == actor) return e;
  }
  return nullptr;
}

const TraceEvent* TraceRecorder::first_label(EventKind kind,
                                             Label label) const {
  for (const TraceEvent* e : all(kind)) {
    if (e->label == label) return e;
  }
  return nullptr;
}

std::string TraceRecorder::render(std::size_t max_lines) const {
  std::ostringstream os;
  std::size_t n = 0;
  for (const TraceEvent& e : events()) {
    if (n++ >= max_lines) {
      os << "... (" << size_ - max_lines << " more)\n";
      break;
    }
    os << e.str() << "\n";
  }
  return os.str();
}

TraceRecorder TraceRecorder::clone() const {
  TraceRecorder out;
  for (const TraceEvent& e : events()) out.record(e);
  return out;
}

}  // namespace xcp::props
