#pragma once
// Interned trace labels. TraceEvent::label used to be a std::string built
// per event — one heap allocation and a content compare per checker query.
// Label is the trace-side twin of net::MsgKind: a 32-bit id into the
// process-wide name interner (support/interner.hpp), so recording copies
// four bytes, checkers compare integers, and the text is only materialised
// for rendering. MsgKind and Label share one id space, which lets the
// network stamp a message kind's id straight into a trace event without
// touching the interner.
//
// Construction from a string (implicitly, mirroring the old API) interns
// the name: a shared-lock hash lookup, allocating only the first time a
// name is seen. Hot emitters should use the pre-seeded constants in
// props::labels (or helpers like crypto::cert_kind_label) and pay nothing.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "support/interner.hpp"

namespace xcp::props {

class Label {
 public:
  /// The empty label (id 0).
  constexpr Label() = default;

  // Implicit by design: every legacy `e.label = "chi"` call site keeps
  // working, paying one interner lookup.
  Label(std::string_view name) : id_(support::intern_name(name)) {}  // NOLINT
  Label(const char* name) : Label(std::string_view(name)) {}         // NOLINT
  Label(const std::string& name)                                     // NOLINT
      : Label(std::string_view(name)) {}

  constexpr std::uint32_t value() const { return id_; }
  constexpr bool empty() const { return id_ == 0; }

  /// The interned name; valid for the process lifetime.
  std::string_view name() const { return support::interned_name(id_); }
  std::string str() const { return std::string(name()); }

  /// Rebuilds a Label from an id produced by this process's interner —
  /// e.g. a net::MsgKind wire value (shared id space). Trusted: the id is
  /// validated when the name is first resolved, not here (this is the
  /// per-message trace-emit path).
  static constexpr Label from_wire(std::uint32_t id) {
    Label l;
    l.id_ = id;
    return l;
  }

  /// Non-inserting lookup for read-only query paths. Constructing a Label
  /// from a string *interns* it — fine for emitters (the label is about to
  /// exist in a trace) but wrong for probes: querying a recorder with a
  /// dynamically built, possibly never-recorded string must not grow the
  /// process-wide table. find() resolves the name if it was ever interned
  /// and otherwise returns a sentinel Label that compares unequal to every
  /// real label (so counts/lookups correctly find nothing). The sentinel's
  /// name() must not be asked for.
  static Label find(std::string_view name) {
    return from_wire(support::find_name(name));
  }

  friend constexpr bool operator==(Label a, Label b) { return a.id_ == b.id_; }
  friend constexpr bool operator!=(Label a, Label b) { return a.id_ != b.id_; }

 private:
  std::uint32_t id_ = 0;
};

/// Well-known trace labels, interned once per process at static
/// initialisation (pre-seeding the table before sweep threads exist).
namespace labels {
inline const Label chi{"chi"};        // Bob's payment certificate
inline const Label commit{"commit"};  // TM decision values
inline const Label abort_{"abort"};
}  // namespace labels

}  // namespace xcp::props

template <>
struct std::hash<xcp::props::Label> {
  std::size_t operator()(const xcp::props::Label& l) const noexcept {
    return std::hash<std::uint32_t>()(l.value());
  }
};
