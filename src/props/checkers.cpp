#include "props/checkers.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "props/label.hpp"
#include "props/online.hpp"

namespace xcp::props {

std::string PropertyResult::str() const {
  std::ostringstream os;
  os << name << ": ";
  if (!applicable) {
    os << "n/a";
  } else if (holds) {
    os << "holds";
  } else {
    os << "VIOLATED";
    for (const auto& v : violations) os << "\n    - " << v;
  }
  return os.str();
}

bool PropertyReport::all_hold() const {
  for (const auto& r : results_) {
    if (r.applicable && !r.holds) return false;
  }
  return true;
}

std::vector<std::string> PropertyReport::failed() const {
  std::vector<std::string> out;
  for (const auto& r : results_) {
    if (r.applicable && !r.holds) out.push_back(r.name);
  }
  return out;
}

std::string PropertyReport::str() const {
  std::ostringstream os;
  for (const auto& r : results_) os << "  " << r.str() << "\n";
  return os.str();
}

namespace {

bool escrow_abides(const proto::RunRecord& r, int i) {
  return r.escrow(i).abiding;
}

/// Escrows of customer c_i: e_{i-1} (if i>0) and e_i (if i<n).
bool customers_escrows_abide(const proto::RunRecord& r, int i) {
  if (i > 0 && !escrow_abides(r, i - 1)) return false;
  if (i < r.spec.n && !escrow_abides(r, i)) return false;
  return true;
}

bool all_abide(const proto::RunRecord& r) {
  for (const auto& p : r.participants) {
    if (!p.abiding) return false;
  }
  return true;
}

void violate(PropertyResult& res, std::string msg) {
  res.holds = false;
  res.violations.push_back(std::move(msg));
}

}  // namespace

PropertyResult check_conservation(const proto::RunRecord& r) {
  PropertyResult res;
  res.name = "conservation";
  // Runs touch a handful of currencies at most: a fixed-size linear-scan
  // accumulator replaces the old std::map (no allocation, no tree walk),
  // with a vector spill for the pathological >64-currency run so every
  // representable record still gets a verdict.
  constexpr std::size_t kInlineCurrencies = 64;
  std::array<std::pair<std::uint16_t, std::int64_t>, kInlineCurrencies> net;
  std::size_t ncur = 0;
  std::vector<std::pair<std::uint16_t, std::int64_t>> overflow;
  const auto slot_for = [&](Currency c) -> std::int64_t& {
    for (std::size_t i = 0; i < ncur; ++i) {
      if (net[i].first == c.id()) return net[i].second;
    }
    for (auto& [id, delta] : overflow) {
      if (id == c.id()) return delta;
    }
    if (ncur < kInlineCurrencies) {
      net[ncur] = {c.id(), 0};
      return net[ncur++].second;
    }
    // The returned reference is consumed before the next slot_for call, so
    // growth-invalidation is harmless.
    return overflow.emplace_back(c.id(), 0).second;
  };
  for (const auto& p : r.participants) {
    for (const Amount& a : p.initial_holdings) slot_for(a.currency()) -= a.units();
    for (const Amount& a : p.final_holdings) slot_for(a.currency()) += a.units();
  }
  // Report in currency-id order, as the old map-based walk did.
  const auto first = net.begin();
  const auto last = net.begin() + static_cast<std::ptrdiff_t>(ncur);
  std::sort(first, last);
  std::sort(overflow.begin(), overflow.end());
  const auto report = [&](std::uint16_t cur, std::int64_t delta) {
    if (delta != 0) {
      violate(res, "currency " + Currency(cur).code() + " net " +
                       std::to_string(delta) + " != 0");
    }
  };
  // Two sorted runs; the inline prefix holds the 64 first-seen ids, so
  // merge them to keep strict id order in the report.
  auto a = first;
  auto b = overflow.begin();
  while (a != last || b != overflow.end()) {
    if (b == overflow.end() || (a != last && a->first < b->first)) {
      report(a->first, a->second);
      ++a;
    } else {
      report(b->first, b->second);
      ++b;
    }
  }
  return res;
}

PropertyResult check_escrow_security(const proto::RunRecord& r) {
  PropertyResult res;
  res.name = "ES";
  for (int i = 0; i < r.spec.n; ++i) {
    const auto& e = r.escrow(i);
    if (!e.abiding) continue;
    // Consider every currency the escrow ever touched.
    auto check_currency = [&](Currency c) {
      const std::int64_t net = e.net_units(c);
      if (net < 0) {
        violate(res, e.role + " lost " + std::to_string(-net) + " " + c.code());
      }
    };
    for (const Amount& a : e.initial_holdings) check_currency(a.currency());
    for (const Amount& a : e.final_holdings) check_currency(a.currency());
    check_currency(r.spec.hop_amount(i).currency());
  }
  return res;
}

PropertyResult check_consistency(const proto::RunRecord& r) {
  PropertyResult res;
  res.name = "C";
  // Every deposit an abiding escrow locked must be resolved by run end —
  // an abiding escrow's automaton always completes or refunds (its await_chi
  // state has a time-out exit), so a dangling lock means the protocol
  // prescribed an impossible or never-scheduled action. Only claimable when
  // the run drained (otherwise the horizon cut it off).
  if (!r.stats.drained) {
    res.applicable = false;
    return res;
  }
  for (const auto& d : r.escrow_deals) {
    const auto* e = r.find(d.escrow);
    if (e == nullptr || !e->abiding) continue;
    if (d.state == ledger::EscrowState::kLocked) {
      violate(res, e->role + " deal " + std::to_string(d.id) +
                       " still locked at run end");
    }
  }
  // Promise G(d): resolution within d of the deposit. Compare in true time,
  // allowing the worst-case clock-rate conversion.
  if (r.schedule) {
    const double rho = r.schedule->params().rho;
    for (const auto& d : r.escrow_deals) {
      const auto* e = r.find(d.escrow);
      if (e == nullptr || !e->abiding) continue;
      if (d.state == ledger::EscrowState::kLocked) continue;
      int idx = 0;
      for (int i = 0; i < r.spec.n; ++i) {
        if (r.parts.escrow(i) == d.escrow) idx = i;
      }
      const Duration promised = r.schedule->d(idx);
      const Duration true_budget = promised.scaled_up(1.0 / (1.0 - rho)) +
                                   r.schedule->params().processing;
      const Duration took = d.resolved_at - d.locked_at;
      if (took > true_budget) {
        violate(res, e->role + " broke G(d): resolved after " + took.str() +
                         " > budget " + true_budget.str());
      }
    }
  }
  return res;
}

PropertyResult check_cs1(const proto::RunRecord& r, bool weak_form) {
  PropertyResult res;
  res.name = weak_form ? "CS1'" : "CS1";
  const auto& alice = r.alice();
  if (!alice.abiding || !escrow_abides(r, 0)) {
    res.applicable = false;
    return res;
  }
  if (!alice.terminated) return res;  // "upon termination"
  const Currency c0 = r.spec.hop_amount(0).currency();
  const bool money_back = alice.net_units(c0) >= 0;
  const bool has_cert =
      weak_form ? alice.received_commit_cert : alice.received_payment_cert;
  if (!money_back && !has_cert) {
    violate(res, "alice terminated down " +
                     std::to_string(-alice.net_units(c0)) + " " + c0.code() +
                     " without " + (weak_form ? "chi_c" : "chi"));
  }
  return res;
}

PropertyResult check_cs2(const proto::RunRecord& r, bool weak_form) {
  PropertyResult res;
  res.name = weak_form ? "CS2'" : "CS2";
  const auto& bob = r.bob();
  if (!bob.abiding || !escrow_abides(r, r.spec.n - 1)) {
    res.applicable = false;
    return res;
  }
  if (!bob.terminated) return res;
  const bool paid = r.bob_paid();
  if (weak_form) {
    if (!paid && !bob.received_abort_cert) {
      violate(res, "bob terminated unpaid and without chi_a");
    }
  } else {
    if (!paid && bob.issued_payment_cert) {
      violate(res, "bob terminated unpaid after issuing chi");
    }
  }
  return res;
}

PropertyResult check_cs3(const proto::RunRecord& r) {
  PropertyResult res;
  res.name = "CS3";
  bool any_applicable = false;
  for (int i = 1; i <= r.spec.n - 1; ++i) {
    const auto& chloe = r.customer(i);
    if (!chloe.abiding || !customers_escrows_abide(r, i)) continue;
    if (!chloe.terminated) continue;  // "upon termination"
    any_applicable = true;
    const Amount pay = r.spec.hop_amount(i);       // what she paid out
    const Amount recv = r.spec.hop_amount(i - 1);  // what success pays her
    const std::int64_t net_pay_cur = chloe.net_units(pay.currency());
    const std::int64_t net_recv_cur = chloe.net_units(recv.currency());
    const bool refunded =
        net_pay_cur >= 0 &&
        (pay.currency() == recv.currency() || net_recv_cur >= 0);
    const bool paid_through =
        pay.currency() == recv.currency()
            ? net_pay_cur >= recv.units() - pay.units()
            : (net_pay_cur >= -pay.units() && net_recv_cur >= recv.units());
    if (!refunded && !paid_through) {
      std::string detail = std::to_string(net_pay_cur) + " " +
                           pay.currency().code();
      if (pay.currency() != recv.currency()) {
        detail += ", " + std::to_string(net_recv_cur) + " " +
                  recv.currency().code();
      }
      violate(res, chloe.role + " lost value: net " + detail);
    }
  }
  res.applicable = any_applicable;
  return res;
}

PropertyResult check_termination(const proto::RunRecord& r,
                                 const CheckOptions& opts) {
  PropertyResult res;
  res.name = opts.time_bounded ? "T(bounded)" : "T(eventual)";
  if (!opts.environment_conforms) {
    res.applicable = false;
    return res;
  }
  bool any = false;
  for (int i = 0; i <= r.spec.n; ++i) {
    const auto& c = r.customer(i);
    if (!c.abiding || !customers_escrows_abide(r, i)) continue;
    // Did c_i make a payment or issue a certificate?
    const bool paid_or_issued =
        r.trace.count(EventKind::kTransfer, c.pid) > 0 || c.issued_payment_cert;
    if (!paid_or_issued) continue;
    any = true;
    if (!c.terminated) {
      violate(res, c.role + " paid/issued but never terminated");
      continue;
    }
    if (opts.time_bounded && r.schedule && r.schedule->n() > 0) {
      const Duration bound = r.schedule->customer_termination_bound(i);
      const Duration took = c.terminated_global - TimePoint::origin();
      if (took > bound) {
        violate(res, c.role + " terminated after " + took.str() +
                         " > a-priori bound " + bound.str());
      }
      // The customer-visible form of the same promise: elapsed time on her
      // own clock within the (1+rho)-inflated bound.
      const Duration local_bound =
          r.schedule->customer_termination_bound_local(i);
      const Duration local_took = c.terminated_local - c.local_at_start;
      if (local_took > local_bound) {
        violate(res, c.role + " local clock shows " + local_took.str() +
                         " > local a-priori bound " + local_bound.str());
      }
    }
  }
  res.applicable = any;
  return res;
}

PropertyResult check_strong_liveness(const proto::RunRecord& r,
                                     const CheckOptions& opts) {
  PropertyResult res;
  res.name = "L";
  if (!all_abide(r) || !opts.environment_conforms) {
    res.applicable = false;
    return res;
  }
  if (!r.bob_paid()) violate(res, "all parties abided but bob was not paid");
  return res;
}

PropertyResult check_certificate_consistency(const proto::RunRecord& r) {
  PropertyResult res;
  res.name = "CC";
  // Thin replay of the incremental machine (props/online.hpp): the batch
  // verdict is, by the monotonicity contract, exactly what the online
  // checker latches when fed the whole trace. Decide events carry a deal id
  // when several deals share one substrate (multi-deal runs); the machine
  // scopes to this record's deal (unscoped events count), comparing
  // interned label ids over just the kDecide index.
  CertConsistencyOnline cc(r.spec.deal_id);
  std::uint64_t seq = 0;
  for (const TraceEvent* e : r.trace.all(EventKind::kDecide)) {
    cc.on_event(*e, seq++);
  }
  if (cc.verdict() == Verdict::kViolated) {
    violate(res, "both chi_c and chi_a were issued");
  }
  // Also cross-check what participants ended up holding.
  bool holds_commit = false;
  bool holds_abort = false;
  for (const auto& p : r.participants) {
    holds_commit = holds_commit || p.received_commit_cert;
    holds_abort = holds_abort || p.received_abort_cert;
  }
  if (holds_commit && holds_abort) {
    violate(res, "some participants hold chi_c while others hold chi_a");
  }
  return res;
}

PropertyResult check_weak_liveness(const proto::RunRecord& r,
                                   const CheckOptions& opts) {
  PropertyResult res;
  res.name = "Lw";
  // Applicability clause as a thin replay: AbortFreedomOnline latches on
  // the first patience loss; feeding it the kAbortRequested index is the
  // batch equivalent of watching the run live.
  AbortFreedomOnline aborts;
  std::uint64_t seq = 0;
  for (const TraceEvent* e : r.trace.all(EventKind::kAbortRequested)) {
    aborts.on_event(*e, seq++);
  }
  const bool nobody_aborted = aborts.final_verdict() == Verdict::kHolds;
  if (!all_abide(r) || !nobody_aborted || !opts.environment_conforms) {
    res.applicable = false;
    return res;
  }
  if (!r.bob_paid()) {
    violate(res, "all abided, nobody lost patience, but bob was not paid");
  }
  return res;
}

PropertyReport check_definition1(const proto::RunRecord& r,
                                 const CheckOptions& opts) {
  PropertyReport report;
  report.add(check_conservation(r));
  report.add(check_consistency(r));
  report.add(check_termination(r, opts));
  report.add(check_escrow_security(r));
  report.add(check_cs1(r, /*weak_form=*/false));
  report.add(check_cs2(r, /*weak_form=*/false));
  report.add(check_cs3(r));
  report.add(check_strong_liveness(r, opts));
  return report;
}

PropertyReport check_definition2(const proto::RunRecord& r,
                                 const CheckOptions& opts) {
  PropertyReport report;
  CheckOptions eventual = opts;
  eventual.time_bounded = false;
  report.add(check_conservation(r));
  report.add(check_consistency(r));
  report.add(check_certificate_consistency(r));
  report.add(check_termination(r, eventual));
  report.add(check_escrow_security(r));
  report.add(check_cs1(r, /*weak_form=*/true));
  report.add(check_cs2(r, /*weak_form=*/true));
  report.add(check_cs3(r));
  report.add(check_weak_liveness(r, opts));
  return report;
}

}  // namespace xcp::props
