#pragma once
// Executable versions of the paper's correctness requirements.
//
// Definition 1 (time-bounded / eventually-terminating cross-chain payment):
//   C    consistency           — every abiding participant could follow the
//                                protocol: no abiding escrow ends with a
//                                dangling locked deposit, and every promise
//                                G(d) it made was honoured in time.
//   T    termination           — each abiding customer that paid or issued a
//                                certificate terminates (time-bounded form:
//                                within the a-priori bound), provided her
//                                escrows abide.
//   ES   escrow security       — no abiding escrow loses money.
//   CS1  customer security (Alice) — upon termination: money back or chi.
//   CS2  customer security (Bob)   — upon termination: paid or chi not issued.
//   CS3  customer security (Chloe) — upon termination: money back (or paid
//                                through with her commission).
//   L    strong liveness       — if all parties abide, Bob is paid.
//
// Definition 2 adds (weak-liveness protocol):
//   CC   certificate consistency — chi_c and chi_a can never both be issued.
//   CS1' Alice: money back or chi_c.   CS2' Bob: paid or chi_a.
//   Lw   weak liveness — if all abide and everyone is patient, Bob is paid.
//
// Checkers evaluate a RunRecord (trace + outcomes) only; they never look at
// protocol internals. Each returns applicability (safety clauses are
// conditional on "her escrows abide") plus a violation list.
//
// The trace-decidable clauses (CC's conflicting decisions, Lw's patience
// losses) are thin replays of the incremental OnlineChecker machines in
// props/online.hpp — the same state machines that run mid-simulation to
// decide verdicts early; feeding them the finished trace is the batch
// special case.

#include <string>
#include <vector>

#include "proto/outcome.hpp"

namespace xcp::props {

struct PropertyResult {
  std::string name;
  bool applicable = true;  // preconditions met (e.g. relevant escrows abide)
  bool holds = true;
  std::vector<std::string> violations;

  std::string str() const;
};

class PropertyReport {
 public:
  void add(PropertyResult r) { results_.push_back(std::move(r)); }
  const std::vector<PropertyResult>& results() const { return results_; }

  /// True iff every applicable property holds.
  bool all_hold() const;
  /// Names of applicable properties that failed.
  std::vector<std::string> failed() const;

  std::string str() const;

 private:
  std::vector<PropertyResult> results_;
};

struct CheckOptions {
  /// The environment stayed within the schedule's TimingParams (synchrony,
  /// drift, processing). Liveness/termination are only claimed then.
  bool environment_conforms = true;
  /// Check the time-*bounded* form of T (vs merely eventual termination).
  bool time_bounded = true;
};

// --- individual checkers ---

/// Per-currency conservation: the sum of all net balance changes is zero.
PropertyResult check_conservation(const proto::RunRecord& r);

/// ES: every abiding escrow has non-negative net change in every currency.
PropertyResult check_escrow_security(const proto::RunRecord& r);

/// C (consistency): abiding escrows end with no locked deposits (when the
/// run drained), and honoured G(d): each deposit was completed or refunded
/// within d of receipt, allowing for clock-rate conversion.
PropertyResult check_consistency(const proto::RunRecord& r);

/// CS1 for the time-bounded protocol (chi) or the weak protocol (chi_c).
PropertyResult check_cs1(const proto::RunRecord& r, bool weak_form);

/// CS2: time-bounded form (paid or chi never issued) or weak form (paid or
/// chi_a in hand).
PropertyResult check_cs2(const proto::RunRecord& r, bool weak_form);

/// CS3: every abiding connector whose two escrows abide ends, upon
/// termination, refunded in full or paid through (upstream hop received,
/// downstream hop paid).
PropertyResult check_cs3(const proto::RunRecord& r);

/// T: abiding customers that paid or issued a certificate terminate —
/// within the schedule bound when opts.time_bounded and the record carries a
/// schedule; eventually (before the horizon) otherwise. Conditional on
/// escrows abiding.
PropertyResult check_termination(const proto::RunRecord& r,
                                 const CheckOptions& opts);

/// L: all parties abide => Bob paid. Applicable only if all abide and the
/// environment conforms.
PropertyResult check_strong_liveness(const proto::RunRecord& r,
                                     const CheckOptions& opts);

/// CC: at most one of {chi_c, chi_a} was ever issued (kDecide trace events
/// and certificates in outcomes).
PropertyResult check_certificate_consistency(const proto::RunRecord& r);

/// Lw: weak liveness — all abide + nobody lost patience => Bob paid.
/// Applicability: all abide, no kAbortRequested events, env conforms enough
/// for the run to have drained.
PropertyResult check_weak_liveness(const proto::RunRecord& r,
                                   const CheckOptions& opts);

// --- bundles ---

/// The Def. 1 bundle for the time-bounded protocol family.
PropertyReport check_definition1(const proto::RunRecord& r,
                                 const CheckOptions& opts);

/// The Def. 2 bundle for the weak-liveness protocol family.
PropertyReport check_definition2(const proto::RunRecord& r,
                                 const CheckOptions& opts);

}  // namespace xcp::props
