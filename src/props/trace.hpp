#pragma once
// Execution traces. Every observable action of a run — message send/deliver,
// value transfer, escrow state change, certificate issuance, termination,
// transaction-manager decision — is appended to a TraceRecorder. The property
// checkers (props/checkers.hpp) evaluate the paper's requirements C, T, ES,
// CS1-3, L and CC over these traces, never over protocol internals, so a
// protocol cannot "self-certify".

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/process.hpp"
#include "support/amount.hpp"
#include "support/time.hpp"

namespace xcp::props {

enum class EventKind {
  kSend,            // actor -> peer, label = message kind
  kDeliver,         // peer -> actor (actor received), label = message kind
  kDrop,            // network dropped a message
  kTransfer,        // ledger movement actor -> peer of `amount`
  kEscrowLock,      // escrow `actor` locked `amount` from `peer`
  kEscrowComplete,  // escrow `actor` paid out `amount` to `peer`
  kEscrowRefund,    // escrow `actor` refunded `amount` to `peer`
  kCertIssued,      // actor signed/issued a certificate, label = cert kind
  kCertReceived,    // actor received + verified a certificate
  kTerminate,       // actor's protocol role reached a final state
  kDecide,          // transaction manager / consensus decision, label = value
  kAbortRequested,  // actor petitioned the TM to abort (lost patience)
  kViolation,       // a checker-visible anomaly recorded by substrate code
  kCustom,
};

const char* event_kind_name(EventKind k);

struct TraceEvent {
  EventKind kind = EventKind::kCustom;
  TimePoint at;                     // global time
  TimePoint local_at;               // actor's local-clock reading
  sim::ProcessId actor;             // subject
  sim::ProcessId peer;              // counterparty (if any)
  std::string label;                // message kind / cert kind / detail
  std::optional<Amount> amount;
  std::uint64_t deal_id = 0;        // 0 = unscoped; set by deal-aware
                                    // emitters (TM decisions) so concurrent
                                    // deals on shared substrates stay
                                    // distinguishable

  std::string str() const;
};

class TraceRecorder {
 public:
  void record(TraceEvent e) { events_.push_back(std::move(e)); }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Number of events of a given kind (optionally for one actor / label).
  std::size_t count(EventKind kind) const;
  std::size_t count(EventKind kind, sim::ProcessId actor) const;
  std::size_t count_label(EventKind kind, const std::string& label) const;
  std::size_t count(EventKind kind, sim::ProcessId actor,
                    const std::string& label) const;

  /// First event of a kind for an actor, if any.
  const TraceEvent* first(EventKind kind, sim::ProcessId actor) const;
  const TraceEvent* first_label(EventKind kind, const std::string& label) const;

  /// All events of a kind.
  std::vector<const TraceEvent*> all(EventKind kind) const;

  /// Renders the first `max_lines` events; for narrating example runs.
  std::string render(std::size_t max_lines = 200) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace xcp::props
