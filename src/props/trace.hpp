#pragma once
// Execution traces. Every observable action of a run — message send/deliver,
// value transfer, escrow state change, certificate issuance, termination,
// transaction-manager decision — is appended to a TraceRecorder. The property
// checkers (props/checkers.hpp) evaluate the paper's requirements C, T, ES,
// CS1-3, L and CC over these traces, never over protocol internals, so a
// protocol cannot "self-certify".
//
// The recorder is allocation-free in steady state, mirroring the event core:
//
//  - TraceEvent is a trivially-copyable POD. The label is an interned 32-bit
//    id (props/label.hpp) instead of a std::string, so recording is a plain
//    store with no per-event allocation or destructor work.
//  - Events live in fixed-size chunks drawn from a two-level pool: a
//    thread-local freelist (like the message-body pools) in front of a
//    shared overflow pool that rebalances chunks across threads (sweep
//    workers record, the sweep's caller frees). Recording bumps a pointer;
//    chunk boundaries are the only cold path, and a cleared recorder
//    reuses its chunks, so a warmed record→check cycle never touches the
//    heap.
//  - The recorder maintains a per-EventKind index (chunked the same way),
//    so count()/first()/all() are indexed lookups over just the matching
//    events instead of O(n) scans of the whole trace, and all() returns a
//    lightweight range instead of a freshly allocated pointer vector.

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "props/label.hpp"
#include "sim/process.hpp"
#include "support/amount.hpp"
#include "support/time.hpp"

namespace xcp::props {

enum class EventKind {
  kSend,            // actor -> peer, label = message kind
  kDeliver,         // peer -> actor (actor received), label = message kind
  kDrop,            // network dropped a message
  kTransfer,        // ledger movement actor -> peer of `amount`
  kEscrowLock,      // escrow `actor` locked `amount` from `peer`
  kEscrowComplete,  // escrow `actor` paid out `amount` to `peer`
  kEscrowRefund,    // escrow `actor` refunded `amount` to `peer`
  kCertIssued,      // actor signed/issued a certificate, label = cert kind
  kCertReceived,    // actor received + verified a certificate
  kTerminate,       // actor's protocol role reached a final state
  kDecide,          // transaction manager / consensus decision, label = value
  kAbortRequested,  // actor petitioned the TM to abort (lost patience)
  kViolation,       // a checker-visible anomaly recorded by substrate code
  kCustom,
};

/// Number of EventKind enumerators (kCustom is last).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kCustom) + 1;

const char* event_kind_name(EventKind k);

struct TraceEvent {
  EventKind kind = EventKind::kCustom;
  TimePoint at;                     // global time
  TimePoint local_at;               // actor's local-clock reading
  sim::ProcessId actor;             // subject
  sim::ProcessId peer;              // counterparty (if any)
  Label label;                      // message kind / cert kind / detail
  std::optional<Amount> amount;
  std::uint64_t deal_id = 0;        // 0 = unscoped; set by deal-aware
                                    // emitters (TM decisions) so concurrent
                                    // deals on shared substrates stay
                                    // distinguishable

  std::string str() const;
};

// Recording must be a trivial store and releasing a chunk must need no
// per-event destructor walk; both hinge on the event staying a POD.
static_assert(std::is_trivially_copyable_v<TraceEvent>);
static_assert(std::is_trivially_destructible_v<TraceEvent>);

/// A lightweight view over chunked storage: `chunks[i / PerChunk][i %
/// PerChunk]` for i in [0, n). Indexable and iterable; never allocates.
/// Valid until the owning recorder records further events, or is cleared,
/// moved or destroyed. One template serves both the event list (T =
/// TraceEvent) and the per-kind index ranges (T = const TraceEvent*).
template <typename T, std::size_t PerChunk>
class ChunkedView {
 public:
  class iterator {
   public:
    using value_type = std::remove_cv_t<T>;
    using difference_type = std::ptrdiff_t;

    const T& operator*() const {
      return chunks_[i_ / PerChunk][i_ % PerChunk];
    }
    const T* operator->() const { return &**this; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return a.i_ != b.i_;
    }

   private:
    friend class ChunkedView;
    iterator(T* const* chunks, std::size_t i) : chunks_(chunks), i_(i) {}
    T* const* chunks_;
    std::size_t i_;
  };

  ChunkedView(T* const* chunks, std::size_t n) : chunks_(chunks), n_(n) {}

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  const T& operator[](std::size_t i) const {
    return chunks_[i / PerChunk][i % PerChunk];
  }
  iterator begin() const { return iterator(chunks_, 0); }
  iterator end() const { return iterator(chunks_, n_); }

 private:
  T* const* chunks_;
  std::size_t n_;
};

/// Observer of the record() stream. An attached sink sees every event the
/// moment it is stored — this is what feeds the online property checkers
/// (props/online.hpp) so verdicts can be evaluated mid-run instead of
/// post-mortem. The sink must not record into the recorder re-entrantly.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_record(const TraceEvent& e) = 0;
};

class TraceRecorder {
 public:
  /// Chunk geometry. One fixed block size serves both event storage and the
  /// per-kind index lists, so every chunk is interchangeable in the
  /// thread-local freelist.
  static constexpr std::size_t kChunkBytes = std::size_t{1} << 14;
  static constexpr std::size_t kEventsPerChunk = kChunkBytes / sizeof(TraceEvent);
  static constexpr std::size_t kPtrsPerChunk =
      kChunkBytes / sizeof(const TraceEvent*);

  /// The recorded events, in record order.
  using EventList = ChunkedView<TraceEvent, kEventsPerChunk>;
  /// All events of one kind, in record order; elements are
  /// `const TraceEvent*` (matching the old all() vector).
  using KindRange = ChunkedView<const TraceEvent*, kPtrsPerChunk>;

  TraceRecorder() = default;
  TraceRecorder(TraceRecorder&& o) noexcept { steal(std::move(o)); }
  TraceRecorder& operator=(TraceRecorder&& o) noexcept {
    if (this != &o) {
      release_all();
      steal(std::move(o));
    }
    return *this;
  }
  // Move-only: chunk ownership must not be duplicated. Shared-substrate
  // runs that need one trace in several records use clone().
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  ~TraceRecorder() { release_all(); }

  /// Appends an event: a bump-pointer store plus one index append. The only
  /// cold path is a chunk boundary, and even that reuses pooled chunks in
  /// steady state. An attached sink (online checkers) is notified last, so
  /// it observes the event already indexed.
  void record(const TraceEvent& e) {
    if (bump_ == bump_end_) next_event_chunk();
    TraceEvent* stored = bump_++;
    *stored = e;
    ++size_;
    KindIndex& ix = index_[static_cast<std::size_t>(e.kind)];
    if (ix.bump == ix.bump_end) next_index_chunk(ix);
    *ix.bump++ = stored;
    ++ix.size;
    if (sink_ != nullptr) sink_->on_record(*stored);
  }

  /// Attaches/detaches the online observer (nullptr = none). Not owned; the
  /// sink must outlive its attachment — runners detach before the recorder
  /// leaves the run's scope.
  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

  /// The recorded events as an indexable, iterable view (storage is
  /// chunked; there is no contiguous vector to return).
  EventList events() const { return EventList(chunks_.data(), size_); }
  std::size_t size() const { return size_; }

  /// Forgets all events but keeps the chunks: a cleared recorder refills
  /// without touching the heap.
  void clear();

  /// Number of events of a given kind (optionally for one actor / label).
  /// Indexed: O(1) for the kind-only form, O(#events of that kind) for the
  /// filtered forms — never a scan of the whole trace.
  /// NB: passing a string where a Label is expected interns it; probing
  /// with dynamically built, possibly never-recorded strings should go
  /// through Label::find() (non-inserting) instead.
  std::size_t count(EventKind kind) const {
    return index_[static_cast<std::size_t>(kind)].size;
  }
  std::size_t count(EventKind kind, sim::ProcessId actor) const;
  std::size_t count_label(EventKind kind, Label label) const;
  std::size_t count(EventKind kind, sim::ProcessId actor, Label label) const;

  /// First event of a kind for an actor, if any.
  const TraceEvent* first(EventKind kind, sim::ProcessId actor) const;
  const TraceEvent* first_label(EventKind kind, Label label) const;

  /// All events of a kind, as an allocation-free range.
  KindRange all(EventKind kind) const {
    const KindIndex& ix = index_[static_cast<std::size_t>(kind)];
    return KindRange(ix.chunks.data(), ix.size);
  }

  /// Renders the first `max_lines` events; for narrating example runs.
  std::string render(std::size_t max_lines = 200) const;

  /// Deep copy: re-records every event into a fresh recorder (rebuilding
  /// the kind indexes). For shared-substrate runs that hand the same trace
  /// to several RunRecords.
  TraceRecorder clone() const;

 private:
  struct KindIndex {
    std::vector<const TraceEvent**> chunks;
    std::size_t used_chunks = 0;
    const TraceEvent** bump = nullptr;
    const TraceEvent** bump_end = nullptr;
    std::size_t size = 0;
  };

  void next_event_chunk();
  void next_index_chunk(KindIndex& ix);
  void release_all();
  void steal(TraceRecorder&& o);

  std::vector<TraceEvent*> chunks_;
  std::size_t used_chunks_ = 0;  // chunks_[0 .. used_chunks_) hold events
  TraceEvent* bump_ = nullptr;
  TraceEvent* bump_end_ = nullptr;
  std::size_t size_ = 0;
  std::array<KindIndex, kEventKindCount> index_;
  TraceSink* sink_ = nullptr;  // not owned
};

}  // namespace xcp::props
