#include "props/online.hpp"

#include "support/status.hpp"

namespace xcp::props {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kUndecided: return "undecided";
    case Verdict::kHolds: return "holds";
    case Verdict::kViolated: return "violated";
  }
  return "?";
}

// ----------------------------------------------------- TerminationOnline

void TerminationOnline::expect(sim::ProcessId pid) {
  XCP_REQUIRE(!decided(), "expect() after the verdict decided");
  for (std::uint32_t v : expected_) {
    if (v == pid.value()) return;
  }
  expected_.push_back(pid.value());
  seen_.push_back(0);
  ++pending_;
}

Verdict TerminationOnline::step(const TraceEvent& e) {
  // Linear scan over the cast: a run's cast is small (2n+1 participants),
  // and the scan touches one contiguous array — no hashing, no allocation.
  for (std::size_t i = 0; i < expected_.size(); ++i) {
    if (expected_[i] == e.actor.value()) {
      if (seen_[i] == 0) {
        seen_[i] = 1;
        if (--pending_ == 0) return Verdict::kHolds;
      }
      break;
    }
  }
  return Verdict::kUndecided;
}

// -------------------------------------------------------- LivenessOnline

Verdict LivenessOnline::step(const TraceEvent& e) {
  if (!e.amount || e.amount->currency() != currency_) {
    return Verdict::kUndecided;
  }
  if (e.peer == bob_) net_ += e.amount->units();
  if (e.actor == bob_) net_ -= e.amount->units();
  return net_ >= target_ ? Verdict::kHolds : Verdict::kUndecided;
}

// ------------------------------------------------- CertConsistencyOnline

Verdict CertConsistencyOnline::step(const TraceEvent& e) {
  if (e.deal_id != 0 && deal_id_ != 0 && e.deal_id != deal_id_) {
    return Verdict::kUndecided;
  }
  if (e.label == labels::commit) commit_ = true;
  if (e.label == labels::abort_) abort_ = true;
  return (commit_ && abort_) ? Verdict::kViolated : Verdict::kUndecided;
}

// --------------------------------------------------- AbortFreedomOnline

Verdict AbortFreedomOnline::step(const TraceEvent&) {
  // Any abort request decides: patience was lost, and that cannot be
  // retracted.
  return Verdict::kViolated;
}

// ---------------------------------------------------------- OnlineMonitor

OnlineMonitor::OnlineMonitor(const Config& cfg)
    : liveness_(cfg.bob, cfg.last_hop), cc_(cfg.deal_id) {
  for (sim::ProcessId pid : cfg.cast) termination_.expect(pid);

  OnlineChecker* const all[] = {&termination_, &liveness_, &cc_, &aborts_};
  for (OnlineChecker* c : all) {
    for (std::size_t k = 0; k < kEventKindCount; ++k) {
      if ((c->kind_mask() & (std::uint32_t{1} << k)) == 0) continue;
      auto& list = by_kind_[k];
      std::size_t i = 0;
      while (i < kMaxPerKind && list[i] != nullptr) ++i;
      XCP_REQUIRE(i < kMaxPerKind, "too many checkers for one event kind");
      list[i] = c;
    }
  }
}

void OnlineMonitor::on_record(const TraceEvent& e) {
  const std::uint64_t seq = seq_++;
  const auto& list = by_kind_[static_cast<std::size_t>(e.kind)];
  for (OnlineChecker* c : list) {
    if (c == nullptr) break;
    c->on_event(e, seq);
  }
  if (stop_ != nullptr && termination_.verdict() == Verdict::kHolds) {
    stop_->request(e.at);
  }
}

OnlineOutcome OnlineMonitor::outcome() const {
  OnlineOutcome o;
  o.attached = true;
  o.early_stopped = stop_ != nullptr && stop_->stop_requested;
  o.termination = termination_.final_verdict();
  o.liveness = liveness_.final_verdict();
  o.cert_consistency = cc_.final_verdict();
  o.abort_freedom = aborts_.final_verdict();
  o.decided_at = termination_.decided_at();
  o.decided_seq = termination_.decided_seq();
  o.events_seen = seq_;
  return o;
}

}  // namespace xcp::props
