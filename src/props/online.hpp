#pragma once
// Online (incremental) property checking.
//
// The batch checkers (props/checkers.hpp) evaluate a finished RunRecord.
// Most runs, however, decide their verdict a fraction of the way in: the
// cast reaches agreement and terminates, a conflicting certificate shows
// up, Bob's payment lands. This header provides the incremental form — an
// OnlineChecker is a small state machine with an
//
//   on_event(const TraceEvent&) -> Verdict{Undecided, Holds, Violated}
//
// step, fed straight from TraceRecorder::record() via the TraceSink hook.
// Verdicts are *monotone by construction*: every machine here only latches
// on evidence that later events cannot retract (a terminate event cannot
// un-happen, issued certificates cannot be unissued, Bob's cumulative
// inflow for the paid check only matters once it crosses the target), so a
// decided verdict is final and an absence-based verdict is resolved at
// quiescence (final_verdict()). That is what makes early run termination
// semantics-preserving: once the OnlineMonitor's stop rule fires — every
// abiding participant has terminated, freezing holdings, certificates and
// termination state — the post-mortem checkers applied to the stopped
// record produce the verdicts the full-horizon run would have produced.
//
// Allocation discipline: configuration (the cast list) allocates at setup;
// the on_event hot path performs no allocation — kind-indexed dispatch
// over a fixed table, interned-label integer compares, plain counters
// (test_alloc.cpp proves it with the counting allocator).

#include <array>
#include <cstdint>
#include <vector>

#include "props/label.hpp"
#include "props/trace.hpp"
#include "sim/stop_token.hpp"
#include "support/amount.hpp"

namespace xcp::props {

enum class Verdict : std::uint8_t { kUndecided = 0, kHolds, kViolated };

const char* verdict_name(Verdict v);

/// Bit for one EventKind in a checker's subscription mask.
constexpr std::uint32_t kind_bit(EventKind k) {
  return std::uint32_t{1} << static_cast<unsigned>(k);
}
static_assert(kEventKindCount <= 32, "kind mask is a uint32");

/// An incremental property state machine. Feed events in record order;
/// the verdict latches at the first deciding event (later events are
/// ignored), capturing the deciding event's timestamp and ordinal.
class OnlineChecker {
 public:
  virtual ~OnlineChecker() = default;

  const char* name() const { return name_; }
  std::uint32_t kind_mask() const { return kind_mask_; }

  Verdict verdict() const { return verdict_; }
  bool decided() const { return verdict_ != Verdict::kUndecided; }
  /// Valid once decided(): virtual time / trace ordinal of the deciding
  /// event.
  TimePoint decided_at() const { return decided_at_; }
  std::uint64_t decided_seq() const { return decided_seq_; }

  /// One step. `seq` is the event's ordinal in the observed stream.
  void on_event(const TraceEvent& e, std::uint64_t seq) {
    if (verdict_ != Verdict::kUndecided) return;
    const Verdict v = step(e);
    if (v != Verdict::kUndecided) {
      verdict_ = v;
      decided_at_ = e.at;
      decided_seq_ = seq;
    }
  }

  /// The verdict once no further events will arrive: the latched verdict,
  /// or the absence-based resolution (e.g. "no conflicting certificate was
  /// ever issued" => holds).
  Verdict final_verdict() const {
    return decided() ? verdict_ : at_quiescence();
  }

 protected:
  OnlineChecker(const char* name, std::uint32_t kind_mask)
      : name_(name), kind_mask_(kind_mask) {}

  /// Examines one event; returns kUndecided to keep watching.
  virtual Verdict step(const TraceEvent& e) = 0;
  /// Resolves a still-undecided verdict at quiescence.
  virtual Verdict at_quiescence() const { return Verdict::kHolds; }

 private:
  const char* name_;
  std::uint32_t kind_mask_;
  Verdict verdict_ = Verdict::kUndecided;
  TimePoint decided_at_;
  std::uint64_t decided_seq_ = 0;
};

/// Cast quiescence (the stop rule, and the online form of the matrix's
/// termination bit): holds once every expected participant has recorded a
/// kTerminate event. Expected pids are registered at setup (the abiding
/// cast — Byzantine members may never terminate by design and must not
/// hold the verdict hostage). Resolves to Violated at quiescence: someone
/// never terminated within the observation window.
class TerminationOnline final : public OnlineChecker {
 public:
  TerminationOnline()
      : OnlineChecker("termination", kind_bit(EventKind::kTerminate)) {}

  /// Setup-time (allocates); duplicates are ignored.
  void expect(sim::ProcessId pid);

  std::size_t pending() const { return pending_; }

 protected:
  Verdict step(const TraceEvent& e) override;
  Verdict at_quiescence() const override { return Verdict::kViolated; }

 private:
  std::vector<std::uint32_t> expected_;  // pid values
  std::vector<std::uint8_t> seen_;       // parallel to expected_
  std::size_t pending_ = 0;
};

/// Bob-paid (the core of L and Lw): tracks Bob's cumulative ledger flow in
/// the last hop's currency over kTransfer events and holds once the net
/// inflow reaches the hop amount — the trace-stream form of
/// RunRecord::bob_paid() (final minus initial holdings are exactly the
/// traced transfers). Violated at quiescence: the run ended with Bob
/// unpaid.
class LivenessOnline final : public OnlineChecker {
 public:
  LivenessOnline(sim::ProcessId bob, Amount last_hop)
      : OnlineChecker("liveness", kind_bit(EventKind::kTransfer)),
        bob_(bob),
        currency_(last_hop.currency()),
        target_(last_hop.units()) {}

 protected:
  Verdict step(const TraceEvent& e) override;
  Verdict at_quiescence() const override { return Verdict::kViolated; }

 private:
  sim::ProcessId bob_;
  Currency currency_;
  std::int64_t target_ = 0;
  std::int64_t net_ = 0;
};

/// CC, incrementally: violated the moment conflicting decisions (commit
/// and abort) have both been issued for this deal. Deal-scoped exactly
/// like the batch checker: unscoped decide events (deal_id 0) count, so
/// shared-substrate runs stay distinguishable. Holds at quiescence.
class CertConsistencyOnline final : public OnlineChecker {
 public:
  explicit CertConsistencyOnline(std::uint64_t deal_id)
      : OnlineChecker("cert-consistency", kind_bit(EventKind::kDecide)),
        deal_id_(deal_id) {}

  bool commit_issued() const { return commit_; }
  bool abort_issued() const { return abort_; }

 protected:
  Verdict step(const TraceEvent& e) override;

 private:
  std::uint64_t deal_id_ = 0;
  bool commit_ = false;
  bool abort_ = false;
};

/// Lw's applicability clause, incrementally: "violated" records that some
/// customer lost patience (a kAbortRequested event) — weak liveness is
/// then not claimable. Holds at quiescence (everyone stayed patient).
class AbortFreedomOnline final : public OnlineChecker {
 public:
  AbortFreedomOnline()
      : OnlineChecker("abort-freedom", kind_bit(EventKind::kAbortRequested)) {}

 protected:
  Verdict step(const TraceEvent& e) override;
};

/// How a run wires online checking (member of the run configs).
struct OnlineOptions {
  /// Attach an OnlineMonitor to the run's trace; verdicts and decided-at
  /// timestamps land in RunRecord::online.
  bool enabled = false;
  /// Additionally terminate the run the moment the stop rule decides
  /// (every abiding participant terminated): the simulator's remaining
  /// queue is abandoned. Checker-visible outcomes are frozen by then, so
  /// post-mortem verdicts are unchanged; stats (events_executed, end_time,
  /// delivery counts) reflect the shorter run.
  bool early_stop = false;
};

/// What the monitor observed, exported into the RunRecord.
struct OnlineOutcome {
  bool attached = false;
  bool early_stopped = false;              // the stop rule fired in time
  Verdict termination = Verdict::kUndecided;
  Verdict liveness = Verdict::kUndecided;
  Verdict cert_consistency = Verdict::kUndecided;
  Verdict abort_freedom = Verdict::kUndecided;
  TimePoint decided_at;        // when the stop rule decided (if it did)
  std::uint64_t decided_seq = 0;
  std::uint64_t events_seen = 0;  // trace events observed in total
};

/// The per-run harness: owns the paper's online checkers, dispatches each
/// recorded event to the machines subscribed to its kind (a fixed
/// kind-indexed table — the trace pipeline's index discipline applied to
/// dispatch), and requests the simulator stop when the stop rule decides.
class OnlineMonitor final : public TraceSink {
 public:
  struct Config {
    std::uint64_t deal_id = 0;
    sim::ProcessId bob;
    Amount last_hop;
    /// The abiding cast whose termination freezes all checker inputs
    /// (customers and escrows; TM infrastructure excluded).
    std::vector<sim::ProcessId> cast;
  };

  explicit OnlineMonitor(const Config& cfg);

  /// Arms early termination: when the stop rule fires, `token` is
  /// requested with the deciding event's timestamp.
  void arm_stop(sim::StopToken* token) { stop_ = token; }

  // TraceSink: the record() hot path. No allocation.
  void on_record(const TraceEvent& e) override;

  /// The stop rule: every expected participant has terminated.
  bool quiescent() const {
    return termination_.verdict() == Verdict::kHolds;
  }

  const TerminationOnline& termination() const { return termination_; }
  const LivenessOnline& liveness() const { return liveness_; }
  const CertConsistencyOnline& cert_consistency() const { return cc_; }
  const AbortFreedomOnline& abort_freedom() const { return aborts_; }
  std::uint64_t events_seen() const { return seq_; }

  /// Snapshot for the RunRecord, resolving absence-based verdicts.
  OnlineOutcome outcome() const;

 private:
  static constexpr std::size_t kMaxPerKind = 4;

  TerminationOnline termination_;
  LivenessOnline liveness_;
  CertConsistencyOnline cc_;
  AbortFreedomOnline aborts_;
  sim::StopToken* stop_ = nullptr;  // not owned
  std::uint64_t seq_ = 0;
  // by_kind_[k] lists the checkers subscribed to EventKind k,
  // null-terminated (counts_[k] live checkers).
  std::array<std::array<OnlineChecker*, kMaxPerKind>, kEventKindCount>
      by_kind_{};
};

}  // namespace xcp::props
