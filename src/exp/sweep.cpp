#include "exp/sweep.hpp"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace xcp::exp::detail {

namespace {
// Set while a thread — pool worker *or* the calling thread, which also
// executes tasks via drain() — is inside a sweep: a nested parallel_sweep
// on such a thread runs inline instead of deadlocking on the pool's
// non-recursive mutexes.
thread_local bool g_in_sweep = false;
}  // namespace

SweepPool& SweepPool::instance() {
  // Function-local static (not leaked): the destructor joins the workers at
  // static destruction, after all sweeps have completed.
  static SweepPool pool;
  return pool;
}

SweepPool::~SweepPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void SweepPool::set_options(const Options& opts) {
  const std::lock_guard<std::mutex> lock(mu_);
  options_ = opts;
}

SweepPool::Options SweepPool::options() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void SweepPool::apply_affinity(unsigned id, bool pin) {
#if defined(__linux__)
  // Per-thread latch: remember the mask the worker started with so that
  // disabling pinning restores it exactly. Best effort throughout — a
  // failed affinity call (cpusets, containers) leaves scheduling to the
  // kernel, which is the unpinned behaviour anyway.
  thread_local bool saved = false;
  thread_local bool pinned = false;
  thread_local cpu_set_t original;
  if (pin == pinned) return;
  if (pin) {
    if (!saved) {
      if (pthread_getaffinity_np(pthread_self(), sizeof(original),
                                 &original) != 0) {
        return;
      }
      saved = true;
    }
    // Round-robin worker ordinals over the CPUs the process may use. The
    // caller occupies ordinal 0 wherever the scheduler put it, so pool
    // worker `id` (ordinal id+1) starts from the second allowed CPU.
    const int allowed = CPU_COUNT(&original);
    if (allowed <= 1) return;
    int want = static_cast<int>((id + 1) % static_cast<unsigned>(allowed));
    int cpu = -1;
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (!CPU_ISSET(c, &original)) continue;
      if (want-- == 0) {
        cpu = c;
        break;
      }
    }
    if (cpu < 0) return;
    cpu_set_t one;
    CPU_ZERO(&one);
    CPU_SET(cpu, &one);
    if (pthread_setaffinity_np(pthread_self(), sizeof(one), &one) == 0) {
      pinned = true;
    }
  } else {
    if (saved &&
        pthread_setaffinity_np(pthread_self(), sizeof(original), &original) ==
            0) {
      pinned = false;
    }
  }
#else
  (void)id;
  (void)pin;
#endif
}

unsigned SweepPool::resolved_workers(std::size_t count, unsigned workers) {
  if (count == 0) return 1;
  unsigned w = workers != 0
                   ? workers
                   : std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(std::min<std::size_t>(w, count));
}

void SweepPool::drain(Task task, void* ctx, std::uint64_t first_seed,
                      std::size_t count, unsigned worker) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    task(ctx, first_seed + i, i, worker);
    // acq_rel: publishes this seed's result to whoever observes pending_
    // hit zero (the acquire load / wait in run()).
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      pending_.notify_all();
    }
  }
}

void SweepPool::worker_main(unsigned id) {
  g_in_sweep = true;
  std::uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] {
      return stop_ || (epoch_ != seen_epoch && id < active_);
    });
    if (stop_) return;
    seen_epoch = epoch_;
    const Task task = task_;
    void* ctx = ctx_;
    const std::uint64_t first_seed = first_seed_;
    const std::size_t count = count_;
    const bool pin = options_.pin_workers;
    ++busy_;
    lock.unlock();
    apply_affinity(id, pin);
    // Worker ordinal id+1: the sweep's calling thread is ordinal 0.
    drain(task, ctx, first_seed, count, id + 1);
    lock.lock();
    if (--busy_ == 0) idle_cv_.notify_all();
  }
}

void SweepPool::run(std::uint64_t first_seed, std::size_t count,
                    unsigned workers, Task task, void* ctx) {
  if (count == 0) return;
  const unsigned w = resolved_workers(count, workers);
  if (w == 1 || g_in_sweep) {
    // Inline path: the workers=1 reference ordering, and nested sweeps on
    // any thread already inside a sweep (which must not re-enter the
    // pool's mutexes). Everything drains as worker ordinal 0.
    for (std::size_t i = 0; i < count; ++i) task(ctx, first_seed + i, i, 0);
    return;
  }
  // One sweep at a time: concurrent callers queue here rather than
  // clobbering each other's job state.
  const std::lock_guard<std::mutex> run_lock(run_mu_);
  // The caller participates in drain() below; mark it so a task that
  // itself sweeps runs inline instead of relocking run_mu_. Restored on
  // every exit path (task exceptions are captured by the caller's ctx, but
  // be robust anyway).
  struct InSweepGuard {
    ~InSweepGuard() { g_in_sweep = false; }
  } in_sweep_guard;
  g_in_sweep = true;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    while (threads_.size() < w - 1) {
      const unsigned id = static_cast<unsigned>(threads_.size());
      threads_.emplace_back([this, id] { worker_main(id); });
    }
    next_.store(0, std::memory_order_relaxed);
    pending_.store(count, std::memory_order_relaxed);
    task_ = task;
    ctx_ = ctx;
    first_seed_ = first_seed;
    count_ = count;
    active_ = w - 1;  // the caller is the w-th worker
    ++epoch_;
  }
  cv_.notify_all();
  drain(task, ctx, first_seed, count, /*worker=*/0);
  // The cursor is exhausted but stragglers may still be mid-seed; wait for
  // the last completion (the fetch_sub's release pairs with this acquire).
  for (;;) {
    const std::size_t p = pending_.load(std::memory_order_acquire);
    if (p == 0) break;
    pending_.wait(p, std::memory_order_acquire);
  }
  // Wait for every worker to leave drain() before returning: the next
  // sweep resets the shared cursor, which a worker still between its final
  // fetch_add and re-locking must not observe.
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return busy_ == 0; });
  // Invalidate the finished job while still holding the lock: a worker
  // that was signalled but never scheduled would otherwise still pass the
  // wake predicate later, read this job's (by then dangling) task/ctx, and
  // drain against the *next* sweep's reset cursor. With active_ cleared it
  // sleeps until the next job is published.
  active_ = 0;
}

}  // namespace xcp::exp::detail
