#pragma once
// Fault-tolerant shard dispatch: the supervision layer between the sweep
// driver and the shard transport (exp/shard.hpp).
//
// PR 5's driver launched K workers with popen and read them sequentially —
// location-transparent but fragile: one hung worker blocked the driver
// forever and one failed shard threw away the whole sweep. This layer owns
// real pids (posix_spawn), multiplexes non-blocking pipe reads with poll(),
// and supervises every attempt:
//
//   deadline   a shard attempt exceeding its wall-clock deadline is killed
//              (SIGKILL) and counted as a timeout, never waited on forever;
//   retry      failed attempts (crash, nonzero exit, rejected blob, meta
//              mismatch, timeout) are re-issued up to max_attempts with
//              deterministic exponential backoff + jitter;
//   hedging    once enough shards have completed to estimate a median
//              completion time, attempts running longer than a configurable
//              multiple of it get a hedged duplicate launch — first valid
//              blob wins, the loser is killed and recorded as superseded
//              (safe: shards are deterministic and results are deduped by
//              shard id before merging);
//   fallback   a shard that exhausts its attempts is run in-process by the
//              driver itself (still through the wire round-trip), so a bad
//              worker deploy degrades to PR 4's single-process sweep instead
//              of failing the experiment.
//
// Everything observable lands in a DispatchReport: one record per attempt
// (outcome, exit code / signal, captured stderr, wall-clock) plus summary
// counters. Per-attempt stderr capture replaces PR 5's interleaving of
// worker stderr onto the parent's.
//
// The WorkerLauncher seam is the cross-machine hook: the dispatcher talks
// to workers only through launch/terminate/reap and a pair of poll()-able
// fds, so an ssh or job-queue launcher slots in without touching the
// supervision logic. See docs/ROBUSTNESS.md for the full policy and the
// determinism argument.

#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/shard.hpp"

namespace xcp::exp {

/// A shard attempt could not be dispatched at all, or a shard ended with no
/// result and in-process fallback was disabled. The message embeds the
/// relevant DispatchReport lines (attempt outcomes, exit codes, captured
/// stderr), so the failure is diagnosable from the exception alone.
class DispatchError : public std::runtime_error {
 public:
  explicit DispatchError(const std::string& what)
      : std::runtime_error("dispatch: " + what) {}
};

/// Exit codes of tools/xcp_sweep_shard, distinguished so the dispatcher
/// (and a human reading a DispatchReport) can tell a usage bug from a
/// serialization failure from a short write without parsing stderr.
namespace worker_exit {
inline constexpr int kUsage = 2;       // bad/missing flags
inline constexpr int kWireError = 3;   // serialize/parse failed (WireError)
inline constexpr int kShortWrite = 4;  // stdout write came up short
inline constexpr int kInternal = 5;    // any other exception
}  // namespace worker_exit

/// How one attempt of one shard ended, as the dispatcher classified it.
/// Namespace-scope (with an alias inside AttemptRecord) so the launcher
/// seam can receive it without depending on the record type.
enum class AttemptOutcome {
  kSuccess,        // valid blob, meta verified
  kTimeout,        // deadline exceeded, worker killed
  kCrashed,        // exited on a signal
  kExitNonzero,    // clean exit with nonzero code
  kWireReject,     // exit 0 but blob rejected (WireError / oversize)
  kMetaMismatch,   // blob parsed but describes different work
  kLaunchFailed,   // launcher could not start the worker
  kSuperseded,     // killed because another attempt finished first
  kFallback,       // ran in-process after retry exhaustion
};

struct DispatchReport;

/// A launched worker as the dispatcher sees it: an opaque id it can kill
/// and reap, plus poll()-able stream fds. For the local process launcher
/// these are a pid and pipe read ends; a remote launcher hands back the fds
/// of its transport process (ssh et al.) and names the host it chose —
/// the dispatcher carries `host` into the attempt record verbatim.
struct WorkerHandle {
  long pid = -1;
  int stdout_fd = -1;
  int stderr_fd = -1;
  /// Which execution host the launcher placed this attempt on; empty for
  /// plain local launches.
  std::string host;
};

/// The launch/terminate/reap seam between dispatch policy and transport.
/// Implementations must return non-blocking fds; the dispatcher never
/// issues a read that can block.
class WorkerLauncher {
 public:
  virtual ~WorkerLauncher() = default;

  /// Starts argv[0] with the given argument vector. Throws DispatchError if
  /// the worker cannot be started at all (the dispatcher treats that as a
  /// failed attempt, subject to the same retry budget).
  virtual WorkerHandle launch(const std::vector<std::string>& argv) = 0;

  /// Hard-kills the worker (SIGKILL for local processes). Idempotent; must
  /// leave the handle reapable.
  virtual void terminate(const WorkerHandle& w) = 0;

  /// Polite termination request (SIGTERM for local processes) — the first
  /// rung of the dispatcher's SIGTERM -> grace -> SIGKILL escalation, so a
  /// remote wrapper (ssh, job-queue shim) gets a chance to clean up its far
  /// end. Must be idempotent and must not make the handle unreapable.
  /// Default: hard-kill, for launchers with no softer signal.
  virtual void terminate_soft(const WorkerHandle& w) { terminate(w); }

  /// Non-blocking reap: true (and the raw waitpid-style status) once the
  /// worker has exited, false while it is still running.
  virtual bool try_reap(const WorkerHandle& w, int& raw_status) = 0;

  /// Blocking reap, used only after terminate().
  virtual int reap(const WorkerHandle& w) = 0;

  /// The dispatcher's classification of a finished attempt, delivered once
  /// per reaped handle (launch failures never reach it — the launcher saw
  /// those first-hand). Pooled launchers feed host health tracking from
  /// this; the default launcher ignores it. exit_code is the worker's exit
  /// status for kSuccess/kExitNonzero/kWireReject and -1 otherwise — remote
  /// launchers use it to tell a transport failure (ssh's 255) from a worker
  /// bug that would reproduce on any host.
  virtual void attempt_result(const WorkerHandle& w, AttemptOutcome o,
                              int exit_code) {
    (void)w;
    (void)o;
    (void)exit_code;
  }

  /// Appends per-host rollups (attempts/failures/quarantines per host) to
  /// the report. No-op for launchers without a host pool.
  virtual void append_host_report(DispatchReport& report) const {
    (void)report;
  }
};

/// Default launcher: posix_spawn with stdout/stderr piped back on
/// O_NONBLOCK read ends. Replaces PR 5's popen (which hid the pid and could
/// deadlock in pclose against a worker blocked writing a full pipe).
class LocalProcessLauncher : public WorkerLauncher {
 public:
  WorkerHandle launch(const std::vector<std::string>& argv) override;
  void terminate(const WorkerHandle& w) override;
  void terminate_soft(const WorkerHandle& w) override;
  bool try_reap(const WorkerHandle& w, int& raw_status) override;
  int reap(const WorkerHandle& w) override;
};

/// Supervision policy. Defaults are production-shaped (generous deadline,
/// three attempts, sub-second backoff); tests shrink the clocks.
struct DispatchOptions {
  /// Wall-clock budget per attempt; past it the worker is terminated and
  /// the attempt counts as a timeout.
  std::chrono::milliseconds shard_deadline{30'000};
  /// Termination escalation: a worker being killed (deadline, supersede)
  /// first gets terminate_soft (SIGTERM locally) and this much wall-clock
  /// to exit on its own — remote wrappers use it to tear down their far
  /// end — then terminate (SIGKILL). 0 skips straight to the hard kill.
  std::chrono::milliseconds term_grace{500};
  /// Total attempts per shard (first launch + retries + hedges).
  int max_attempts = 3;
  /// Backoff before retry k (k = 2, 3, ...): min(cap, base * mult^(k-2)),
  /// scaled by a deterministic jitter factor in [1 - jitter, 1 + jitter]
  /// drawn from Rng(jitter_seed ^ mix(shard, k)) — reproducible schedules,
  /// no synchronized thundering herd.
  std::chrono::milliseconds backoff_base{50};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds backoff_cap{2'000};
  double backoff_jitter = 0.25;
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Straggler hedging: once at least half the shards have completed, an
  /// attempt running longer than max(floor, multiple * median completion
  /// time) gets a duplicate launch; first valid blob wins.
  bool hedge_stragglers = true;
  double straggler_multiple = 3.0;
  std::chrono::milliseconds straggler_floor{100};
  int max_hedges_per_shard = 1;
  /// After retry exhaustion, run the shard in-process (wire round-trip
  /// included) instead of failing the sweep. Disable to make exhaustion a
  /// DispatchError instead.
  bool fallback_in_process = true;
  /// Per-attempt stderr capture cap; beyond it the stream is drained but
  /// discarded (a worker flooding stderr can neither block nor OOM us).
  std::size_t stderr_cap = 4096;
  /// Reject (and kill) an attempt whose stdout exceeds this many bytes; a
  /// runaway worker must not OOM the driver.
  std::size_t max_blob_bytes = std::size_t{16} << 20;
  /// Extra argv appended verbatim to every worker launch — the
  /// fault-injection hook (--fault ...) and a forward path for new worker
  /// flags that predate dispatcher knowledge of them.
  std::vector<std::string> extra_worker_args;
  /// Launch transport. Null uses a process-local LocalProcessLauncher.
  WorkerLauncher* launcher = nullptr;
};

/// Everything that happened to one attempt of one shard.
struct AttemptRecord {
  using Outcome = AttemptOutcome;

  unsigned shard = 0;
  int attempt = 0;     // 1-based, hedges included
  bool hedge = false;  // launched by the straggler policy
  Outcome outcome = Outcome::kSuccess;
  int exit_code = -1;    // valid for kExitNonzero / kSuccess / kWireReject
  int term_signal = 0;   // valid for kCrashed / kTimeout / kSuperseded
  std::string host;      // launcher-reported execution host, may be empty
  std::string stderr_excerpt;  // captured per attempt, capped, may be empty
  std::string detail;          // parse/meta/launch error text
  std::chrono::milliseconds wall{0};
};

const char* attempt_outcome_name(AttemptRecord::Outcome o);

/// The sweep's flight recorder: per-attempt records plus the counters the
/// acceptance tests and the bench report read. Appended to across cells
/// when one report is threaded through several distributed_sweep calls.
struct DispatchReport {
  /// Per-host rollup, appended by pooled launchers (append_host_report).
  /// Empty for plain local dispatch, and to_string() renders nothing for
  /// it then — the local golden format is unchanged.
  struct HostRecord {
    std::string host;
    std::size_t attempts = 0;
    std::size_t failures = 0;
    std::size_t quarantines = 0;
    bool blacklisted = false;
    /// Measured startup-probe cost; -1 ms when never probed.
    std::chrono::milliseconds startup_cost{-1};
  };

  std::vector<AttemptRecord> attempts;
  std::vector<HostRecord> hosts;
  std::size_t shards = 0;
  std::size_t launches = 0;
  std::size_t retries = 0;    // re-issues after a failed attempt
  std::size_t timeouts = 0;   // deadline kills
  std::size_t crashes = 0;    // signal exits (timeout kills not included)
  std::size_t wire_rejects = 0;
  std::size_t meta_mismatches = 0;
  std::size_t nonzero_exits = 0;
  std::size_t launch_failures = 0;
  std::size_t hedges = 0;     // straggler duplicate launches
  std::size_t superseded = 0; // attempts killed by first-valid-blob-wins
  std::size_t fallbacks = 0;  // shards that degraded to in-process

  /// True when every shard succeeded on its first attempt with no hedges —
  /// the report of a healthy sweep.
  bool clean() const {
    return retries == 0 && hedges == 0 && fallbacks == 0 &&
           launch_failures == 0;
  }

  /// Multi-line human-readable rendering (summary counters + one line per
  /// non-success attempt, stderr excerpts included). Used verbatim in
  /// DispatchError messages.
  std::string to_string() const;
};

/// The supervision engine. One instance dispatches one cell's shards at a
/// time (run_cell is not reentrant); construct per sweep or reuse serially.
class Dispatcher {
 public:
  Dispatcher(std::string worker_path, DispatchOptions opts = {});
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Supervises every range of one matrix cell to completion and returns
  /// the per-shard accumulators merged in shard order (so the fold is
  /// independent of completion order by construction, on top of merge()'s
  /// own order-insensitivity). Appends to `report` when non-null. Throws
  /// DispatchError only when a shard ends with no result and in-process
  /// fallback is disabled (or the fallback itself throws).
  CellAccum run_cell(ProtocolKind protocol, Regime regime, int n,
                     const std::vector<ShardRange>& ranges,
                     const CellOptions& cell,
                     DispatchReport* report = nullptr);

  const DispatchOptions& options() const { return opts_; }

 private:
  std::string worker_path_;
  DispatchOptions opts_;
  std::unique_ptr<LocalProcessLauncher> default_launcher_;
};

/// Options for distributed_sweep (moved here from exp/shard.hpp when the
/// driver was rebased onto the Dispatcher — shard.hpp keeps the transport:
/// wire format, planning, tokens).
struct DistributedOptions {
  /// Path to the xcp_sweep_shard worker binary. Empty runs each shard
  /// in-process instead — the accumulator still round-trips through
  /// serialize -> parse -> merge, so the wire format and merge contract are
  /// exercised identically; only the process boundary (and therefore the
  /// supervision machinery) is elided.
  std::string worker_path;
  /// Forwarded to every shard's run_matrix_cell_accum.
  CellOptions cell;
  /// Supervision policy for the process transport.
  DispatchOptions dispatch;
  /// Anti-sliver floor forwarded to plan_shards: with a non-zero value the
  /// sweep concentrates seeds on fewer shards rather than paying process
  /// supervision overhead on slivers (trailing shards come back empty and
  /// merge as no-ops). 0 preserves the spread-over-all-shards partition.
  std::size_t min_seeds_per_shard = 0;
  /// When non-null, attempt records and counters for the sweep are
  /// appended here (including synthetic kSuccess records for in-process
  /// shards, so the report always covers every shard).
  DispatchReport* report = nullptr;
};

/// Runs one matrix cell as `shards` supervised shard processes: partitions
/// the seed range with plan_shards, dispatches tools/xcp_sweep_shard per
/// shard through exp::Dispatcher (deadlines, retries with backoff, straggler
/// hedging, in-process fallback), folds the deduped per-shard accumulators
/// with CellAccum::merge, and finishes with cell_from_accum. Under any fault
/// schedule that leaves each shard one successful attempt — and under total
/// worker failure when fallback is enabled — the result is byte-identical
/// to run_matrix_cell over the same range (tests/test_dispatch.cpp proves
/// it per injected fault mode). Throws WireError/DispatchError only when a
/// shard can produce no result at all.
MatrixCell distributed_sweep(ProtocolKind protocol, Regime regime, int n,
                             std::size_t seeds, unsigned shards,
                             std::uint64_t first_seed = 1,
                             const DistributedOptions& opts = {});

}  // namespace xcp::exp
