#include "exp/runner.hpp"

#include <algorithm>
#include <utility>

#include "baselines/interledger.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "net/adversary.hpp"
#include "proto/weak/protocol.hpp"

namespace xcp::exp {

const char* protocol_kind_name(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kTimeBounded: return "time-bounded (Thm 1)";
    case ProtocolKind::kUniversalNaive: return "universal [4] (naive)";
    case ProtocolKind::kInterledgerAtomic: return "atomic [4]";
    case ProtocolKind::kWeakTrusted: return "weak (Thm 3, trusted)";
    case ProtocolKind::kWeakContract: return "weak (Thm 3, contract)";
    case ProtocolKind::kWeakCommittee: return "weak (Thm 3, notaries)";
  }
  return "?";
}

const char* regime_name(Regime r) {
  switch (r) {
    case Regime::kSynchronyConforming: return "synchrony";
    case Regime::kSynchronyHighDrift: return "synchrony+heavy-drift";
    case Regime::kPartialSynchrony: return "partial-synchrony";
    case Regime::kPartialSynchronyAdversarial: return "partial+adversary";
  }
  return "?";
}

namespace {

bool is_weak_family(ProtocolKind k) {
  return k == ProtocolKind::kWeakTrusted || k == ProtocolKind::kWeakContract ||
         k == ProtocolKind::kWeakCommittee ||
         k == ProtocolKind::kInterledgerAtomic;
}

/// The Thm-2 style griefing adversary: hold every chi addressed to escrows
/// until `release` — legal under partial synchrony (GST unknown), lethal for
/// deadline-based protocols.
proto::AdversaryFactory chi_griefing_adversary(TimePoint release) {
  return [release](const proto::Participants& parts,
                   const proto::TimelockSchedule&)
             -> std::unique_ptr<net::Adversary> {
    auto adv = std::make_unique<net::RuleBasedAdversary>();
    for (auto escrow : parts.escrows) {
      adv->hold_until(net::RuleBasedAdversary::all_of(
                          {net::RuleBasedAdversary::kind_is(net::kinds::chi),
                           net::RuleBasedAdversary::to_process(escrow)}),
                      release);
    }
    return adv;
  };
}

proto::RunRecord run_time_bounded_family(ProtocolKind protocol, Regime regime,
                                         int n, std::uint64_t seed,
                                         props::OnlineOptions online = {}) {
  proto::TimeBoundedConfig cfg = thm1_config(n, seed);
  cfg.online = online;
  cfg.compensated = protocol == ProtocolKind::kTimeBounded;
  switch (regime) {
    case Regime::kSynchronyConforming:
      break;
    case Regime::kSynchronyHighDrift:
      // Heavy (but declared) drift with delays concentrated near Delta:
      // the compensated schedule is sized for exactly this corner, the
      // naive one ignores rho and under-covers.
      cfg.assumed.rho = 0.15;
      cfg.env.actual_rho = 0.15;
      cfg.env.delta_min = Duration::millis(90);
      break;
    case Regime::kPartialSynchrony:
      cfg.env = partial_env(cfg.assumed, /*gst_seconds=*/2,
                            Duration::millis(500));
      cfg.extra_horizon = Duration::seconds(10);
      break;
    case Regime::kPartialSynchronyAdversarial: {
      cfg.env = partial_env(cfg.assumed, /*gst_seconds=*/120,
                            Duration::millis(150));
      cfg.adversary =
          chi_griefing_adversary(TimePoint::origin() + Duration::seconds(120));
      cfg.extra_horizon = Duration::seconds(30);
      break;
    }
  }
  return run_time_bounded(cfg);
}

proto::RunRecord run_weak_family(ProtocolKind protocol, Regime regime, int n,
                                 std::uint64_t seed,
                                 props::OnlineOptions online = {}) {
  using proto::weak::TmKind;
  TmKind tm = TmKind::kTrustedParty;
  if (protocol == ProtocolKind::kWeakContract) tm = TmKind::kSmartContract;
  if (protocol == ProtocolKind::kWeakCommittee) tm = TmKind::kNotaryCommittee;

  proto::weak::WeakConfig cfg = thm3_config(tm, n, seed);
  cfg.online = online;
  switch (regime) {
    case Regime::kSynchronyConforming:
    case Regime::kSynchronyHighDrift:
      cfg.env = conforming_env(default_timing());
      if (regime == Regime::kSynchronyHighDrift) {
        cfg.env.actual_rho = default_timing().rho * 20.0;
      }
      break;
    case Regime::kPartialSynchrony:
      // A rough pre-GST period: several seconds of erratic delivery. The
      // weak protocols ride it out on customer patience; the atomic
      // baseline's fixed notary deadline does not.
      cfg.env = partial_env(default_timing(), /*gst_seconds=*/10,
                            Duration::seconds(2));
      cfg.patience = Duration::seconds(60);
      break;
    case Regime::kPartialSynchronyAdversarial:
      // Hold all TM-bound evidence until a late GST: the decision is merely
      // delayed; patient customers still commit.
      cfg.env = partial_env(default_timing(), /*gst_seconds=*/20,
                            Duration::millis(500));
      cfg.adversary = [](const proto::Participants&)
          -> std::unique_ptr<net::Adversary> {
        auto adv = std::make_unique<net::RuleBasedAdversary>();
        adv->hold_until(net::RuleBasedAdversary::kind_is(net::kinds::tm_chi),
                        TimePoint::origin() + Duration::seconds(20));
        adv->hold_until(net::RuleBasedAdversary::kind_is(net::kinds::tm_report),
                        TimePoint::origin() + Duration::seconds(20));
        adv->hold_until(net::RuleBasedAdversary::kind_is(net::kinds::tx),
                        TimePoint::origin() + Duration::seconds(20));
        return adv;
      };
      cfg.patience = Duration::seconds(90);
      cfg.horizon = Duration::seconds(300);
      break;
  }

  if (protocol == ProtocolKind::kInterledgerAtomic) {
    baselines::AtomicConfig acfg;
    acfg.weak = cfg;
    acfg.notary_deadline = Duration::seconds(3);
    return baselines::run_atomic(acfg);
  }
  return proto::weak::run_weak(cfg);
}

/// Evaluates one record's property verdicts into the accumulator. Shared by
/// nothing else on purpose: run_matrix_cell_buffered keeps the original
/// record-by-record loop as an independent reference implementation.
void fold_record(const proto::RunRecord& record, bool weak_family,
                 std::uint64_t seed, CellAccum& acc) {
  // Safety: must hold in every regime.
  std::vector<props::PropertyResult> safety;
  safety.push_back(props::check_conservation(record));
  safety.push_back(props::check_escrow_security(record));
  safety.push_back(props::check_cs1(record, weak_family));
  safety.push_back(props::check_cs2(record, weak_family));
  safety.push_back(props::check_cs3(record));
  if (weak_family) {
    safety.push_back(props::check_certificate_consistency(record));
  }
  bool violated = false;
  std::uint32_t ordinal = 0;
  for (const auto& res : safety) {
    if (res.applicable && !res.holds) {
      violated = true;
      // Each worker sees its seeds in increasing order, so appending while
      // below the cap keeps exactly the worker's (seed, ordinal)-lowest
      // examples; merge() keeps the global lowest.
      if (acc.examples.size() < CellAccum::kMaxExamples) {
        acc.examples.push_back({seed, ordinal, res.str()});
      }
      ++ordinal;
    }
  }
  if (violated) ++acc.safety_violations;

  // Termination: in all-honest runs every customer must terminate within
  // the observation window.
  bool term_failed = false;
  for (int i = 0; i <= record.spec.n; ++i) {
    if (!record.customer(i).terminated) term_failed = true;
  }
  if (term_failed) ++acc.termination_failures;

  // Strong liveness: all honest => Bob paid.
  if (!record.bob_paid()) ++acc.liveness_failures;

  // Early-stop verdict telemetry from the online monitor (zeros when no
  // monitor was attached).
  if (record.online.attached && record.online.early_stopped) {
    ++acc.early_stops;
    acc.decided_at_total =
        acc.decided_at_total + (record.online.decided_at - TimePoint::origin());
  }
  acc.events_total += record.stats.events_executed;
}

/// Re-derives the monitor configuration a runner would have used for this
/// record: the shared scalar config plus the abiding cast (the outcomes
/// record the same abiding flags the runner filtered on).
props::OnlineMonitor::Config monitor_config_for(const proto::RunRecord& r) {
  props::OnlineMonitor::Config cfg = proto::base_online_config(r.spec, r.parts);
  for (const auto& p : r.participants) {
    if (p.abiding) cfg.cast.push_back(p.pid);
  }
  return cfg;
}

/// Post-mortem replay: feeds the record's full trace, in record order,
/// through fresh online machines. By the monotonicity contract this must
/// reproduce the live monitor's verdicts event-for-event.
props::OnlineOutcome replay_online(const proto::RunRecord& r) {
  props::OnlineMonitor monitor(monitor_config_for(r));
  for (const props::TraceEvent& e : r.trace.events()) monitor.on_record(e);
  return monitor.outcome();
}

void require_verdicts_match(const props::OnlineOutcome& live,
                            const proto::RunRecord& full, bool weak_family,
                            std::uint64_t seed) {
  using props::Verdict;
  const props::OnlineOutcome replayed = replay_online(full);

  // Live incremental vs post-mortem replay: same verdicts, decided at the
  // same event (time *and* ordinal).
  const auto same = [&](Verdict a, Verdict b, const char* what) {
    XCP_REQUIRE(a == b, std::string("online/post-mortem verdict mismatch (") +
                            what + ") at seed " + std::to_string(seed));
  };
  same(live.termination, replayed.termination, "termination");
  same(live.liveness, replayed.liveness, "liveness");
  same(live.cert_consistency, replayed.cert_consistency, "CC");
  same(live.abort_freedom, replayed.abort_freedom, "abort-freedom");
  XCP_REQUIRE(live.decided_at == replayed.decided_at &&
                  live.decided_seq == replayed.decided_seq,
              "online decided-at diverges from post-mortem replay at seed " +
                  std::to_string(seed));

  // Online verdicts vs the batch checkers on the full-horizon record.
  bool all_cast_terminated = true;
  for (const auto& p : full.participants) {
    if (p.abiding && !p.terminated) all_cast_terminated = false;
  }
  XCP_REQUIRE((live.termination == Verdict::kHolds) == all_cast_terminated,
              "online termination verdict disagrees with the record");
  XCP_REQUIRE((live.liveness == Verdict::kHolds) == full.bob_paid(),
              "online liveness verdict disagrees with bob_paid()");
  XCP_REQUIRE(
      (live.abort_freedom == Verdict::kViolated) ==
          (full.trace.count(props::EventKind::kAbortRequested) > 0),
      "online abort-freedom verdict disagrees with the trace");
  if (weak_family) {
    const auto cc = props::check_certificate_consistency(full);
    // The batch checker adds a holdings cross-check on top of the decide
    // clause; a decide-clause violation must imply the batch violation.
    if (live.cert_consistency == Verdict::kViolated) {
      XCP_REQUIRE(!cc.holds, "online CC violation not confirmed post-mortem");
    }
  }
}

}  // namespace

void CellAccum::merge(CellAccum&& o) {
  safety_violations += o.safety_violations;
  termination_failures += o.termination_failures;
  liveness_failures += o.liveness_failures;
  early_stops += o.early_stops;
  decided_at_total = decided_at_total + o.decided_at_total;
  events_total += o.events_total;
  std::vector<Example> merged;
  merged.reserve(std::min(examples.size() + o.examples.size(), kMaxExamples));
  std::size_t a = 0;
  std::size_t b = 0;
  while (merged.size() < kMaxExamples &&
         (a < examples.size() || b < o.examples.size())) {
    const bool take_a =
        b >= o.examples.size() ||
        (a < examples.size() &&
         std::pair(examples[a].seed, examples[a].ordinal) <
             std::pair(o.examples[b].seed, o.examples[b].ordinal));
    merged.push_back(std::move(take_a ? examples[a++] : o.examples[b++]));
  }
  examples = std::move(merged);
}

MatrixCell cell_from_accum(ProtocolKind protocol, Regime regime,
                           std::size_t runs, CellAccum&& acc) {
  MatrixCell cell;
  cell.protocol = protocol;
  cell.regime = regime;
  cell.runs = runs;
  cell.safety_violations = acc.safety_violations;
  cell.termination_failures = acc.termination_failures;
  cell.liveness_failures = acc.liveness_failures;
  cell.early_stops = acc.early_stops;
  cell.decided_at_total = acc.decided_at_total;
  cell.events_total = acc.events_total;
  for (auto& ex : acc.examples) {
    cell.example_violations.push_back(std::move(ex.text));
  }
  return cell;
}

CellAccum run_matrix_cell_accum(ProtocolKind protocol, Regime regime, int n,
                                std::size_t seeds, std::uint64_t first_seed,
                                const CellOptions& opts) {
  const bool weak_family = is_weak_family(protocol);

  // Streaming: run, check, fold, drop — the RunRecord (and its trace
  // arena) dies on the worker that produced it, so its chunks recycle
  // seed-over-seed instead of accumulating for the whole sweep. With the
  // default options each run also carries an online monitor that ends it
  // at its deciding event.
  return sweep_accumulate<CellAccum>(
      first_seed, seeds, [&](std::uint64_t seed, CellAccum& a) {
        const proto::RunRecord record =
            weak_family
                ? run_weak_family(protocol, regime, n, seed, opts.online)
                : run_time_bounded_family(protocol, regime, n, seed,
                                          opts.online);
        fold_record(record, weak_family, seed, a);
      });
}

MatrixCell run_matrix_cell(ProtocolKind protocol, Regime regime, int n,
                           std::size_t seeds, std::uint64_t first_seed,
                           const CellOptions& opts) {
  return cell_from_accum(
      protocol, regime, seeds,
      run_matrix_cell_accum(protocol, regime, n, seeds, first_seed, opts));
}

MatrixCell run_matrix_cell_differential(ProtocolKind protocol, Regime regime,
                                        int n, std::size_t seeds,
                                        std::uint64_t first_seed) {
  const bool weak_family = is_weak_family(protocol);

  // Per seed: the early-stopped run and the full-horizon run (monitor
  // attached, stop unarmed) must agree on every verdict.
  CellAccum early_acc = sweep_accumulate<CellAccum>(
      first_seed, seeds, [&](std::uint64_t seed, CellAccum& a) {
        const props::OnlineOptions stop{/*enabled=*/true, /*early_stop=*/true};
        const props::OnlineOptions watch{/*enabled=*/true,
                                         /*early_stop=*/false};
        const proto::RunRecord stopped =
            weak_family ? run_weak_family(protocol, regime, n, seed, stop)
                        : run_time_bounded_family(protocol, regime, n, seed,
                                                  stop);
        const proto::RunRecord full =
            weak_family ? run_weak_family(protocol, regime, n, seed, watch)
                        : run_time_bounded_family(protocol, regime, n, seed,
                                                  watch);

        // The full run's live verdicts vs its own post-mortem forms.
        require_verdicts_match(full.online, full, weak_family, seed);
        // The stopped run decided at the same event as the full run.
        XCP_REQUIRE(stopped.online.early_stopped ==
                        (full.online.termination == props::Verdict::kHolds),
                    "early stop fired iff the full run's cast terminated");
        if (stopped.online.early_stopped) {
          XCP_REQUIRE(stopped.online.decided_at == full.online.decided_at &&
                          stopped.online.decided_seq ==
                              full.online.decided_seq,
                      "early-stop decision point diverges from the full run");
        }
        // Both records fold to the same verdict bits.
        CellAccum stopped_bits;
        CellAccum full_bits;
        fold_record(stopped, weak_family, seed, stopped_bits);
        fold_record(full, weak_family, seed, full_bits);
        XCP_REQUIRE(
            stopped_bits.safety_violations == full_bits.safety_violations &&
                stopped_bits.termination_failures ==
                    full_bits.termination_failures &&
                stopped_bits.liveness_failures == full_bits.liveness_failures,
            "early-stopped verdict bits diverge from the full horizon at "
            "seed " +
                std::to_string(seed));
        XCP_REQUIRE(
            stopped_bits.examples.size() == full_bits.examples.size(),
            "early-stopped violation examples diverge from the full horizon");
        for (std::size_t i = 0; i < stopped_bits.examples.size(); ++i) {
          XCP_REQUIRE(stopped_bits.examples[i].text ==
                          full_bits.examples[i].text,
                      "early-stopped violation text diverges at seed " +
                          std::to_string(seed));
        }

        fold_record(stopped, weak_family, seed, a);
      });

  return cell_from_accum(protocol, regime, seeds, std::move(early_acc));
}

MatrixCell run_matrix_cell_buffered(ProtocolKind protocol, Regime regime,
                                    int n, std::size_t seeds,
                                    std::uint64_t first_seed) {
  MatrixCell cell;
  cell.protocol = protocol;
  cell.regime = regime;
  cell.runs = seeds;

  const bool weak_family = is_weak_family(protocol);

  const auto one = [&](std::uint64_t seed) {
    return weak_family ? run_weak_family(protocol, regime, n, seed)
                       : run_time_bounded_family(protocol, regime, n, seed);
  };
  const auto records = parallel_sweep<proto::RunRecord>(first_seed, seeds, one);

  for (const auto& record : records) {
    // Safety: must hold in every regime.
    std::vector<props::PropertyResult> safety;
    safety.push_back(props::check_conservation(record));
    safety.push_back(props::check_escrow_security(record));
    safety.push_back(props::check_cs1(record, weak_family));
    safety.push_back(props::check_cs2(record, weak_family));
    safety.push_back(props::check_cs3(record));
    if (weak_family) {
      safety.push_back(props::check_certificate_consistency(record));
    }
    bool violated = false;
    for (const auto& res : safety) {
      if (res.applicable && !res.holds) {
        violated = true;
        if (cell.example_violations.size() < 4) {
          cell.example_violations.push_back(res.str());
        }
      }
    }
    if (violated) ++cell.safety_violations;

    // Termination: in all-honest runs every customer must terminate within
    // the observation window.
    bool term_failed = false;
    for (int i = 0; i <= record.spec.n; ++i) {
      if (!record.customer(i).terminated) term_failed = true;
    }
    if (term_failed) ++cell.termination_failures;

    // Strong liveness: all honest => Bob paid.
    if (!record.bob_paid()) ++cell.liveness_failures;
  }
  return cell;
}

}  // namespace xcp::exp
