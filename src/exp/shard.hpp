#pragma once
// Cross-process sweep sharding: the transport that turns the single-box
// SweepPool into a multi-process (and machine-ready) sweep fabric.
//
// Per-seed determinism plus order-insensitive mergeable accumulators
// (CellAccum's contract) already make shard results combinable by
// construction; this header supplies the transport: a versioned,
// endianness-stable wire format for CellAccum, the shard envelope with its
// meta cross-check, seed-range planning, and the worker CLI tokens. The
// driver that launches and supervises K worker processes and folds their
// blobs with the existing merge() is layered above in exp/dispatch.hpp.
// Splitting the workload is provably invisible in the result:
// distributed_sweep(K) == run_matrix_cell(1 process) byte-for-byte on
// every verdict counter, early-stop count, decided-at sum and example
// string (tests/test_shard.cpp and tests/test_dispatch.cpp prove it across
// the 6x4 theorem matrix for K in {1, 2, 3, 7}, faults included).
//
// Wire format (version 1)
// -----------------------
//   header : magic u32 ("XCPA", little-endian byte order throughout —
//            every integer is serialized byte-wise LE, so blobs are
//            byte-identical across host endianness), version u16,
//            reserved u16 (zero)
//   fields : a sequence of { tag u16, length u32, payload[length] }
//            frames until end of blob
//
// Per-field framing is what makes the format evolvable deterministically: a
// future v2 reader upgrades a v1 payload by defaulting the fields v1 never
// wrote, and a v1 reader *rejects* a v2 payload outright (version > reader)
// instead of misparsing it. Within a supported version, unknown tags,
// duplicate tags, missing required tags, short frames and trailing bytes
// are all hard parse errors (WireError) — corrupt or truncated blobs are
// rejected loudly, never interpreted.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace xcp::exp {

/// Parse/validation failure on an accumulator blob: bad magic, unsupported
/// version, unknown/duplicate/missing field, short frame, trailing bytes,
/// or a meta cross-check mismatch. Deliberately a distinct type so callers
/// can tell "the transport handed us garbage" from simulator invariants.
/// Same diagnostic shape as net::WireError: the message names the byte
/// offset and the frame/tag being decoded, and offset() exposes it.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what, std::size_t offset = 0)
      : std::runtime_error("shard wire: " + what), offset_(offset) {}

  /// Byte offset into the blob at which parsing failed.
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_ = 0;
};

/// "XCPA" as a little-endian u32 ('X' is the first byte on the wire).
inline constexpr std::uint32_t kWireMagic = 0x41504358u;
inline constexpr std::uint16_t kWireVersion = 1;
/// Oldest payload version this reader upgrades; anything older (or newer
/// than kWireVersion) is rejected.
inline constexpr std::uint16_t kWireMinVersion = 1;

/// Serializes every streamed field of a CellAccum (verdict counts,
/// early-stop count, decided-at sum, events total, example records) into a
/// self-describing blob. Round-trips bit-exactly through parse_cell_accum.
std::vector<std::uint8_t> serialize_cell_accum(const CellAccum& acc);

/// Parses a serialize_cell_accum blob. Throws WireError on anything
/// malformed; never exhibits UB on corrupt/truncated/version-bumped input.
CellAccum parse_cell_accum(const std::uint8_t* data, std::size_t size);
inline CellAccum parse_cell_accum(const std::vector<std::uint8_t>& blob) {
  return parse_cell_accum(blob.data(), blob.size());
}

/// What a shard worker was asked to compute — carried inside the blob so
/// the driver can prove each worker ran the right (cell, seed range,
/// monitor mode) before merging its accumulator.
struct ShardMeta {
  ProtocolKind protocol = ProtocolKind::kTimeBounded;
  Regime regime = Regime::kSynchronyConforming;
  std::int32_t n = 2;
  std::uint64_t first_seed = 1;
  std::uint64_t seed_count = 0;
  bool online = true;
  bool early_stop = true;

  bool operator==(const ShardMeta&) const = default;
};

struct ShardBlob {
  ShardMeta meta;
  CellAccum accum;
};

/// The envelope a shard worker writes to stdout: the same header and accum
/// fields as serialize_cell_accum plus a meta frame identifying the work.
std::vector<std::uint8_t> serialize_shard_blob(const ShardMeta& meta,
                                               const CellAccum& acc);
ShardBlob parse_shard_blob(const std::uint8_t* data, std::size_t size);
inline ShardBlob parse_shard_blob(const std::vector<std::uint8_t>& blob) {
  return parse_shard_blob(blob.data(), blob.size());
}

/// Stable CLI tokens for the worker command line (distinct from the pretty
/// display names in protocol_kind_name/regime_name, which carry spaces and
/// theorem references). parse_* return false on unknown tokens.
const char* protocol_token(ProtocolKind k);
const char* regime_token(Regime r);
bool parse_protocol_token(const std::string& token, ProtocolKind& out);
bool parse_regime_token(const std::string& token, Regime& out);

/// One shard's contiguous slice of the sweep's seed range.
struct ShardRange {
  std::uint64_t first_seed = 0;
  std::uint64_t count = 0;
};

/// Partitions [first_seed, first_seed + seeds) into `shards` contiguous
/// ranges: the first (seeds % shards) ranges get one extra seed, so ragged
/// divisions stay contiguous and deterministic. shards > seeds yields empty
/// trailing ranges (their accumulators merge as no-ops).
///
/// `min_seeds_per_shard` > 0 is an anti-sliver heuristic: the seeds are
/// spread over only as many leading shards as can each hold at least that
/// many (never fewer than one shard), and the remaining ranges come back
/// empty — a dispatcher then pays process spawn/supervision cost only for
/// shards with enough work to amortize it. 0 (the default) preserves the
/// historical spread-over-all-shards behaviour exactly. The returned
/// vector always has `shards` entries and the non-empty ranges always
/// concatenate to exactly [first_seed, first_seed + seeds).
std::vector<ShardRange> plan_shards(std::uint64_t first_seed,
                                    std::size_t seeds, unsigned shards,
                                    std::size_t min_seeds_per_shard = 0);

/// Resolves the xcp_sweep_shard binary for process-transport callers:
/// $XCP_SWEEP_SHARD_BIN when set (throws std::runtime_error if set but
/// not executable — an explicit configuration must not silently degrade
/// to in-process shards), else ./xcp_sweep_shard if executable (ctest and
/// the benches run from the build directory, where CMake puts the tool),
/// else empty — callers then fall back to in-process shards or skip.
std::string default_worker_path();

// The driver that runs a cell as `shards` supervised worker processes —
// exp::distributed_sweep and its DistributedOptions — lives in
// exp/dispatch.hpp: dispatch policy (deadlines, retries, hedging,
// fallback) is layered above this transport, not baked into it.

}  // namespace xcp::exp
