#include "exp/dispatch.hpp"

// xcp-lint: allow-file(determinism-wall-clock) supervision layer:
// deadlines, retry backoff and straggler hedging time real child
// processes; results stay deterministic because cell payloads never
// depend on these timestamps (test_dispatch byte-identity covers it).

#if !defined(_WIN32)
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "support/rng.hpp"
#include "support/status.hpp"

#if !defined(_WIN32)
extern char** environ;
#endif

namespace xcp::exp {

const char* attempt_outcome_name(AttemptRecord::Outcome o) {
  switch (o) {
    case AttemptRecord::Outcome::kSuccess: return "success";
    case AttemptRecord::Outcome::kTimeout: return "timeout";
    case AttemptRecord::Outcome::kCrashed: return "crashed";
    case AttemptRecord::Outcome::kExitNonzero: return "exit-nonzero";
    case AttemptRecord::Outcome::kWireReject: return "wire-reject";
    case AttemptRecord::Outcome::kMetaMismatch: return "meta-mismatch";
    case AttemptRecord::Outcome::kLaunchFailed: return "launch-failed";
    case AttemptRecord::Outcome::kSuperseded: return "superseded";
    case AttemptRecord::Outcome::kFallback: return "in-process-fallback";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;
using Millis = std::chrono::milliseconds;

const char* worker_exit_name(int code) {
  switch (code) {
    case worker_exit::kUsage: return "usage";
    case worker_exit::kWireError: return "wire/serialize error";
    case worker_exit::kShortWrite: return "short write";
    case worker_exit::kInternal: return "internal error";
    default: return nullptr;
  }
}

std::string describe_exit_code(int code) {
  std::string s = "exit code " + std::to_string(code);
  if (const char* name = worker_exit_name(code)) {
    s += std::string(" (") + name + ")";
  }
  return s;
}

/// Folds one report's summary counters into another (attempt records are
/// appended separately so callers control their ordering).
void merge_counters(DispatchReport& into, const DispatchReport& from) {
  into.shards += from.shards;
  into.launches += from.launches;
  into.retries += from.retries;
  into.timeouts += from.timeouts;
  into.crashes += from.crashes;
  into.wire_rejects += from.wire_rejects;
  into.meta_mismatches += from.meta_mismatches;
  into.nonzero_exits += from.nonzero_exits;
  into.launch_failures += from.launch_failures;
  into.hedges += from.hedges;
  into.superseded += from.superseded;
  into.fallbacks += from.fallbacks;
}

}  // namespace

std::string DispatchReport::to_string() const {
  std::string s;
  s += "dispatch report: " + std::to_string(shards) + " shard(s), " +
       std::to_string(launches) + " launch(es), " +
       std::to_string(retries) + " retr" + (retries == 1 ? "y" : "ies") +
       ", " + std::to_string(timeouts) + " timeout(s), " +
       std::to_string(crashes) + " crash(es), " +
       std::to_string(wire_rejects) + " wire reject(s), " +
       std::to_string(meta_mismatches) + " meta mismatch(es), " +
       std::to_string(nonzero_exits) + " nonzero exit(s), " +
       std::to_string(launch_failures) + " launch failure(s), " +
       std::to_string(hedges) + " hedge(s), " +
       std::to_string(superseded) + " superseded, " +
       std::to_string(fallbacks) + " fallback(s)";
  // Per-host rollups render only when a pooled launcher filled them in, so
  // plain local dispatch keeps its golden format byte-for-byte.
  for (const HostRecord& h : hosts) {
    s += "\n  host " + h.host + ": " + std::to_string(h.attempts) +
         " attempt(s), " + std::to_string(h.failures) + " failure(s), " +
         std::to_string(h.quarantines) + " quarantine(s)";
    if (h.blacklisted) s += ", blacklisted";
    if (h.startup_cost.count() >= 0) {
      s += ", startup " + std::to_string(h.startup_cost.count()) + " ms";
    }
  }
  for (const AttemptRecord& a : attempts) {
    if (a.outcome == AttemptRecord::Outcome::kSuccess) continue;
    s += "\n  shard " + std::to_string(a.shard) + " attempt " +
         std::to_string(a.attempt) + (a.hedge ? " (hedge)" : "") +
         (a.host.empty() ? "" : " @" + a.host) + ": " +
         attempt_outcome_name(a.outcome);
    if (a.outcome == AttemptRecord::Outcome::kExitNonzero) {
      s += ", " + describe_exit_code(a.exit_code);
    }
    if (a.term_signal != 0) {
      s += ", signal " + std::to_string(a.term_signal);
    }
    if (!a.detail.empty()) s += ", " + a.detail;
    s += " after " + std::to_string(a.wall.count()) + " ms";
    if (!a.stderr_excerpt.empty()) {
      s += "\n    stderr: ";
      // One indented line per captured stderr line keeps the report
      // readable when a worker printed several.
      for (const char c : a.stderr_excerpt) {
        if (c == '\n') {
          s += "\n    stderr: ";
        } else {
          s += c;
        }
      }
    }
  }
  return s;
}

#if !defined(_WIN32)

// ------------------------------------------------------ LocalProcessLauncher

namespace {

void set_fd_flag(int fd, int get, int set, int flag) {
  const int cur = fcntl(fd, get);
  XCP_REQUIRE(cur != -1, "fcntl(get) failed");
  XCP_REQUIRE(fcntl(fd, set, cur | flag) != -1, "fcntl(set) failed");
}

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

WorkerHandle LocalProcessLauncher::launch(
    const std::vector<std::string>& argv) {
  XCP_REQUIRE(!argv.empty(), "launch needs at least argv[0]");
  int out_pipe[2] = {-1, -1};
  int err_pipe[2] = {-1, -1};
  const auto close_pipes = [&] {
    close_quietly(out_pipe[0]);
    close_quietly(out_pipe[1]);
    close_quietly(err_pipe[0]);
    close_quietly(err_pipe[1]);
  };
  if (::pipe(out_pipe) != 0 || ::pipe(err_pipe) != 0) {
    const int err = errno;
    close_pipes();
    throw DispatchError(std::string("pipe failed: ") + std::strerror(err));
  }
  try {
    // CLOEXEC everywhere: the dup2 file actions below clear it on the
    // child's fds 1/2, and nothing else may leak into workers launched
    // concurrently from other attempts.
    for (const int fd : {out_pipe[0], out_pipe[1], err_pipe[0], err_pipe[1]}) {
      set_fd_flag(fd, F_GETFD, F_SETFD, FD_CLOEXEC);
    }
    // The dispatcher multiplexes reads with poll(); a blocking read would
    // let one chatty worker starve the rest.
    set_fd_flag(out_pipe[0], F_GETFL, F_SETFL, O_NONBLOCK);
    set_fd_flag(err_pipe[0], F_GETFL, F_SETFL, O_NONBLOCK);
  } catch (...) {
    close_pipes();
    throw;
  }

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_adddup2(&actions, out_pipe[1], STDOUT_FILENO);
  posix_spawn_file_actions_adddup2(&actions, err_pipe[1], STDERR_FILENO);

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);

  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, argv[0].c_str(), &actions, nullptr,
                               cargv.data(), environ);
  posix_spawn_file_actions_destroy(&actions);
  close_quietly(out_pipe[1]);
  close_quietly(err_pipe[1]);
  if (rc != 0) {
    close_quietly(out_pipe[0]);
    close_quietly(err_pipe[0]);
    throw DispatchError("posix_spawn failed for " + argv[0] + ": " +
                        std::strerror(rc));
  }
  WorkerHandle w;
  w.pid = pid;
  w.stdout_fd = out_pipe[0];
  w.stderr_fd = err_pipe[0];
  return w;
}

void LocalProcessLauncher::terminate(const WorkerHandle& w) {
  if (w.pid > 0) ::kill(static_cast<pid_t>(w.pid), SIGKILL);
}

void LocalProcessLauncher::terminate_soft(const WorkerHandle& w) {
  if (w.pid > 0) ::kill(static_cast<pid_t>(w.pid), SIGTERM);
}

bool LocalProcessLauncher::try_reap(const WorkerHandle& w, int& raw_status) {
  if (w.pid <= 0) return false;
  pid_t got;
  do {
    got = ::waitpid(static_cast<pid_t>(w.pid), &raw_status, WNOHANG);
  } while (got == -1 && errno == EINTR);
  return got == static_cast<pid_t>(w.pid);
}

int LocalProcessLauncher::reap(const WorkerHandle& w) {
  int status = 0;
  if (w.pid <= 0) return status;
  // xcp-lint: allow(loop-blocking) callers reap only after SIGKILL or a
  // WNOHANG-confirmed exit, so this wait cannot stall on a live child.
  while (::waitpid(static_cast<pid_t>(w.pid), &status, 0) == -1 &&
         errno == EINTR) {
  }
  return status;
}

// ----------------------------------------------------------- the supervisor

namespace {

using Outcome = AttemptRecord::Outcome;

/// One in-flight worker attempt.
struct Live {
  /// Why this attempt is being torn down (SIGTERM -> grace -> SIGKILL runs
  /// asynchronously; the reason is fixed when the escalation starts).
  enum class TermReason { kNone, kTimeout, kSuperseded };

  unsigned shard = 0;
  int attempt_no = 0;
  bool hedge = false;
  WorkerHandle w;
  std::vector<std::uint8_t> out;
  std::string err;            // capped capture
  std::size_t err_total = 0;  // uncapped byte count (for the cap marker)
  bool out_open = true;
  bool err_open = true;
  bool finished = false;  // marked for sweep-out at the end of a loop pass
  TermReason term = TermReason::kNone;
  bool hard_killed = false;     // SIGKILL already sent
  Clock::time_point kill_at;    // when the grace window ends
  Clock::time_point start;
  Clock::time_point deadline;
};

struct ShardState {
  ShardMeta meta;
  ShardRange range;
  int attempts = 0;  // launched so far (primary + retries + hedges)
  int hedges = 0;
  bool done = false;
  bool retry_pending = false;
  Clock::time_point retry_ready;
  CellAccum accum;
};

Millis elapsed_ms(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<Millis>(to - from);
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

/// The supervision event loop for one cell. A plain struct so the state
/// (live attempts, shard table, report) has one owner and the cleanup path
/// can kill and reap everything on the way out of any exception.
struct CellRun {
  const std::string& worker_path;
  const DispatchOptions& opts;
  WorkerLauncher& launcher;
  ProtocolKind protocol;
  Regime regime;
  int n;
  const CellOptions& cell;

  std::vector<ShardState> shards = {};
  std::vector<Live> live = {};
  std::vector<double> completion_ms = {};  // successful attempt wall times
  std::size_t done_count = 0;
  DispatchReport report = {};

  ~CellRun() {
    // Exception path: never leak a running child or a zombie.
    for (Live& l : live) {
      if (l.finished) continue;
      launcher.terminate(l.w);
      launcher.reap(l.w);
      close_quietly(l.w.stdout_fd);
      close_quietly(l.w.stderr_fd);
      // Neutral classification so a pooled launcher releases its host slot
      // without charging the host for the driver's own failure.
      launcher.attempt_result(l.w, AttemptOutcome::kSuperseded, -1);
    }
  }

  ShardMeta meta_for(const ShardRange& range) const {
    ShardMeta m;
    m.protocol = protocol;
    m.regime = regime;
    m.n = n;
    m.first_seed = range.first_seed;
    m.seed_count = range.count;
    m.online = cell.online.enabled;
    m.early_stop = cell.online.early_stop;
    return m;
  }

  std::vector<std::string> worker_argv(const ShardState& st,
                                       int attempt_no) const {
    std::vector<std::string> argv{
        worker_path,
        "--protocol", protocol_token(st.meta.protocol),
        "--regime", regime_token(st.meta.regime),
        "--n", std::to_string(st.meta.n),
        "--first-seed", std::to_string(st.meta.first_seed),
        "--seeds", std::to_string(st.meta.seed_count),
        "--online", st.meta.online ? "1" : "0",
        "--early-stop", st.meta.early_stop ? "1" : "0",
        // The attempt ordinal lets deterministic fault schedules (--fault
        // MODE@K) release a shard after K failed attempts; the blob itself
        // carries no attempt state.
        "--attempt", std::to_string(attempt_no),
    };
    argv.insert(argv.end(), opts.extra_worker_args.begin(),
                opts.extra_worker_args.end());
    return argv;
  }

  /// Deterministic exponential backoff with jitter before attempt k >= 2.
  Millis backoff_before(unsigned shard, int k) const {
    double ms = static_cast<double>(opts.backoff_base.count());
    for (int i = 2; i < k; ++i) ms *= opts.backoff_multiplier;
    ms = std::min(ms, static_cast<double>(opts.backoff_cap.count()));
    std::uint64_t mix = opts.jitter_seed ^
                        (0x9e3779b97f4a7c15ull * (shard + 1) +
                         static_cast<std::uint64_t>(k));
    Rng rng(splitmix64(mix));
    const double j = opts.backoff_jitter;
    ms *= (1.0 - j) + 2.0 * j * rng.next_double();
    return Millis(static_cast<std::int64_t>(ms < 0 ? 0 : ms));
  }

  bool shard_has_live_attempt(unsigned shard) const {
    for (const Live& l : live) {
      if (!l.finished && l.shard == shard) return true;
    }
    return false;
  }

  void record(AttemptRecord rec) {
    switch (rec.outcome) {
      case Outcome::kTimeout: ++report.timeouts; break;
      case Outcome::kCrashed: ++report.crashes; break;
      case Outcome::kExitNonzero: ++report.nonzero_exits; break;
      case Outcome::kWireReject: ++report.wire_rejects; break;
      case Outcome::kMetaMismatch: ++report.meta_mismatches; break;
      case Outcome::kLaunchFailed: ++report.launch_failures; break;
      case Outcome::kSuperseded: ++report.superseded; break;
      case Outcome::kFallback: ++report.fallbacks; break;
      case Outcome::kSuccess: break;
    }
    report.attempts.push_back(std::move(rec));
  }

  void launch_attempt(unsigned shard, bool hedge) {
    ShardState& st = shards[shard];
    const int attempt_no = ++st.attempts;
    ++report.launches;
    const Clock::time_point now = Clock::now();
    WorkerHandle w;
    try {
      w = launcher.launch(worker_argv(st, attempt_no));
    } catch (const DispatchError& e) {
      AttemptRecord rec;
      rec.shard = shard;
      rec.attempt = attempt_no;
      rec.hedge = hedge;
      rec.outcome = Outcome::kLaunchFailed;
      rec.detail = e.what();
      rec.wall = Millis(0);
      record(std::move(rec));
      after_failure(shard);
      return;
    }
    Live l;
    l.shard = shard;
    l.attempt_no = attempt_no;
    l.hedge = hedge;
    l.w = w;
    l.start = now;
    l.deadline = now + opts.shard_deadline;
    live.push_back(std::move(l));
  }

  /// A failed attempt: schedule a retry if the budget allows and nothing
  /// else is flying for this shard. Exhaustion is implicit — a shard with
  /// no live attempt, no pending retry and no budget left is picked up by
  /// the fallback phase.
  void after_failure(unsigned shard) {
    ShardState& st = shards[shard];
    if (st.done || st.retry_pending || shard_has_live_attempt(shard)) return;
    if (st.attempts >= opts.max_attempts) return;  // exhausted
    st.retry_pending = true;
    st.retry_ready = Clock::now() + backoff_before(shard, st.attempts + 1);
    ++report.retries;
  }

  /// Starts the SIGTERM -> grace -> SIGKILL escalation for one attempt.
  /// The attempt stays live (drained and eventually reaped by the normal
  /// loop machinery) until its worker actually exits — the loop never
  /// blocks waiting for a signal to land.
  void start_termination(Live& l, Live::TermReason reason) {
    if (l.term != Live::TermReason::kNone) return;
    l.term = reason;
    if (opts.term_grace.count() <= 0) {
      launcher.terminate(l.w);
      l.hard_killed = true;
    } else {
      launcher.terminate_soft(l.w);
      l.kill_at = Clock::now() + opts.term_grace;
    }
  }

  /// First valid blob wins: the shard is done, everything else still
  /// flying for it is torn down (deterministic shards make the duplicates
  /// byte-identical, so which attempt wins is unobservable in the result).
  void supersede_others(unsigned shard, const Live* winner) {
    for (Live& l : live) {
      if (l.finished || l.shard != shard || &l == winner) continue;
      start_termination(l, Live::TermReason::kSuperseded);
    }
    shards[shard].retry_pending = false;
  }

  /// The attempt's worker has exited (status in raw_status). Classifies
  /// the outcome — honoring any termination the supervisor started — and
  /// advances the shard's state machine.
  void complete_attempt(Live& l, int raw_status) {
    l.finished = true;
    close_quietly(l.w.stdout_fd);
    close_quietly(l.w.stderr_fd);
    ShardState& st = shards[l.shard];

    AttemptRecord rec;
    rec.shard = l.shard;
    rec.attempt = l.attempt_no;
    rec.hedge = l.hedge;
    rec.host = l.w.host;
    rec.stderr_excerpt = std::move(l.err);
    rec.wall = elapsed_ms(l.start, Clock::now());

    if (l.term == Live::TermReason::kTimeout) {
      rec.outcome = Outcome::kTimeout;
      rec.term_signal = WIFSIGNALED(raw_status) ? WTERMSIG(raw_status)
                        : l.hard_killed         ? SIGKILL
                                                : SIGTERM;
      rec.detail = "deadline of " +
                   std::to_string(opts.shard_deadline.count()) +
                   " ms exceeded";
    } else if (l.term == Live::TermReason::kSuperseded) {
      // Whether the loser died to the signal or slipped a clean exit in
      // first is unobservable in the result (dedup by shard id); either
      // way it records as superseded.
      rec.outcome = Outcome::kSuperseded;
      rec.term_signal = WIFSIGNALED(raw_status) ? WTERMSIG(raw_status) : 0;
    } else if (WIFSIGNALED(raw_status)) {
      rec.outcome = Outcome::kCrashed;
      rec.term_signal = WTERMSIG(raw_status);
    } else if (!WIFEXITED(raw_status) || WEXITSTATUS(raw_status) != 0) {
      rec.outcome = Outcome::kExitNonzero;
      rec.exit_code = WIFEXITED(raw_status) ? WEXITSTATUS(raw_status) : -1;
      rec.detail = describe_exit_code(rec.exit_code);
    } else {
      rec.exit_code = 0;
      try {
        ShardBlob parsed = parse_shard_blob(l.out.data(), l.out.size());
        if (!(parsed.meta == st.meta)) {
          rec.outcome = Outcome::kMetaMismatch;
          rec.detail = "blob meta does not match the assigned work";
        } else if (st.done) {
          // A duplicate valid blob (hedge raced its primary to the finish
          // line); dedup by shard id — the first one already merged.
          rec.outcome = Outcome::kSuperseded;
        } else {
          rec.outcome = Outcome::kSuccess;
          st.done = true;
          st.accum = std::move(parsed.accum);
          ++done_count;
          completion_ms.push_back(
              static_cast<double>(rec.wall.count()));
        }
      } catch (const WireError& e) {
        rec.outcome = Outcome::kWireReject;
        rec.detail = e.what();
      }
    }

    // Feed the launcher's host health tracking with the final
    // classification — exactly once per reaped handle.
    launcher.attempt_result(l.w, rec.outcome, rec.exit_code);

    const bool succeeded = rec.outcome == Outcome::kSuccess;
    record(std::move(rec));
    if (succeeded) {
      supersede_others(l.shard, &l);
    } else if (!st.done && l.term != Live::TermReason::kSuperseded) {
      after_failure(l.shard);
    }
  }

  /// Drains one fd; returns false once the stream hit EOF (or error).
  bool drain(Live& l, bool is_stdout) {
    const int fd = is_stdout ? l.w.stdout_fd : l.w.stderr_fd;
    std::uint8_t buf[65536];
    for (;;) {
      const ssize_t got = ::read(fd, buf, sizeof(buf));
      if (got > 0) {
        if (is_stdout) {
          // Cap the blob: a runaway worker must not OOM the driver. The
          // attempt fails below as a wire reject once the stream ends (or
          // immediately at the deadline).
          const std::size_t keep = l.out.size() < opts.max_blob_bytes
                                       ? std::min(opts.max_blob_bytes -
                                                      l.out.size(),
                                                  static_cast<std::size_t>(
                                                      got))
                                       : 0;
          l.out.insert(l.out.end(), buf, buf + keep);
        } else {
          const std::size_t keep = l.err_total < opts.stderr_cap
                                       ? std::min(opts.stderr_cap -
                                                      l.err_total,
                                                  static_cast<std::size_t>(
                                                      got))
                                       : 0;
          l.err.append(reinterpret_cast<const char*>(buf), keep);
          if (keep < static_cast<std::size_t>(got) &&
              l.err_total <= opts.stderr_cap) {
            l.err += "\n[stderr truncated]";
          }
          l.err_total += static_cast<std::size_t>(got);
        }
        continue;
      }
      if (got == 0) return false;  // EOF
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;  // treat read errors as end-of-stream
    }
  }

  void run() {
    report.shards += shards.size();
    for (unsigned i = 0; i < shards.size(); ++i) {
      launch_attempt(i, /*hedge=*/false);
    }

    // Runs until every shard is resolved AND every live attempt has been
    // reaped — termination is asynchronous (SIGTERM -> grace -> SIGKILL),
    // so finished shards can still have losers winding down.
    for (;;) {
      Clock::time_point now = Clock::now();

      // Retries whose backoff has elapsed.
      for (unsigned i = 0; i < shards.size(); ++i) {
        ShardState& st = shards[i];
        if (st.retry_pending && !st.done && now >= st.retry_ready) {
          st.retry_pending = false;
          launch_attempt(i, /*hedge=*/false);
        }
      }

      // Straggler hedging: once at least half the shards are in, attempts
      // running past a multiple of the median completion time get a
      // duplicate launch.
      if (opts.hedge_stragglers && !completion_ms.empty() &&
          done_count >= (shards.size() + 1) / 2) {
        const double median = median_of(completion_ms);
        const double threshold = std::max(
            static_cast<double>(opts.straggler_floor.count()),
            opts.straggler_multiple * median);
        std::vector<unsigned> to_hedge;
        for (const Live& l : live) {
          if (l.finished || l.term != Live::TermReason::kNone) continue;
          ShardState& st = shards[l.shard];
          if (st.done || st.retry_pending) continue;
          if (st.hedges >= opts.max_hedges_per_shard) continue;
          if (st.attempts >= opts.max_attempts) continue;
          const double run_ms =
              static_cast<double>(elapsed_ms(l.start, now).count());
          if (run_ms > threshold) to_hedge.push_back(l.shard);
        }
        for (const unsigned shard : to_hedge) {
          ShardState& st = shards[shard];
          if (st.hedges >= opts.max_hedges_per_shard) continue;  // dupes
          ++st.hedges;
          ++report.hedges;
          launch_attempt(shard, /*hedge=*/true);
        }
      }

      // Termination escalation. First pass: attempts past their deadline
      // start the SIGTERM -> grace -> SIGKILL ladder. Second pass:
      // terminating attempts whose grace window expired get the hard kill.
      now = Clock::now();
      for (Live& l : live) {
        if (l.finished) continue;
        if (l.term == Live::TermReason::kNone && now >= l.deadline) {
          start_termination(l, Live::TermReason::kTimeout);
        }
        if (l.term != Live::TermReason::kNone && !l.hard_killed &&
            now >= l.kill_at) {
          launcher.terminate(l.w);
          l.hard_killed = true;
        }
      }

      // Anything left to wait for? (Retry scheduling and hedging above can
      // finish shards only via launch failures; re-check before polling.)
      bool any_pending_retry = false;
      Millis wait = Millis(3'600'000);
      now = Clock::now();
      for (const ShardState& st : shards) {
        if (st.retry_pending && !st.done) {
          any_pending_retry = true;
          wait = std::min(wait, std::max(Millis(0),
                                         elapsed_ms(now, st.retry_ready)));
        }
      }
      bool any_live = false;
      std::vector<pollfd> fds;
      std::vector<std::pair<std::size_t, bool>> fd_owner;  // (live idx, stdout?)
      for (std::size_t i = 0; i < live.size(); ++i) {
        Live& l = live[i];
        if (l.finished) continue;
        any_live = true;
        if (l.term == Live::TermReason::kNone) {
          wait = std::min(wait, std::max(Millis(0),
                                         elapsed_ms(now, l.deadline)));
        } else if (!l.hard_killed) {
          // Terminating: wake for the grace expiry, not the (already
          // passed) deadline — the latter would spin the loop hot.
          wait = std::min(wait, std::max(Millis(0),
                                         elapsed_ms(now, l.kill_at)));
        }
        if (l.out_open) {
          fds.push_back(pollfd{l.w.stdout_fd, POLLIN, 0});
          fd_owner.emplace_back(i, true);
        }
        if (l.err_open) {
          fds.push_back(pollfd{l.w.stderr_fd, POLLIN, 0});
          fd_owner.emplace_back(i, false);
        }
        if (!l.out_open && !l.err_open) {
          // Both streams hit EOF but the WNOHANG reap below has not
          // landed yet: the pipes report EOF the instant the worker
          // closes its stdio, which can beat the process becoming
          // waitable. This attempt has no fd to wake poll() on, so poll
          // at a short tick until the reap lands — without this the loop
          // sleeps until the shard deadline on an already-exited worker.
          wait = std::min(wait, Millis(2));
        }
      }
      if (!any_live && !any_pending_retry) break;  // exhausted -> fallback
      if (opts.hedge_stragglers && any_live) {
        // Wake periodically so straggler detection does not wait for the
        // next fd event or deadline.
        wait = std::min(wait, Millis(20));
      }

      const int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                            static_cast<nfds_t>(fds.size()),
                            static_cast<int>(wait.count()));
      if (rc < 0 && errno != EINTR) {
        throw DispatchError(std::string("poll failed: ") +
                            std::strerror(errno));
      }

      if (rc > 0) {
        for (std::size_t k = 0; k < fds.size(); ++k) {
          if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
          Live& l = live[fd_owner[k].first];
          if (l.finished) continue;
          const bool is_stdout = fd_owner[k].second;
          if (!drain(l, is_stdout)) {
            if (is_stdout) {
              l.out_open = false;
            } else {
              l.err_open = false;
            }
          }
        }
      }

      // Attempts whose streams both hit EOF: reap without blocking — a
      // worker that closed its stdio but keeps running stays subject to
      // its deadline, never to an indefinite waitpid. Terminating attempts
      // take the same path once their worker actually dies (SIGTERM, or
      // the SIGKILL the escalation pass sent).
      for (Live& l : live) {
        if (l.finished || l.out_open || l.err_open) continue;
        int raw_status = 0;
        if (launcher.try_reap(l.w, raw_status)) {
          complete_attempt(l, raw_status);
        }
      }

      // Compact the finished entries so `live` stays small on long sweeps.
      live.erase(std::remove_if(live.begin(), live.end(),
                                [](const Live& l) { return l.finished; }),
                 live.end());
    }
  }

  /// Shards that exhausted their attempt budget: run them in the driver
  /// process — still through the serialize -> parse round-trip, so the
  /// transport semantics (and its validation) stay identical — or throw
  /// with the full report when fallback is disabled.
  void fallback_remaining() {
    for (unsigned i = 0; i < shards.size(); ++i) {
      ShardState& st = shards[i];
      if (st.done) continue;
      if (!opts.fallback_in_process) {
        throw DispatchError(
            "shard " + std::to_string(i) + " failed after " +
            std::to_string(st.attempts) +
            " attempt(s) and in-process fallback is disabled\n" +
            report.to_string());
      }
      const Clock::time_point t0 = Clock::now();
      const CellAccum acc = run_matrix_cell_accum(
          protocol, regime, n, static_cast<std::size_t>(st.range.count),
          st.range.first_seed, cell);
      ShardBlob parsed =
          parse_shard_blob(serialize_shard_blob(st.meta, acc));
      XCP_REQUIRE(parsed.meta == st.meta,
                  "in-process fallback blob failed its own meta check");
      st.accum = std::move(parsed.accum);
      st.done = true;
      ++done_count;
      AttemptRecord rec;
      rec.shard = i;
      rec.attempt = ++st.attempts;
      rec.outcome = Outcome::kFallback;
      rec.exit_code = 0;
      rec.wall = elapsed_ms(t0, Clock::now());
      record(std::move(rec));
    }
  }

  CellAccum merged() {
    CellAccum total;
    for (ShardState& st : shards) {
      total.merge(std::move(st.accum));
    }
    return total;
  }
};

}  // namespace

#endif  // !_WIN32

// ----------------------------------------------------------------- Dispatcher

Dispatcher::Dispatcher(std::string worker_path, DispatchOptions opts)
    : worker_path_(std::move(worker_path)), opts_(std::move(opts)) {
  if (opts_.launcher == nullptr) {
    default_launcher_ = std::make_unique<LocalProcessLauncher>();
    opts_.launcher = default_launcher_.get();
  }
  XCP_REQUIRE(opts_.max_attempts >= 1, "max_attempts must be at least 1");
  XCP_REQUIRE(opts_.shard_deadline.count() > 0,
              "shard_deadline must be positive");
}

Dispatcher::~Dispatcher() = default;

CellAccum Dispatcher::run_cell(ProtocolKind protocol, Regime regime, int n,
                               const std::vector<ShardRange>& ranges,
                               const CellOptions& cell,
                               DispatchReport* report) {
#if defined(_WIN32)
  (void)protocol;
  (void)regime;
  (void)n;
  (void)ranges;
  (void)cell;
  (void)report;
  throw DispatchError("process dispatch is POSIX-only");
#else
  CellRun run{.worker_path = worker_path_,
              .opts = opts_,
              .launcher = *opts_.launcher,
              .protocol = protocol,
              .regime = regime,
              .n = n,
              .cell = cell};
  run.shards.reserve(ranges.size());
  for (const ShardRange& range : ranges) {
    ShardState st;
    st.meta = run.meta_for(range);
    st.range = range;
    run.shards.push_back(std::move(st));
  }
  try {
    run.run();
    run.fallback_remaining();
  } catch (...) {
    // The report is the flight recorder; hand it over even when the sweep
    // dies (the CellRun destructor kills and reaps whatever still flies).
    if (report != nullptr) {
      report->attempts.insert(report->attempts.end(),
                              run.report.attempts.begin(),
                              run.report.attempts.end());
      merge_counters(*report, run.report);
      opts_.launcher->append_host_report(*report);
    }
    throw;
  }
  CellAccum total = run.merged();
  if (report != nullptr) {
    report->attempts.insert(report->attempts.end(),
                            run.report.attempts.begin(),
                            run.report.attempts.end());
    merge_counters(*report, run.report);
    // Pooled launchers refresh the per-host rollups (upsert by host name,
    // cumulative across cells); the default launcher leaves hosts empty.
    opts_.launcher->append_host_report(*report);
  }
  return total;
#endif
}

// ----------------------------------------------------------- distributed_sweep

MatrixCell distributed_sweep(ProtocolKind protocol, Regime regime, int n,
                             std::size_t seeds, unsigned shards,
                             std::uint64_t first_seed,
                             const DistributedOptions& opts) {
  const std::vector<ShardRange> ranges =
      plan_shards(first_seed, seeds, shards, opts.min_seeds_per_shard);

  if (opts.worker_path.empty()) {
    // In-process shards: same partition, same wire round-trip, no process
    // boundary — and therefore nothing to supervise. The report still gets
    // one synthetic success record per shard so callers always see full
    // shard coverage.
    CellAccum total;
    if (opts.report != nullptr) opts.report->shards += ranges.size();
    for (unsigned i = 0; i < ranges.size(); ++i) {
      const ShardRange& range = ranges[i];
      const Clock::time_point t0 = Clock::now();
      ShardMeta m;
      m.protocol = protocol;
      m.regime = regime;
      m.n = n;
      m.first_seed = range.first_seed;
      m.seed_count = range.count;
      m.online = opts.cell.online.enabled;
      m.early_stop = opts.cell.online.early_stop;
      const CellAccum acc = run_matrix_cell_accum(
          protocol, regime, n, range.count, range.first_seed, opts.cell);
      ShardBlob parsed = parse_shard_blob(serialize_shard_blob(m, acc));
      if (!(parsed.meta == m)) {
        throw WireError("shard " + std::to_string(i) +
                        " meta does not match the work it was assigned");
      }
      total.merge(std::move(parsed.accum));
      if (opts.report != nullptr) {
        AttemptRecord rec;
        rec.shard = i;
        rec.attempt = 1;
        rec.outcome = AttemptRecord::Outcome::kSuccess;
        rec.exit_code = 0;
        rec.wall = std::chrono::duration_cast<Millis>(Clock::now() - t0);
        opts.report->attempts.push_back(std::move(rec));
        ++opts.report->launches;
      }
    }
    return cell_from_accum(protocol, regime, seeds, std::move(total));
  }

  Dispatcher dispatcher(opts.worker_path, opts.dispatch);
  CellAccum total = dispatcher.run_cell(protocol, regime, n, ranges,
                                        opts.cell, opts.report);
  return cell_from_accum(protocol, regime, seeds, std::move(total));
}

}  // namespace xcp::exp
