#pragma once
// Shared experiment configuration presets. Every bench builds its scenarios
// from these so that "the paper's environment" means one thing across the
// whole harness.

#include "proto/timebounded.hpp"
#include "proto/weak/protocol.hpp"

namespace xcp::exp {

/// Canonical timing assumptions: Delta = 100ms, eps = 5ms, rho = 1e-3,
/// slack = 10ms. All benches sweep around these.
proto::TimingParams default_timing();

/// A synchronous environment exactly matching `assumed` (Thm 1 regime).
proto::EnvironmentConfig conforming_env(const proto::TimingParams& assumed);

/// A partially synchronous environment: GST at `gst_seconds`, post-GST bound
/// = assumed.delta_max, pre-GST delays around `pre_gst_typical`.
proto::EnvironmentConfig partial_env(const proto::TimingParams& assumed,
                                     std::int64_t gst_seconds,
                                     Duration pre_gst_typical);

/// A deterministic-delay synchronous environment: every delivery takes
/// exactly `delta` (net::DelayModel::synchronous), so a broadcast's replies
/// arrive same-instant and coalesce through batched delivery — one
/// simulator event per committee round instead of one per message. Perfect
/// clocks: the regime is about delivery determinism, not drift.
proto::EnvironmentConfig deterministic_env(Duration delta);

/// Time-bounded protocol config for the Thm 1 experiments.
proto::TimeBoundedConfig thm1_config(int n, std::uint64_t seed);

/// Weak protocol config for the Thm 3 experiments.
proto::weak::WeakConfig thm3_config(proto::weak::TmKind tm, int n,
                                    std::uint64_t seed);

}  // namespace xcp::exp
