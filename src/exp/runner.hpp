#pragma once
// Property-matrix runner: executes a named protocol under a named regime and
// summarizes which of the paper's requirements held. Feeds the
// TAB-properties bench (the §1/§5 comparison) and several tests.

#include <cstdint>
#include <string>
#include <vector>

#include "props/checkers.hpp"
#include "props/online.hpp"
#include "proto/outcome.hpp"

namespace xcp::exp {

enum class ProtocolKind {
  kTimeBounded,          // Thm 1 (drift-compensated universal protocol)
  kUniversalNaive,       // [4] universal, no drift handling
  kInterledgerAtomic,    // [4] atomic, deadline notary
  kWeakTrusted,          // Thm 3, trusted-party TM
  kWeakContract,         // Thm 3, smart-contract TM
  kWeakCommittee,        // Thm 3, notary-committee TM
};

const char* protocol_kind_name(ProtocolKind k);

enum class Regime {
  kSynchronyConforming,   // synchronous, drift within rho
  kSynchronyHighDrift,    // synchronous, drift 20x beyond the schedule's rho
  kPartialSynchrony,      // GST environment, no timing adversary
  kPartialSynchronyAdversarial,  // GST + certificate-griefing adversary
};

const char* regime_name(Regime r);

struct MatrixCell {
  ProtocolKind protocol;
  Regime regime;
  std::size_t runs = 0;
  std::size_t safety_violations = 0;   // ES/CS/CC failures
  std::size_t termination_failures = 0;
  std::size_t liveness_failures = 0;   // Bob unpaid in all-honest runs
  std::vector<std::string> example_violations;

  // Online-checking telemetry (streamed per seed; zero when the cell ran
  // without a monitor, e.g. the buffered reference).
  std::size_t early_stops = 0;         // seeds whose run stopped at decision
  Duration decided_at_total;           // sum of decided-at over early stops
  std::uint64_t events_total = 0;      // simulator events across all seeds

  /// Whole-cell equality, used by the distributed-sweep byte-identity
  /// checks; defaulted so a new field can never be forgotten.
  bool operator==(const MatrixCell&) const = default;

  bool safety_ok() const { return safety_violations == 0; }
  bool termination_ok() const { return termination_failures == 0; }
  bool liveness_ok() const { return liveness_failures == 0; }
  double early_stop_rate() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(early_stops) /
                           static_cast<double>(runs);
  }
};

/// How a matrix cell drives the online-checking subsystem.
struct CellOptions {
  /// Attach the OnlineMonitor and terminate each seed the moment its
  /// verdict is decided (every abiding participant terminated). The
  /// default: verdict-proportional sweep time. Checker verdicts are
  /// unchanged by construction — run_matrix_cell_differential proves it.
  props::OnlineOptions online{/*enabled=*/true, /*early_stop=*/true};
};

/// Worker-local fold state for the streaming cell sweep — and the unit
/// shipped between sweep-shard processes (exp/shard.hpp). Merge is a plain
/// sum except for the example list, which keeps the (seed, ordinal)-lowest
/// few — every operation is insensitive to how seeds were partitioned
/// across workers or shards and associative across merges, so the merged
/// cell is bit-identical for any worker count, shard count, or merge order.
/// Merging a default-constructed CellAccum is a no-op (idle worker slots
/// and empty shards merge too).
struct CellAccum {
  static constexpr std::size_t kMaxExamples = 4;

  struct Example {
    std::uint64_t seed = 0;
    std::uint32_t ordinal = 0;  // order within the seed's checker pass
    std::string text;
  };

  std::size_t safety_violations = 0;
  std::size_t termination_failures = 0;
  std::size_t liveness_failures = 0;
  // Early-stop telemetry: plain sums, so the merge stays order-insensitive.
  std::size_t early_stops = 0;
  Duration decided_at_total;
  std::uint64_t events_total = 0;
  std::vector<Example> examples;  // sorted by (seed, ordinal), capped

  void merge(CellAccum&& o);
};

/// The streaming sweep behind run_matrix_cell, exposed as an accumulator:
/// runs seeds [first_seed, first_seed + seeds) and returns the merged fold
/// state instead of a finished cell. This is the unit of work a sweep shard
/// (one process of exp::distributed_sweep) executes; folding shard accums
/// with CellAccum::merge and finishing with cell_from_accum reproduces
/// run_matrix_cell byte-for-byte.
CellAccum run_matrix_cell_accum(ProtocolKind protocol, Regime regime, int n,
                                std::size_t seeds,
                                std::uint64_t first_seed = 1,
                                const CellOptions& opts = {});

/// Assembles the returned MatrixCell from a merged accumulator — the one
/// place the accumulator's fields map onto the cell's, shared by the
/// streaming, differential and distributed paths. `runs` is the total seed
/// count the accumulator covers.
MatrixCell cell_from_accum(ProtocolKind protocol, Regime regime,
                           std::size_t runs, CellAccum&& acc);

/// Runs `seeds` all-honest executions of `protocol` under `regime` (chain
/// length n) and aggregates property outcomes. Streaming: each seed's
/// RunRecord is checked and folded into a worker-local accumulator the
/// moment it completes (exp::sweep_accumulate), so the sweep's live state
/// is O(workers) — whole-run traces are never buffered. With the default
/// options each seed also stops at its deciding event (early-stop counts
/// and decided-at sums fold into the cell). Results are bit-identical for
/// any worker count (and, field-for-field on the verdict counters, to the
/// buffered full-horizon variant below).
MatrixCell run_matrix_cell(ProtocolKind protocol, Regime regime, int n,
                           std::size_t seeds, std::uint64_t first_seed = 1,
                           const CellOptions& opts = {});

/// The pre-streaming implementation: buffers every seed's whole RunRecord
/// (trace included) before checking, always to the full horizon. Kept as
/// the A/B twin for peak-RSS measurements and as the reference side of the
/// streaming differential test; produces byte-identical verdict counters.
MatrixCell run_matrix_cell_buffered(ProtocolKind protocol, Regime regime,
                                    int n, std::size_t seeds,
                                    std::uint64_t first_seed = 1);

/// Differential mode: every seed is executed twice — once with early
/// termination, once to the full horizon with the monitor attached — and
/// the two runs' verdicts are required to agree event-for-event:
///  - the live online verdicts equal a post-mortem replay of the full
///    trace through fresh machines (same verdict, decided-at time and
///    deciding event ordinal),
///  - the online verdicts equal the batch checkers' answers on the
///    full-horizon record (bob_paid, termination, CC, abort count),
///  - the early-stopped record folds to byte-identical cell verdicts.
/// Throws (XCP_REQUIRE) on any divergence; returns the early-stop cell.
MatrixCell run_matrix_cell_differential(ProtocolKind protocol, Regime regime,
                                        int n, std::size_t seeds,
                                        std::uint64_t first_seed = 1);

}  // namespace xcp::exp
