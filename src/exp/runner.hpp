#pragma once
// Property-matrix runner: executes a named protocol under a named regime and
// summarizes which of the paper's requirements held. Feeds the
// TAB-properties bench (the §1/§5 comparison) and several tests.

#include <string>
#include <vector>

#include "props/checkers.hpp"
#include "proto/outcome.hpp"

namespace xcp::exp {

enum class ProtocolKind {
  kTimeBounded,          // Thm 1 (drift-compensated universal protocol)
  kUniversalNaive,       // [4] universal, no drift handling
  kInterledgerAtomic,    // [4] atomic, deadline notary
  kWeakTrusted,          // Thm 3, trusted-party TM
  kWeakContract,         // Thm 3, smart-contract TM
  kWeakCommittee,        // Thm 3, notary-committee TM
};

const char* protocol_kind_name(ProtocolKind k);

enum class Regime {
  kSynchronyConforming,   // synchronous, drift within rho
  kSynchronyHighDrift,    // synchronous, drift 20x beyond the schedule's rho
  kPartialSynchrony,      // GST environment, no timing adversary
  kPartialSynchronyAdversarial,  // GST + certificate-griefing adversary
};

const char* regime_name(Regime r);

struct MatrixCell {
  ProtocolKind protocol;
  Regime regime;
  std::size_t runs = 0;
  std::size_t safety_violations = 0;   // ES/CS/CC failures
  std::size_t termination_failures = 0;
  std::size_t liveness_failures = 0;   // Bob unpaid in all-honest runs
  std::vector<std::string> example_violations;

  bool safety_ok() const { return safety_violations == 0; }
  bool termination_ok() const { return termination_failures == 0; }
  bool liveness_ok() const { return liveness_failures == 0; }
};

/// Runs `seeds` all-honest executions of `protocol` under `regime` (chain
/// length n) and aggregates property outcomes. Streaming: each seed's
/// RunRecord is checked and folded into a worker-local accumulator the
/// moment it completes (exp::sweep_accumulate), so the sweep's live state
/// is O(workers) — whole-run traces are never buffered. Results are
/// bit-identical for any worker count (and to the buffered variant below).
MatrixCell run_matrix_cell(ProtocolKind protocol, Regime regime, int n,
                           std::size_t seeds, std::uint64_t first_seed = 1);

/// The pre-streaming implementation: buffers every seed's whole RunRecord
/// (trace included) before checking. Kept as the A/B twin for peak-RSS
/// measurements and as the reference side of the streaming differential
/// test; produces byte-identical MatrixCells.
MatrixCell run_matrix_cell_buffered(ProtocolKind protocol, Regime regime,
                                    int n, std::size_t seeds,
                                    std::uint64_t first_seed = 1);

}  // namespace xcp::exp
