#pragma once
// Parallel seed sweeps. The simulator is single-threaded and deterministic;
// throughput comes from running many independent (seed, config) simulations
// concurrently — the classic embarrassingly-parallel HPC pattern. Work is
// fanned out over a bounded pool of std::async tasks; results return in seed
// order so aggregation stays deterministic.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <future>
#include <thread>
#include <vector>

namespace xcp::exp {

/// Runs `fn(seed)` for seeds [first, first+count) across `workers` threads
/// (0 = hardware concurrency). Results are returned in seed order.
template <typename R>
std::vector<R> parallel_sweep(std::uint64_t first_seed, std::size_t count,
                              const std::function<R(std::uint64_t)>& fn,
                              unsigned workers = 0) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  std::vector<R> results(count);
  std::size_t next = 0;
  while (next < count) {
    const std::size_t batch = std::min<std::size_t>(workers, count - next);
    std::vector<std::future<R>> futs;
    futs.reserve(batch);
    for (std::size_t k = 0; k < batch; ++k) {
      const std::uint64_t seed = first_seed + next + k;
      futs.push_back(std::async(std::launch::async, fn, seed));
    }
    for (std::size_t k = 0; k < batch; ++k) {
      results[next + k] = futs[k].get();
    }
    next += batch;
  }
  return results;
}

/// Counts how many sweep results satisfy a predicate.
template <typename R>
std::size_t count_where(const std::vector<R>& results,
                        const std::function<bool(const R&)>& pred) {
  std::size_t n = 0;
  for (const auto& r : results) n += pred(r) ? 1 : 0;
  return n;
}

}  // namespace xcp::exp
