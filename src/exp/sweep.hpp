#pragma once
// Parallel seed sweeps. The simulator is single-threaded and deterministic;
// throughput comes from running many independent (seed, config) simulations
// concurrently — the classic embarrassingly-parallel HPC pattern.
//
// Work distribution: a process-wide persistent worker pool (SweepPool).
// Workers pull seed indices off an atomic counter, so a slow seed never
// holds a whole batch hostage the way the old fixed-size std::async batches
// did (no barrier until the sweep itself completes), and threads are reused
// across sweeps instead of being spawned per batch. The calling thread
// participates as a worker, so `workers = 1` runs perfectly inline.
//
// Determinism: each result is written to its own slot, indexed by seed, and
// every fn(seed) is a pure function of the seed (the runtime is sharded:
// thread-local body pools, a pre-seeded read-mostly MsgKind table), so the
// returned vector is bit-identical for workers = 1 and workers = N.
//
// parallel_sweep/count_where are templates over the callable: the sweep
// function is invoked directly (inlined per seed), not through a per-seed
// std::function indirection; the pool erases the *sweep*, never the seed.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <iterator>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace xcp::exp {

namespace detail {

/// Persistent worker pool shared by every sweep in the process. Threads are
/// created on demand (up to the largest worker count ever requested), sleep
/// between sweeps, and drain seeds from an atomic cursor during one.
class SweepPool {
 public:
  /// One unit of sweep work: ctx is the sweep's stack-owned state.
  /// `worker` is the ordinal of the draining thread within this sweep —
  /// 0 for the calling thread, 1..workers-1 for pool threads — so a sweep
  /// can keep race-free worker-local state (sweep_accumulate's
  /// accumulators) without any thread-identity bookkeeping of its own.
  using Task = void (*)(void* ctx, std::uint64_t seed, std::size_t index,
                        unsigned worker);

  struct Options {
    /// Pin pool workers to CPUs, round-robin over the CPUs the process may
    /// run on (pthread_setaffinity_np). Off by default: on shared boxes
    /// the scheduler usually does better; on dedicated multi-socket sweep
    /// machines pinning keeps each worker's thread-local pools (bodies,
    /// trace chunks) on one node. The calling thread is never re-pinned —
    /// only pool-owned workers. Takes effect at each worker's next job;
    /// disabling restores the worker's original mask. No-op off Linux.
    bool pin_workers = false;
  };

  static SweepPool& instance();

  void set_options(const Options& opts);
  Options options() const;

  /// Runs task(ctx, first_seed + i, i, worker) for i in [0, count) across
  /// up to `workers` threads (0 = hardware concurrency), including the
  /// caller. Returns when every index has completed; completion of index i
  /// happens-before the return (results are safe to read unlocked).
  void run(std::uint64_t first_seed, std::size_t count, unsigned workers,
           Task task, void* ctx);

  /// The worker count run() will actually use for `count` units and a
  /// `workers` request (0 = hardware concurrency): how many worker-local
  /// accumulator slots a streaming sweep needs. Nested sweeps (from inside
  /// a sweep task) run inline on one thread.
  static unsigned resolved_workers(std::size_t count, unsigned workers);

  ~SweepPool();

 private:
  SweepPool() = default;
  void worker_main(unsigned id);
  void drain(Task task, void* ctx, std::uint64_t first_seed,
             std::size_t count, unsigned worker);
  /// Applies/undoes this worker thread's pinning to match `pin`.
  static void apply_affinity(unsigned id, bool pin);

  std::mutex run_mu_;  // serialises concurrent run() callers
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::vector<std::thread> threads_;
  unsigned busy_ = 0;  // workers currently draining; run() returns at 0
  // Current job, published under mu_ with a bumped epoch.
  Task task_ = nullptr;
  void* ctx_ = nullptr;
  std::uint64_t first_seed_ = 0;
  std::size_t count_ = 0;
  unsigned active_ = 0;  // pool threads allowed to join the current job
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  Options options_;  // published under mu_ with the job state
  std::atomic<std::size_t> next_{0};     // seed-index cursor
  std::atomic<std::size_t> pending_{0};  // indices not yet completed
};

}  // namespace detail

/// Runs `fn(seed)` for seeds [first, first+count) across `workers` threads
/// (0 = hardware concurrency). Results are returned in seed order and are
/// identical for any worker count. R must be default-constructible (as it
/// always was); exceptions thrown by fn are rethrown after the sweep.
template <typename R, typename Fn>
std::vector<R> parallel_sweep(std::uint64_t first_seed, std::size_t count,
                              Fn&& fn, unsigned workers = 0) {
  static_assert(std::is_default_constructible_v<R>,
                "sweep result type must be default-constructible");
  if (count == 0) return {};
  // Workers write into a plain array, one slot per seed: no vector<bool>
  // proxy-reference sharing, no cross-seed synchronisation.
  std::unique_ptr<R[]> slots(new R[count]);
  struct Ctx {
    std::remove_reference_t<Fn>* fn;
    R* slots;
    std::exception_ptr error;
    std::mutex mu;
    std::atomic<bool> failed{false};
  };
  Ctx ctx{std::addressof(fn), slots.get(), nullptr, {}, {}};
  detail::SweepPool::instance().run(
      first_seed, count, workers,
      [](void* c, std::uint64_t seed, std::size_t index, unsigned) {
        auto* x = static_cast<Ctx*>(c);
        // Once any seed has thrown, the sweep's result is the exception:
        // skip the remaining (potentially expensive) runs instead of
        // finishing a doomed sweep.
        if (x->failed.load(std::memory_order_relaxed)) return;
        try {
          x->slots[index] = (*x->fn)(seed);
        } catch (...) {
          x->failed.store(true, std::memory_order_relaxed);
          const std::lock_guard<std::mutex> lock(x->mu);
          if (!x->error) x->error = std::current_exception();
        }
      },
      &ctx);
  if (ctx.error) std::rethrow_exception(ctx.error);
  std::vector<R> results;
  results.reserve(count);
  std::move(slots.get(), slots.get() + count, std::back_inserter(results));
  return results;
}

/// Counts how many sweep results satisfy a predicate.
template <typename R, typename Pred>
std::size_t count_where(const std::vector<R>& results, Pred&& pred) {
  std::size_t n = 0;
  for (const auto& r : results) n += pred(r) ? 1 : 0;
  return n;
}

/// Streaming sweep: runs `fn(seed, acc)` for seeds [first, first+count),
/// folding each seed's contribution into a worker-local accumulator the
/// moment the seed completes — live state is O(workers), not O(seeds), so
/// nothing (traces, RunRecords) is buffered across the sweep. Worker
/// accumulators are merged with `acc.merge(std::move(other))` after
/// quiescence and the combined Acc is returned.
///
/// Determinism contract: fn must be a pure function of the seed (as for
/// parallel_sweep), each worker receives its seeds in increasing order, and
/// merge must be insensitive to how seeds were partitioned across workers —
/// sums, min/max and seed-keyed ordered merges all qualify. Merging a
/// default-constructed Acc must be a no-op (idle worker slots merge too).
/// Under that contract the result is bit-identical for any worker count.
template <typename Acc, typename Fn>
Acc sweep_accumulate(std::uint64_t first_seed, std::size_t count, Fn&& fn,
                     unsigned workers = 0) {
  static_assert(std::is_default_constructible_v<Acc>,
                "sweep accumulator must be default-constructible");
  if (count == 0) return Acc{};
  const unsigned w = detail::SweepPool::resolved_workers(count, workers);
  // One accumulator per worker ordinal; the pool hands every task its
  // ordinal, so no two threads ever touch the same slot.
  std::unique_ptr<Acc[]> accs(new Acc[w]);
  struct Ctx {
    std::remove_reference_t<Fn>* fn;
    Acc* accs;
    std::exception_ptr error;
    std::mutex mu;
    std::atomic<bool> failed{false};
  };
  Ctx ctx{std::addressof(fn), accs.get(), nullptr, {}, {}};
  detail::SweepPool::instance().run(
      first_seed, count, w,
      [](void* c, std::uint64_t seed, std::size_t, unsigned worker) {
        auto* x = static_cast<Ctx*>(c);
        if (x->failed.load(std::memory_order_relaxed)) return;
        try {
          (*x->fn)(seed, x->accs[worker]);
        } catch (...) {
          x->failed.store(true, std::memory_order_relaxed);
          const std::lock_guard<std::mutex> lock(x->mu);
          if (!x->error) x->error = std::current_exception();
        }
      },
      &ctx);
  if (ctx.error) std::rethrow_exception(ctx.error);
  for (unsigned i = 1; i < w; ++i) accs[0].merge(std::move(accs[i]));
  return std::move(accs[0]);
}

}  // namespace xcp::exp
