#include "exp/shard.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "support/status.hpp"

namespace xcp::exp {

namespace {

// v1 field tags. 1..7 are the CellAccum fields (all required, written in
// tag order); kTagMeta appears only in shard-envelope blobs. A future v2
// allocates new tags and widens the required set per version.
enum : std::uint16_t {
  kTagSafety = 1,
  kTagTermination = 2,
  kTagLiveness = 3,
  kTagEarlyStops = 4,
  kTagDecidedAt = 5,
  kTagEvents = 6,
  kTagExamples = 7,
  kTagMeta = 8,
};
constexpr std::uint16_t kLastAccumTag = kTagExamples;

// ------------------------------------------------------------ LE writing

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (std::uint32_t i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (std::uint32_t i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));  // two's complement LE
}

/// Opens a { tag, length, payload } frame; length is backpatched on close
/// so payload writers never pre-compute sizes.
std::size_t begin_frame(std::vector<std::uint8_t>& out, std::uint16_t tag) {
  put_u16(out, tag);
  const std::size_t len_at = out.size();
  put_u32(out, 0);
  return len_at;
}

void end_frame(std::vector<std::uint8_t>& out, std::size_t len_at) {
  const std::size_t len = out.size() - (len_at + 4);
  XCP_REQUIRE(len <= 0xffffffffu, "wire frame too large");
  for (int i = 0; i < 4; ++i) {
    out[len_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
  }
}

void put_u64_frame(std::vector<std::uint8_t>& out, std::uint16_t tag,
                   std::uint64_t v) {
  const std::size_t at = begin_frame(out, tag);
  put_u64(out, v);
  end_frame(out, at);
}

// ------------------------------------------------------------ LE reading

/// Bounds-checked cursor over an untrusted blob: every read throws
/// WireError instead of walking off the end, so truncation is always a
/// clean rejection. Errors carry the absolute byte offset into the blob
/// (base_off threads through nested per-frame readers) plus the frame
/// context — the same diagnostic shape as net::wire's Reader.
struct Reader {
  const std::uint8_t* base;
  const std::uint8_t* p;
  std::size_t left;
  std::string what;  // context for error messages
  std::size_t base_off = 0;  // absolute offset of `base` within the blob

  std::size_t offset() const {
    return base_off + static_cast<std::size_t>(p - base);
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw WireError(what + ": " + msg + " at offset " +
                        std::to_string(offset()),
                    offset());
  }
  void need(std::size_t n) const {
    if (left < n) {
      fail("truncated: need " + std::to_string(n) + " byte(s), " +
           std::to_string(left) + " left");
    }
  }
  std::uint8_t u8() {
    need(1);
    const std::uint8_t v = p[0];
    p += 1;
    left -= 1;
    return v;
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
    p += 2;
    left -= 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    left -= 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    left -= 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string bytes(std::size_t n) {
    need(n);
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return s;
  }
};

void put_accum_fields(std::vector<std::uint8_t>& out,
                            const CellAccum& acc) {
  put_u64_frame(out, kTagSafety, acc.safety_violations);
  put_u64_frame(out, kTagTermination, acc.termination_failures);
  put_u64_frame(out, kTagLiveness, acc.liveness_failures);
  put_u64_frame(out, kTagEarlyStops, acc.early_stops);
  {
    const std::size_t at = begin_frame(out, kTagDecidedAt);
    put_i64(out, acc.decided_at_total.count());
    end_frame(out, at);
  }
  put_u64_frame(out, kTagEvents, acc.events_total);
  {
    const std::size_t at = begin_frame(out, kTagExamples);
    XCP_REQUIRE(acc.examples.size() <= 0xffffffffu, "example list too large");
    put_u32(out, static_cast<std::uint32_t>(acc.examples.size()));
    for (const CellAccum::Example& ex : acc.examples) {
      put_u64(out, ex.seed);
      put_u32(out, ex.ordinal);
      XCP_REQUIRE(ex.text.size() <= 0xffffffffu, "example text too large");
      put_u32(out, static_cast<std::uint32_t>(ex.text.size()));
      out.insert(out.end(), ex.text.begin(), ex.text.end());
    }
    end_frame(out, at);
  }
}

void put_header(std::vector<std::uint8_t>& out) {
  put_u32(out, kWireMagic);
  put_u16(out, kWireVersion);
  put_u16(out, 0);  // reserved, must be zero
}

/// Shared frame-walking parser. `want_meta` selects the envelope layout:
/// the meta frame is required there and rejected in bare accum blobs.
ShardBlob parse_blob(const std::uint8_t* data, std::size_t size,
                     bool want_meta) {
  Reader r{data, data, size, want_meta ? "shard blob" : "accum blob"};
  if (r.u32() != kWireMagic) r.fail("bad magic");
  const std::uint16_t version = r.u16();
  if (version > kWireVersion) {
    r.fail("payload version " + std::to_string(version) +
           " newer than reader (max " + std::to_string(kWireVersion) + ")");
  }
  if (version < kWireMinVersion) {
    r.fail("payload version " + std::to_string(version) +
           " older than supported minimum " +
           std::to_string(kWireMinVersion));
  }
  if (r.u16() != 0) r.fail("nonzero reserved header field");

  ShardBlob out;
  std::uint32_t seen = 0;
  while (r.left != 0) {
    const std::size_t frame_at = r.offset();
    const std::uint16_t tag = r.u16();
    const std::uint32_t len = r.u32();
    r.need(len);
    if (tag == 0 || tag > kTagMeta || (tag == kTagMeta && !want_meta)) {
      throw WireError("unknown field tag " + std::to_string(tag) +
                          " in version " + std::to_string(version) +
                          " blob at offset " + std::to_string(frame_at),
                      frame_at);
    }
    if (seen & (1u << tag)) {
      throw WireError("duplicate field tag " + std::to_string(tag) +
                          " at offset " + std::to_string(frame_at),
                      frame_at);
    }
    seen |= 1u << tag;
    // A nested reader bounded by the frame keeps a corrupt length from
    // letting a field read its neighbour's bytes; its offsets stay
    // absolute via base_off so diagnostics point into the whole blob.
    Reader f{r.p, r.p, len, "field tag " + std::to_string(tag), r.offset()};
    r.p += len;
    r.left -= len;
    switch (tag) {
      case kTagSafety: out.accum.safety_violations = f.u64(); break;
      case kTagTermination: out.accum.termination_failures = f.u64(); break;
      case kTagLiveness: out.accum.liveness_failures = f.u64(); break;
      case kTagEarlyStops: out.accum.early_stops = f.u64(); break;
      case kTagDecidedAt:
        out.accum.decided_at_total = Duration::micros(f.i64());
        break;
      case kTagEvents: out.accum.events_total = f.u64(); break;
      case kTagExamples: {
        const std::uint32_t count = f.u32();
        // Enforce CellAccum's list invariant at the trust boundary:
        // merge()'s two-pointer example merge relies on a sorted, capped
        // list, so a blob that violates it would be silently
        // misinterpreted downstream rather than rejected here.
        if (count > CellAccum::kMaxExamples) {
          f.fail("example count " + std::to_string(count) +
                 " exceeds the accumulator cap of " +
                 std::to_string(CellAccum::kMaxExamples));
        }
        out.accum.examples.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          CellAccum::Example ex;
          ex.seed = f.u64();
          ex.ordinal = f.u32();
          const std::uint32_t text_len = f.u32();
          ex.text = f.bytes(text_len);
          if (!out.accum.examples.empty()) {
            const CellAccum::Example& prev = out.accum.examples.back();
            if (std::pair(prev.seed, prev.ordinal) >=
                std::pair(ex.seed, ex.ordinal)) {
              f.fail("example list not strictly ordered by (seed, ordinal)");
            }
          }
          out.accum.examples.push_back(std::move(ex));
        }
        break;
      }
      case kTagMeta: {
        const std::uint32_t protocol = f.u32();
        const std::uint32_t regime = f.u32();
        if (protocol > static_cast<std::uint32_t>(
                           ProtocolKind::kWeakCommittee)) {
          f.fail("meta protocol ordinal out of range");
        }
        if (regime > static_cast<std::uint32_t>(
                         Regime::kPartialSynchronyAdversarial)) {
          f.fail("meta regime ordinal out of range");
        }
        out.meta.protocol = static_cast<ProtocolKind>(protocol);
        out.meta.regime = static_cast<Regime>(regime);
        out.meta.n = static_cast<std::int32_t>(f.u32());
        out.meta.first_seed = f.u64();
        out.meta.seed_count = f.u64();
        out.meta.online = f.u8() != 0;
        out.meta.early_stop = f.u8() != 0;
        break;
      }
      default:
        // The range guard above already rejected out-of-range tags;
        // if an enumerator is added without a case here, fail loudly
        // instead of silently dropping the field's bytes.
        f.fail("unhandled field tag " + std::to_string(tag));
    }
    if (f.left != 0) {
      f.fail("frame has " + std::to_string(f.left) + " trailing byte(s)");
    }
  }
  for (std::uint16_t tag = 1; tag <= kLastAccumTag; ++tag) {
    if (!(seen & (1u << tag))) {
      r.fail("missing required field tag " + std::to_string(tag));
    }
  }
  if (want_meta && !(seen & (1u << kTagMeta))) {
    r.fail("missing shard meta field");
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> serialize_cell_accum(const CellAccum& acc) {
  std::vector<std::uint8_t> out;
  put_header(out);
  put_accum_fields(out, acc);
  return out;
}

CellAccum parse_cell_accum(const std::uint8_t* data, std::size_t size) {
  return parse_blob(data, size, /*want_meta=*/false).accum;
}

std::vector<std::uint8_t> serialize_shard_blob(const ShardMeta& meta,
                                               const CellAccum& acc) {
  std::vector<std::uint8_t> out;
  put_header(out);
  {
    const std::size_t at = begin_frame(out, kTagMeta);
    put_u32(out, static_cast<std::uint32_t>(meta.protocol));
    put_u32(out, static_cast<std::uint32_t>(meta.regime));
    put_u32(out, static_cast<std::uint32_t>(meta.n));
    put_u64(out, meta.first_seed);
    put_u64(out, meta.seed_count);
    put_u8(out, meta.online ? 1 : 0);
    put_u8(out, meta.early_stop ? 1 : 0);
    end_frame(out, at);
  }
  put_accum_fields(out, acc);
  return out;
}

ShardBlob parse_shard_blob(const std::uint8_t* data, std::size_t size) {
  return parse_blob(data, size, /*want_meta=*/true);
}

const char* protocol_token(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kTimeBounded: return "time-bounded";
    case ProtocolKind::kUniversalNaive: return "universal-naive";
    case ProtocolKind::kInterledgerAtomic: return "interledger-atomic";
    case ProtocolKind::kWeakTrusted: return "weak-trusted";
    case ProtocolKind::kWeakContract: return "weak-contract";
    case ProtocolKind::kWeakCommittee: return "weak-committee";
  }
  return "?";
}

const char* regime_token(Regime r) {
  switch (r) {
    case Regime::kSynchronyConforming: return "synchrony";
    case Regime::kSynchronyHighDrift: return "synchrony-drift";
    case Regime::kPartialSynchrony: return "partial-synchrony";
    case Regime::kPartialSynchronyAdversarial: return "partial-adversary";
  }
  return "?";
}

bool parse_protocol_token(const std::string& token, ProtocolKind& out) {
  for (const ProtocolKind k :
       {ProtocolKind::kTimeBounded, ProtocolKind::kUniversalNaive,
        ProtocolKind::kInterledgerAtomic, ProtocolKind::kWeakTrusted,
        ProtocolKind::kWeakContract, ProtocolKind::kWeakCommittee}) {
    if (token == protocol_token(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

bool parse_regime_token(const std::string& token, Regime& out) {
  for (const Regime r :
       {Regime::kSynchronyConforming, Regime::kSynchronyHighDrift,
        Regime::kPartialSynchrony, Regime::kPartialSynchronyAdversarial}) {
    if (token == regime_token(r)) {
      out = r;
      return true;
    }
  }
  return false;
}

std::string default_worker_path() {
#if !defined(_WIN32)
  if (const char* env = std::getenv("XCP_SWEEP_SHARD_BIN")) {
    // An explicitly-set path that is unusable is a configuration error:
    // falling through would silently degrade CI's transport checks to
    // in-process shards (or a skip) while staying green.
    if (access(env, X_OK) != 0) {
      throw std::runtime_error(
          std::string("XCP_SWEEP_SHARD_BIN is set but not executable: ") +
          env);
    }
    return env;
  }
  const char* local = "./xcp_sweep_shard";
  if (access(local, X_OK) == 0) return local;
#endif
  return {};
}

std::vector<ShardRange> plan_shards(std::uint64_t first_seed,
                                    std::size_t seeds, unsigned shards,
                                    std::size_t min_seeds_per_shard) {
  XCP_REQUIRE(shards > 0, "plan_shards needs at least one shard");
  // The anti-sliver heuristic only ever *narrows* the spread: seeds go to
  // the leading `spread` shards so each non-empty shard gets at least
  // min_seeds_per_shard (one shard minimum; min = 0 keeps all of them).
  std::uint64_t spread = shards;
  if (min_seeds_per_shard > 0) {
    const std::uint64_t fit = seeds / min_seeds_per_shard;
    spread = std::max<std::uint64_t>(1, std::min<std::uint64_t>(spread, fit));
  }
  std::vector<ShardRange> out;
  out.reserve(shards);
  const std::uint64_t base = seeds / spread;
  const std::uint64_t extra = seeds % spread;
  std::uint64_t next = first_seed;
  for (unsigned i = 0; i < shards; ++i) {
    const std::uint64_t count =
        i < spread ? base + (i < extra ? 1 : 0) : 0;
    out.push_back(ShardRange{next, count});
    next += count;
  }
  return out;
}

}  // namespace xcp::exp
