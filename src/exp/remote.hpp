#pragma once
// The remote rung of the sweep dispatcher: WorkerLauncher implementations
// that place shard attempts on a health-tracked pool of execution hosts
// (exp/host_pool.hpp) while the Dispatcher's supervision policy — deadlines,
// retry/backoff, hedging, in-process fallback — applies unchanged, because
// everything here stays behind the launch/terminate/reap seam.
//
//   PooledLauncher      placement + health accounting, transport-agnostic:
//                       acquires a host per launch, re-tries surviving hosts
//                       when one refuses, degrades to plain local exec when
//                       the pool empties, and feeds attempt outcomes back
//                       into quarantine/blacklist bookkeeping;
//   RemoteLauncher      execs the worker through a pluggable command
//                       template ("ssh host cmd" in production, "sh -c cmd"
//                       for single-box CI) — the transport process's pid and
//                       pipe fds are what the dispatcher supervises, so a
//                       dead link looks exactly like a dead worker;
//   FakeRemoteLauncher  deterministic host-fault harness for tests: per-host
//                       fault schedules (dead-at-launch, dies-mid-shard,
//                       slow-link, flapping, partition) realized by local
//                       worker processes, so byte-identity under host churn
//                       is provable without a cluster.
//
// The degradation ladder, top to bottom: remote host -> another pooled host
// -> local exec -> the dispatcher's own in-process fallback. Every rung is
// recorded (AttemptRecord::host, DispatchReport::hosts), none changes the
// merged bytes. See docs/ROBUSTNESS.md, "The remote rung".

#include <chrono>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "exp/dispatch.hpp"
#include "exp/host_pool.hpp"

namespace xcp::exp {

/// Host name recorded on attempts that ran through the local degradation
/// rung of a pooled launcher (never a real pool member).
inline constexpr const char* kLocalHostName = "(local)";

/// One execution host as named in a host inventory file: the address plus
/// an optional concurrent-slot override (0 = use the pool default).
struct HostSpec {
  std::string host;
  std::size_t slots = 0;
};

/// Parses a host inventory file, one `host[:slots]` entry per line. Blank
/// lines are skipped and `#` starts a comment (whole-line or trailing);
/// surrounding whitespace is trimmed. `slots`, when present, must be a
/// positive integer. Throws std::runtime_error naming the file and line on
/// an unreadable file, an empty host, or a malformed slot count — a typo in
/// a cluster inventory should fail the run loudly, not silently shrink the
/// pool.
std::vector<HostSpec> parse_hosts_file(const std::string& path);

/// Placement + health accounting over a HostPool; subclasses provide the
/// actual transport via launch_on_host. Not thread-safe (the dispatcher's
/// poll loop is single-threaded by design).
class PooledLauncher : public WorkerLauncher {
 public:
  explicit PooledLauncher(HostPool& pool, bool degrade_to_local = true)
      : pool_(pool), degrade_to_local_(degrade_to_local) {}

  /// Tries pooled hosts until one accepts the launch (each refusal is
  /// charged to its host, so a dead host quarantines itself out of the
  /// rotation here, without consuming the shard's retry budget). When the
  /// pool has no usable host: plain local exec if degrade_to_local, else
  /// DispatchError.
  WorkerHandle launch(const std::vector<std::string>& argv) final;

  void terminate(const WorkerHandle& w) override;
  void terminate_soft(const WorkerHandle& w) override;
  bool try_reap(const WorkerHandle& w, int& raw_status) override;
  int reap(const WorkerHandle& w) override;

  void attempt_result(const WorkerHandle& w, AttemptOutcome o,
                      int exit_code) override;
  void append_host_report(DispatchReport& report) const override;

  HostPool& pool() { return pool_; }
  const HostPool& pool() const { return pool_; }

  /// Launches that ran on the local rung because no pooled host was usable.
  std::size_t local_degradations() const { return local_degradations_; }

 protected:
  /// Starts the worker on (or via a transport process toward) `host`.
  /// Throws DispatchError when the host refuses; the pool charges it and
  /// placement moves on. Implementations need not set WorkerHandle::host.
  virtual WorkerHandle launch_on_host(const std::string& host,
                                      const std::vector<std::string>& argv) = 0;

  /// Exit codes that indicate the *transport* (not the worker) failed —
  /// charged to the host. Default: none (every nonzero exit is presumed a
  /// worker bug that would reproduce anywhere, so it does not poison the
  /// pool). RemoteLauncher overrides with ssh's {255, 126, 127}.
  virtual bool exit_code_is_host_failure(int exit_code) const {
    (void)exit_code;
    return false;
  }

  LocalProcessLauncher& local() { return local_; }

 private:
  HostPool& pool_;
  LocalProcessLauncher local_;
  bool degrade_to_local_;
  std::size_t local_degradations_ = 0;
};

/// Options for the command-template launcher.
struct RemoteOptions {
  /// The transport command: every element has "{host}" and "{cmd}"
  /// substituted, where {cmd} is the worker argv joined with shell
  /// quoting. argv[0] must be an absolute path (posix_spawn does no PATH
  /// search). See ssh_template() / sh_template().
  std::vector<std::string> command_template;
  /// Transport exit codes charged to the host rather than the worker.
  /// Defaults match ssh: 255 connection failure, 126/127 exec failure.
  std::vector<int> host_failure_exits{255, 126, 127};
  /// Startup probe budget per host (probe_hosts()).
  std::chrono::milliseconds probe_deadline{5'000};

  /// Production default: ssh with BatchMode so a dead host fails fast
  /// instead of prompting.
  static RemoteOptions ssh_template();
  /// Single-box CI / test default: run the command through /bin/sh on the
  /// driver machine — a real exec-template round-trip, no network.
  static RemoteOptions sh_template();
};

/// Shell-quotes one argv vector into a single string safe to pass through
/// `sh -c` or an ssh remote shell.
std::string shell_quote_join(const std::vector<std::string>& argv);

/// The shard-size heuristic: the smallest per-shard seed count that keeps
/// measured worker startup cost to at most `startup_fraction` of shard
/// runtime, given the sweep's throughput. startup_cost < 0 (never
/// measured) or a non-positive rate returns 1 (no constraint).
std::size_t amortized_min_seeds(std::chrono::milliseconds startup_cost,
                                double seeds_per_second,
                                double startup_fraction = 0.1);

/// Execs xcp_sweep_shard on pooled hosts through RemoteOptions'
/// command_template. The spawned transport process (ssh, sh) is what the
/// dispatcher supervises: its pipes carry the worker's stdout/stderr, its
/// exit mirrors the worker's (ssh forwards the remote exit code), and
/// killing it tears the attempt down — SIGTERM first, so ssh can close the
/// far end (the dispatcher's term_grace exists for exactly this).
class RemoteLauncher : public PooledLauncher {
 public:
  RemoteLauncher(HostPool& pool, RemoteOptions opts,
                 bool degrade_to_local = true);

  /// Probes every registered host by running `true` through the template:
  /// records the round-trip as the host's startup cost (the shard-size
  /// heuristic amortizes the slowest) and mark_dead()s hosts that fail or
  /// time out, so a dead host never costs a real shard attempt.
  void probe_hosts();

  /// amortized_min_seeds over the pool's slowest measured startup.
  std::size_t recommended_min_seeds(double seeds_per_second,
                                    double startup_fraction = 0.1) const;

  const RemoteOptions& remote_options() const { return opts_; }

 protected:
  WorkerHandle launch_on_host(const std::string& host,
                              const std::vector<std::string>& argv) override;
  bool exit_code_is_host_failure(int exit_code) const override;

 private:
  std::vector<std::string> instantiate(const std::string& host,
                                       const std::vector<std::string>& argv)
      const;

  RemoteOptions opts_;
};

/// Per-host fault modes the deterministic churn harness can realize.
enum class HostFault {
  kNone,          // healthy host
  kDeadAtLaunch,  // every launch refused (connection refused / no route)
  kDiesMidShard,  // worker starts, host dies mid-blob (crash-mid-blob)
  kSlowLink,      // worker runs but the link crawls (slow-start + delay)
  kFlapping,      // alternates refuse / accept per launch
  kPartition,     // worker starts, then the driver never hears again
                  // (stall-forever: only the deadline ends the attempt)
};

const char* host_fault_name(HostFault f);

/// Deterministic host-churn harness: a PooledLauncher whose "hosts" are
/// fault schedules realized by local worker processes, so every churn
/// scenario — including losing a host mid-sweep under live attempts — runs
/// without a network and reproduces exactly. Faults are per-host and can be
/// scheduled to begin at a later launch ordinal (set_fault_after), which is
/// how "the host died mid-sweep" is scripted.
class FakeRemoteLauncher : public PooledLauncher {
 public:
  FakeRemoteLauncher(HostPool& pool, std::string worker_path,
                     bool degrade_to_local = true);

  /// Replaces the host's schedule with a single fault active from its
  /// next launch onward.
  void set_fault(const std::string& host, HostFault fault,
                 std::chrono::milliseconds slow_delay =
                     std::chrono::milliseconds{400});

  /// Appends a schedule step: once the host has performed `after_launches`
  /// launches (0 == immediately), its fault becomes `fault` — steps
  /// compose, so "dies-mid-shard for two launches, then unreachable" is
  /// two calls. The step with the largest threshold at or below the
  /// launch ordinal wins.
  void set_fault_after(const std::string& host, std::size_t after_launches,
                       HostFault fault,
                       std::chrono::milliseconds slow_delay =
                           std::chrono::milliseconds{400});

  /// Violent mid-sweep host loss: SIGKILLs every in-flight worker placed
  /// on the host and refuses all future launches. In-flight attempts die
  /// as crashes, exactly as a yanked power cord looks from the driver.
  void kill_host(const std::string& host);

  void attempt_result(const WorkerHandle& w, AttemptOutcome o,
                      int exit_code) override;

  std::size_t launches_on(const std::string& host) const;

 protected:
  WorkerHandle launch_on_host(const std::string& host,
                              const std::vector<std::string>& argv) override;

 private:
  struct Plan {
    HostFault fault = HostFault::kNone;
    std::size_t starts_after = 0;  // launch ordinal the fault begins at
    std::chrono::milliseconds slow_delay{400};
  };

  struct HostSim {
    std::vector<Plan> plans;  // schedule steps; highest eligible wins
    std::size_t launches = 0;
    std::vector<long> in_flight_pids;
  };

  std::string worker_path_;
  /// kill_host is the one entry point tests may call from outside the
  /// dispatcher thread (scripting "the host died while attempts were in
  /// flight"), so the schedule table is locked.
  mutable std::mutex mu_;
  std::map<std::string, HostSim> sims_;
};

}  // namespace xcp::exp
