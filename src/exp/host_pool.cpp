#include "exp/host_pool.hpp"

// xcp-lint: allow-file(determinism-wall-clock) host health bookkeeping
// (quarantine windows, startup latency) times real machines; sweep
// payloads never read these clocks (test_remote byte-identity covers it).

#include <algorithm>

#include "support/status.hpp"

namespace xcp::exp {

const char* host_state_name(HostState s) {
  switch (s) {
    case HostState::kHealthy: return "healthy";
    case HostState::kQuarantined: return "quarantined";
    case HostState::kBlacklisted: return "blacklisted";
  }
  return "?";
}

HostPool::HostPool(HostPoolOptions opts) : opts_(opts) {
  XCP_REQUIRE(opts_.default_slots >= 1, "default_slots must be at least 1");
  XCP_REQUIRE(opts_.quarantine_after >= 1,
              "quarantine_after must be at least 1");
  XCP_REQUIRE(opts_.blacklist_after >= 1,
              "blacklist_after must be at least 1");
}

HostPool::Entry* HostPool::find(const std::string& host) {
  for (Entry& e : hosts_) {
    if (e.s.host == host) return &e;
  }
  return nullptr;
}

void HostPool::add_host(const std::string& host, std::size_t slots) {
  XCP_REQUIRE(!host.empty(), "host name must be non-empty");
  const std::size_t eff = slots == 0 ? opts_.default_slots : slots;
  if (Entry* e = find(host)) {
    e->s.slots = eff;  // resize only; health survives re-registration
    return;
  }
  Entry e;
  e.s.host = host;
  e.s.slots = eff;
  hosts_.push_back(std::move(e));
}

void HostPool::readmit_due(Clock::time_point now) {
  for (Entry& e : hosts_) {
    if (e.s.state == HostState::kQuarantined && now >= e.readmit_at) {
      // Probation, not a clean slate: consecutive_failures resets so the
      // host gets a real chance, but its quarantine count stands — one
      // more bad streak and blacklist_after is that much closer.
      e.s.state = HostState::kHealthy;
      e.s.consecutive_failures = 0;
    }
  }
}

std::optional<std::string> HostPool::acquire() {
  readmit_due(Clock::now());
  Entry* best = nullptr;
  for (Entry& e : hosts_) {
    if (e.s.state != HostState::kHealthy) continue;
    if (e.s.in_flight >= e.s.slots) continue;
    // Strict < keeps registration order as the tie-break.
    if (best == nullptr || e.s.in_flight < best->s.in_flight) best = &e;
  }
  if (best == nullptr) return std::nullopt;
  ++best->s.in_flight;
  ++best->s.attempts;
  return best->s.host;
}

void HostPool::fail_once(Entry& e) {
  ++e.s.failures;
  ++e.s.consecutive_failures;
  if (e.s.state == HostState::kBlacklisted) return;
  if (e.s.consecutive_failures >= opts_.quarantine_after) {
    ++e.s.quarantines;
    if (e.s.quarantines >= opts_.blacklist_after) {
      e.s.state = HostState::kBlacklisted;
    } else {
      e.s.state = HostState::kQuarantined;
      e.readmit_at = Clock::now() + opts_.quarantine_period;
    }
  }
}

void HostPool::release(const std::string& host, bool success) {
  Entry* e = find(host);
  if (e == nullptr) return;
  if (e->s.in_flight > 0) --e->s.in_flight;
  if (success) {
    e->s.consecutive_failures = 0;
  } else {
    fail_once(*e);
  }
}

void HostPool::release_neutral(const std::string& host) {
  Entry* e = find(host);
  if (e == nullptr) return;
  if (e->s.in_flight > 0) --e->s.in_flight;
}

void HostPool::mark_dead(const std::string& host) {
  Entry* e = find(host);
  if (e == nullptr) return;
  // A dead host fails its whole streak at once: straight to quarantine
  // (first death) or blacklist (repeat offender).
  e->s.consecutive_failures =
      std::max(e->s.consecutive_failures + 1, opts_.quarantine_after);
  ++e->s.failures;
  if (e->s.state == HostState::kBlacklisted) return;
  ++e->s.quarantines;
  if (e->s.quarantines >= opts_.blacklist_after) {
    e->s.state = HostState::kBlacklisted;
  } else {
    e->s.state = HostState::kQuarantined;
    e->readmit_at = Clock::now() + opts_.quarantine_period;
  }
}

void HostPool::record_startup(const std::string& host,
                              std::chrono::milliseconds cost) {
  Entry* e = find(host);
  if (e == nullptr) return;
  if (cost > e->s.startup_cost) e->s.startup_cost = cost;
}

bool HostPool::any_usable() const {
  for (const Entry& e : hosts_) {
    if (e.s.state != HostState::kBlacklisted) return true;
  }
  return false;
}

std::chrono::milliseconds HostPool::max_startup_cost() const {
  std::chrono::milliseconds worst{-1};
  for (const Entry& e : hosts_) {
    worst = std::max(worst, e.s.startup_cost);
  }
  return worst;
}

std::vector<HostStats> HostPool::stats() const {
  std::vector<HostStats> out;
  out.reserve(hosts_.size());
  for (const Entry& e : hosts_) out.push_back(e.s);
  return out;
}

}  // namespace xcp::exp
