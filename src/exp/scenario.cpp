#include "exp/scenario.hpp"

namespace xcp::exp {

proto::TimingParams default_timing() {
  proto::TimingParams p;
  p.delta_max = Duration::millis(100);
  p.processing = Duration::millis(5);
  p.rho = 1e-3;
  p.slack = Duration::millis(10);
  return p;
}

proto::EnvironmentConfig conforming_env(const proto::TimingParams& assumed) {
  proto::EnvironmentConfig env;
  env.synchrony = proto::SynchronyKind::kSynchronous;
  env.delta_min = Duration::millis(1);
  env.delta_max = assumed.delta_max;
  env.processing = assumed.processing;
  env.actual_rho = assumed.rho;
  env.clock_offset_max = Duration::millis(50);
  return env;
}

proto::EnvironmentConfig partial_env(const proto::TimingParams& assumed,
                                     std::int64_t gst_seconds,
                                     Duration pre_gst_typical) {
  proto::EnvironmentConfig env;
  env.synchrony = proto::SynchronyKind::kPartiallySynchronous;
  env.gst = TimePoint::origin() + Duration::seconds(gst_seconds);
  env.delta_max = assumed.delta_max;
  env.pre_gst_typical = pre_gst_typical;
  env.processing = assumed.processing;
  env.actual_rho = assumed.rho;
  env.clock_offset_max = Duration::millis(50);
  return env;
}

proto::EnvironmentConfig deterministic_env(Duration delta) {
  proto::EnvironmentConfig env;
  env.synchrony = proto::SynchronyKind::kSynchronous;
  env.delta_min = delta;
  env.delta_max = delta;
  env.processing = default_timing().processing;
  env.actual_rho = 0.0;
  env.clock_offset_max = Duration::zero();
  return env;
}

proto::TimeBoundedConfig thm1_config(int n, std::uint64_t seed) {
  proto::TimeBoundedConfig cfg;
  cfg.seed = seed;
  cfg.spec = proto::DealSpec::uniform(/*deal_id=*/1, n, /*base=*/1000,
                                      /*commission=*/10);
  cfg.assumed = default_timing();
  cfg.compensated = true;
  cfg.env = conforming_env(cfg.assumed);
  return cfg;
}

proto::weak::WeakConfig thm3_config(proto::weak::TmKind tm, int n,
                                    std::uint64_t seed) {
  proto::weak::WeakConfig cfg;
  cfg.seed = seed;
  cfg.spec = proto::DealSpec::uniform(/*deal_id=*/1, n, /*base=*/1000,
                                      /*commission=*/10);
  cfg.tm = tm;
  cfg.env = partial_env(default_timing(), /*gst_seconds=*/2,
                        Duration::millis(500));
  cfg.patience = Duration::seconds(60);
  return cfg;
}

}  // namespace xcp::exp
