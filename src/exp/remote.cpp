#include "exp/remote.hpp"

// xcp-lint: allow-file(determinism-wall-clock) remote launch/probe
// supervision times real ssh sessions; cell results are unaffected
// (host churn byte-identity is the test_remote contract).

#if !defined(_WIN32)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "support/status.hpp"

namespace xcp::exp {

// ----------------------------------------------------------- host inventory

std::vector<HostSpec> parse_hosts_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("hosts file '" + path + "': cannot open");
  }
  const auto fail = [&](int lineno, const std::string& what) {
    throw std::runtime_error("hosts file '" + path + "' line " +
                             std::to_string(lineno) + ": " + what);
  };
  const auto trim = [](std::string s) {
    const auto first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos) return std::string();
    return s.substr(first, s.find_last_not_of(" \t\r") - first + 1);
  };

  std::vector<HostSpec> specs;
  std::string line;
  // xcp-lint: allow(loop-blocking) one-shot hosts-file parse at startup,
  // before any worker is launched; not inside the supervision poll loop.
  for (int lineno = 1; std::getline(in, line); ++lineno) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    HostSpec spec;
    if (const auto colon = line.rfind(':'); colon != std::string::npos) {
      const std::string tok = trim(line.substr(colon + 1));
      char* end = nullptr;
      const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
      if (tok.empty() || end == tok.c_str() || *end != '\0' || v == 0) {
        fail(lineno, "bad slot count '" + tok + "' (want a positive integer)");
      }
      spec.slots = static_cast<std::size_t>(v);
      spec.host = trim(line.substr(0, colon));
    } else {
      spec.host = line;
    }
    if (spec.host.empty()) fail(lineno, "empty host name");
    specs.push_back(std::move(spec));
  }
  return specs;
}

// ------------------------------------------------------------ PooledLauncher

WorkerHandle PooledLauncher::launch(const std::vector<std::string>& argv) {
  // Walk surviving hosts until one accepts. A refusal is charged to the
  // refusing host only — it quarantines itself out of this loop, the shard
  // attempt moves on without touching its retry budget. The loop is
  // bounded: every refusal strictly advances some host toward quarantine
  // and nothing resets the count mid-launch.
  while (auto host = pool_.acquire()) {
    try {
      WorkerHandle w = launch_on_host(*host, argv);
      w.host = *host;
      return w;
    } catch (const DispatchError&) {
      pool_.release(*host, /*success=*/false);
    }
  }
  if (!degrade_to_local_) {
    throw DispatchError("no usable host in the pool and local degradation "
                        "is disabled");
  }
  ++local_degradations_;
  WorkerHandle w = local_.launch(argv);
  w.host = kLocalHostName;
  return w;
}

void PooledLauncher::terminate(const WorkerHandle& w) { local_.terminate(w); }

void PooledLauncher::terminate_soft(const WorkerHandle& w) {
  local_.terminate_soft(w);
}

bool PooledLauncher::try_reap(const WorkerHandle& w, int& raw_status) {
  return local_.try_reap(w, raw_status);
}

int PooledLauncher::reap(const WorkerHandle& w) { return local_.reap(w); }

void PooledLauncher::attempt_result(const WorkerHandle& w, AttemptOutcome o,
                                    int exit_code) {
  if (w.host.empty() || w.host == kLocalHostName) return;
  switch (o) {
    case AttemptOutcome::kSuccess:
      pool_.release(w.host, /*success=*/true);
      return;
    case AttemptOutcome::kTimeout:
    case AttemptOutcome::kCrashed:
    case AttemptOutcome::kWireReject:
    case AttemptOutcome::kMetaMismatch:
      pool_.release(w.host, /*success=*/false);
      return;
    case AttemptOutcome::kExitNonzero:
      // A worker bug reproduces on any host; only transport exit codes
      // (ssh's 255 et al.) poison the host that produced them.
      if (exit_code_is_host_failure(exit_code)) {
        pool_.release(w.host, /*success=*/false);
      } else {
        pool_.release_neutral(w.host);
      }
      return;
    case AttemptOutcome::kSuperseded:
    case AttemptOutcome::kLaunchFailed:
    case AttemptOutcome::kFallback:
      // Says nothing about the host (supersede is the supervisor's own
      // kill; the other two never carry a pooled handle).
      pool_.release_neutral(w.host);
      return;
  }
}

void PooledLauncher::append_host_report(DispatchReport& report) const {
  // Upsert by host name: pool stats are cumulative, so a report threaded
  // through several cells shows lifetime totals, not per-cell deltas.
  for (const HostStats& h : pool_.stats()) {
    DispatchReport::HostRecord* slot = nullptr;
    for (DispatchReport::HostRecord& r : report.hosts) {
      if (r.host == h.host) {
        slot = &r;
        break;
      }
    }
    if (slot == nullptr) {
      report.hosts.emplace_back();
      slot = &report.hosts.back();
      slot->host = h.host;
    }
    slot->attempts = h.attempts;
    slot->failures = h.failures;
    slot->quarantines = h.quarantines;
    slot->blacklisted = h.state == HostState::kBlacklisted;
    slot->startup_cost = h.startup_cost;
  }
}

// ------------------------------------------------------------ RemoteOptions

RemoteOptions RemoteOptions::ssh_template() {
  RemoteOptions o;
  o.command_template = {"/usr/bin/ssh", "-oBatchMode=yes", "{host}", "{cmd}"};
  return o;
}

RemoteOptions RemoteOptions::sh_template() {
  RemoteOptions o;
  o.command_template = {"/bin/sh", "-c", "{cmd}"};
  return o;
}

std::string shell_quote_join(const std::vector<std::string>& argv) {
  std::string out;
  for (const std::string& a : argv) {
    if (!out.empty()) out += ' ';
    // Single-quote everything; embedded quotes become '\'' — safe through
    // sh -c and through the remote shell ssh interposes.
    out += '\'';
    for (const char c : a) {
      if (c == '\'') {
        out += "'\\''";
      } else {
        out += c;
      }
    }
    out += '\'';
  }
  return out;
}

std::size_t amortized_min_seeds(std::chrono::milliseconds startup_cost,
                                double seeds_per_second,
                                double startup_fraction) {
  if (startup_cost.count() <= 0 || seeds_per_second <= 0.0 ||
      startup_fraction <= 0.0) {
    return 1;
  }
  // Shard runtime ~ seeds / rate; keep startup <= fraction * runtime, i.e.
  // seeds >= startup_seconds * rate / fraction.
  const double startup_s =
      static_cast<double>(startup_cost.count()) / 1000.0;
  const double seeds =
      std::ceil(startup_s * seeds_per_second / startup_fraction);
  return seeds < 1.0 ? 1 : static_cast<std::size_t>(seeds);
}

// ----------------------------------------------------------- RemoteLauncher

RemoteLauncher::RemoteLauncher(HostPool& pool, RemoteOptions opts,
                               bool degrade_to_local)
    : PooledLauncher(pool, degrade_to_local), opts_(std::move(opts)) {
  XCP_REQUIRE(!opts_.command_template.empty(),
              "RemoteOptions.command_template must be non-empty");
}

namespace {

void replace_all(std::string& s, const std::string& key,
                 const std::string& value) {
  for (std::size_t pos = 0; (pos = s.find(key, pos)) != std::string::npos;
       pos += value.size()) {
    s.replace(pos, key.size(), value);
  }
}

}  // namespace

std::vector<std::string> RemoteLauncher::instantiate(
    const std::string& host, const std::vector<std::string>& argv) const {
  const std::string cmd = shell_quote_join(argv);
  std::vector<std::string> out;
  out.reserve(opts_.command_template.size());
  for (const std::string& elem : opts_.command_template) {
    std::string e = elem;
    replace_all(e, "{host}", host);
    replace_all(e, "{cmd}", cmd);
    out.push_back(std::move(e));
  }
  return out;
}

WorkerHandle RemoteLauncher::launch_on_host(
    const std::string& host, const std::vector<std::string>& argv) {
  return local().launch(instantiate(host, argv));
}

bool RemoteLauncher::exit_code_is_host_failure(int exit_code) const {
  return std::find(opts_.host_failure_exits.begin(),
                   opts_.host_failure_exits.end(),
                   exit_code) != opts_.host_failure_exits.end();
}

void RemoteLauncher::probe_hosts() {
#if defined(_WIN32)
  throw DispatchError("remote dispatch is POSIX-only");
#else
  using Clock = std::chrono::steady_clock;
  for (const HostStats& h : pool().stats()) {
    if (h.state == HostState::kBlacklisted) continue;
    const Clock::time_point t0 = Clock::now();
    WorkerHandle w;
    try {
      w = local().launch(instantiate(h.host, {"true"}));
    } catch (const DispatchError&) {
      pool().mark_dead(h.host);
      continue;
    }
    const Clock::time_point deadline = t0 + opts_.probe_deadline;
    int raw_status = 0;
    bool reaped = false;
    while (Clock::now() < deadline) {
      if (local().try_reap(w, raw_status)) {
        reaped = true;
        break;
      }
      // xcp-lint: allow(loop-blocking) pre-dispatch reachability probe;
      // no sweep work exists yet, so a bounded nap cannot starve anything.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (!reaped) {
      local().terminate(w);
      local().reap(w);
    }
    ::close(w.stdout_fd);
    ::close(w.stderr_fd);
    const bool ok = reaped && WIFEXITED(raw_status) &&
                    WEXITSTATUS(raw_status) == 0;
    if (ok) {
      pool().record_startup(
          h.host, std::chrono::duration_cast<std::chrono::milliseconds>(
                      Clock::now() - t0));
    } else {
      pool().mark_dead(h.host);
    }
  }
#endif
}

std::size_t RemoteLauncher::recommended_min_seeds(
    double seeds_per_second, double startup_fraction) const {
  return amortized_min_seeds(pool().max_startup_cost(), seeds_per_second,
                             startup_fraction);
}

// ------------------------------------------------------- FakeRemoteLauncher

const char* host_fault_name(HostFault f) {
  switch (f) {
    case HostFault::kNone: return "none";
    case HostFault::kDeadAtLaunch: return "dead-at-launch";
    case HostFault::kDiesMidShard: return "dies-mid-shard";
    case HostFault::kSlowLink: return "slow-link";
    case HostFault::kFlapping: return "flapping";
    case HostFault::kPartition: return "partition";
  }
  return "?";
}

FakeRemoteLauncher::FakeRemoteLauncher(HostPool& pool,
                                       std::string worker_path,
                                       bool degrade_to_local)
    : PooledLauncher(pool, degrade_to_local),
      worker_path_(std::move(worker_path)) {}

void FakeRemoteLauncher::set_fault(const std::string& host, HostFault fault,
                                   std::chrono::milliseconds slow_delay) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    sims_[host].plans.clear();
  }
  set_fault_after(host, 0, fault, slow_delay);
}

void FakeRemoteLauncher::set_fault_after(const std::string& host,
                                         std::size_t after_launches,
                                         HostFault fault,
                                         std::chrono::milliseconds
                                             slow_delay) {
  const std::lock_guard<std::mutex> lock(mu_);
  Plan p;
  p.fault = fault;
  p.starts_after = after_launches;
  p.slow_delay = slow_delay;
  sims_[host].plans.push_back(p);
}

void FakeRemoteLauncher::kill_host(const std::string& host) {
#if !defined(_WIN32)
  const std::lock_guard<std::mutex> lock(mu_);
  HostSim& sim = sims_[host];
  sim.plans.clear();
  sim.plans.push_back(Plan{HostFault::kDeadAtLaunch, 0,
                           std::chrono::milliseconds{0}});
  for (const long pid : sim.in_flight_pids) {
    if (pid > 0) ::kill(static_cast<pid_t>(pid), SIGKILL);
  }
#else
  (void)host;
#endif
}

std::size_t FakeRemoteLauncher::launches_on(const std::string& host) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sims_.find(host);
  return it == sims_.end() ? 0 : it->second.launches;
}

WorkerHandle FakeRemoteLauncher::launch_on_host(
    const std::string& host, const std::vector<std::string>& argv) {
  std::unique_lock<std::mutex> lock(mu_);
  HostSim& sim = sims_[host];
  const std::size_t ordinal = sim.launches++;
  // The eligible step with the largest threshold governs this launch.
  const Plan* active = nullptr;
  for (const Plan& p : sim.plans) {
    if (ordinal < p.starts_after) continue;
    if (active == nullptr || p.starts_after >= active->starts_after) {
      active = &p;
    }
  }
  const HostFault fault = active ? active->fault : HostFault::kNone;
  const std::chrono::milliseconds slow_delay =
      active ? active->slow_delay : std::chrono::milliseconds{0};
  lock.unlock();

  if (fault == HostFault::kDeadAtLaunch) {
    throw DispatchError("host " + host + " unreachable");
  }
  if (fault == HostFault::kFlapping && ordinal % 2 == 0) {
    throw DispatchError("host " + host + " link flapped");
  }

  // Realize the remaining faults with the worker's own deterministic fault
  // hook. @999 fires on every attempt ordinal the dispatcher stamps —
  // the *host's* condition does not heal between retries on it.
  std::vector<std::string> real = argv;
  switch (fault) {
    case HostFault::kDiesMidShard:
      real.insert(real.end(), {"--fault", "crash-mid-blob@999"});
      break;
    case HostFault::kSlowLink:
      real.insert(real.end(),
                  {"--fault", "slow-start@999", "--fault-delay-ms",
                   std::to_string(slow_delay.count())});
      break;
    case HostFault::kPartition:
      real.insert(real.end(), {"--fault", "stall-forever@999"});
      break;
    case HostFault::kNone:
    case HostFault::kFlapping:
    case HostFault::kDeadAtLaunch:
      break;
  }
  if (!worker_path_.empty()) real[0] = worker_path_;

  WorkerHandle w = local().launch(real);
  lock.lock();
  sims_[host].in_flight_pids.push_back(w.pid);
  return w;
}

void FakeRemoteLauncher::attempt_result(const WorkerHandle& w,
                                        AttemptOutcome o, int exit_code) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = sims_.find(w.host);
    if (it != sims_.end()) {
      auto& pids = it->second.in_flight_pids;
      pids.erase(std::remove(pids.begin(), pids.end(), w.pid), pids.end());
    }
  }
  PooledLauncher::attempt_result(w, o, exit_code);
}

}  // namespace xcp::exp
