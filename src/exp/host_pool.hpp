#pragma once
// Health-tracked registry of remote execution hosts for the elastic sweep
// dispatcher (exp/remote.hpp). The pool is pure policy — it never talks to
// a host itself; launchers acquire a placement, report the outcome, and the
// pool decides who stays eligible:
//
//   slots         each host runs at most `slots` concurrent shard attempts;
//   quarantine    `quarantine_after` consecutive failures sideline a host
//                 for `quarantine_period`, after which it is re-admitted on
//                 probation (one more failure re-quarantines immediately);
//   blacklist     a host quarantined `blacklist_after` times is out for the
//                 rest of the sweep — flapping hosts stop eating attempts;
//   elasticity    hosts can be added mid-sweep (add_host) and lose-able at
//                 any time (mark_dead); when every host is quarantined or
//                 blacklisted, acquire() returns nullopt and the launcher
//                 above degrades to local execution.
//
// Selection is deterministic: least-loaded healthy host, ties broken by
// registration order — a re-run with the same failure schedule places every
// attempt identically. Single-threaded by design (the dispatcher's poll
// loop is the only caller).

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace xcp::exp {

enum class HostState {
  kHealthy,      // eligible (includes post-quarantine probation)
  kQuarantined,  // sidelined until its re-admission time
  kBlacklisted,  // permanently out for this pool's lifetime
};

const char* host_state_name(HostState s);

struct HostPoolOptions {
  /// Concurrent attempt slots per host when add_host does not override.
  std::size_t default_slots = 2;
  /// Consecutive failures that trigger a quarantine.
  std::size_t quarantine_after = 3;
  /// How long a quarantined host sits out before probation.
  std::chrono::milliseconds quarantine_period{2'000};
  /// Quarantine count that escalates to a permanent blacklist.
  std::size_t blacklist_after = 2;
};

/// One host's full health ledger, as stats() reports it.
struct HostStats {
  std::string host;
  HostState state = HostState::kHealthy;
  std::size_t slots = 0;
  std::size_t in_flight = 0;
  std::size_t attempts = 0;      // acquisitions handed out
  std::size_t failures = 0;      // released with success=false
  std::size_t consecutive_failures = 0;
  std::size_t quarantines = 0;   // times quarantined (lifetime)
  /// Measured startup-probe / first-launch cost; -1 ms when never recorded.
  std::chrono::milliseconds startup_cost{-1};
};

class HostPool {
 public:
  explicit HostPool(HostPoolOptions opts = {});

  /// Registers a host. slots == 0 uses options().default_slots. Re-adding
  /// an existing host updates its slot count but never resets its health.
  void add_host(const std::string& host, std::size_t slots = 0);

  /// Picks a host for one attempt: re-admits quarantines whose period has
  /// elapsed, then returns the least-loaded healthy host with a free slot
  /// (registration order breaks ties). nullopt when nothing is usable —
  /// the caller's cue to degrade down the ladder.
  std::optional<std::string> acquire();

  /// Returns the slot taken by acquire() and records the outcome. A
  /// failure advances the consecutive-failure count toward quarantine;
  /// success resets it. Unknown hosts are ignored (a host can be removed
  /// from under an in-flight attempt).
  void release(const std::string& host, bool success);

  /// Returns the slot without touching health in either direction — for
  /// attempts the supervisor killed for its own reasons (superseded by a
  /// faster duplicate), which say nothing about the host.
  void release_neutral(const std::string& host);

  /// Immediately quarantines (or blacklists, per the escalation count) a
  /// host known to be gone — e.g. a startup probe that failed outright or
  /// a launch that could not even start its transport.
  void mark_dead(const std::string& host);

  /// Records a measured startup cost (probe wall-clock). Keeps the
  /// maximum seen, since shard sizing must amortize the slowest host.
  void record_startup(const std::string& host,
                      std::chrono::milliseconds cost);

  /// True when at least one host is healthy or due for re-admission —
  /// i.e. acquire() could return a placement now or after releases.
  bool any_usable() const;

  /// The slowest recorded startup cost across hosts; -1 ms when none was
  /// ever recorded. Input to the shard-size heuristic (exp/remote.hpp).
  std::chrono::milliseconds max_startup_cost() const;

  std::vector<HostStats> stats() const;
  const HostPoolOptions& options() const { return opts_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    HostStats s;
    Clock::time_point readmit_at;  // valid while quarantined
  };

  void readmit_due(Clock::time_point now);
  void fail_once(Entry& e);
  Entry* find(const std::string& host);

  HostPoolOptions opts_;
  std::vector<Entry> hosts_;  // registration order == tie-break order
};

}  // namespace xcp::exp
