#pragma once
// Small descriptive-statistics helper for bench aggregation: mean, stddev,
// min/max, percentiles over double samples. Header-only.

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/status.hpp"

namespace xcp::exp {

class Summary {
 public:
  void add(double x) { samples_.push_back(x); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const {
    XCP_REQUIRE(!empty(), "mean of empty summary");
    double s = 0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  double stddev() const {
    XCP_REQUIRE(!empty(), "stddev of empty summary");
    const double m = mean();
    double s = 0;
    for (double x : samples_) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(samples_.size()));
  }

  double min() const {
    XCP_REQUIRE(!empty(), "min of empty summary");
    return *std::min_element(samples_.begin(), samples_.end());
  }

  double max() const {
    XCP_REQUIRE(!empty(), "max of empty summary");
    return *std::max_element(samples_.begin(), samples_.end());
  }

  /// Nearest-rank percentile, p in [0, 100].
  double percentile(double p) const {
    XCP_REQUIRE(!empty(), "percentile of empty summary");
    XCP_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (p == 0.0) return sorted.front();
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    return sorted[std::min(rank, sorted.size()) - 1];
  }

  double median() const { return percentile(50.0); }

 private:
  std::vector<double> samples_;
};

}  // namespace xcp::exp
