#pragma once
// Builders for the Figure-2 automata: one ANTA automaton per participant of
// the time-bounded protocol (escrow e_i, connector Chloe_i, Alice, Bob),
// parameterized by the deal and the timelock schedule.
//
// The automata match the figure state-for-state; semantic obligations the
// figure leaves implicit (verifying that "$" is real money, that chi is
// Bob's signature on this deal, that promised amounts match the deal) are
// attached as accept/effect callbacks, because an abiding participant in the
// Byzantine model must validate everything it reacts to.

#include <memory>

#include "anta/automaton.hpp"
#include "crypto/certificate.hpp"
#include "ledger/escrow.hpp"
#include "ledger/ledger.hpp"
#include "proto/deal_spec.hpp"
#include "proto/timelock_schedule.hpp"
#include "props/trace.hpp"

namespace xcp::proto {

/// Everything the automata's callbacks need. Shared (via shared_ptr) by all
/// automata of one run; outlives the simulation.
struct Fig2Context {
  DealSpec spec;
  Participants parts;
  TimelockSchedule schedule;
  ledger::Ledger* ledger = nullptr;
  ledger::EscrowRegistry* escrows = nullptr;
  crypto::KeyRegistry* keys = nullptr;
  props::TraceRecorder* trace = nullptr;
  crypto::Signer bob_signer;

  /// The "impatient" protocol variant of the Thm 2 dichotomy: if set,
  /// customers give up (terminate in `gave_up`) after waiting this long (on
  /// their own clock) in any money-awaiting state. The paper's protocol has
  /// no such exit — precisely *because* adding one trades requirement T's
  /// failure under partial synchrony for a CS3 failure (see
  /// bench_thm2_impossibility). Disabled by default.
  std::optional<Duration> customer_giveup;
};

using Fig2ContextPtr = std::shared_ptr<Fig2Context>;

/// Escrow e_i: send G(d_i); await $; send P(a_i), u := now; await chi until
/// now >= u + a_i; then either forward chi upstream + pay downstream, or
/// refund upstream.
std::shared_ptr<const anta::Automaton> build_escrow_automaton(
    const Fig2ContextPtr& ctx, int i);

/// Customer c_i. Dispatches to the Alice (i = 0), Bob (i = n) or Chloe_i
/// shape; the Alice and Bob automata are the simplifications of Chloe's
/// shown in Fig. 2.
std::shared_ptr<const anta::Automaton> build_customer_automaton(
    const Fig2ContextPtr& ctx, int i);

std::shared_ptr<const anta::Automaton> build_alice_automaton(
    const Fig2ContextPtr& ctx);
std::shared_ptr<const anta::Automaton> build_connector_automaton(
    const Fig2ContextPtr& ctx, int i);
std::shared_ptr<const anta::Automaton> build_bob_automaton(
    const Fig2ContextPtr& ctx);

// Final-state names, used by outcome extraction and tests.
inline constexpr const char* kDonePaid = "done_paid";
inline constexpr const char* kDoneRefunded = "done_refunded";
inline constexpr const char* kDoneGotChi = "done_got_chi";
inline constexpr const char* kGaveUp = "gave_up";  // impatient variant only

}  // namespace xcp::proto
