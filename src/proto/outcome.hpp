#pragma once
// Run outcomes: what the property checkers and benches consume. Both the
// time-bounded and the weak-liveness runners produce a RunRecord.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ledger/escrow.hpp"
#include "net/network.hpp"
#include "proto/byzantine.hpp"
#include "proto/deal_spec.hpp"
#include "proto/timelock_schedule.hpp"
#include "props/online.hpp"
#include "props/trace.hpp"

namespace xcp::proto {

struct ParticipantOutcome {
  sim::ProcessId pid;
  std::string role;            // alice / bob / chloe_i / escrow_i / tm / ...
  bool abiding = true;         // false if assigned a Byzantine strategy
  bool is_escrow = false;
  int index = 0;               // c_i or e_i index

  bool terminated = false;     // reached a final state
  TimePoint terminated_local;  // on its own clock
  TimePoint terminated_global;
  TimePoint local_at_start;    // its clock's reading at global time zero, so
                               // local elapsed time is well-defined
  std::string final_state;     // name of the state it ended in

  std::vector<Amount> initial_holdings;
  std::vector<Amount> final_holdings;

  bool issued_payment_cert = false;   // Bob signed chi
  bool received_payment_cert = false; // verified chi in hand at some point
  bool received_commit_cert = false;  // chi_c (weak protocol)
  bool received_abort_cert = false;   // chi_a (weak protocol)

  /// Net balance change in `c` (final - initial).
  std::int64_t net_units(Currency c) const;
};

struct RunStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t events_executed = 0;
  TimePoint end_time;
  bool drained = false;  // event queue emptied before the horizon
};

/// Everything recorded about one protocol execution.
struct RunRecord {
  std::string protocol;  // "time-bounded", "weak:<tm>", baseline names
  DealSpec spec;
  Participants parts;
  std::optional<TimelockSchedule> schedule;  // time-bounded family only
  std::vector<ParticipantOutcome> participants;
  std::vector<ledger::EscrowDeal> escrow_deals;
  props::TraceRecorder trace;
  RunStats stats;
  /// Mid-run verdicts from the online monitor, when the run attached one
  /// (props::OnlineOptions::enabled). attached == false otherwise.
  props::OnlineOutcome online;

  const ParticipantOutcome* find(sim::ProcessId pid) const;
  const ParticipantOutcome& customer(int i) const;
  const ParticipantOutcome& escrow(int i) const;
  const ParticipantOutcome& alice() const { return customer(0); }
  const ParticipantOutcome& bob() const { return customer(spec.n); }

  /// True iff Bob's balance increased by the last hop amount.
  bool bob_paid() const;

  /// One row per participant; for examples and debugging.
  std::string summary() const;
};

/// The scalar online-monitor configuration every run derives from its
/// deal: deal id, Bob and the last hop amount. One definition for the
/// live runners (run_time_bounded / run_weak) and the post-mortem replay
/// (exp::runner's differential), so they can never drift apart; callers
/// append the abiding cast, which is contextual.
props::OnlineMonitor::Config base_online_config(const DealSpec& spec,
                                                const Participants& parts);

}  // namespace xcp::proto
