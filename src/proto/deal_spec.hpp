#pragma once
// The payment deal: who pays whom how much along the chain of Fig. 1.
//
//   c_0 (Alice) --v_0--> e_0 --v_0--> c_1 --v_1--> e_1 --...--> c_n (Bob)
//
// Customer c_i pays v_i into escrow e_i, which (on success) pays v_i out to
// c_{i+1}. The per-hop values may differ — "the value transferred from Alice
// to Chloe might be larger than the value transferred from Chloe to Bob"
// (commissions) — and may be in different currencies. Choosing the values is
// orthogonal to the protocol (Sec. 2); DealSpec just records them.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/process.hpp"
#include "support/amount.hpp"

namespace xcp::proto {

struct DealSpec {
  std::uint64_t deal_id = 1;
  int n = 1;                     // number of escrows; customers are c_0..c_n
  std::vector<Amount> hop;       // hop[i] = v_i, size n

  int customer_count() const { return n + 1; }
  int connector_count() const { return n - 1; }
  Amount hop_amount(int i) const { return hop.at(static_cast<std::size_t>(i)); }

  /// Single-currency deal: Bob receives `base`; every connector earns
  /// `commission`, so v_i = base + (n-1-i) * commission (Alice pays most).
  static DealSpec uniform(std::uint64_t deal_id, int n, std::int64_t base,
                          std::int64_t commission,
                          Currency currency = Currency::generic());

  /// Fully explicit hop values (cross-currency deals).
  static DealSpec explicit_hops(std::uint64_t deal_id, std::vector<Amount> hops);

  /// Structural checks: n >= 1, n hop values, positive amounts.
  void validate() const;
};

/// The cast of a run: process ids for c_0..c_n and e_0..e_{n-1}, in the
/// Fig. 1 arrangement. Filled by the protocol runner at spawn time.
struct Participants {
  std::vector<sim::ProcessId> customers;  // size n+1
  std::vector<sim::ProcessId> escrows;    // size n

  int n() const { return static_cast<int>(escrows.size()); }
  sim::ProcessId alice() const { return customers.front(); }
  sim::ProcessId bob() const { return customers.back(); }
  sim::ProcessId customer(int i) const {
    return customers.at(static_cast<std::size_t>(i));
  }
  sim::ProcessId escrow(int i) const {
    return escrows.at(static_cast<std::size_t>(i));
  }

  bool is_customer(sim::ProcessId pid) const;
  bool is_escrow(sim::ProcessId pid) const;
  /// "alice" / "bob" / "chloe_i" / "escrow_i" / "?" for tracing and tables.
  std::string role_name(sim::ProcessId pid) const;
};

}  // namespace xcp::proto
