#include "proto/figure2.hpp"

#include "anta/interpreter.hpp"
#include "proto/bodies.hpp"
#include "support/status.hpp"

namespace xcp::proto {

namespace {

// Slot keys used by the automata.
constexpr const char* kSlotEscrowDeal = "escrow_deal";

void record_cert_event(const Fig2Context& ctx, props::EventKind kind,
                       anta::Interpreter& in, const crypto::Certificate& cert) {
  if (ctx.trace == nullptr) return;
  props::TraceEvent e;
  e.kind = kind;
  e.at = in.global_now();
  e.local_at = in.local_now();
  e.actor = in.id();
  e.label = crypto::cert_kind_label(cert.kind);
  ctx.trace->record(e);
}

/// accept-callback: m carries a MoneyMsg whose ledger receipt really credits
/// `to` with `amount` and debits the claimed sender.
auto accept_money(const Fig2ContextPtr& ctx, sim::ProcessId expected_from,
                  sim::ProcessId to, Amount amount) {
  return [ctx, expected_from, to, amount](const net::Message& m,
                                          anta::Interpreter&) {
    const auto* body = m.body_as<MoneyMsg>();
    if (body == nullptr) return false;
    if (body->deal_id != ctx->spec.deal_id) return false;
    return ctx->ledger->verify_exact(body->receipt, expected_from, to, amount);
  };
}

/// accept-callback: m carries Bob's valid payment certificate chi for this
/// deal. `deadline_of` (optional) returns the local-time deadline; arrival
/// at or after it is rejected (the strict "v < now + a" of promise P).
auto accept_chi(const Fig2ContextPtr& ctx,
                std::function<TimePoint(anta::Interpreter&)> deadline_of = {}) {
  return [ctx, deadline_of](const net::Message& m, anta::Interpreter& in) {
    const auto* body = m.body_as<CertMsg>();
    if (body == nullptr) return false;
    const crypto::Certificate& cert = body->cert;
    if (cert.kind != crypto::CertKind::kPayment) return false;
    if (cert.deal_id != ctx->spec.deal_id) return false;
    if (cert.issuer != ctx->parts.bob()) return false;
    if (!crypto::verify_cert(*ctx->keys, cert)) return false;
    if (deadline_of && !(in.local_now() < deadline_of(in))) return false;
    record_cert_event(*ctx, props::EventKind::kCertReceived, in, cert);
    return true;
  };
}

/// make_body: pay `amount` from the interpreter's own account to `to`.
/// The ledger movement happens at send time; an abiding customer always has
/// the funds (minted at setup), so failure here is a harness bug.
auto pay_body(const Fig2ContextPtr& ctx, sim::ProcessId to, Amount amount) {
  return [ctx, to, amount](anta::Interpreter& in) -> net::BodyPtr {
    ledger::TransferId tid = ledger::kInvalidTransfer;
    ctx->ledger->transfer(in.id(), to, amount, in.global_now(), &tid)
        .expect("customer payment");
    auto body = net::make_body<MoneyMsg>();
    body->deal_id = ctx->spec.deal_id;
    body->receipt = tid;
    body->amount = amount;
    return body;
  };
}

}  // namespace

std::shared_ptr<const anta::Automaton> build_escrow_automaton(
    const Fig2ContextPtr& ctx, int i) {
  const sim::ProcessId self = ctx->parts.escrow(i);
  const sim::ProcessId up = ctx->parts.customer(i);        // c_i (pays in)
  const sim::ProcessId down = ctx->parts.customer(i + 1);  // c_{i+1} (paid out)
  const Amount v = ctx->spec.hop_amount(i);
  const Duration a_i = ctx->schedule.a(i);
  const Duration d_i = ctx->schedule.d(i);

  auto a = std::make_shared<anta::Automaton>("escrow_" + std::to_string(i));
  using anta::StateKind;

  const auto s_send_g = a->add_state("send_G", StateKind::kOutput);
  const auto s_await_money = a->add_state("await_$", StateKind::kInput);
  const auto s_send_p = a->add_state("send_P", StateKind::kOutput);
  const auto s_await_chi = a->add_state("await_chi", StateKind::kInput);
  const auto s_fwd_chi = a->add_state("fwd_chi", StateKind::kOutput);
  const auto s_pay_down = a->add_state("pay_down", StateKind::kOutput);
  const auto s_refund = a->add_state("refund", StateKind::kOutput);
  const auto s_done_paid = a->add_state(kDonePaid, StateKind::kFinal);
  const auto s_done_refunded = a->add_state(kDoneRefunded, StateKind::kFinal);
  const auto var_u = a->add_var("u");
  a->set_initial(s_send_g);

  // s(c_i, G(d_i))
  {
    auto& t = a->set_send(s_send_g, s_await_money, up, net::kinds::g);
    t.make_body = [ctx, v, d_i](anta::Interpreter&) -> net::BodyPtr {
      auto body = net::make_body<PromiseG>();
      body->deal_id = ctx->spec.deal_id;
      body->d = d_i;
      body->amount = v;
      return body;
    };
  }

  // r(c_i, $): verify the deposit, then lock it in escrow for c_{i+1}.
  {
    auto& t = a->add_receive(s_await_money, s_send_p, up, net::kinds::money);
    t.accept = accept_money(ctx, up, self, v);
    t.effect = [ctx, self, up, down, v](anta::Interpreter& in) {
      const net::BodyPtr stashed = in.stashed(net::kinds::money);
      const auto* body = dynamic_cast<const MoneyMsg*>(stashed.get());
      XCP_REQUIRE(body != nullptr, "escrow effect without $ body");
      std::uint64_t deal = 0;
      ctx->escrows
          ->lock(self, up, down, v, body->receipt, in.global_now(), &deal)
          .expect("escrow lock");
      in.set_slot(kSlotEscrowDeal, deal);
    };
  }

  // s(c_{i+1}, P(a_i)) with u := now on the transition.
  {
    auto& t = a->set_send(s_send_p, s_await_chi, down, net::kinds::p);
    t.make_body = [ctx, v, a_i](anta::Interpreter&) -> net::BodyPtr {
      auto body = net::make_body<PromiseP>();
      body->deal_id = ctx->spec.deal_id;
      body->a = a_i;
      body->amount = v;
      return body;
    };
    t.effect = [var_u](anta::Interpreter& in) { in.assign_now(var_u); };
    t.label = "s(P), u:=now";
  }

  // r(c_{i+1}, chi) while now < u + a_i ...
  {
    auto& t = a->add_receive(s_await_chi, s_fwd_chi, down, net::kinds::chi);
    t.accept = accept_chi(ctx, [var_u, a_i](anta::Interpreter& in) {
      return in.var(var_u) + a_i;
    });
  }
  // ... or the time-out now >= u + a_i.
  a->add_timeout(s_await_chi, s_refund, anta::TimeGuard{var_u, a_i});

  // s(c_i, chi): forward the certificate upstream.
  {
    auto& t = a->set_send(s_fwd_chi, s_pay_down, up, net::kinds::chi);
    t.make_body = [](anta::Interpreter& in) { return in.stashed(net::kinds::chi); };
  }

  // s(c_{i+1}, $): complete the escrow to the downstream customer.
  {
    auto& t = a->set_send(s_pay_down, s_done_paid, down, net::kinds::money);
    t.make_body = [ctx, v](anta::Interpreter& in) -> net::BodyPtr {
      ledger::TransferId tid = ledger::kInvalidTransfer;
      ctx->escrows->complete(in.slot(kSlotEscrowDeal), in.global_now(), &tid)
          .expect("escrow complete");
      auto body = net::make_body<MoneyMsg>();
      body->deal_id = ctx->spec.deal_id;
      body->receipt = tid;
      body->amount = v;
      return body;
    };
  }

  // s(c_i, $): refund the deposit after the time-out.
  {
    auto& t = a->set_send(s_refund, s_done_refunded, up, net::kinds::money);
    t.make_body = [ctx, v](anta::Interpreter& in) -> net::BodyPtr {
      ledger::TransferId tid = ledger::kInvalidTransfer;
      ctx->escrows->refund(in.slot(kSlotEscrowDeal), in.global_now(), &tid)
          .expect("escrow refund");
      auto body = net::make_body<MoneyMsg>();
      body->deal_id = ctx->spec.deal_id;
      body->receipt = tid;
      body->amount = v;
      return body;
    };
  }

  a->validate();
  return a;
}

std::shared_ptr<const anta::Automaton> build_alice_automaton(
    const Fig2ContextPtr& ctx) {
  const sim::ProcessId self = ctx->parts.alice();
  const sim::ProcessId e0 = ctx->parts.escrow(0);
  const Amount v = ctx->spec.hop_amount(0);

  auto a = std::make_shared<anta::Automaton>("alice");
  using anta::StateKind;
  const auto s_await_g = a->add_state("await_G", StateKind::kInput);
  const auto s_pay = a->add_state("pay", StateKind::kOutput);
  const auto s_await_outcome = a->add_state("await_outcome", StateKind::kInput);
  const auto s_refunded = a->add_state(kDoneRefunded, StateKind::kFinal);
  const auto s_got_chi = a->add_state(kDoneGotChi, StateKind::kFinal);
  a->set_initial(s_await_g);

  {
    auto& t = a->add_receive(s_await_g, s_pay, e0, net::kinds::g);
    t.accept = [ctx, v](const net::Message& m, anta::Interpreter&) {
      const auto* body = m.body_as<PromiseG>();
      return body != nullptr && body->deal_id == ctx->spec.deal_id &&
             body->amount == v;
    };
  }
  a->set_send(s_pay, s_await_outcome, e0, net::kinds::money).make_body = pay_body(ctx, e0, v);
  {
    auto& t = a->add_receive(s_await_outcome, s_refunded, e0, net::kinds::money);
    t.accept = accept_money(ctx, e0, self, v);
  }
  a->add_receive(s_await_outcome, s_got_chi, e0, net::kinds::chi).accept = accept_chi(ctx);

  a->validate();
  return a;
}

std::shared_ptr<const anta::Automaton> build_connector_automaton(
    const Fig2ContextPtr& ctx, int i) {
  XCP_REQUIRE(i >= 1 && i <= ctx->spec.n - 1, "connector index out of range");
  const sim::ProcessId self = ctx->parts.customer(i);
  const sim::ProcessId e_down = ctx->parts.escrow(i);      // pays into e_i
  const sim::ProcessId e_up = ctx->parts.escrow(i - 1);    // is paid by e_{i-1}
  const Amount v_pay = ctx->spec.hop_amount(i);
  const Amount v_recv = ctx->spec.hop_amount(i - 1);

  auto a = std::make_shared<anta::Automaton>("chloe_" + std::to_string(i));
  using anta::StateKind;
  const auto s_await_g = a->add_state("await_G", StateKind::kInput);
  const auto s_await_p = a->add_state("await_P", StateKind::kInput);
  const auto s_pay = a->add_state("pay", StateKind::kOutput);
  const auto s_await_outcome = a->add_state("await_outcome", StateKind::kInput);
  const auto s_fwd_chi = a->add_state("fwd_chi", StateKind::kOutput);
  const auto s_await_money = a->add_state("await_$", StateKind::kInput);
  const auto s_refunded = a->add_state(kDoneRefunded, StateKind::kFinal);
  const auto s_paid = a->add_state(kDonePaid, StateKind::kFinal);
  a->set_initial(s_await_g);

  // Impatient variant: give-up exits from the money-awaiting states. The
  // give-up clock starts when the state is entered (w := now on entry to
  // pay/fwd_chi send transitions below).
  anta::VarId var_w = -1;
  std::optional<anta::StateId> s_gave_up;
  if (ctx->customer_giveup) {
    var_w = a->add_var("w");
    s_gave_up = a->add_state(kGaveUp, StateKind::kFinal);
  }

  // Await G(d_i) from the downstream escrow and P(a_{i-1}) from the upstream
  // escrow. The interpreter buffers out-of-order arrivals, so awaiting them
  // in sequence accepts both orders.
  {
    auto& t = a->add_receive(s_await_g, s_await_p, e_down, net::kinds::g);
    t.accept = [ctx, v_pay](const net::Message& m, anta::Interpreter&) {
      const auto* body = m.body_as<PromiseG>();
      return body != nullptr && body->deal_id == ctx->spec.deal_id &&
             body->amount == v_pay;
    };
  }
  {
    auto& t = a->add_receive(s_await_p, s_pay, e_up, net::kinds::p);
    t.accept = [ctx, v_recv](const net::Message& m, anta::Interpreter&) {
      const auto* body = m.body_as<PromiseP>();
      return body != nullptr && body->deal_id == ctx->spec.deal_id &&
             body->amount == v_recv;
    };
  }

  {
    auto& t = a->set_send(s_pay, s_await_outcome, e_down, net::kinds::money);
    t.make_body = pay_body(ctx, e_down, v_pay);
    if (ctx->customer_giveup) {
      t.effect = [var_w](anta::Interpreter& in) { in.assign_now(var_w); };
    }
  }

  // Either the money comes back (downstream escrow timed out) — done — or
  // chi arrives and must be redeemed upstream.
  {
    auto& t = a->add_receive(s_await_outcome, s_refunded, e_down, net::kinds::money);
    t.accept = accept_money(ctx, e_down, self, v_pay);
  }
  a->add_receive(s_await_outcome, s_fwd_chi, e_down, net::kinds::chi).accept =
      accept_chi(ctx);
  if (ctx->customer_giveup) {
    a->add_timeout(s_await_outcome, *s_gave_up,
                   anta::TimeGuard{var_w, *ctx->customer_giveup}, "give up");
  }

  {
    auto& t = a->set_send(s_fwd_chi, s_await_money, e_up, net::kinds::chi);
    t.make_body = [](anta::Interpreter& in) { return in.stashed(net::kinds::chi); };
    if (ctx->customer_giveup) {
      t.effect = [var_w](anta::Interpreter& in) { in.assign_now(var_w); };
    }
  }

  {
    auto& t = a->add_receive(s_await_money, s_paid, e_up, net::kinds::money);
    t.accept = accept_money(ctx, e_up, self, v_recv);
  }
  if (ctx->customer_giveup) {
    a->add_timeout(s_await_money, *s_gave_up,
                   anta::TimeGuard{var_w, *ctx->customer_giveup}, "give up");
  }

  a->validate();
  return a;
}

std::shared_ptr<const anta::Automaton> build_bob_automaton(
    const Fig2ContextPtr& ctx) {
  const int n = ctx->spec.n;
  const sim::ProcessId self = ctx->parts.bob();
  const sim::ProcessId e_up = ctx->parts.escrow(n - 1);
  const Amount v = ctx->spec.hop_amount(n - 1);

  auto a = std::make_shared<anta::Automaton>("bob");
  using anta::StateKind;
  const auto s_await_p = a->add_state("await_P", StateKind::kInput);
  const auto s_send_chi = a->add_state("send_chi", StateKind::kOutput);
  const auto s_await_money = a->add_state("await_$", StateKind::kInput);
  const auto s_paid = a->add_state(kDonePaid, StateKind::kFinal);
  a->set_initial(s_await_p);

  {
    auto& t = a->add_receive(s_await_p, s_send_chi, e_up, net::kinds::p);
    t.accept = [ctx, v](const net::Message& m, anta::Interpreter&) {
      const auto* body = m.body_as<PromiseP>();
      return body != nullptr && body->deal_id == ctx->spec.deal_id &&
             body->amount == v;
    };
  }
  {
    auto& t = a->set_send(s_send_chi, s_await_money, e_up, net::kinds::chi);
    t.make_body = [ctx](anta::Interpreter& in) -> net::BodyPtr {
      auto body = net::make_body<CertMsg>();
      body->cert = crypto::make_payment_cert(ctx->bob_signer, ctx->spec.deal_id);
      record_cert_event(*ctx, props::EventKind::kCertIssued, in, body->cert);
      return body;
    };
  }
  {
    auto& t = a->add_receive(s_await_money, s_paid, e_up, net::kinds::money);
    t.accept = accept_money(ctx, e_up, self, v);
  }

  a->validate();
  return a;
}

std::shared_ptr<const anta::Automaton> build_customer_automaton(
    const Fig2ContextPtr& ctx, int i) {
  if (i == 0) return build_alice_automaton(ctx);
  if (i == ctx->spec.n) return build_bob_automaton(ctx);
  return build_connector_automaton(ctx, i);
}

}  // namespace xcp::proto
