#include "proto/timebounded.hpp"

#include <memory>

#include <optional>

#include "anta/interpreter.hpp"
#include "crypto/certificate.hpp"
#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "proto/figure2.hpp"
#include "props/online.hpp"
#include "sim/simulator.hpp"
#include "support/status.hpp"

namespace xcp::proto {

const char* synchrony_name(SynchronyKind k) {
  switch (k) {
    case SynchronyKind::kSynchronous: return "synchronous";
    case SynchronyKind::kPartiallySynchronous: return "partially-synchronous";
    case SynchronyKind::kAsynchronous: return "asynchronous";
  }
  return "?";
}

namespace {

std::unique_ptr<net::DelayModel> make_model(const EnvironmentConfig& env) {
  switch (env.synchrony) {
    case SynchronyKind::kSynchronous:
      if (env.delta_min == env.delta_max) {
        // Deterministic-delay preset (exp::deterministic_env): fixed
        // delta with no per-message RNG draw, so same-instant replies
        // coalesce through batched delivery.
        return net::DelayModel::synchronous(env.delta_max);
      }
      return std::make_unique<net::SynchronousModel>(env.delta_min,
                                                     env.delta_max);
    case SynchronyKind::kPartiallySynchronous:
      return std::make_unique<net::PartialSynchronyModel>(
          env.gst, env.delta_max, env.pre_gst_typical);
    case SynchronyKind::kAsynchronous:
      return std::make_unique<net::AsynchronousModel>(env.async_typical,
                                                      env.async_cap);
  }
  XCP_REQUIRE(false, "unreachable synchrony kind");
  return nullptr;
}

}  // namespace

RunRecord run_time_bounded(const TimeBoundedConfig& config) {
  config.spec.validate();
  const int n = config.spec.n;

  RunRecord record;
  record.protocol = config.compensated ? "time-bounded" : "universal-naive";
  record.spec = config.spec;
  record.schedule =
      config.compensated
          ? TimelockSchedule::drift_compensated(n, config.assumed)
          : TimelockSchedule::naive(n, config.assumed);

  sim::Simulator simulator(config.seed);
  net::Network network(simulator, make_model(config.env), &record.trace);
  network.set_drop_probability(config.env.drop_probability);
  ledger::Ledger ledger(&record.trace);
  ledger::EscrowRegistry escrows(ledger, &record.trace);
  crypto::KeyRegistry keys(config.seed ^ 0x9e3779b97f4a7c15ULL);

  // Predict the cast: customers first (c_0..c_n), then escrows (e_0..e_{n-1}).
  Participants parts;
  for (int i = 0; i <= n; ++i) {
    parts.customers.push_back(sim::ProcessId(static_cast<std::uint32_t>(i)));
  }
  for (int i = 0; i < n; ++i) {
    parts.escrows.push_back(sim::ProcessId(static_cast<std::uint32_t>(n + 1 + i)));
  }
  record.parts = parts;

  auto ctx = std::make_shared<Fig2Context>();
  ctx->spec = config.spec;
  ctx->parts = parts;
  ctx->schedule = *record.schedule;
  ctx->ledger = &ledger;
  ctx->escrows = &escrows;
  ctx->keys = &keys;
  ctx->trace = &record.trace;
  ctx->bob_signer = keys.signer_for(parts.bob());
  ctx->customer_giveup = config.customer_giveup;

  // Spawn interpreters in the predicted order and verify the prediction.
  std::vector<anta::Interpreter*> interps;
  for (int i = 0; i <= n; ++i) {
    auto& in = simulator.spawn<anta::Interpreter>(
        parts.role_name(parts.customer(i)), build_customer_automaton(ctx, i),
        config.env.processing);
    XCP_REQUIRE(in.id() == parts.customer(i), "customer id prediction broken");
    network.attach(in);
    interps.push_back(&in);
  }
  for (int i = 0; i < n; ++i) {
    auto& in = simulator.spawn<anta::Interpreter>(
        parts.role_name(parts.escrow(i)), build_escrow_automaton(ctx, i),
        config.env.processing);
    XCP_REQUIRE(in.id() == parts.escrow(i), "escrow id prediction broken");
    network.attach(in);
    interps.push_back(&in);
  }

  // Clocks with the environment's actual drift.
  {
    Rng clock_rng = simulator.rng().fork();
    for (const auto* in : interps) {
      simulator.set_clock(in->id(),
                          sim::DriftClock::sample(clock_rng, config.env.actual_rho,
                                                  config.env.clock_offset_max));
    }
  }

  // Fund the paying customers with exactly their hop amount.
  for (int i = 0; i < n; ++i) {
    ledger.mint(parts.customer(i), config.spec.hop_amount(i));
  }

  // Byzantine strategies.
  std::vector<bool> abiding(interps.size(), true);
  for (const ByzantineAssignment& b : config.byzantine) {
    const sim::ProcessId pid =
        b.is_escrow ? parts.escrow(b.index) : parts.customer(b.index);
    anta::Interpreter* in = interps.at(pid.value());
    XCP_REQUIRE(in->id() == pid, "byzantine target mismatch");
    apply_byzantine(*in, b, ctx);
    abiding[pid.value()] = (b.strategy == ByzStrategy::kNone);
  }

  // Timing adversary (within the synchrony model's envelope).
  std::unique_ptr<net::Adversary> adversary;
  if (config.adversary) {
    adversary = config.adversary(parts, *record.schedule);
    network.set_adversary(adversary.get());
  }

  // Snapshot initial holdings.
  std::vector<std::vector<Amount>> initial;
  initial.reserve(interps.size());
  for (const auto* in : interps) initial.push_back(ledger.holdings(in->id()));

  // Online checking: verdict state machines ride the trace stream; with
  // early_stop armed, the run ends at the event that terminates the last
  // abiding participant instead of draining residual timers to the horizon.
  std::optional<props::OnlineMonitor> monitor;
  if (config.online.enabled) {
    props::OnlineMonitor::Config ocfg = base_online_config(config.spec, parts);
    for (std::size_t k = 0; k < interps.size(); ++k) {
      if (abiding[k]) ocfg.cast.push_back(interps[k]->id());
    }
    monitor.emplace(ocfg);
    if (config.online.early_stop) monitor->arm_stop(&simulator.stop_token());
    record.trace.set_sink(&*monitor);
  }

  const Duration horizon = record.schedule->horizon() + config.extra_horizon;
  bool drained = simulator.run_until(TimePoint::origin() + horizon);
  if (monitor) {
    record.trace.set_sink(nullptr);
    record.online = monitor->outcome();
    // An early-stopped run is quiescent for every checker input: report it
    // as drained, the convention the weak runner's termination check has
    // always used for its own early exit.
    if (simulator.stop_requested()) drained = true;
  }

  // Extract outcomes.
  for (std::size_t k = 0; k < interps.size(); ++k) {
    const anta::Interpreter* in = interps[k];
    ParticipantOutcome p;
    p.pid = in->id();
    p.role = parts.role_name(p.pid);
    p.abiding = abiding[k];
    p.is_escrow = parts.is_escrow(p.pid);
    p.index = p.is_escrow ? static_cast<int>(k) - (n + 1) : static_cast<int>(k);
    p.terminated = in->finished();
    p.terminated_local = in->terminated_local();
    p.terminated_global = in->terminated_global();
    p.local_at_start = in->clock().to_local(TimePoint::origin());
    p.final_state = in->automaton().state_name(in->state());
    p.initial_holdings = initial[k];
    p.final_holdings = ledger.holdings(p.pid);
    p.issued_payment_cert =
        record.trace.count(props::EventKind::kCertIssued, p.pid) > 0;
    p.received_payment_cert =
        record.trace.count(props::EventKind::kCertReceived, p.pid) > 0;
    record.participants.push_back(std::move(p));
  }

  record.escrow_deals = escrows.deals();
  record.stats.messages_sent = network.stats().messages_sent;
  record.stats.messages_delivered = network.stats().messages_delivered;
  record.stats.messages_dropped = network.stats().messages_dropped;
  record.stats.events_executed = simulator.events_executed();
  record.stats.end_time = simulator.now();
  record.stats.drained = drained;
  return record;
}

}  // namespace xcp::proto
