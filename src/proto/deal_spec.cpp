#include "proto/deal_spec.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace xcp::proto {

DealSpec DealSpec::uniform(std::uint64_t deal_id, int n, std::int64_t base,
                           std::int64_t commission, Currency currency) {
  DealSpec s;
  s.deal_id = deal_id;
  s.n = n;
  for (int i = 0; i < n; ++i) {
    s.hop.emplace_back(base + static_cast<std::int64_t>(n - 1 - i) * commission,
                       currency);
  }
  s.validate();
  return s;
}

DealSpec DealSpec::explicit_hops(std::uint64_t deal_id,
                                 std::vector<Amount> hops) {
  DealSpec s;
  s.deal_id = deal_id;
  s.n = static_cast<int>(hops.size());
  s.hop = std::move(hops);
  s.validate();
  return s;
}

void DealSpec::validate() const {
  XCP_REQUIRE(n >= 1, "deal needs at least one escrow");
  XCP_REQUIRE(static_cast<int>(hop.size()) == n, "need one hop value per escrow");
  for (const Amount& a : hop) {
    XCP_REQUIRE(a.units() > 0, "hop amounts must be positive");
  }
}

bool Participants::is_customer(sim::ProcessId pid) const {
  return std::find(customers.begin(), customers.end(), pid) != customers.end();
}

bool Participants::is_escrow(sim::ProcessId pid) const {
  return std::find(escrows.begin(), escrows.end(), pid) != escrows.end();
}

std::string Participants::role_name(sim::ProcessId pid) const {
  for (std::size_t i = 0; i < customers.size(); ++i) {
    if (customers[i] == pid) {
      if (i == 0) return "alice";
      if (i + 1 == customers.size()) return "bob";
      return "chloe_" + std::to_string(i);
    }
  }
  for (std::size_t i = 0; i < escrows.size(); ++i) {
    if (escrows[i] == pid) return "escrow_" + std::to_string(i);
  }
  return "?";
}

}  // namespace xcp::proto
