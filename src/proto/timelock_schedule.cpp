#include "proto/timelock_schedule.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace xcp::proto {

TimelockSchedule::TimelockSchedule(int n, const TimingParams& p, bool compensated)
    : params_(p), compensated_(compensated) {
  XCP_REQUIRE(n >= 1, "schedule needs n >= 1");
  XCP_REQUIRE(p.slack > Duration::zero(),
              "slack must be positive (strict acceptance inequality)");
  XCP_REQUIRE(p.rho >= 0.0 && p.rho < 1.0, "rho in [0,1)");

  const Duration step = p.step();

  // True-time windows, back to front.
  A_.assign(static_cast<std::size_t>(n), Duration::zero());
  A_[static_cast<std::size_t>(n - 1)] = 2 * step + p.slack;
  for (int i = n - 2; i >= 0; --i) {
    A_[static_cast<std::size_t>(i)] = A_[static_cast<std::size_t>(i + 1)] + 4 * step;
  }

  const double inflate = compensated ? (1.0 + p.rho) : 1.0;
  a_.reserve(A_.size());
  d_.reserve(A_.size());
  for (const Duration& A : A_) {
    const Duration a = A.scaled_up(inflate);
    a_.push_back(a);
    d_.push_back(a + (2 * p.processing).scaled_up(inflate));
  }
}

TimelockSchedule TimelockSchedule::drift_compensated(int n, const TimingParams& p) {
  return TimelockSchedule(n, p, /*compensated=*/true);
}

TimelockSchedule TimelockSchedule::naive(int n, const TimingParams& p) {
  return TimelockSchedule(n, p, /*compensated=*/false);
}

Duration TimelockSchedule::customer_termination_bound(int i) const {
  // Worst true-time path for customer c_i, measured from protocol start:
  //  - setup: G(d_i) arrives by Delta+eps; the P promise c_i also needs has
  //    propagated through i relay steps: <= (2i+1)*(Delta+eps);
  //  - c_i pays (<= eps, folded into the step terms below);
  //  - its downstream escrow resolves within d_i on its own clock, which is
  //    at most d_i / (1 - rho) of true time, plus delivery Delta;
  //  - if the outcome was chi, c_i forwards it and waits for the upstream
  //    escrow's payout: another 2*(Delta+eps).
  const TimingParams& p = params_;
  const Duration step = p.step();
  const Duration setup = (2 * i + 1) * step + step;
  const int idx = std::min(i, n() - 1);  // c_n uses e_{n-1}'s promise
  const Duration escrow_resolution =
      d(idx).scaled_up(1.0 / (1.0 - p.rho)) + p.delta_max;
  const Duration upstream_payout = (i >= 1) ? 2 * step : Duration::zero();
  return setup + escrow_resolution + upstream_payout + p.slack;
}

Duration TimelockSchedule::horizon() const {
  Duration h = Duration::zero();
  for (int i = 0; i <= n(); ++i) {
    h = std::max(h, customer_termination_bound(i));
  }
  // Escrows terminate within one more delivery+processing of the last
  // customer action they react to.
  return h + 2 * params_.step();
}

}  // namespace xcp::proto
