#include "proto/weak/participants.hpp"

#include "proto/bodies.hpp"
#include "support/status.hpp"

namespace xcp::proto::weak {

namespace {
constexpr std::uint64_t kPatienceToken = 1;

// Customer/escrow final-state labels (consumed by tests and benches).
constexpr const char* kDoneCommit = "done_commit";
constexpr const char* kDoneAbort = "done_abort";
constexpr const char* kDoneCompleted = "done_completed";
constexpr const char* kDoneRefunded = "done_refunded";
constexpr const char* kDoneIdle = "done_idle";
}  // namespace

const char* weak_byz_name(WeakByz b) {
  switch (b) {
    case WeakByz::kHonest: return "honest";
    case WeakByz::kCrash: return "crash";
    case WeakByz::kNoDeposit: return "no-deposit";
    case WeakByz::kNoReport: return "no-report";
    case WeakByz::kNoResolve: return "no-resolve";
    case WeakByz::kNoChi: return "no-chi";
    case WeakByz::kEagerAbort: return "eager-abort";
  }
  return "?";
}

void WeakParticipant::terminate(const std::string& state,
                                props::TraceRecorder* trace) {
  if (terminated_) return;
  terminated_ = true;
  terminated_local_ = local_now();
  terminated_global_ = global_now();
  final_state_ = state;
  if (trace != nullptr) {
    props::TraceEvent e;
    e.kind = props::EventKind::kTerminate;
    e.at = terminated_global_;
    e.local_at = terminated_local_;
    e.actor = id();
    e.label = state;
    trace->record(e);
  }
}

// ---------------------------------------------------------------- customer

WeakCustomer::WeakCustomer(WeakContextPtr ctx, int index, Duration patience,
                           WeakByz behaviour)
    : ctx_(std::move(ctx)), index_(index), patience_(patience),
      behaviour_(behaviour) {}

void WeakCustomer::on_start() {
  if (behaviour_ == WeakByz::kCrash) return;
  signer_ = ctx_->keys->signer_for(id());

  if (behaviour_ == WeakByz::kEagerAbort) {
    petition_abort();
    // Still follows the protocol otherwise (an impatient-but-abiding user).
  }
  if (is_bob()) {
    if (behaviour_ != WeakByz::kNoChi) submit_chi();
  } else {
    if (behaviour_ != WeakByz::kNoDeposit) deposit();
  }
  // Patience timer: an abiding customer eventually loses patience, which is
  // what guarantees a TM decision (and hence everyone's termination) even
  // when some other participant stalls the happy path.
  set_timer_local_after(patience_, kPatienceToken);
}

void WeakCustomer::deposit() {
  const sim::ProcessId escrow = ctx_->parts.escrow(index_);
  const Amount v = ctx_->spec.hop_amount(index_);
  ledger::TransferId tid = ledger::kInvalidTransfer;
  ctx_->ledger->transfer(id(), escrow, v, global_now(), &tid)
      .expect("weak deposit");
  deposited_ = true;
  auto body = net::make_body<MoneyMsg>();
  body->deal_id = ctx_->spec.deal_id;
  body->receipt = tid;
  body->amount = v;
  send(escrow, net::kinds::money, body);
}

void WeakCustomer::submit_chi() {
  auto body = net::make_body<CertMsg>();
  body->cert = crypto::make_payment_cert(signer_, ctx_->spec.deal_id);
  issued_chi_ = true;
  if (ctx_->trace != nullptr) {
    props::TraceEvent e;
    e.kind = props::EventKind::kCertIssued;
    e.at = global_now();
    e.local_at = local_now();
    e.actor = id();
    e.label = props::labels::chi;
    ctx_->trace->record(e);
  }
  if (ctx_->tm_kind == TmKind::kSmartContract) {
    auto tx = net::make_body<chain::TxMsg>();
    tx->tx = chain::make_signed_tx(signer_, ctx_->tm_contract_name, "chi", 0, 0, body->cert);
    for (sim::ProcessId a : ctx_->tm_addresses) send(a, net::kinds::tx, tx);
  } else {
    for (sim::ProcessId a : ctx_->tm_addresses) send(a, net::kinds::tm_chi, body);
  }
}

void WeakCustomer::petition_abort() {
  if (petitioned_ || terminated() || commit_cert_ || abort_cert_) return;
  petitioned_ = true;
  if (ctx_->trace != nullptr) {
    props::TraceEvent e;
    e.kind = props::EventKind::kAbortRequested;
    e.at = global_now();
    e.local_at = local_now();
    e.actor = id();
    ctx_->trace->record(e);
  }
  if (ctx_->tm_kind == TmKind::kSmartContract) {
    auto tx = net::make_body<chain::TxMsg>();
    tx->tx = chain::make_signed_tx(signer_, ctx_->tm_contract_name, "abort");
    for (sim::ProcessId a : ctx_->tm_addresses) send(a, net::kinds::tx, tx);
  } else {
    auto body = consensus::make_report_body(consensus::make_statement(
        signer_, "abort-petition", ctx_->spec.deal_id));
    for (sim::ProcessId a : ctx_->tm_addresses) send(a, net::kinds::tm_report, body);
  }
}

void WeakCustomer::handle_cert(const crypto::Certificate& cert) {
  if (!ctx_->verifier.verify(cert)) return;
  if (ctx_->trace != nullptr && !commit_cert_ && !abort_cert_) {
    props::TraceEvent e;
    e.kind = props::EventKind::kCertReceived;
    e.at = global_now();
    e.local_at = local_now();
    e.actor = id();
    e.label = crypto::cert_kind_label(cert.kind);
    ctx_->trace->record(e);
  }
  if (cert.kind == crypto::CertKind::kCommit && !commit_cert_) {
    commit_cert_ = cert;
  } else if (cert.kind == crypto::CertKind::kAbort && !abort_cert_) {
    abort_cert_ = cert;
  }
  maybe_terminate();
}

void WeakCustomer::maybe_terminate() {
  if (terminated()) return;
  if (commit_cert_) {
    if (is_alice()) {
      // CS1': her money went through; chi_c (embedding chi) is her proof.
      terminate(kDoneCommit, ctx_->trace);
    } else if (payout_received_) {
      terminate(kDoneCommit, ctx_->trace);
    }
    return;
  }
  if (abort_cert_) {
    if (is_bob() || !deposited_ || refund_received_) {
      terminate(kDoneAbort, ctx_->trace);
    }
  }
}

void WeakCustomer::on_message(const net::Message& m) {
  if (behaviour_ == WeakByz::kCrash || terminated()) return;
  if (m.kind == net::kinds::tm_cert || m.kind == net::kinds::chain_event) {
    if (const auto cert = extract_tm_cert(m)) handle_cert(*cert);
    return;
  }
  if (m.kind == net::kinds::money) {
    const auto* body = m.body_as<MoneyMsg>();
    if (body == nullptr || body->deal_id != ctx_->spec.deal_id) return;
    // Refund (from my escrow e_i) or payout (from upstream e_{i-1}).
    if (!is_bob() && m.from == ctx_->parts.escrow(index_) &&
        ctx_->ledger->verify_exact(body->receipt, m.from, id(),
                                   ctx_->spec.hop_amount(index_))) {
      refund_received_ = true;
    }
    if (index_ >= 1 && m.from == ctx_->parts.escrow(index_ - 1) &&
        ctx_->ledger->verify_exact(body->receipt, m.from, id(),
                                   ctx_->spec.hop_amount(index_ - 1))) {
      payout_received_ = true;
    }
    maybe_terminate();
  }
}

void WeakCustomer::on_timer(std::uint64_t token) {
  if (behaviour_ == WeakByz::kCrash || terminated()) return;
  if (token == kPatienceToken) {
    // kNoDeposit models a *Byzantine* silent customer: it also never
    // petitions, to exercise the case where progress hinges on others'
    // patience running out.
    if (behaviour_ != WeakByz::kNoDeposit) petition_abort();
  }
}

// ------------------------------------------------------------------ escrow

WeakEscrow::WeakEscrow(WeakContextPtr ctx, int index, WeakByz behaviour)
    : ctx_(std::move(ctx)), index_(index), behaviour_(behaviour) {}

void WeakEscrow::on_start() {
  if (behaviour_ == WeakByz::kCrash) return;
  signer_ = ctx_->keys->signer_for(id());
}

void WeakEscrow::report_escrowed() {
  if (behaviour_ == WeakByz::kNoReport) return;
  if (ctx_->tm_kind == TmKind::kSmartContract) {
    auto tx = net::make_body<chain::TxMsg>();
    tx->tx = chain::make_signed_tx(signer_, ctx_->tm_contract_name, "escrowed",
                                   static_cast<std::uint64_t>(index_));
    for (sim::ProcessId a : ctx_->tm_addresses) send(a, net::kinds::tx, tx);
  } else {
    auto body = consensus::make_report_body(consensus::make_statement(
        signer_, "escrowed", ctx_->spec.deal_id,
        static_cast<std::uint64_t>(index_)));
    for (sim::ProcessId a : ctx_->tm_addresses) send(a, net::kinds::tm_report, body);
  }
}

void WeakEscrow::handle_cert(const crypto::Certificate& cert) {
  if (!ctx_->verifier.verify(cert)) return;
  if (cert.kind == crypto::CertKind::kCommit && !commit_cert_) {
    commit_cert_ = cert;
  } else if (cert.kind == crypto::CertKind::kAbort && !abort_cert_) {
    abort_cert_ = cert;
  }
  // Relay the certificate to both customers once: guarantees they learn the
  // outcome even if the TM's direct sends raced ahead of their attachment.
  if (!cert_forwarded_ && (commit_cert_ || abort_cert_)) {
    cert_forwarded_ = true;
    auto body = net::make_body<CertMsg>();
    body->cert = commit_cert_ ? *commit_cert_ : *abort_cert_;
    send(ctx_->parts.customer(index_), net::kinds::tm_cert, body);
    send(ctx_->parts.customer(index_ + 1), net::kinds::tm_cert, body);
  }
  resolve_if_ready();
}

void WeakEscrow::resolve_if_ready() {
  // Deliberately *not* guarded on terminated(): an escrow that terminated
  // "idle" after an abort must still honour a deposit that was in flight
  // when the abort was decided — the refund path of a real escrow contract
  // stays callable forever. terminate() is idempotent.
  if (resolved_) return;
  if (behaviour_ == WeakByz::kNoResolve) return;

  if (commit_cert_ && escrow_deal_ != 0) {
    ledger::TransferId tid = ledger::kInvalidTransfer;
    ctx_->escrows->complete(escrow_deal_, global_now(), &tid)
        .expect("weak escrow complete");
    auto body = net::make_body<MoneyMsg>();
    body->deal_id = ctx_->spec.deal_id;
    body->receipt = tid;
    body->amount = ctx_->spec.hop_amount(index_);
    send(ctx_->parts.customer(index_ + 1), net::kinds::money, body);
    resolved_ = true;
    terminate(kDoneCompleted, ctx_->trace);
    return;
  }
  if (abort_cert_ && escrow_deal_ != 0) {
    ledger::TransferId tid = ledger::kInvalidTransfer;
    ctx_->escrows->refund(escrow_deal_, global_now(), &tid)
        .expect("weak escrow refund");
    auto body = net::make_body<MoneyMsg>();
    body->deal_id = ctx_->spec.deal_id;
    body->receipt = tid;
    body->amount = ctx_->spec.hop_amount(index_);
    send(ctx_->parts.customer(index_), net::kinds::money, body);
    resolved_ = true;
    terminate(kDoneRefunded, ctx_->trace);
    return;
  }
  if (abort_cert_ && escrow_deal_ == 0) {
    // Nothing held; the abort ends this escrow's involvement.
    terminate(kDoneIdle, ctx_->trace);
  }
  // commit cert with no deposit: wait — an abiding escrow only appears in a
  // committed deal if it reported "escrowed", i.e. it holds the deposit; if
  // the deposit message is still in flight, resolve when it lands.
}

void WeakEscrow::on_message(const net::Message& m) {
  if (behaviour_ == WeakByz::kCrash) return;
  // Late deposits are still accepted after termination (see
  // resolve_if_ready); everything else is ignored once terminated.
  if (terminated() && m.kind != net::kinds::money) return;
  if (m.kind == net::kinds::money) {
    const auto* body = m.body_as<MoneyMsg>();
    if (body == nullptr || body->deal_id != ctx_->spec.deal_id) return;
    if (escrow_deal_ != 0) return;  // already funded
    const sim::ProcessId depositor = ctx_->parts.customer(index_);
    const Amount v = ctx_->spec.hop_amount(index_);
    if (m.from != depositor ||
        !ctx_->ledger->verify_exact(body->receipt, depositor, id(), v)) {
      return;
    }
    ctx_->escrows
        ->lock(id(), depositor, ctx_->parts.customer(index_ + 1), v,
               body->receipt, global_now(), &escrow_deal_)
        .expect("weak escrow lock");
    report_escrowed();
    resolve_if_ready();  // a certificate may already be in hand
    return;
  }
  if (m.kind == net::kinds::tm_cert || m.kind == net::kinds::chain_event) {
    if (const auto cert = extract_tm_cert(m)) handle_cert(*cert);
  }
}

}  // namespace xcp::proto::weak
