#include "proto/weak/messages.hpp"

#include "proto/bodies.hpp"

namespace xcp::proto::weak {

const char* tm_kind_name(TmKind k) {
  switch (k) {
    case TmKind::kTrustedParty: return "trusted-party";
    case TmKind::kSmartContract: return "smart-contract";
    case TmKind::kNotaryCommittee: return "notary-committee";
  }
  return "?";
}

std::optional<crypto::Certificate> extract_tm_cert(const net::Message& m) {
  if (const auto* c = m.body_as<CertMsg>()) return c->cert;
  if (const auto* d = m.body_as<consensus::DecisionMsg>()) return d->cert;
  if (const auto* e = m.body_as<chain::ChainEventMsg>()) return e->cert;
  return std::nullopt;
}

bool TmCertVerifier::verify(const crypto::Certificate& cert) const {
  if (keys == nullptr) return false;
  if (cert.deal_id != deal_id) return false;
  if (cert.kind != crypto::CertKind::kCommit &&
      cert.kind != crypto::CertKind::kAbort) {
    return false;
  }
  switch (kind) {
    case TmKind::kTrustedParty:
    case TmKind::kSmartContract:
      return cert.issuer == single_issuer && crypto::verify_cert(*keys, cert);
    case TmKind::kNotaryCommittee:
      return cert.issuer == committee_identity &&
             crypto::verify_quorum_cert(*keys, cert, committee_members, quorum);
  }
  return false;
}

}  // namespace xcp::proto::weak
