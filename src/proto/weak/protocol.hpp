#pragma once
// Runner for the weak-liveness protocol (Thm 3): wires participants, the
// chosen transaction-manager back-end, synchrony model, drift, patience and
// Byzantine assignments; executes; extracts a RunRecord compatible with the
// Definition-2 property checkers.

#include <utility>
#include <vector>

#include "consensus/notary.hpp"
#include "proto/outcome.hpp"
#include "proto/timebounded.hpp"  // EnvironmentConfig, SynchronyKind
#include "proto/weak/participants.hpp"

namespace xcp::proto::weak {

struct WeakByzAssignment {
  bool is_escrow = false;
  int index = 0;
  WeakByz behaviour = WeakByz::kHonest;

  static WeakByzAssignment customer(int i, WeakByz b) { return {false, i, b}; }
  static WeakByzAssignment escrow(int i, WeakByz b) { return {true, i, b}; }
};

struct WeakConfig {
  std::uint64_t seed = 1;
  DealSpec spec = DealSpec::uniform(/*deal_id=*/1, /*n=*/2, /*base=*/1000,
                                    /*commission=*/10);
  /// Default environment: partial synchrony (the regime Thm 3 targets).
  EnvironmentConfig env = [] {
    EnvironmentConfig e;
    e.synchrony = SynchronyKind::kPartiallySynchronous;
    return e;
  }();

  TmKind tm = TmKind::kTrustedParty;

  // Notary-committee back-end.
  int notary_count = 4;
  int byzantine_notaries = 0;
  consensus::NotaryBehaviour notary_byz = consensus::NotaryBehaviour::kSilent;
  Duration notary_base_round = Duration::millis(500);

  // Smart-contract back-end.
  Duration block_interval = Duration::millis(500);

  /// Trusted-party back-end only: a fixed local abort deadline (the
  /// Interledger atomic-protocol notary [4]). Unset = the paper's TM, which
  /// only aborts on customer petitions.
  std::optional<Duration> tm_abort_deadline;

  /// Local-clock patience before an unterminated customer petitions abort.
  Duration patience = Duration::seconds(60);
  /// Per-customer overrides (index, patience) — the "impatient" scenarios.
  std::vector<std::pair<int, Duration>> patience_overrides;

  std::vector<WeakByzAssignment> byzantine;

  /// Observation window (no a-priori schedule bound exists here).
  Duration horizon = Duration::seconds(240);

  /// An adversary factory over the participant ids (timing attacks).
  std::function<std::unique_ptr<net::Adversary>(const Participants&)> adversary;

  /// Online checking (see props/online.hpp). With early_stop, the run ends
  /// at the exact event that terminates the last abiding member — replacing
  /// the 1-second slice polling below with an event-granular stop, and
  /// halting TM infrastructure (block timers, notary rounds) implicitly.
  props::OnlineOptions online;
};

RunRecord run_weak(const WeakConfig& config);

}  // namespace xcp::proto::weak
