#include "proto/weak/contract_tm.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace xcp::proto::weak {

TmContract::TmContract(consensus::ValidityRules validity, std::string name)
    : name_(std::move(name)), validity_(std::move(validity)) {}

Status TmContract::apply(const chain::Transaction& tx, chain::ChainContext& ctx) {
  if (decision_) return Status::error("tm: already decided");

  if (tx.op == "escrowed") {
    // The chain verified tx.sender's signature; authorship is the evidence.
    const auto& expected = validity_.expected_escrows;
    if (std::find(expected.begin(), expected.end(), tx.sender) ==
        expected.end()) {
      return Status::error("tm: escrowed from non-escrow");
    }
    escrowed_.insert(tx.sender.value());
    maybe_decide(ctx);
    return Status::ok();
  }
  if (tx.op == "chi") {
    if (!tx.cert.has_value()) return Status::error("tm: chi without cert");
    const crypto::Certificate& cert = *tx.cert;
    if (cert.kind != crypto::CertKind::kPayment ||
        cert.deal_id != validity_.deal_id || cert.issuer != validity_.bob ||
        !crypto::verify_cert(ctx.keys(), cert)) {
      return Status::error("tm: invalid chi");
    }
    chi_ = cert;
    maybe_decide(ctx);
    return Status::ok();
  }
  if (tx.op == "abort") {
    const auto& customers = validity_.expected_customers;
    if (std::find(customers.begin(), customers.end(), tx.sender) ==
        customers.end()) {
      return Status::error("tm: abort from non-customer");
    }
    petitioned_ = true;
    maybe_decide(ctx);
    return Status::ok();
  }
  return Status::error("tm: unknown op " + tx.op);
}

void TmContract::maybe_decide(chain::ChainContext& ctx) {
  if (chi_ && escrowed_.size() >= validity_.expected_escrows.size()) {
    decide(consensus::Value::kCommit, ctx);
  } else if (petitioned_) {
    decide(consensus::Value::kAbort, ctx);
  }
}

void TmContract::decide(consensus::Value v, chain::ChainContext& ctx) {
  XCP_REQUIRE(!decision_.has_value(), "tm contract deciding twice");
  decision_ = v;
  crypto::Certificate cert =
      v == consensus::Value::kCommit
          ? crypto::make_commit_cert(ctx.chain_signer(), validity_.deal_id, *chi_)
          : crypto::make_abort_cert(ctx.chain_signer(), validity_.deal_id);
  if (ctx.trace() != nullptr) {
    props::TraceEvent e;
    e.kind = props::EventKind::kDecide;
    e.at = ctx.block_time();
    e.local_at = ctx.block_time();
    e.actor = ctx.chain_id();
    e.label = consensus::value_label(v);
    e.deal_id = validity_.deal_id;
    ctx.trace()->record(e);
  }
  ctx.emit(name_, "decided", std::move(cert), consensus::value_name(v));
}

}  // namespace xcp::proto::weak
