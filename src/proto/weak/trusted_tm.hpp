#pragma once
// Transaction manager back-end #1: "a single external party trusted by all"
// (Sec. 3). Collects escrowed reports, Bob's chi and abort petitions;
// decides once; issues chi_c (embedding chi) or chi_a and broadcasts it.

#include <optional>
#include <set>

#include "consensus/committee.hpp"
#include "net/network.hpp"
#include "props/trace.hpp"

namespace xcp::proto::weak {

class TrustedPartyTm final : public net::Actor {
 public:
  /// `validity` supplies the expected escrows/customers/Bob and the key
  /// registry; `notify` lists everyone who receives the certificate.
  TrustedPartyTm(consensus::ValidityRules validity,
                 std::vector<sim::ProcessId> notify,
                 crypto::KeyRegistry& keys);

  /// Interledger "atomic protocol" mode [4]: the notary aborts on its own
  /// fixed local deadline instead of waiting for customer petitions. This is
  /// exactly what costs the protocol its success guarantee — the deadline
  /// can fire while honest traffic is merely slow (see the property-matrix
  /// bench). No deadline (the default) is the paper's weak-liveness TM.
  void set_abort_deadline(Duration local_deadline) {
    abort_deadline_ = local_deadline;
  }

  bool decided() const { return decision_.has_value(); }
  std::optional<consensus::Value> decision() const { return decision_; }

  void on_start() override;
  void on_message(const net::Message& m) override;
  void on_timer(std::uint64_t token) override;

 private:
  std::optional<Duration> abort_deadline_;
  void maybe_decide();
  void decide(consensus::Value v);

  consensus::ValidityRules validity_;
  std::vector<sim::ProcessId> notify_;
  crypto::KeyRegistry& keys_;
  crypto::Signer signer_;
  std::set<std::uint32_t> escrowed_;
  std::optional<crypto::Certificate> chi_;
  bool petitioned_ = false;
  std::optional<consensus::Value> decision_;
};

}  // namespace xcp::proto::weak
