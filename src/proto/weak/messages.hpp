#pragma once
// Wire helpers for the weak-liveness protocol: participants talk to the
// transaction manager in one of three dialects (direct messages to a trusted
// party, transactions to a contract chain, broadcasts to a notary
// committee); certificates come back as "tm_cert" messages or chain events.

#include <optional>

#include "chain/transaction.hpp"
#include "consensus/messages.hpp"
#include "crypto/certificate.hpp"
#include "net/message.hpp"

namespace xcp::proto::weak {

/// How participants reach the transaction manager.
enum class TmKind { kTrustedParty, kSmartContract, kNotaryCommittee };

const char* tm_kind_name(TmKind k);

/// Extracts a TM-issued certificate from any of the delivery forms:
/// CertMsg ("tm_cert" from the trusted party or relaying escrows),
/// DecisionMsg ("tm_cert" from notaries), ChainEventMsg ("chain_event").
std::optional<crypto::Certificate> extract_tm_cert(const net::Message& m);

/// Verifier for TM certificates, fixed per run by the runner.
struct TmCertVerifier {
  TmKind kind = TmKind::kTrustedParty;
  std::uint64_t deal_id = 0;
  const crypto::KeyRegistry* keys = nullptr;
  sim::ProcessId single_issuer;                // trusted party / chain id
  sim::ProcessId committee_identity;           // committee form
  std::vector<sim::ProcessId> committee_members;
  std::size_t quorum = 0;

  bool verify(const crypto::Certificate& cert) const;
};

}  // namespace xcp::proto::weak
