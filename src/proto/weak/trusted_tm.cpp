#include "proto/weak/trusted_tm.hpp"

#include <algorithm>

#include "proto/bodies.hpp"
#include "support/status.hpp"

namespace xcp::proto::weak {

TrustedPartyTm::TrustedPartyTm(consensus::ValidityRules validity,
                               std::vector<sim::ProcessId> notify,
                               crypto::KeyRegistry& keys)
    : validity_(std::move(validity)), notify_(std::move(notify)), keys_(keys) {}

void TrustedPartyTm::on_start() {
  signer_ = keys_.signer_for(id());
  if (abort_deadline_) set_timer_local_after(*abort_deadline_, /*token=*/1);
}

void TrustedPartyTm::on_timer(std::uint64_t) {
  if (!decision_) decide(consensus::Value::kAbort);
}

void TrustedPartyTm::on_message(const net::Message& m) {
  if (decision_) return;  // the decision is final; late traffic is ignored

  if (m.kind == net::kinds::tm_chi) {
    const auto* body = m.body_as<CertMsg>();
    if (body == nullptr) return;
    const crypto::Certificate& cert = body->cert;
    if (cert.kind == crypto::CertKind::kPayment &&
        cert.deal_id == validity_.deal_id && cert.issuer == validity_.bob &&
        crypto::verify_cert(keys_, cert)) {
      chi_ = cert;
      maybe_decide();
    }
    return;
  }
  if (m.kind != net::kinds::tm_report) return;
  const auto* body = m.body_as<consensus::ReportMsg>();
  if (body == nullptr) return;
  const consensus::SignedStatement& s = body->statement;
  if (s.deal_id != validity_.deal_id || !s.verify(*validity_.keys)) return;

  if (s.kind == "escrowed") {
    const auto& expected = validity_.expected_escrows;
    if (std::find(expected.begin(), expected.end(), s.subject) !=
        expected.end()) {
      escrowed_.insert(s.subject.value());
    }
  } else if (s.kind == "abort-petition") {
    const auto& customers = validity_.expected_customers;
    if (std::find(customers.begin(), customers.end(), s.subject) !=
        customers.end()) {
      petitioned_ = true;
    }
  }
  maybe_decide();
}

void TrustedPartyTm::maybe_decide() {
  // Commit wins when complete; otherwise a pending petition aborts. The
  // order of evaluation implements "first condition reached decides" since
  // this method runs after every single ingested message.
  if (chi_ && escrowed_.size() >= validity_.expected_escrows.size()) {
    decide(consensus::Value::kCommit);
  } else if (petitioned_) {
    decide(consensus::Value::kAbort);
  }
}

void TrustedPartyTm::decide(consensus::Value v) {
  XCP_REQUIRE(!decision_.has_value(), "trusted TM deciding twice");
  decision_ = v;

  auto body = net::make_body<CertMsg>();
  if (v == consensus::Value::kCommit) {
    body->cert = crypto::make_commit_cert(signer_, validity_.deal_id, *chi_);
  } else {
    body->cert = crypto::make_abort_cert(signer_, validity_.deal_id);
  }

  if (net().trace() != nullptr) {
    props::TraceEvent e;
    e.kind = props::EventKind::kDecide;
    e.at = global_now();
    e.local_at = local_now();
    e.actor = id();
    e.label = consensus::value_label(v);
    e.deal_id = validity_.deal_id;
    net().trace()->record(e);
  }
  for (sim::ProcessId pid : notify_) send(pid, net::kinds::tm_cert, body);
}

}  // namespace xcp::proto::weak
