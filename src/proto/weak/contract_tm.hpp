#pragma once
// Transaction manager back-end #2: "a smart contract running on a
// permissionless blockchain shared by every customer" (Sec. 3). The contract
// runs on the simulated chain (src/chain); serialization of transactions in
// block order makes the commit-xor-abort decision trivially unique (CC).

#include <optional>
#include <set>

#include "chain/contract.hpp"
#include "consensus/committee.hpp"

namespace xcp::proto::weak {

class TmContract final : public chain::Contract {
 public:
  /// `name` is the contract's registration name on the chain; multi-deal
  /// runs register one instance per deal (e.g. "tm_7").
  explicit TmContract(consensus::ValidityRules validity,
                      std::string name = "tm");

  const std::string& name() const override { return name_; }
  Status apply(const chain::Transaction& tx, chain::ChainContext& ctx) override;

  bool decided() const { return decision_.has_value(); }
  std::optional<consensus::Value> decision() const { return decision_; }

 private:
  void maybe_decide(chain::ChainContext& ctx);
  void decide(consensus::Value v, chain::ChainContext& ctx);

  std::string name_ = "tm";
  consensus::ValidityRules validity_;
  std::set<std::uint32_t> escrowed_;
  std::optional<crypto::Certificate> chi_;
  bool petitioned_ = false;
  std::optional<consensus::Value> decision_;
};

}  // namespace xcp::proto::weak
