#pragma once
// Concurrent deals over shared substrates.
//
// A bank or blockchain serves many payments at once; this runner executes K
// independent weak-protocol deals against one simulator, one ledger and —
// for the smart-contract back-end — one blockchain hosting one TM-contract
// instance per deal. It exists to test isolation (an abort in one deal never
// touches another), global conservation across deals, and the shared chain's
// throughput behaviour.
//
// Supported TM back-ends: trusted party (one TM actor per deal) and smart
// contract (one chain, K contracts). Notary committees are per-deal
// committees by construction; running K of them adds nothing beyond the
// single-deal case, so they are not duplicated here.

#include <vector>

#include "proto/weak/protocol.hpp"

namespace xcp::proto::weak {

struct DealSetup {
  DealSpec spec;  // deal_id must be unique across the batch
  Duration patience = Duration::seconds(60);
  std::vector<std::pair<int, Duration>> patience_overrides;
  std::vector<WeakByzAssignment> byzantine;
};

struct MultiWeakConfig {
  std::uint64_t seed = 1;
  TmKind tm = TmKind::kSmartContract;  // kTrustedParty or kSmartContract
  EnvironmentConfig env = [] {
    EnvironmentConfig e;
    e.synchrony = SynchronyKind::kPartiallySynchronous;
    return e;
  }();
  Duration block_interval = Duration::millis(500);
  std::vector<DealSetup> deals;
  Duration horizon = Duration::seconds(240);
};

/// Runs all deals concurrently; returns one RunRecord per deal (in input
/// order). Each record carries the full shared trace; the per-deal checkers
/// scope certificate consistency by deal id and everything else by the
/// deal's participants.
std::vector<RunRecord> run_weak_multi(const MultiWeakConfig& config);

}  // namespace xcp::proto::weak
