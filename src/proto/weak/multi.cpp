#include "proto/weak/multi.hpp"

#include <algorithm>

#include "chain/blockchain.hpp"
#include "net/delay_model.hpp"
#include "proto/weak/contract_tm.hpp"
#include "proto/weak/trusted_tm.hpp"
#include "support/status.hpp"

namespace xcp::proto::weak {

namespace {

std::unique_ptr<net::DelayModel> make_model(const EnvironmentConfig& env) {
  switch (env.synchrony) {
    case SynchronyKind::kSynchronous:
      return std::make_unique<net::SynchronousModel>(env.delta_min,
                                                     env.delta_max);
    case SynchronyKind::kPartiallySynchronous:
      return std::make_unique<net::PartialSynchronyModel>(
          env.gst, env.delta_max, env.pre_gst_typical);
    case SynchronyKind::kAsynchronous:
      return std::make_unique<net::AsynchronousModel>(env.async_typical,
                                                      env.async_cap);
  }
  XCP_REQUIRE(false, "unreachable synchrony kind");
  return nullptr;
}

}  // namespace

std::vector<RunRecord> run_weak_multi(const MultiWeakConfig& config) {
  XCP_REQUIRE(!config.deals.empty(), "no deals");
  XCP_REQUIRE(config.tm == TmKind::kTrustedParty ||
                  config.tm == TmKind::kSmartContract,
              "multi-deal supports trusted-party and smart-contract TMs");
  {
    std::vector<std::uint64_t> ids;
    for (const auto& d : config.deals) ids.push_back(d.spec.deal_id);
    std::sort(ids.begin(), ids.end());
    XCP_REQUIRE(std::adjacent_find(ids.begin(), ids.end()) == ids.end(),
                "deal ids must be unique");
  }

  const std::size_t k = config.deals.size();
  // One shared trace lives in records[0]; copied to the others at the end.
  std::vector<RunRecord> records(k);

  sim::Simulator simulator(config.seed);
  props::TraceRecorder trace;
  net::Network network(simulator, make_model(config.env), &trace);
  network.set_drop_probability(config.env.drop_probability);
  ledger::Ledger ledger(&trace);
  ledger::EscrowRegistry escrows(ledger, &trace);
  crypto::KeyRegistry keys(config.seed ^ 0xabcdef12345ULL);

  // --- id prediction: per-deal customers+escrows, then TM process(es) ---
  std::uint32_t next_id = 0;
  std::vector<Participants> parts(k);
  for (std::size_t d = 0; d < k; ++d) {
    config.deals[d].spec.validate();
    const int n = config.deals[d].spec.n;
    for (int i = 0; i <= n; ++i) parts[d].customers.emplace_back(next_id++);
    for (int i = 0; i < n; ++i) parts[d].escrows.emplace_back(next_id++);
  }
  std::vector<sim::ProcessId> tm_ids;
  if (config.tm == TmKind::kTrustedParty) {
    for (std::size_t d = 0; d < k; ++d) tm_ids.emplace_back(next_id++);
  } else {
    tm_ids.emplace_back(next_id++);  // one shared chain
  }

  // --- contexts and participants ---
  std::vector<WeakContextPtr> ctxs(k);
  std::vector<std::vector<WeakParticipant*>> members(k);
  std::vector<std::vector<bool>> abiding(k);
  std::vector<consensus::ValidityRules> validity(k);

  for (std::size_t d = 0; d < k; ++d) {
    const DealSetup& setup = config.deals[d];
    const int n = setup.spec.n;

    validity[d].deal_id = setup.spec.deal_id;
    validity[d].expected_escrows = parts[d].escrows;
    validity[d].expected_customers = parts[d].customers;
    validity[d].bob = parts[d].bob();
    validity[d].keys = &keys;

    auto ctx = std::make_shared<WeakContext>();
    ctx->spec = setup.spec;
    ctx->parts = parts[d];
    ctx->tm_kind = config.tm;
    ctx->tm_addresses = {config.tm == TmKind::kTrustedParty ? tm_ids[d]
                                                            : tm_ids[0]};
    ctx->tm_contract_name = "tm_" + std::to_string(setup.spec.deal_id);
    ctx->ledger = &ledger;
    ctx->escrows = &escrows;
    ctx->keys = &keys;
    ctx->trace = &trace;
    ctx->verifier.kind = config.tm;
    ctx->verifier.deal_id = setup.spec.deal_id;
    ctx->verifier.keys = &keys;
    ctx->verifier.single_issuer = ctx->tm_addresses.front();
    ctxs[d] = ctx;

    auto behaviour_of = [&](bool is_escrow, int index) {
      for (const auto& b : setup.byzantine) {
        if (b.is_escrow == is_escrow && b.index == index) return b.behaviour;
      }
      return WeakByz::kHonest;
    };
    auto patience_of = [&](int index) {
      for (const auto& [i, p] : setup.patience_overrides) {
        if (i == index) return p;
      }
      return setup.patience;
    };

    for (int i = 0; i <= n; ++i) {
      const WeakByz b = behaviour_of(false, i);
      auto& c = simulator.spawn<WeakCustomer>(
          "d" + std::to_string(setup.spec.deal_id) + "_" +
              parts[d].role_name(parts[d].customer(i)),
          ctx, i, patience_of(i), b);
      XCP_REQUIRE(c.id() == parts[d].customer(i), "multi id prediction broken");
      network.attach(c);
      members[d].push_back(&c);
      abiding[d].push_back(b == WeakByz::kHonest || b == WeakByz::kEagerAbort);
    }
    for (int i = 0; i < n; ++i) {
      const WeakByz b = behaviour_of(true, i);
      auto& e = simulator.spawn<WeakEscrow>(
          "d" + std::to_string(setup.spec.deal_id) + "_" +
              parts[d].role_name(parts[d].escrow(i)),
          ctx, i, b);
      XCP_REQUIRE(e.id() == parts[d].escrow(i), "multi id prediction broken");
      network.attach(e);
      members[d].push_back(&e);
      abiding[d].push_back(b == WeakByz::kHonest);
    }
  }

  // --- transaction managers ---
  chain::Blockchain* chain_ptr = nullptr;
  if (config.tm == TmKind::kTrustedParty) {
    for (std::size_t d = 0; d < k; ++d) {
      std::vector<sim::ProcessId> notify;
      for (auto pid : parts[d].customers) notify.push_back(pid);
      for (auto pid : parts[d].escrows) notify.push_back(pid);
      auto& tm = simulator.spawn<TrustedPartyTm>(
          "tm_" + std::to_string(config.deals[d].spec.deal_id), validity[d],
          notify, keys);
      XCP_REQUIRE(tm.id() == tm_ids[d], "multi tm id prediction broken");
      network.attach(tm);
    }
  } else {
    auto& bc =
        simulator.spawn<chain::Blockchain>("chain", config.block_interval, keys);
    XCP_REQUIRE(bc.id() == tm_ids[0], "multi chain id prediction broken");
    network.attach(bc);
    for (std::size_t d = 0; d < k; ++d) {
      bc.register_contract(std::make_unique<TmContract>(
          validity[d], ctxs[d]->tm_contract_name));
      // Chain events go to every subscriber; verification scopes by deal.
      for (auto pid : parts[d].customers) bc.subscribe(pid);
      for (auto pid : parts[d].escrows) bc.subscribe(pid);
    }
    chain_ptr = &bc;
  }

  // Clocks + funding + initial snapshots.
  {
    Rng clock_rng = simulator.rng().fork();
    for (std::uint32_t pid = 0; pid < simulator.process_count(); ++pid) {
      simulator.set_clock(sim::ProcessId(pid),
                          sim::DriftClock::sample(clock_rng,
                                                  config.env.actual_rho,
                                                  config.env.clock_offset_max));
    }
  }
  for (std::size_t d = 0; d < k; ++d) {
    for (int i = 0; i < config.deals[d].spec.n; ++i) {
      ledger.mint(parts[d].customer(i), config.deals[d].spec.hop_amount(i));
    }
  }
  std::vector<std::vector<std::vector<Amount>>> initial(k);
  for (std::size_t d = 0; d < k; ++d) {
    for (const auto* m : members[d]) {
      initial[d].push_back(ledger.holdings(m->id()));
    }
  }

  // --- run (slice loop so the shared chain can be stopped) ---
  const TimePoint deadline = TimePoint::origin() + config.horizon;
  bool drained = false;
  while (simulator.now() < deadline) {
    const TimePoint next =
        std::min(deadline, simulator.now() + Duration::seconds(1));
    drained = simulator.run_until(next);
    bool all_done = true;
    for (std::size_t d = 0; d < k; ++d) {
      for (std::size_t m = 0; m < members[d].size(); ++m) {
        if (abiding[d][m] && !members[d][m]->terminated()) all_done = false;
      }
    }
    if (all_done) {
      if (chain_ptr != nullptr) chain_ptr->stop();
      drained = true;
      break;
    }
    if (drained) break;
  }

  // --- extraction ---
  for (std::size_t d = 0; d < k; ++d) {
    RunRecord& record = records[d];
    record.protocol = std::string("weak-multi:") + tm_kind_name(config.tm);
    record.spec = config.deals[d].spec;
    record.parts = parts[d];
    for (std::size_t m = 0; m < members[d].size(); ++m) {
      const WeakParticipant* w = members[d][m];
      ParticipantOutcome p;
      p.pid = w->id();
      p.role = parts[d].role_name(p.pid);
      p.abiding = abiding[d][m];
      p.is_escrow = parts[d].is_escrow(p.pid);
      p.terminated = w->terminated();
      p.terminated_local = w->terminated_local();
      p.terminated_global = w->terminated_global();
      p.local_at_start = w->clock().to_local(TimePoint::origin());
      p.final_state = w->final_state();
      p.initial_holdings = initial[d][m];
      p.final_holdings = ledger.holdings(p.pid);
      p.received_commit_cert = w->got_commit_cert();
      p.received_abort_cert = w->got_abort_cert();
      if (const auto* c = dynamic_cast<const WeakCustomer*>(w)) {
        p.issued_payment_cert = c->issued_chi();
      }
      p.received_payment_cert =
          trace.count(props::EventKind::kCertReceived, p.pid, props::labels::chi) > 0;
      record.participants.push_back(std::move(p));
    }
    // Escrow deals involving this deal's escrows only.
    for (const auto& deal : escrows.deals()) {
      if (parts[d].is_escrow(deal.escrow)) record.escrow_deals.push_back(deal);
    }
    record.stats.messages_sent = network.stats().messages_sent;
    record.stats.messages_delivered = network.stats().messages_delivered;
    record.stats.messages_dropped = network.stats().messages_dropped;
    record.stats.events_executed = simulator.events_executed();
    record.stats.end_time = simulator.now();
    record.stats.drained = drained;
    record.trace = trace.clone();  // full shared trace (CC scopes by deal id)
  }
  return records;
}

}  // namespace xcp::proto::weak
