#include "proto/weak/protocol.hpp"

#include <algorithm>

#include <optional>

#include "chain/blockchain.hpp"
#include "net/delay_model.hpp"
#include "props/online.hpp"
#include "proto/weak/contract_tm.hpp"
#include "proto/weak/trusted_tm.hpp"
#include "support/status.hpp"

namespace xcp::proto::weak {

namespace {

std::unique_ptr<net::DelayModel> make_model(const EnvironmentConfig& env) {
  switch (env.synchrony) {
    case SynchronyKind::kSynchronous:
      if (env.delta_min == env.delta_max) {
        // Deterministic-delay preset: fixed delta, no per-message RNG
        // draw; committee replies land same-instant and coalesce through
        // batched delivery.
        return net::DelayModel::synchronous(env.delta_max);
      }
      return std::make_unique<net::SynchronousModel>(env.delta_min,
                                                     env.delta_max);
    case SynchronyKind::kPartiallySynchronous:
      return std::make_unique<net::PartialSynchronyModel>(
          env.gst, env.delta_max, env.pre_gst_typical);
    case SynchronyKind::kAsynchronous:
      return std::make_unique<net::AsynchronousModel>(env.async_typical,
                                                      env.async_cap);
  }
  XCP_REQUIRE(false, "unreachable synchrony kind");
  return nullptr;
}

}  // namespace

RunRecord run_weak(const WeakConfig& config) {
  config.spec.validate();
  const int n = config.spec.n;

  RunRecord record;
  record.protocol = std::string("weak:") + tm_kind_name(config.tm);
  record.spec = config.spec;

  sim::Simulator simulator(config.seed);
  net::Network network(simulator, make_model(config.env), &record.trace);
  network.set_drop_probability(config.env.drop_probability);
  ledger::Ledger ledger(&record.trace);
  ledger::EscrowRegistry escrows(ledger, &record.trace);
  crypto::KeyRegistry keys(config.seed ^ 0xc0ffee1234ULL);

  // Cast prediction: customers 0..n, escrows n+1..2n, TM processes after.
  Participants parts;
  for (int i = 0; i <= n; ++i) {
    parts.customers.push_back(sim::ProcessId(static_cast<std::uint32_t>(i)));
  }
  for (int i = 0; i < n; ++i) {
    parts.escrows.push_back(sim::ProcessId(static_cast<std::uint32_t>(n + 1 + i)));
  }
  record.parts = parts;

  const std::uint32_t first_tm_id = static_cast<std::uint32_t>(2 * n + 1);
  std::vector<sim::ProcessId> tm_addresses;
  std::vector<sim::ProcessId> notary_ids;
  switch (config.tm) {
    case TmKind::kTrustedParty:
    case TmKind::kSmartContract:
      tm_addresses = {sim::ProcessId(first_tm_id)};
      break;
    case TmKind::kNotaryCommittee:
      XCP_REQUIRE(config.notary_count >= 1, "need at least one notary");
      for (int i = 0; i < config.notary_count; ++i) {
        notary_ids.push_back(sim::ProcessId(first_tm_id + i));
      }
      tm_addresses = notary_ids;
      break;
  }

  // Everyone who must learn the decision.
  std::vector<sim::ProcessId> notify;
  for (auto pid : parts.customers) notify.push_back(pid);
  for (auto pid : parts.escrows) notify.push_back(pid);

  consensus::ValidityRules validity;
  validity.deal_id = config.spec.deal_id;
  validity.expected_escrows = parts.escrows;
  validity.expected_customers = parts.customers;
  validity.bob = parts.bob();
  validity.keys = &keys;

  const sim::ProcessId committee_identity(3'000'000u +
                                          static_cast<std::uint32_t>(
                                              config.spec.deal_id));

  auto ctx = std::make_shared<WeakContext>();
  ctx->spec = config.spec;
  ctx->parts = parts;
  ctx->tm_kind = config.tm;
  ctx->tm_addresses = tm_addresses;
  ctx->ledger = &ledger;
  ctx->escrows = &escrows;
  ctx->keys = &keys;
  ctx->trace = &record.trace;

  ctx->verifier.kind = config.tm;
  ctx->verifier.deal_id = config.spec.deal_id;
  ctx->verifier.keys = &keys;
  if (config.tm == TmKind::kNotaryCommittee) {
    ctx->verifier.committee_identity = committee_identity;
    ctx->verifier.committee_members = notary_ids;
    const int f = (config.notary_count - 1) / 3;
    ctx->verifier.quorum = static_cast<std::size_t>(2 * f + 1);
  } else {
    ctx->verifier.single_issuer = tm_addresses.front();
  }

  // Byzantine lookups.
  auto behaviour_of = [&](bool is_escrow, int index) {
    for (const auto& b : config.byzantine) {
      if (b.is_escrow == is_escrow && b.index == index) return b.behaviour;
    }
    return WeakByz::kHonest;
  };
  auto patience_of = [&](int index) {
    for (const auto& [i, p] : config.patience_overrides) {
      if (i == index) return p;
    }
    return config.patience;
  };

  // Spawn customers and escrows.
  std::vector<WeakParticipant*> members;
  std::vector<bool> abiding;
  for (int i = 0; i <= n; ++i) {
    const WeakByz b = behaviour_of(false, i);
    auto& c = simulator.spawn<WeakCustomer>(parts.role_name(parts.customer(i)),
                                            ctx, i, patience_of(i), b);
    XCP_REQUIRE(c.id() == parts.customer(i), "customer id prediction broken");
    network.attach(c);
    members.push_back(&c);
    // Losing patience early is *allowed* by the protocol; only genuine
    // deviations count as non-abiding.
    abiding.push_back(b == WeakByz::kHonest || b == WeakByz::kEagerAbort);
  }
  for (int i = 0; i < n; ++i) {
    const WeakByz b = behaviour_of(true, i);
    auto& e = simulator.spawn<WeakEscrow>(parts.role_name(parts.escrow(i)), ctx,
                                          i, b);
    XCP_REQUIRE(e.id() == parts.escrow(i), "escrow id prediction broken");
    network.attach(e);
    members.push_back(&e);
    abiding.push_back(b == WeakByz::kHonest);
  }

  // Spawn the transaction manager.
  chain::Blockchain* chain_ptr = nullptr;
  std::vector<consensus::Notary*> notaries;
  switch (config.tm) {
    case TmKind::kTrustedParty: {
      auto& tm = simulator.spawn<TrustedPartyTm>("tm", validity, notify, keys);
      XCP_REQUIRE(tm.id() == tm_addresses.front(), "tm id prediction broken");
      if (config.tm_abort_deadline) {
        tm.set_abort_deadline(*config.tm_abort_deadline);
      }
      network.attach(tm);
      break;
    }
    case TmKind::kSmartContract: {
      auto& bc = simulator.spawn<chain::Blockchain>("chain",
                                                    config.block_interval, keys);
      XCP_REQUIRE(bc.id() == tm_addresses.front(), "chain id prediction broken");
      network.attach(bc);
      bc.register_contract(std::make_unique<TmContract>(validity));
      for (sim::ProcessId pid : notify) bc.subscribe(pid);
      chain_ptr = &bc;
      break;
    }
    case TmKind::kNotaryCommittee: {
      auto committee = std::make_shared<consensus::CommitteeConfig>();
      committee->instance = config.spec.deal_id;
      committee->committee_identity = committee_identity;
      committee->members = notary_ids;
      committee->base_round = config.notary_base_round;
      committee->validity = validity;
      committee->notify = notify;
      for (int i = 0; i < config.notary_count; ++i) {
        const auto behaviour = i < config.byzantine_notaries
                                   ? config.notary_byz
                                   : consensus::NotaryBehaviour::kHonest;
        auto& notary = simulator.spawn<consensus::Notary>(
            "notary_" + std::to_string(i), committee, keys, behaviour);
        XCP_REQUIRE(notary.id() == notary_ids[static_cast<std::size_t>(i)],
                    "notary id prediction broken");
        network.attach(notary);
        notaries.push_back(&notary);
      }
      break;
    }
  }

  // Clocks with the environment's drift (participants and TM alike).
  {
    Rng clock_rng = simulator.rng().fork();
    for (std::uint32_t pid = 0; pid < simulator.process_count(); ++pid) {
      simulator.set_clock(sim::ProcessId(pid),
                          sim::DriftClock::sample(clock_rng, config.env.actual_rho,
                                                  config.env.clock_offset_max));
    }
  }

  // Fund the paying customers.
  for (int i = 0; i < n; ++i) {
    ledger.mint(parts.customer(i), config.spec.hop_amount(i));
  }

  std::unique_ptr<net::Adversary> adversary;
  if (config.adversary) {
    adversary = config.adversary(parts);
    network.set_adversary(adversary.get());
  }

  // Snapshot initial holdings.
  std::vector<std::vector<Amount>> initial;
  initial.reserve(members.size());
  for (const auto* p : members) initial.push_back(ledger.holdings(p->id()));

  // Online checking: the monitor watches the trace stream and, when armed,
  // stops the run at the event that terminates the last abiding member.
  std::optional<props::OnlineMonitor> monitor;
  if (config.online.enabled) {
    props::OnlineMonitor::Config ocfg = base_online_config(config.spec, parts);
    for (std::size_t k = 0; k < members.size(); ++k) {
      if (abiding[k]) ocfg.cast.push_back(members[k]->id());
    }
    monitor.emplace(ocfg);
    if (config.online.early_stop) monitor->arm_stop(&simulator.stop_token());
    record.trace.set_sink(&*monitor);
  }

  const TimePoint deadline = TimePoint::origin() + config.horizon;
  bool drained = false;
  if (monitor && config.online.early_stop) {
    // Event-granular early termination: the stop lands on the deciding
    // terminate event itself, so the blockchain's perpetual block timer and
    // notary round timers simply never fire again — no slicing needed.
    drained = simulator.run_until(deadline) || simulator.stop_requested();
  } else if (monitor) {
    // Watch-only mode: the monitor observes but never intervenes — the run
    // takes its natural course to the horizon (the post-mortem discipline;
    // the blockchain's perpetual block timer runs the full window). This is
    // the A/B baseline the early-stop speedups are measured against.
    drained = simulator.run_until(deadline);
  } else {
    // No monitor: the pre-online behaviour, kept for runs that want the
    // legacy stop rule — slices, so the blockchain's perpetual block timer
    // can be stopped once every participant has terminated (letting the
    // queue drain). Byzantine participants may never terminate by design;
    // the run is done once every *abiding* participant has.
    const Duration slice = Duration::seconds(1);
    while (simulator.now() < deadline) {
      const TimePoint next = std::min(deadline, simulator.now() + slice);
      drained = simulator.run_until(next);
      bool all_done = true;
      for (std::size_t k = 0; k < members.size(); ++k) {
        if (abiding[k] && !members[k]->terminated()) all_done = false;
      }
      if (all_done) {
        if (chain_ptr != nullptr) chain_ptr->stop();
        drained = true;
        break;
      }
      if (drained) break;
    }
  }
  if (monitor) {
    record.trace.set_sink(nullptr);
    record.online = monitor->outcome();
  }

  // Extract outcomes.
  for (std::size_t k = 0; k < members.size(); ++k) {
    const WeakParticipant* m = members[k];
    ParticipantOutcome p;
    p.pid = m->id();
    p.role = parts.role_name(p.pid);
    p.abiding = abiding[k];
    p.is_escrow = parts.is_escrow(p.pid);
    p.index = p.is_escrow ? static_cast<int>(k) - (n + 1) : static_cast<int>(k);
    p.terminated = m->terminated();
    p.terminated_local = m->terminated_local();
    p.terminated_global = m->terminated_global();
    p.local_at_start = m->clock().to_local(TimePoint::origin());
    p.final_state = m->final_state();
    p.initial_holdings = initial[k];
    p.final_holdings = ledger.holdings(p.pid);
    p.received_commit_cert = m->got_commit_cert();
    p.received_abort_cert = m->got_abort_cert();
    if (const auto* c = dynamic_cast<const WeakCustomer*>(m)) {
      p.issued_payment_cert = c->issued_chi();
    }
    p.received_payment_cert =
        record.trace.count(props::EventKind::kCertReceived, p.pid, props::labels::chi) > 0;
    record.participants.push_back(std::move(p));
  }

  record.escrow_deals = escrows.deals();
  record.stats.messages_sent = network.stats().messages_sent;
  record.stats.messages_delivered = network.stats().messages_delivered;
  record.stats.messages_dropped = network.stats().messages_dropped;
  record.stats.events_executed = simulator.events_executed();
  record.stats.end_time = simulator.now();
  record.stats.drained = drained;
  return record;
}

}  // namespace xcp::proto::weak
