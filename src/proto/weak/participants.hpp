#pragma once
// Participants of the weak-liveness protocol (Def. 2 / Thm 3).
//
// Reconstruction from Sec. 3 (details in DESIGN.md §5):
//  - every paying customer c_i (i < n) deposits v_i at its escrow e_i when
//    ready; Bob submits his signed chi to the transaction manager;
//  - each escrow verifies + locks the deposit and reports "escrowed" to the
//    TM;
//  - the TM decides commit (all n escrowed + chi) or abort (any petition),
//    at most once (CC), and publishes the certificate;
//  - any customer may lose patience at any time and petition abort — without
//    risk: money only ever moves on a verified certificate;
//  - on chi_c escrows pay downstream; on chi_a they refund upstream; every
//    participant terminates once its certificate (and any money due under
//    it) has arrived.

#include <memory>
#include <optional>

#include "crypto/certificate.hpp"
#include "ledger/escrow.hpp"
#include "net/network.hpp"
#include "proto/deal_spec.hpp"
#include "proto/weak/messages.hpp"
#include "props/trace.hpp"

namespace xcp::proto::weak {

/// Byzantine deviations specific to the weak protocol.
enum class WeakByz {
  kHonest,
  kCrash,        // never acts at all
  kNoDeposit,    // customer never pays (but still listens) — never petitions
  kNoReport,     // escrow locks the deposit but never reports "escrowed"
  kNoResolve,    // escrow receives the certificate but never moves money
  kNoChi,        // Bob never submits chi
  kEagerAbort,   // petitions abort immediately (this is *allowed* behaviour —
                 // losing patience at time zero — useful in liveness tests)
};

const char* weak_byz_name(WeakByz b);

/// Shared run context (analogue of Fig2Context).
struct WeakContext {
  DealSpec spec;
  Participants parts;
  TmKind tm_kind = TmKind::kTrustedParty;
  std::vector<sim::ProcessId> tm_addresses;  // trusted party / chain / notaries
  /// Contract name on the shared chain (smart-contract back-end). Multi-deal
  /// runs give each deal its own contract instance on one chain.
  std::string tm_contract_name = "tm";
  TmCertVerifier verifier;
  ledger::Ledger* ledger = nullptr;
  ledger::EscrowRegistry* escrows = nullptr;
  crypto::KeyRegistry* keys = nullptr;
  props::TraceRecorder* trace = nullptr;
};

using WeakContextPtr = std::shared_ptr<WeakContext>;

/// Common outcome surface for extraction by the runner.
class WeakParticipant : public net::Actor {
 public:
  bool terminated() const { return terminated_; }
  TimePoint terminated_local() const { return terminated_local_; }
  TimePoint terminated_global() const { return terminated_global_; }
  const std::string& final_state() const { return final_state_; }
  bool got_commit_cert() const { return commit_cert_.has_value(); }
  bool got_abort_cert() const { return abort_cert_.has_value(); }

 protected:
  void terminate(const std::string& state, props::TraceRecorder* trace);

  std::optional<crypto::Certificate> commit_cert_;
  std::optional<crypto::Certificate> abort_cert_;

 private:
  bool terminated_ = false;
  TimePoint terminated_local_;
  TimePoint terminated_global_;
  std::string final_state_ = "running";
};

class WeakCustomer final : public WeakParticipant {
 public:
  /// `patience`: local-clock duration after which, if not terminated and no
  /// certificate has arrived, the customer petitions abort. "Waiting
  /// sufficiently long" (weak liveness) means patience exceeding the happy
  /// path's duration.
  WeakCustomer(WeakContextPtr ctx, int index, Duration patience,
               WeakByz behaviour = WeakByz::kHonest);

  bool petitioned() const { return petitioned_; }
  bool issued_chi() const { return issued_chi_; }

  void on_start() override;
  void on_message(const net::Message& m) override;
  void on_timer(std::uint64_t token) override;

 private:
  bool is_bob() const { return index_ == ctx_->spec.n; }
  bool is_alice() const { return index_ == 0; }
  void deposit();
  void submit_chi();
  void petition_abort();
  void send_to_tm_report(consensus::SignedStatement s, const std::string& op);
  void handle_cert(const crypto::Certificate& cert);
  void maybe_terminate();

  WeakContextPtr ctx_;
  int index_;
  Duration patience_;
  WeakByz behaviour_;
  crypto::Signer signer_;
  bool deposited_ = false;
  bool refund_received_ = false;
  bool payout_received_ = false;
  bool petitioned_ = false;
  bool issued_chi_ = false;
};

class WeakEscrow final : public WeakParticipant {
 public:
  WeakEscrow(WeakContextPtr ctx, int index, WeakByz behaviour = WeakByz::kHonest);

  void on_start() override;
  void on_message(const net::Message& m) override;

 private:
  void report_escrowed();
  void handle_cert(const crypto::Certificate& cert);
  void resolve_if_ready();

  WeakContextPtr ctx_;
  int index_;
  WeakByz behaviour_;
  crypto::Signer signer_;
  std::uint64_t escrow_deal_ = 0;  // 0 = no deposit yet
  bool resolved_ = false;
  bool cert_forwarded_ = false;
};

}  // namespace xcp::proto::weak
