#pragma once
// Byzantine participant strategies for the payment protocols.
//
// The model is Byzantine-with-authentication: a faulty participant may
// deviate arbitrarily from its automaton — stay silent, stop early, withhold
// money or certificates, send garbage — but cannot forge signatures or
// ledger receipts. We implement deviations as interceptors wrapped around
// the honest automaton: every dishonest behaviour is a filter on the honest
// sends (drop / delay / substitute / halt), which covers the strategies the
// paper's safety arguments must survive.

#include <string>

#include "anta/interpreter.hpp"
#include "proto/figure2.hpp"
#include "support/time.hpp"

namespace xcp::proto {

enum class ByzStrategy {
  kNone,           // abiding
  kCrashAtStart,   // never takes a single action
  kCrashAt,        // halts at a given global time
  kWithholdMoney,  // performs the protocol but never sends "$"
  kWithholdCert,   // performs the protocol but never sends "chi"
  kDelayCert,      // sends "chi" late by `delay` (deadline griefing)
  kFakeCert,       // sends an invalidly-signed chi instead of a real one
  kMute,           // receives but never sends anything
};

const char* byz_strategy_name(ByzStrategy s);

struct ByzantineAssignment {
  bool is_escrow = false;  // else customer
  int index = 0;           // e_index or c_index
  ByzStrategy strategy = ByzStrategy::kNone;
  TimePoint crash_at;      // for kCrashAt
  Duration delay;          // for kDelayCert

  static ByzantineAssignment customer(int i, ByzStrategy s) {
    return {false, i, s, TimePoint::origin(), Duration::zero()};
  }
  static ByzantineAssignment escrow(int i, ByzStrategy s) {
    return {true, i, s, TimePoint::origin(), Duration::zero()};
  }

  std::string str() const;
};

/// Installs the strategy on an interpreter running the honest automaton.
/// `ctx` supplies the deal id (for forged certificates).
void apply_byzantine(anta::Interpreter& interp, const ByzantineAssignment& b,
                     const Fig2ContextPtr& ctx);

}  // namespace xcp::proto
