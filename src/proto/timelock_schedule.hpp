#pragma once
// The timelock parameters a_i (escrow acceptance windows) and d_i (refund
// promises) of the time-bounded protocol, derived from the environment
// bounds. This is the paper's "universal protocol of [4], but fine-tuned to
// work correctly in the presence of clock drift": the *naive* schedule uses
// the true-time windows directly, while the *drift-compensated* schedule
// inflates them so that local-clock measurement error can never close a
// window early.
//
// Derivation (true time; Delta = max message delay, eps = max processing
// time, S = slack > 0):
//
//   A_{n-1} = 2*(Delta+eps) + S                    (P to Bob, chi back)
//   A_i     = A_{i+1} + 4*(Delta+eps)              (relay down, chi back up)
//
// The chain: from the instant U_i at which escrow e_i issues P(a_i), the
// promise reaches c_{i+1} (<= Delta), c_{i+1} pays (<= eps), the money
// reaches e_{i+1} (<= Delta), e_{i+1} issues P(a_{i+1}) (<= eps) — so
// U_{i+1} <= U_i + 2*(Delta+eps); inductively chi reaches e_{i+1} by
// U_{i+1} + A_{i+1}, is forwarded to c_{i+1} (<= Delta+eps) and on to e_i
// (<= Delta+eps): chi reaches e_i by U_i + A_i - S, strictly inside the
// window (the slack covers the strict inequality "v < now + a" and the
// simultaneous-event tie-break that favours the refund timeout).
//
// A clock of rate r in [1-rho, 1+rho] reads a true interval A as up to
// A*(1+rho), so the escrow's local window must be
//
//   a_i = ceil(A_i * (1 + rho))      (compensated; naive uses a_i = A_i)
//
// and the refund promise must cover processing both ends of the window on
// the escrow's own clock:
//
//   d_i = a_i + ceil(2 * eps * (1 + rho)).
//
// The a-priori termination bound of requirement T, in true time from the
// protocol's start, is exported per customer (customer_termination_bound)
// and overall (horizon); property tests check measured terminations against
// these bounds under randomized conforming environments.

#include <vector>

#include "support/time.hpp"

namespace xcp::proto {

/// Environment bounds the schedule is computed from.
struct TimingParams {
  Duration delta_max = Duration::millis(100);  // max message delay (Delta)
  Duration processing = Duration::millis(5);   // max computation time (eps)
  double rho = 1e-3;                           // clock drift bound
  Duration slack = Duration::millis(10);       // S > 0

  Duration step() const { return delta_max + processing; }  // Delta + eps
};

class TimelockSchedule {
 public:
  /// Empty schedule (n() == 0); placeholder until a real one is assigned.
  TimelockSchedule() = default;

  /// The paper's schedule (Thm 1): windows inflated by (1+rho).
  static TimelockSchedule drift_compensated(int n, const TimingParams& p);

  /// The universal-protocol baseline [4]: same recurrence, no drift term.
  static TimelockSchedule naive(int n, const TimingParams& p);

  int n() const { return static_cast<int>(a_.size()); }

  /// Escrow e_i's local acceptance window (the a of P(a_i)).
  Duration a(int i) const { return a_.at(static_cast<std::size_t>(i)); }
  /// Escrow e_i's local refund promise (the d of G(d_i)).
  Duration d(int i) const { return d_.at(static_cast<std::size_t>(i)); }
  /// The true-time window A_i underlying a_i.
  Duration true_window(int i) const { return A_.at(static_cast<std::size_t>(i)); }

  /// A-priori true-time bound on customer c_i's termination, measured from
  /// protocol start, valid when the environment honours TimingParams and
  /// c_i's escrows abide (requirement T).
  Duration customer_termination_bound(int i) const;

  /// The same bound as measured on the *customer's own clock* (requirement
  /// T promises an a-priori period the customer can check herself): the
  /// true-time bound inflated by the worst-case fast rate (1 + rho).
  Duration customer_termination_bound_local(int i) const {
    return customer_termination_bound(i).scaled_up(1.0 + params_.rho);
  }

  /// True-time bound by which *every* abiding participant has terminated in
  /// a conforming environment; used as the simulation horizon.
  Duration horizon() const;

  const TimingParams& params() const { return params_; }
  bool compensated() const { return compensated_; }

 private:
  TimelockSchedule(int n, const TimingParams& p, bool compensated);

  TimingParams params_;
  bool compensated_ = true;
  std::vector<Duration> A_;  // true-time windows
  std::vector<Duration> a_;  // local acceptance windows
  std::vector<Duration> d_;  // local refund promises
};

}  // namespace xcp::proto
