#pragma once
// Runner for the time-bounded protocol (Fig. 2 / Thm 1) and its baseline
// variants. A run wires up: simulator, network with a chosen synchrony
// model, ledger + escrow registry, key registry, the Fig. 2 automata, clock
// drift, Byzantine strategies and an optional timing adversary — then
// executes to the schedule's horizon and extracts a RunRecord.
//
// The config deliberately separates what the protocol *assumes*
// (TimingParams -> TimelockSchedule) from what the environment *does*
// (EnvironmentConfig): Theorem 1 runs have the environment within the
// assumptions; the ablation and impossibility experiments deliberately break
// them (actual drift above rho, partial synchrony with delays beyond Delta).

#include <functional>
#include <memory>
#include <vector>

#include "net/adversary.hpp"
#include "proto/byzantine.hpp"
#include "proto/deal_spec.hpp"
#include "proto/outcome.hpp"
#include "proto/timelock_schedule.hpp"

namespace xcp::proto {

enum class SynchronyKind { kSynchronous, kPartiallySynchronous, kAsynchronous };

const char* synchrony_name(SynchronyKind k);

struct EnvironmentConfig {
  SynchronyKind synchrony = SynchronyKind::kSynchronous;

  // Synchronous model: delays uniform in [delta_min, delta_max].
  Duration delta_min = Duration::millis(1);
  Duration delta_max = Duration::millis(100);

  // Partially synchronous model.
  TimePoint gst = TimePoint::origin() + Duration::seconds(10);
  Duration pre_gst_typical = Duration::seconds(5);

  // Asynchronous model.
  Duration async_typical = Duration::millis(100);
  Duration async_cap = Duration::seconds(300);

  // Clocks: rates sampled in [1-actual_rho, 1+actual_rho], offsets in
  // [-clock_offset_max, +clock_offset_max].
  double actual_rho = 0.0;
  Duration clock_offset_max = Duration::zero();

  // True-time bound on output-state computation actually exhibited.
  Duration processing = Duration::millis(5);

  // Message loss probability. The paper's models assume reliable links
  // (default 0); non-zero values deliberately step outside the model for
  // robustness experiments — safety must still hold, liveness need not.
  double drop_probability = 0.0;
};

/// Builds a timing adversary once participant ids are known. The returned
/// adversary is owned by the run for its duration.
using AdversaryFactory = std::function<std::unique_ptr<net::Adversary>(
    const Participants&, const TimelockSchedule&)>;

struct TimeBoundedConfig {
  std::uint64_t seed = 1;
  DealSpec spec = DealSpec::uniform(/*deal_id=*/1, /*n=*/2, /*base=*/1000,
                                    /*commission=*/10);
  TimingParams assumed;      // the bounds the schedule is derived from
  bool compensated = true;   // drift-compensated (paper) vs naive [4]
  EnvironmentConfig env;
  std::vector<ByzantineAssignment> byzantine;
  AdversaryFactory adversary;          // may be null
  Duration extra_horizon = Duration::zero();  // extend the observation window

  /// The "impatient" protocol variant (Thm 2's option B): customers give up
  /// after this local-clock wait in money-awaiting states. Terminates where
  /// the paper's protocol would hang — at the price of CS3 (the checkers
  /// catch it). Unset = the paper's protocol.
  std::optional<Duration> customer_giveup;

  /// Online checking: attach an OnlineMonitor to the run's trace (verdicts
  /// land in RunRecord::online) and optionally terminate the run the moment
  /// every abiding participant has terminated — checker-visible outcomes
  /// are frozen by then, so post-mortem verdicts are unchanged while the
  /// residual queue (dead timers, horizon padding) is never executed.
  props::OnlineOptions online;
};

RunRecord run_time_bounded(const TimeBoundedConfig& config);

}  // namespace xcp::proto
