#include "proto/byzantine.hpp"

#include "proto/bodies.hpp"

namespace xcp::proto {

const char* byz_strategy_name(ByzStrategy s) {
  switch (s) {
    case ByzStrategy::kNone: return "none";
    case ByzStrategy::kCrashAtStart: return "crash-at-start";
    case ByzStrategy::kCrashAt: return "crash-at";
    case ByzStrategy::kWithholdMoney: return "withhold-money";
    case ByzStrategy::kWithholdCert: return "withhold-cert";
    case ByzStrategy::kDelayCert: return "delay-cert";
    case ByzStrategy::kFakeCert: return "fake-cert";
    case ByzStrategy::kMute: return "mute";
  }
  return "?";
}

std::string ByzantineAssignment::str() const {
  return std::string(is_escrow ? "e" : "c") + std::to_string(index) + ":" +
         byz_strategy_name(strategy);
}

void apply_byzantine(anta::Interpreter& interp, const ByzantineAssignment& b,
                     const Fig2ContextPtr& ctx) {
  using anta::SendAction;
  switch (b.strategy) {
    case ByzStrategy::kNone:
      return;
    case ByzStrategy::kCrashAtStart:
      interp.set_send_interceptor(
          [](const anta::Transition&, anta::Interpreter&) {
            return SendAction::halt();
          });
      // Also ensure it reacts to nothing even in input states.
      interp.schedule_crash_at(TimePoint::origin());
      return;
    case ByzStrategy::kCrashAt:
      interp.schedule_crash_at(b.crash_at);
      return;
    case ByzStrategy::kWithholdMoney:
      interp.set_send_interceptor(
          [](const anta::Transition& t, anta::Interpreter&) {
            // Halting (not merely skipping) on "$": an abiding-looking state
            // change without the ledger movement would make the automaton
            // proceed as if it had paid; a Byzantine non-payer just stops.
            return t.send_kind == net::kinds::money ? SendAction::halt()
                                                     : SendAction::allow();
          });
      return;
    case ByzStrategy::kWithholdCert:
      interp.set_send_interceptor(
          [](const anta::Transition& t, anta::Interpreter&) {
            return t.send_kind == net::kinds::chi ? SendAction::halt()
                                                  : SendAction::allow();
          });
      return;
    case ByzStrategy::kDelayCert:
      interp.set_send_interceptor(
          [delay = b.delay](const anta::Transition& t, anta::Interpreter&) {
            return t.send_kind == net::kinds::chi ? SendAction::delayed(delay)
                                                  : SendAction::allow();
          });
      return;
    case ByzStrategy::kFakeCert:
      interp.set_send_interceptor(
          [ctx](const anta::Transition& t, anta::Interpreter& in) {
            if (t.send_kind != net::kinds::chi) return SendAction::allow();
            // A chi-shaped certificate with a junk signature. Receivers must
            // reject it: the sender does not hold Bob's key.
            auto body = net::make_body<CertMsg>();
            body->cert.kind = crypto::CertKind::kPayment;
            body->cert.deal_id = ctx->spec.deal_id;
            body->cert.issuer = ctx->parts.bob();
            body->cert.signature =
                crypto::Signature{ctx->parts.bob(), in.runtime_rng().next_u64()};
            return SendAction::substituted(std::move(body));
          });
      return;
    case ByzStrategy::kMute:
      interp.set_send_interceptor(
          [](const anta::Transition&, anta::Interpreter&) {
            return SendAction::halt();
          });
      return;
  }
}

}  // namespace xcp::proto
