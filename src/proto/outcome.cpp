#include "proto/outcome.hpp"

#include <sstream>

#include "support/status.hpp"
#include "support/table.hpp"

namespace xcp::proto {

std::int64_t ParticipantOutcome::net_units(Currency c) const {
  std::int64_t initial = 0;
  std::int64_t final_units = 0;
  for (const Amount& a : initial_holdings) {
    if (a.currency() == c) initial += a.units();
  }
  for (const Amount& a : final_holdings) {
    if (a.currency() == c) final_units += a.units();
  }
  return final_units - initial;
}

const ParticipantOutcome* RunRecord::find(sim::ProcessId pid) const {
  for (const auto& p : participants) {
    if (p.pid == pid) return &p;
  }
  return nullptr;
}

const ParticipantOutcome& RunRecord::customer(int i) const {
  const ParticipantOutcome* p = find(parts.customer(i));
  XCP_REQUIRE(p != nullptr, "customer outcome missing");
  return *p;
}

const ParticipantOutcome& RunRecord::escrow(int i) const {
  const ParticipantOutcome* p = find(parts.escrow(i));
  XCP_REQUIRE(p != nullptr, "escrow outcome missing");
  return *p;
}

bool RunRecord::bob_paid() const {
  const Amount last_hop = spec.hop_amount(spec.n - 1);
  return bob().net_units(last_hop.currency()) >= last_hop.units();
}

props::OnlineMonitor::Config base_online_config(const DealSpec& spec,
                                                const Participants& parts) {
  props::OnlineMonitor::Config cfg;
  cfg.deal_id = spec.deal_id;
  cfg.bob = parts.bob();
  cfg.last_hop = spec.hop_amount(spec.n - 1);
  return cfg;
}

std::string RunRecord::summary() const {
  Table t({"participant", "abiding", "terminated", "final state", "t_local",
           "net change", "certs"});
  for (const auto& p : participants) {
    std::string net;
    for (const Amount& a : p.final_holdings) {
      const std::int64_t d = p.net_units(a.currency());
      if (d != 0) net += (net.empty() ? "" : ", ") + Amount(d, a.currency()).str();
    }
    for (const Amount& a : p.initial_holdings) {
      // currencies fully drained would be missed above
      bool seen = false;
      for (const Amount& f : p.final_holdings) {
        seen = seen || f.currency() == a.currency();
      }
      if (!seen) {
        const std::int64_t d = p.net_units(a.currency());
        if (d != 0) {
          net += (net.empty() ? "" : ", ") + Amount(d, a.currency()).str();
        }
      }
    }
    std::string certs;
    if (p.issued_payment_cert) certs += "issued-chi ";
    if (p.received_payment_cert) certs += "chi ";
    if (p.received_commit_cert) certs += "chi_c ";
    if (p.received_abort_cert) certs += "chi_a ";
    t.add_row({p.role, Table::fmt(p.abiding), Table::fmt(p.terminated),
               p.terminated ? p.final_state : "-",
               p.terminated ? p.terminated_local.str() : "-",
               net.empty() ? "0" : net, certs.empty() ? "-" : certs});
  }
  std::ostringstream os;
  os << "protocol: " << protocol << ", messages: " << stats.messages_sent
     << " sent / " << stats.messages_delivered << " delivered, end "
     << stats.end_time.str() << (stats.drained ? " (drained)" : " (horizon)")
     << "\n"
     << t.render();
  return os.str();
}

}  // namespace xcp::proto
