#pragma once
// Message bodies shared by the cross-chain payment protocols: the three
// message kinds of the paper (promises G(d) and P(a), value "$", certificate
// chi) plus the weak-liveness protocol's TM traffic (proto/weak/messages.hpp).

#include <cstdint>
#include <sstream>

#include "crypto/certificate.hpp"
#include "ledger/ledger.hpp"
#include "net/message.hpp"
#include "support/amount.hpp"
#include "support/time.hpp"

namespace xcp::proto {

/// G(d): "I guarantee that if I receive $ from you at my local time w, then
/// I will send you either $ or chi by my local time w + d." Escrow -> its
/// upstream customer.
struct PromiseG final : net::MessageBody {
  std::uint64_t deal_id = 0;
  Duration d;
  Amount amount;  // the value the escrow expects to receive

  std::string describe() const override {
    std::ostringstream os;
    os << "G(d=" << d.str() << ", " << amount.str() << ", deal=" << deal_id << ")";
    return os.str();
  }
};

/// P(a): "I promise that if I receive chi from you at my time v, with
/// v < now + a, then I will send you $ by my local time v + eps." Escrow ->
/// its downstream customer.
struct PromiseP final : net::MessageBody {
  std::uint64_t deal_id = 0;
  Duration a;
  Amount amount;  // the value the escrow will pay on chi

  std::string describe() const override {
    std::ostringstream os;
    os << "P(a=" << a.str() << ", " << amount.str() << ", deal=" << deal_id << ")";
    return os.str();
  }
};

/// "$": a value transfer notification. Carries the ledger receipt id; the
/// receiver verifies the receipt actually credits it before reacting — a
/// Byzantine sender can send this message but cannot fake the receipt.
struct MoneyMsg final : net::MessageBody {
  std::uint64_t deal_id = 0;
  ledger::TransferId receipt = ledger::kInvalidTransfer;
  Amount amount;

  std::string describe() const override {
    std::ostringstream os;
    os << "$(" << amount.str() << ", receipt=" << receipt << ")";
    return os.str();
  }
};

/// chi / chi_c / chi_a carrier.
struct CertMsg final : net::MessageBody {
  crypto::Certificate cert;

  std::string describe() const override { return cert.str(); }
};

}  // namespace xcp::proto
