#pragma once
// Digest helpers for signing structured protocol statements.

#include <cstdint>
#include <string_view>

#include "crypto/identity.hpp"
#include "support/hash.hpp"

namespace xcp::crypto {

/// Canonical digest of a (statement-kind, deal-id, subject, detail) tuple.
/// All signed protocol statements funnel through this so that a signature
/// over one statement can never validate another.
std::uint64_t statement_digest(std::string_view statement_kind,
                               std::uint64_t deal_id, sim::ProcessId subject,
                               std::uint64_t detail = 0);

}  // namespace xcp::crypto
