#include "crypto/signature.hpp"

namespace xcp::crypto {

std::uint64_t statement_digest(std::string_view statement_kind,
                               std::uint64_t deal_id, sim::ProcessId subject,
                               std::uint64_t detail) {
  HashWriter w;
  w.write_str(statement_kind);
  w.write_u64(deal_id);
  w.write_u32(subject.valid() ? subject.value() : 0xffffffffu);
  w.write_u64(detail);
  return w.digest();
}

}  // namespace xcp::crypto
