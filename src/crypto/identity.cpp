#include "crypto/identity.hpp"

namespace xcp::crypto {

namespace {
std::uint64_t compute_mac(std::uint64_t secret, std::uint64_t digest) {
  // Keyed mix: H(secret || digest) via two splitmix-style avalanche rounds.
  std::uint64_t s = secret ^ 0xa5a5a5a55a5a5a5aULL;
  std::uint64_t a = hash_combine(s, digest);
  std::uint64_t b = a;
  (void)splitmix64(b);
  return splitmix64(b);
}
}  // namespace

Signature Signer::sign(std::uint64_t digest) const {
  return Signature{id_, compute_mac(secret_, digest)};
}

KeyRegistry::KeyRegistry(std::uint64_t seed) : seed_state_(seed) {}

Signer KeyRegistry::signer_for(sim::ProcessId pid) {
  auto it = secrets_.find(pid);
  if (it == secrets_.end()) {
    const std::uint64_t secret =
        splitmix64(seed_state_) ^ (static_cast<std::uint64_t>(pid.value()) << 32);
    it = secrets_.emplace(pid, secret).first;
  }
  return Signer(pid, it->second);
}

bool KeyRegistry::verify(const Signature& sig, std::uint64_t digest) const {
  auto it = secrets_.find(sig.signer);
  if (it == secrets_.end()) return false;
  return compute_mac(it->second, digest) == sig.mac;
}

}  // namespace xcp::crypto
