#include "crypto/certificate.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "support/status.hpp"

namespace xcp::crypto {

const char* cert_kind_name(CertKind k) {
  switch (k) {
    case CertKind::kPayment: return "chi";
    case CertKind::kCommit: return "chi_c";
    case CertKind::kAbort: return "chi_a";
  }
  return "?";
}

props::Label cert_kind_label(CertKind k) {
  static const props::Label payment{"chi"};
  static const props::Label commit{"chi_c"};
  static const props::Label abort_{"chi_a"};
  switch (k) {
    case CertKind::kPayment: return payment;
    case CertKind::kCommit: return commit;
    case CertKind::kAbort: return abort_;
  }
  return props::Label{};
}

std::uint64_t Certificate::digest() const {
  // The digest binds kind + deal so a chi for one deal can't commit another,
  // and an abort signature can't be replayed as a commit.
  return statement_digest(cert_kind_name(kind), deal_id, issuer);
}

std::string Certificate::str() const {
  std::ostringstream os;
  os << cert_kind_name(kind) << "(deal=" << deal_id << ", issuer=p"
     << issuer.value();
  if (!quorum.empty()) os << ", quorum=" << quorum.size();
  os << ")";
  return os.str();
}

Certificate make_payment_cert(const Signer& bob, std::uint64_t deal_id) {
  Certificate c;
  c.kind = CertKind::kPayment;
  c.deal_id = deal_id;
  c.issuer = bob.id();
  c.signature = bob.sign(c.digest());
  return c;
}

Certificate make_commit_cert(const Signer& tm, std::uint64_t deal_id,
                             const Certificate& payment_cert) {
  XCP_REQUIRE(payment_cert.kind == CertKind::kPayment,
              "commit cert must embed a payment cert");
  Certificate c;
  c.kind = CertKind::kCommit;
  c.deal_id = deal_id;
  c.issuer = tm.id();
  c.embedded_payment_sig = payment_cert.signature;
  c.embedded_payment_issuer = payment_cert.issuer;
  c.signature = tm.sign(c.digest());
  return c;
}

Certificate make_abort_cert(const Signer& tm, std::uint64_t deal_id) {
  Certificate c;
  c.kind = CertKind::kAbort;
  c.deal_id = deal_id;
  c.issuer = tm.id();
  c.signature = tm.sign(c.digest());
  return c;
}

Certificate make_quorum_cert(CertKind kind, std::uint64_t deal_id,
                             sim::ProcessId committee,
                             std::vector<Signature> sigs,
                             const Certificate* embedded_payment) {
  Certificate c;
  c.kind = kind;
  c.deal_id = deal_id;
  c.issuer = committee;
  c.quorum = std::move(sigs);
  if (embedded_payment != nullptr) {
    XCP_REQUIRE(embedded_payment->kind == CertKind::kPayment,
                "embedded cert must be a payment cert");
    c.embedded_payment_sig = embedded_payment->signature;
    c.embedded_payment_issuer = embedded_payment->issuer;
  }
  return c;
}

bool verify_cert(const KeyRegistry& reg, const Certificate& cert) {
  if (cert.signature.signer != cert.issuer) return false;
  if (!reg.verify(cert.signature, cert.digest())) return false;
  if (cert.kind == CertKind::kCommit) {
    // chi_c must carry a valid chi from Bob for the same deal.
    if (!cert.embedded_payment_sig.has_value()) return false;
    Certificate chi;
    chi.kind = CertKind::kPayment;
    chi.deal_id = cert.deal_id;
    chi.issuer = cert.embedded_payment_issuer;
    if (!reg.verify(*cert.embedded_payment_sig, chi.digest())) return false;
  }
  return true;
}

bool verify_quorum_cert(const KeyRegistry& reg, const Certificate& cert,
                        const std::vector<sim::ProcessId>& committee_members,
                        std::size_t threshold) {
  // A quorum certificate over digest D: >= threshold distinct committee
  // members with valid signatures over D. The notary digest includes the
  // committee identity via cert.issuer, so votes for different committees
  // never cross-validate.
  std::unordered_set<std::uint32_t> seen;
  const std::uint64_t digest = cert.digest();
  std::size_t good = 0;
  for (const Signature& sig : cert.quorum) {
    const bool member =
        std::find(committee_members.begin(), committee_members.end(),
                  sig.signer) != committee_members.end();
    if (!member) continue;
    if (!seen.insert(sig.signer.value()).second) continue;  // dedupe signer
    if (!reg.verify(sig, digest)) continue;
    ++good;
  }
  if (good < threshold) return false;
  if (cert.kind == CertKind::kCommit) {
    if (!cert.embedded_payment_sig.has_value()) return false;
    Certificate chi;
    chi.kind = CertKind::kPayment;
    chi.deal_id = cert.deal_id;
    chi.issuer = cert.embedded_payment_issuer;
    if (!reg.verify(*cert.embedded_payment_sig, chi.digest())) return false;
  }
  return true;
}

}  // namespace xcp::crypto
