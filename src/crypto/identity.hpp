#pragma once
// Identities and the key registry for the Byzantine-with-authentication model.
//
// The paper assumes "the classic Byzantine model with authentication": every
// message/certificate can be attributed to its signer and signatures cannot
// be forged. Real cryptography is unnecessary for the model's guarantees, so
// we *simulate* authentication: the KeyRegistry assigns each process a random
// secret; a signature is a MAC = H(secret, digest). Unforgeability holds by
// construction because only the owner is handed a Signer for its secret, and
// Byzantine strategies in this codebase can only use Signers they were given.
// (Substitution recorded in DESIGN.md.)

#include <cstdint>
#include <unordered_map>

#include "sim/process.hpp"
#include "support/hash.hpp"

namespace xcp::crypto {

struct Signature {
  sim::ProcessId signer;
  std::uint64_t mac = 0;

  bool operator==(const Signature&) const = default;
};

class KeyRegistry;

/// The signing capability for one identity. Handed out once per process by
/// the registry; possession of a Signer is possession of the secret key.
class Signer {
 public:
  Signer() = default;

  sim::ProcessId id() const { return id_; }
  bool valid() const { return id_.valid(); }

  Signature sign(std::uint64_t digest) const;

 private:
  friend class KeyRegistry;
  Signer(sim::ProcessId id, std::uint64_t secret) : id_(id), secret_(secret) {}
  sim::ProcessId id_;
  std::uint64_t secret_ = 0;
};

/// Central authority knowing every secret; verification recomputes the MAC.
class KeyRegistry {
 public:
  explicit KeyRegistry(std::uint64_t seed);

  /// Registers (or returns the existing) signer for a process.
  Signer signer_for(sim::ProcessId pid);

  /// True iff `sig` is a valid signature by `sig.signer` over `digest`.
  bool verify(const Signature& sig, std::uint64_t digest) const;

 private:
  std::uint64_t mac(std::uint64_t secret, std::uint64_t digest) const;
  std::uint64_t seed_state_;
  std::unordered_map<sim::ProcessId, std::uint64_t> secrets_;
};

}  // namespace xcp::crypto
