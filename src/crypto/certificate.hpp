#pragma once
// The certificates of the paper.
//
//  - The payment certificate chi: "a certificate signed by Bob saying that
//    Alice's obligation to pay him has been met" (Def. 1). It is the object
//    relayed upstream in the time-bounded protocol of Fig. 2.
//  - The commit certificate chi_c and abort certificate chi_a of Def. 2
//    (weak-liveness protocol), issued by the transaction manager; CC requires
//    that both can never be issued. chi_c embeds Bob's chi so that "the
//    commit certificate can be used by Alice as a proof that Bob has been
//    paid" (Sec. 3).
//  - Quorum certificates: a commit/abort decision signed by 2f+1 of m
//    notaries, for the notary-committee transaction manager.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/identity.hpp"
#include "crypto/signature.hpp"
#include "props/label.hpp"

namespace xcp::crypto {

enum class CertKind : std::uint8_t {
  kPayment,  // chi   — signed by Bob
  kCommit,   // chi_c — signed by the transaction manager, embeds chi
  kAbort,    // chi_a — signed by the transaction manager
};

const char* cert_kind_name(CertKind k);

/// The pre-interned trace label for a certificate kind — lock-free on the
/// emit path (the names are interned once at static initialisation).
props::Label cert_kind_label(CertKind k);

struct Certificate {
  CertKind kind = CertKind::kPayment;
  std::uint64_t deal_id = 0;
  sim::ProcessId issuer;           // Bob for chi; the TM identity otherwise
  Signature signature;             // single-signer form
  std::vector<Signature> quorum;   // multi-signer form (notary committees)
  // chi_c embeds Bob's chi (empty for other kinds). Stored flat to keep the
  // type a value type.
  std::optional<Signature> embedded_payment_sig;
  sim::ProcessId embedded_payment_issuer;

  std::uint64_t digest() const;
  std::string str() const;
};

/// Builds chi: Bob certifies that Alice's obligation to him has been met.
Certificate make_payment_cert(const Signer& bob, std::uint64_t deal_id);

/// Builds chi_c, embedding (and re-checking) Bob's chi.
Certificate make_commit_cert(const Signer& tm, std::uint64_t deal_id,
                             const Certificate& payment_cert);

/// Builds chi_a.
Certificate make_abort_cert(const Signer& tm, std::uint64_t deal_id);

/// Builds a quorum certificate from notary signatures (signatures over the
/// same digest as the single-signer form; issuer = the committee identity).
Certificate make_quorum_cert(CertKind kind, std::uint64_t deal_id,
                             sim::ProcessId committee,
                             std::vector<Signature> sigs,
                             const Certificate* embedded_payment = nullptr);

/// Verifies a single-signer certificate against the registry.
bool verify_cert(const KeyRegistry& reg, const Certificate& cert);

/// Verifies a quorum certificate: at least `threshold` distinct signers, all
/// members of `committee_members`, each with a valid signature.
bool verify_quorum_cert(const KeyRegistry& reg, const Certificate& cert,
                        const std::vector<sim::ProcessId>& committee_members,
                        std::size_t threshold);

}  // namespace xcp::crypto
