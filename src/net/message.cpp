#include "net/message.hpp"

#include <sstream>

namespace xcp::net {

std::string Message::describe() const {
  std::ostringstream os;
  os << "msg#" << id << " p" << from.value() << "->p" << to.value() << " ["
     << kind.name() << "]";
  if (body) os << " " << body->describe();
  return os.str();
}

}  // namespace xcp::net
