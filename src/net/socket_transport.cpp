#include "net/socket_transport.hpp"

// xcp-lint: allow-file(determinism-wall-clock) socket supervision
// (connect retries, heartbeat cadence, peer liveness) is inherently
// wall-clock; protocol state transitions consume only message payloads.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "support/rng.hpp"

namespace xcp::net {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("socket transport: " + what + ": " +
                           std::strerror(errno));
}

void set_nonblock_cloexec(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl(O_NONBLOCK)");
  }
  int fdflags = ::fcntl(fd, F_GETFD, 0);
  if (fdflags < 0 || ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) < 0) {
    sys_fail("fcntl(FD_CLOEXEC)");
  }
}

/// Nagle batching only adds round-trip latency here: frames are small and
/// consensus progress is gated on their delivery, never on bulk throughput.
void set_tcp_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

int make_socket(const SocketAddress& addr) {
  const int fd =
      ::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  set_nonblock_cloexec(fd);
  if (!addr.is_unix) set_tcp_nodelay(fd);
  return fd;
}

/// Fills a sockaddr storage for the address; returns its size.
socklen_t fill_sockaddr(const SocketAddress& addr, sockaddr_storage& out) {
  std::memset(&out, 0, sizeof out);
  if (addr.is_unix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(&out);
    sun->sun_family = AF_UNIX;
    if (addr.path.size() + 1 > sizeof sun->sun_path) {
      throw std::runtime_error("socket transport: unix path too long: " +
                               addr.path);
    }
    std::memcpy(sun->sun_path, addr.path.c_str(), addr.path.size() + 1);
    return static_cast<socklen_t>(sizeof(sockaddr_un));
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(&out);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.ip.c_str(), &sin->sin_addr) != 1) {
    throw std::runtime_error("socket transport: bad IPv4 address: " +
                             addr.ip);
  }
  return static_cast<socklen_t>(sizeof(sockaddr_in));
}

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

SocketAddress SocketAddress::parse(const std::string& spec) {
  SocketAddress a;
  if (spec.rfind("unix:", 0) == 0) {
    a.is_unix = true;
    a.path = spec.substr(5);
    if (a.path.empty()) {
      throw std::runtime_error("socket transport: empty unix path in \"" +
                               spec + "\"");
    }
    return a;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    a.is_unix = false;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size()) {
      throw std::runtime_error(
          "socket transport: expected tcp:<ipv4>:<port> in \"" + spec +
          "\"");
    }
    a.ip = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    char* end = nullptr;
    const long v = std::strtol(port.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v <= 0 || v > 65535) {
      throw std::runtime_error("socket transport: bad port in \"" + spec +
                               "\"");
    }
    a.port = static_cast<std::uint16_t>(v);
    return a;
  }
  throw std::runtime_error(
      "socket transport: address must start with unix: or tcp: — got \"" +
      spec + "\"");
}

SocketTransport::SocketTransport(std::uint32_t self_node,
                                 const std::string& listen_addr,
                                 SocketTransportOptions opts)
    : self_(self_node),
      listen_addr_(SocketAddress::parse(listen_addr)),
      opts_(opts) {
  if (listen_addr_.is_unix) ::unlink(listen_addr_.path.c_str());
  listen_fd_ = make_socket(listen_addr_);
  if (!listen_addr_.is_unix) {
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  }
  sockaddr_storage ss;
  const socklen_t len = fill_sockaddr(listen_addr_, ss);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&ss), len) < 0) {
    sys_fail("bind " + listen_addr);
  }
  if (::listen(listen_fd_, 64) < 0) sys_fail("listen");
  next_heartbeat_ = Clock::now() + opts_.heartbeat_interval;
}

SocketTransport::~SocketTransport() { close(); }

void SocketTransport::close() {
  if (closed_) return;
  closed_ = true;
  close_quietly(listen_fd_);
  for (Peer& p : peers_) close_quietly(p.fd);
  for (InConn& c : conns_) close_quietly(c.fd);
  conns_.clear();
  if (listen_addr_.is_unix) ::unlink(listen_addr_.path.c_str());
}

void SocketTransport::add_peer(std::uint32_t node, const std::string& addr) {
  Peer p;
  p.node = node;
  p.addr = SocketAddress::parse(addr);
  const auto now = Clock::now();
  p.next_dial = now;
  p.last_heard = now;  // grace: the death clock starts at registration
  peers_.push_back(std::move(p));
}

void SocketTransport::map_pid(sim::ProcessId pid, std::uint32_t node) {
  pid_to_node_[pid.value()] = node;
}

SocketTransport::Peer* SocketTransport::peer_for(std::uint32_t node) {
  for (Peer& p : peers_) {
    if (p.node == node) return &p;
  }
  return nullptr;
}

const SocketTransport::Peer* SocketTransport::peer_for(
    std::uint32_t node) const {
  for (const Peer& p : peers_) {
    if (p.node == node) return &p;
  }
  return nullptr;
}

bool SocketTransport::peer_up(std::uint32_t node) const {
  const Peer* p = peer_for(node);
  return p != nullptr && !p->down;
}

bool SocketTransport::peer_connected(std::uint32_t node) const {
  const Peer* p = peer_for(node);
  return p != nullptr && p->fd >= 0 && !p->connecting;
}

std::chrono::milliseconds dial_backoff(const SocketTransportOptions& opts,
                                       std::uint32_t node, int attempt) {
  // Same deterministic shape as the dispatcher's retry backoff: exponential
  // in the attempt number, capped, with seeded multiplicative jitter keyed
  // by (peer node, attempt) so schedules are reproducible per deployment.
  // The exponentiation stops the moment the cap is reached and the jitter
  // key saturates with it, so a peer that has been unreachable for days
  // costs the same as one that failed a handful of times.
  const int k = std::max(1, attempt);
  const double cap = static_cast<double>(opts.reconnect_cap.count());
  double ms = static_cast<double>(opts.reconnect_base.count());
  int steps = 1;
  for (; steps < k && ms < cap; ++steps) ms *= opts.reconnect_multiplier;
  ms = std::min(ms, cap);
  const int jitter_key = std::min(k, steps + 1);  // saturated with the cap
  if (opts.reconnect_jitter > 0.0) {
    std::uint64_t state =
        opts.jitter_seed ^
        (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(node) + 1) +
         static_cast<std::uint64_t>(jitter_key));
    Rng rng(splitmix64(state));
    ms *= rng.next_double(1.0 - opts.reconnect_jitter,
                          1.0 + opts.reconnect_jitter);
  }
  return std::chrono::milliseconds(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(ms)));
}

SocketTransport::Millis SocketTransport::backoff_before(const Peer& p) const {
  return dial_backoff(opts_, p.node, p.attempt);
}

int SocketTransport::reconnect_attempt(std::uint32_t node) const {
  const Peer* p = peer_for(node);
  return p == nullptr ? -1 : p->attempt;
}

void SocketTransport::dial(Peer& p, Clock::time_point now) {
  ++stats_.dial_attempts;
  if (p.attempt > 0) ++stats_.reconnects;
  int fd = -1;
  try {
    fd = make_socket(p.addr);
    sockaddr_storage ss;
    const socklen_t len = fill_sockaddr(p.addr, ss);
    const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&ss), len);
    if (rc == 0) {
      p.fd = fd;
      on_dialed(p, now);
      return;
    }
    if (errno == EINPROGRESS) {
      p.fd = fd;
      p.connecting = true;
      return;
    }
  } catch (const std::runtime_error&) {
    // fall through to failure handling
  }
  close_quietly(fd);
  dial_failed(p, now);
}

void SocketTransport::on_dialed(Peer& p, Clock::time_point now) {
  p.connecting = false;
  p.attempt = 0;
  // The hello frame must precede anything queued before the connection
  // existed; tx_off is 0 here (cleared on every disconnect).
  ControlFrame hello;
  hello.kind = WireKind::kHello;
  hello.a = self_;
  hello.b = hello_status_;
  std::vector<std::uint8_t> payload;
  serialize_control(hello, payload);
  std::vector<std::uint8_t> framed;
  append_stream_frame(framed, payload.data(), payload.size());
  p.tx.insert(p.tx.begin(), framed.begin(), framed.end());
  ++stats_.frames_sent;
  // A rejoiner repeats its catch-up request on every fresh connection: the
  // first peers it reaches may themselves be undecided, and re-dials after
  // a disconnect must not silently drop the request.
  if (catchup_instance_) {
    ControlFrame cu;
    cu.kind = WireKind::kCatchUp;
    cu.a = *catchup_instance_;
    cu.b = hello_status_;
    queue_control(p, cu, now);
    ++stats_.catchup_requests_sent;
  }
  flush(p, now);
}

void SocketTransport::queue_control(Peer& p, const ControlFrame& f,
                                    Clock::time_point now) {
  std::vector<std::uint8_t> payload;
  serialize_control(f, payload);
  queue_frame(p, payload, now);
}

void SocketTransport::set_hello_status(std::uint64_t status) {
  if (hello_status_ == status) return;
  hello_status_ = status;
  // Re-announce on every established connection so peers see the
  // transition without waiting for a redial.
  const auto now = Clock::now();
  ControlFrame hello;
  hello.kind = WireKind::kHello;
  hello.a = self_;
  hello.b = hello_status_;
  for (Peer& p : peers_) {
    if (p.fd >= 0 && !p.connecting) queue_control(p, hello, now);
  }
}

void SocketTransport::request_catchup(std::uint64_t instance) {
  catchup_instance_ = instance;
  const auto now = Clock::now();
  ControlFrame cu;
  cu.kind = WireKind::kCatchUp;
  cu.a = instance;
  cu.b = hello_status_;
  for (Peer& p : peers_) {
    if (p.fd >= 0 && !p.connecting) {
      queue_control(p, cu, now);
      ++stats_.catchup_requests_sent;
    }
  }
}

void SocketTransport::dial_failed(Peer& p, Clock::time_point now) {
  close_quietly(p.fd);
  p.connecting = false;
  p.attempt += 1;
  p.next_dial = now + backoff_before(p);
}

void SocketTransport::disconnect(Peer& p, Clock::time_point now) {
  ++stats_.disconnects;
  close_quietly(p.fd);
  p.connecting = false;
  // Bytes already handed to a broken connection are in an unknown state;
  // resuming mid-frame would corrupt the stream, so pending output is
  // dropped (real message loss — the protocols tolerate it) and the next
  // connection starts clean.
  p.tx.clear();
  p.tx_off = 0;
  p.attempt = std::max(1, p.attempt + 1);
  p.next_dial = now + backoff_before(p);
}

void SocketTransport::queue_frame(Peer& p,
                                  const std::vector<std::uint8_t>& payload,
                                  Clock::time_point now) {
  const std::size_t pending = p.tx.size() - p.tx_off;
  if (pending + payload.size() + 4 > opts_.max_queued_bytes) {
    ++stats_.sends_dropped;
    return;
  }
  append_stream_frame(p.tx, payload.data(), payload.size());
  ++stats_.frames_sent;
  if (p.fd >= 0 && !p.connecting) flush(p, now);
}

void SocketTransport::flush(Peer& p, Clock::time_point now) {
  while (p.tx_off < p.tx.size()) {
    const std::size_t left = p.tx.size() - p.tx_off;
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(p.fd, p.tx.data() + p.tx_off, left, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(p.fd, p.tx.data() + p.tx_off, left);
#endif
    if (n > 0) {
      p.tx_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    disconnect(p, now);
    return;
  }
  p.tx.clear();
  p.tx_off = 0;
}

void SocketTransport::send(const Message& m) {
  const auto it = pid_to_node_.find(m.to.value());
  if (it == pid_to_node_.end()) {
    ++stats_.sends_dropped;
    return;
  }
  const std::uint32_t node = it->second;
  std::vector<std::uint8_t> payload;
  try {
    serialize_message(m, payload, opts_.wire);
  } catch (const WireError&) {
    ++stats_.sends_dropped;
    return;
  }
  if (node == self_) {
    // Loopback through the codec so local and remote delivery agree.
    try {
      Message copy = parse_message(payload.data(), payload.size(), opts_.wire);
      ++stats_.messages_sent;
      ++stats_.messages_received;
      if (receive_) receive_(std::move(copy));
    } catch (const WireError&) {
      ++stats_.wire_rejects;
    }
    return;
  }
  Peer* p = peer_for(node);
  if (p == nullptr || p->down) {
    // A down peer is the paper's crashed participant: sends evaporate.
    ++stats_.sends_dropped;
    return;
  }
  ++stats_.messages_sent;
  queue_frame(*p, payload, Clock::now());
}

void SocketTransport::heard_from(std::int64_t node, Clock::time_point now) {
  if (node < 0) return;
  Peer* p = peer_for(static_cast<std::uint32_t>(node));
  if (p == nullptr) return;
  p->last_heard = now;
  if (p->down) {
    p->down = false;
    ++stats_.peers_resurrected;
    // The peer is demonstrably back: forget the accumulated dial failures
    // and redial immediately instead of sitting out the capped backoff.
    if (p->fd < 0) {
      p->attempt = 0;
      p->next_dial = now;
    }
  }
}

bool SocketTransport::read_conn(InConn& c, Clock::time_point now) {
  for (;;) {
    std::uint8_t buf[kReadChunk];
    const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
    if (n > 0) {
      c.rx.insert(c.rx.end(), buf, buf + n);
      if (static_cast<std::size_t>(n) < sizeof buf) break;
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  try {
    std::vector<std::uint8_t> frame;
    while (extract_stream_frame(c.rx, frame, opts_.max_frame_bytes)) {
      ParsedFrame pf = parse_frame(frame.data(), frame.size(), opts_.wire);
      ++stats_.frames_received;
      if (pf.is_control()) {
        if (pf.control.kind == WireKind::kHello) {
          c.node = static_cast<std::int64_t>(pf.control.a);
          ++stats_.hellos_received;
          heard_from(c.node, now);
          if (peer_status_ && c.node >= 0) {
            peer_status_(static_cast<std::uint32_t>(c.node), pf.control.b);
          }
        } else if (pf.control.kind == WireKind::kCatchUp) {
          ++stats_.catchup_requests_received;
          heard_from(c.node, now);
          // A catch-up from a connection that never said Hello has no
          // identity to answer to; ignore it (the protocol requires Hello
          // first and our dialer always sends it first).
          if (catchup_ && c.node >= 0) {
            catchup_(static_cast<std::uint32_t>(c.node), pf.control.a,
                     pf.control.b);
          }
        } else {
          ++stats_.heartbeats_received;
          heard_from(c.node, now);
        }
      } else {
        ++stats_.messages_received;
        heard_from(c.node, now);
        if (receive_) receive_(std::move(pf.message));
      }
    }
  } catch (const WireError&) {
    // A corrupting peer looks like a crashing one: count it, drop the
    // connection, keep the process alive.
    ++stats_.wire_rejects;
    return false;
  }
  return true;
}

void SocketTransport::emit_heartbeats(Clock::time_point now) {
  if (now < next_heartbeat_) return;
  ControlFrame hb;
  hb.kind = WireKind::kHeartbeat;
  hb.a = heartbeat_seq_++;
  std::vector<std::uint8_t> payload;
  serialize_control(hb, payload);
  for (Peer& p : peers_) {
    if (p.fd < 0 || p.connecting) continue;
    queue_frame(p, payload, now);
    ++stats_.heartbeats_sent;
  }
  next_heartbeat_ = now + opts_.heartbeat_interval;
}

void SocketTransport::check_deadlines(Clock::time_point now) {
  for (Peer& p : peers_) {
    if (p.down) continue;
    const auto silent =
        std::chrono::duration_cast<Millis>(now - p.last_heard);
    if (silent > opts_.peer_timeout) {
      p.down = true;
      ++stats_.peers_down;
      if (peer_down_) peer_down_(p.node, silent);
    }
  }
}

bool SocketTransport::pump(Millis max_wait) {
  if (closed_) return false;
  auto now = Clock::now();

  for (Peer& p : peers_) {
    if (p.fd < 0 && now >= p.next_dial) dial(p, now);
  }
  emit_heartbeats(now);
  check_deadlines(now);

  // poll set: listener, accepted conns, dialed conns.
  std::vector<pollfd> fds;
  enum class Slot { kListener, kConn, kPeer };
  std::vector<std::pair<Slot, std::size_t>> slots;
  if (listen_fd_ >= 0) {
    fds.push_back({listen_fd_, POLLIN, 0});
    slots.emplace_back(Slot::kListener, 0);
  }
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    fds.push_back({conns_[i].fd, POLLIN, 0});
    slots.emplace_back(Slot::kConn, i);
  }
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    Peer& p = peers_[i];
    if (p.fd < 0) continue;
    short events = POLLIN;
    if (p.connecting || p.tx_off < p.tx.size()) events |= POLLOUT;
    fds.push_back({p.fd, events, 0});
    slots.emplace_back(Slot::kPeer, i);
  }

  // Wake in time for the nearest scheduled obligation: a due dial, the
  // next heartbeat, or a peer-death deadline.
  std::int64_t wait_ms = max_wait.count();
  auto consider = [&](Clock::time_point at) {
    const auto d =
        std::chrono::duration_cast<Millis>(at - now).count();
    wait_ms = std::min(wait_ms, std::max<std::int64_t>(0, d));
  };
  consider(next_heartbeat_);
  for (const Peer& p : peers_) {
    if (p.fd < 0) consider(p.next_dial);
    if (!p.down) consider(p.last_heard + opts_.peer_timeout + Millis(1));
  }

  const std::uint64_t received_before = stats_.messages_received;
  const int rc =
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
             static_cast<int>(std::clamp<std::int64_t>(wait_ms, 0, 60'000)));
  now = Clock::now();
  if (rc > 0) {
    for (std::size_t i = 0; i < fds.size(); ++i) {
      const short got = fds[i].revents;
      if (got == 0) continue;
      const auto [slot, idx] = slots[i];
      switch (slot) {
        case Slot::kListener: {
          for (;;) {
            const int cfd = ::accept(listen_fd_, nullptr, nullptr);
            if (cfd < 0) break;
            set_nonblock_cloexec(cfd);
            if (!listen_addr_.is_unix) set_tcp_nodelay(cfd);
            InConn c;
            c.fd = cfd;
            conns_.push_back(std::move(c));
          }
          break;
        }
        case Slot::kConn: {
          InConn& c = conns_[idx];
          if (!read_conn(c, now)) {
            close_quietly(c.fd);  // compacted below
          }
          break;
        }
        case Slot::kPeer: {
          Peer& p = peers_[idx];
          if (p.fd < 0) break;
          if (p.connecting) {
            if (got & (POLLOUT | POLLERR | POLLHUP)) {
              int err = 0;
              socklen_t len = sizeof err;
              ::getsockopt(p.fd, SOL_SOCKET, SO_ERROR, &err, &len);
              if (err == 0 && !(got & (POLLERR | POLLHUP))) {
                on_dialed(p, now);
              } else {
                dial_failed(p, now);
              }
            }
            break;
          }
          if (got & (POLLERR | POLLHUP)) {
            disconnect(p, now);
            break;
          }
          if (got & POLLIN) {
            // The remote never sends protocol frames on our dialed
            // connection; readable here means EOF or stray bytes. Drain
            // and detect close.
            std::uint8_t buf[256];
            const ssize_t n = ::recv(p.fd, buf, sizeof buf, 0);
            if (n == 0 ||
                (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR)) {
              disconnect(p, now);
              break;
            }
          }
          if (got & POLLOUT) flush(p, now);
          break;
        }
      }
    }
  }
  // Compact closed accepted connections.
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const InConn& c) { return c.fd < 0; }),
               conns_.end());

  emit_heartbeats(now);
  check_deadlines(now);
  return stats_.messages_received > received_before;
}

}  // namespace xcp::net
