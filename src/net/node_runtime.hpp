#pragma once
// NodeRuntime: runs one process's slice of a protocol deployment in real
// time. The discrete-event simulator stays the execution engine (timers,
// local delivery, tracing all unchanged); the runtime advances virtual
// time in lockstep with the wall clock and interleaves socket-transport
// pumps, so remote messages injected between slices land at the current
// virtual instant.
//
// Wiring (done in the constructor):
//  - network.set_gateway(&transport): sends to non-local pids leave
//    through the socket transport;
//  - transport receive handler -> network.inject: inbound messages are
//    scheduled into the local event loop at the current virtual time.
//
// The mapping is 1 virtual microsecond = 1 wall microsecond from the
// moment run() starts.

#include <chrono>
#include <functional>

#include "net/socket_transport.hpp"

namespace xcp::net {

class NodeRuntime {
 public:
  using Millis = std::chrono::milliseconds;
  using WallClock = std::function<std::chrono::steady_clock::time_point()>;

  NodeRuntime(sim::Simulator& sim, Network& network,
              SocketTransport& transport);

  /// Replaces the wall-clock source (default: steady_clock::now). The
  /// clock-jump regression tests inject a clock that leaps forward; the
  /// pacing contract is that a burst of missed wall ticks is absorbed as
  /// one run_until to the new instant — every pending simulation event
  /// still fires, in order, with no busy-spin re-polling. Must be set
  /// before the first run().
  void set_clock(WallClock clock);

  /// Runs until `done()` returns true or `wall_limit` elapses. Returns
  /// true iff done() fired. The simulator's virtual clock tracks the wall
  /// clock; between event slices the transport is pumped with a wait sized
  /// by the next pending virtual event.
  bool run(Millis wall_limit, const std::function<bool()>& done);

  /// Keeps the clock advancing and the transport pumping for `extra` more
  /// wall time — lets decision broadcasts and relays drain after run().
  void linger(Millis extra);

 private:
  void advance_to_wall();
  std::chrono::steady_clock::time_point wall_now() const;

  sim::Simulator& sim_;
  Network& network_;
  SocketTransport& transport_;
  WallClock clock_;  // empty = steady_clock::now
  std::chrono::steady_clock::time_point wall_origin_;
  TimePoint virtual_origin_;
  bool started_ = false;
};

}  // namespace xcp::net
