#include "net/wal.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "support/hash.hpp"

namespace xcp::net {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

/// Parses one record payload; returns false on anything malformed (the
/// caller treats it as a torn/corrupt suffix and truncates).
bool parse_payload(const std::uint8_t* p, std::size_t size, WalRecord& out) {
  // u8 kind + u64 instance + u32 round + u8 value + u32 cert_len = 18 bytes.
  constexpr std::size_t kFixed = 1 + 8 + 4 + 1 + 4;
  if (size < kFixed) return false;
  const std::uint8_t kind = p[0];
  if (kind < static_cast<std::uint8_t>(WalRecordKind::kPrevote) ||
      kind > static_cast<std::uint8_t>(WalRecordKind::kDecide)) {
    return false;
  }
  out.kind = static_cast<WalRecordKind>(kind);
  out.instance = get_u64(p + 1);
  out.round = static_cast<std::int32_t>(get_u32(p + 9));
  out.value = p[13];
  const std::uint32_t cert_len = get_u32(p + 14);
  if (size != kFixed + cert_len) return false;  // short or trailing bytes
  out.cert.assign(p + kFixed, p + kFixed + cert_len);
  return true;
}

std::vector<std::uint8_t> encode_payload(const WalRecord& r) {
  std::vector<std::uint8_t> p;
  put_u8(p, static_cast<std::uint8_t>(r.kind));
  put_u64(p, r.instance);
  put_u32(p, static_cast<std::uint32_t>(r.round));
  put_u8(p, r.value);
  put_u32(p, static_cast<std::uint32_t>(r.cert.size()));
  p.insert(p.end(), r.cert.begin(), r.cert.end());
  return p;
}

void default_crash() { ::kill(::getpid(), SIGKILL); }

}  // namespace

const char* wal_record_kind_name(WalRecordKind k) {
  switch (k) {
    case WalRecordKind::kPrevote: return "prevote";
    case WalRecordKind::kPrecommit: return "precommit";
    case WalRecordKind::kDecide: return "decide";
    case WalRecordKind::kInvalid: break;
  }
  return "invalid";
}

std::vector<std::uint8_t> encode_wal_record(const WalRecord& r) {
  const std::vector<std::uint8_t> payload = encode_payload(r);
  if (payload.size() > kMaxWalRecord) {
    throw WalError("record payload of " + std::to_string(payload.size()) +
                   " bytes exceeds the " + std::to_string(kMaxWalRecord) +
                   "-byte cap");
  }
  std::vector<std::uint8_t> out;
  out.reserve(8 + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

WriteAheadLog::WriteAheadLog(std::string path, WalOptions opts)
    : path_(std::move(path)), opts_(std::move(opts)) {
  if (!opts_.crash) opts_.crash = default_crash;
}

void WriteAheadLog::write_header() {
  std::vector<std::uint8_t> h;
  put_u32(h, kWalMagic);
  h.push_back(kWalVersion & 0xff);
  h.push_back(kWalVersion >> 8);
  h.push_back(0);  // flags
  h.push_back(0);
  put_u64(h, 0);  // meta, reserved
  file_.append(h);
  if (opts_.sync) {
    file_.sync();
    fsync_parent_dir(path_);
  }
}

WalRecoverResult WriteAheadLog::scan(const std::vector<std::uint8_t>& bytes) {
  WalRecoverResult res;
  if (bytes.empty()) {
    res.fresh = true;
    return res;
  }
  if (bytes.size() < kWalHeaderBytes) {
    // A torn creation: nothing durable ever made it in. Start over.
    res.truncated = true;
    res.dropped_bytes = bytes.size();
    return res;
  }
  if (get_u32(bytes.data()) != kWalMagic) {
    throw WalError("bad magic — not a journal file");
  }
  const std::uint16_t version = get_u16(bytes.data() + 4);
  if (version == 0 || version > kWalVersion) {
    throw WalError("unsupported journal version " + std::to_string(version));
  }
  if (get_u16(bytes.data() + 6) != 0) {
    throw WalError("nonzero header flags");
  }
  res.valid_bytes = kWalHeaderBytes;
  std::size_t off = kWalHeaderBytes;
  while (off < bytes.size()) {
    const std::size_t left = bytes.size() - off;
    if (left < 8) break;  // torn length/CRC prefix
    const std::uint32_t len = get_u32(bytes.data() + off);
    const std::uint32_t crc = get_u32(bytes.data() + off + 4);
    if (len > kMaxWalRecord) break;          // corrupt length
    if (left - 8 < len) break;               // torn payload
    const std::uint8_t* payload = bytes.data() + off + 8;
    if (crc32(payload, len) != crc) break;   // corrupt payload
    WalRecord r;
    if (!parse_payload(payload, len, r)) break;  // structurally corrupt
    res.records.push_back(std::move(r));
    off += 8 + len;
    res.valid_bytes = off;
  }
  if (res.valid_bytes < bytes.size()) {
    res.truncated = true;
    res.dropped_bytes = bytes.size() - res.valid_bytes;
  }
  return res;
}

WalRecoverResult WriteAheadLog::open() {
  file_.open(path_);
  WalRecoverResult res = scan(file_.read_all());
  if (res.fresh || (res.truncated && res.valid_bytes == 0)) {
    // Fresh journal, or a creation so torn the header never landed.
    file_.truncate(0);
    write_header();
    res.valid_bytes = kWalHeaderBytes;
    return res;
  }
  if (res.truncated) {
    file_.truncate(res.valid_bytes);
    if (opts_.sync) file_.sync();
  }
  return res;
}

void WriteAheadLog::append(const WalRecord& r) {
  if (!file_.is_open()) throw WalError("append on a closed journal");
  const std::vector<std::uint8_t> framed = encode_wal_record(r);

  const WalCrashPlan& plan = opts_.crash_plan;
  const bool fire = !crash_fired_ && plan.armed() && plan.kind == r.kind;
  if (fire && plan.phase == WalCrashPlan::Phase::kBefore) {
    crash_fired_ = true;
    opts_.crash();
    return;  // only reached when the crash hook returns (test hooks)
  }
  if (fire && plan.phase == WalCrashPlan::Phase::kTorn) {
    crash_fired_ = true;
    const std::size_t keep =
        std::clamp<std::size_t>(plan.torn_bytes, 1, framed.size() - 1);
    file_.append(framed.data(), keep);
    file_.sync();  // make the torn tail durable: that is the scenario
    opts_.crash();
    return;
  }
  file_.append(framed);
  if (opts_.sync) file_.sync();
  if (fire && plan.phase == WalCrashPlan::Phase::kAfter) {
    crash_fired_ = true;
    opts_.crash();
  }
}

void WriteAheadLog::compact(const std::vector<WalRecord>& snapshot) {
  if (!file_.is_open()) throw WalError("compact on a closed journal");
  std::vector<std::uint8_t> out;
  put_u32(out, kWalMagic);
  out.push_back(kWalVersion & 0xff);
  out.push_back(kWalVersion >> 8);
  out.push_back(0);
  out.push_back(0);
  put_u64(out, 0);
  for (const WalRecord& r : snapshot) {
    const auto framed = encode_wal_record(r);
    out.insert(out.end(), framed.begin(), framed.end());
  }
  atomic_replace(path_, out);
  // The old fd still points at the unlinked inode; reopen the new file.
  file_.open(path_);
}

}  // namespace xcp::net
