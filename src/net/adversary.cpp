#include "net/adversary.hpp"

#include <algorithm>

namespace xcp::net {

void RuleBasedAdversary::hold_until(Predicate pred, TimePoint release_at) {
  rules_.push_back(Rule{std::move(pred), release_at, std::nullopt});
}

void RuleBasedAdversary::delay_by(Predicate pred, Duration extra) {
  rules_.push_back(Rule{std::move(pred), std::nullopt, extra});
}

std::optional<TimePoint> RuleBasedAdversary::propose_delivery(const Message& m,
                                                              TimePoint now) {
  std::optional<TimePoint> proposal;
  for (const Rule& rule : rules_) {
    if (!rule.pred(m)) continue;
    TimePoint t = now;
    if (rule.release_at) t = std::max(t, *rule.release_at);
    if (rule.extra) t = now + *rule.extra;
    proposal = proposal ? std::max(*proposal, t) : t;
  }
  return proposal;
}

RuleBasedAdversary::Predicate RuleBasedAdversary::kind_is(MsgKind kind) {
  return [kind](const Message& m) { return m.kind == kind; };
}

RuleBasedAdversary::Predicate RuleBasedAdversary::to_process(sim::ProcessId pid) {
  return [pid](const Message& m) { return m.to == pid; };
}

RuleBasedAdversary::Predicate RuleBasedAdversary::from_process(sim::ProcessId pid) {
  return [pid](const Message& m) { return m.from == pid; };
}

RuleBasedAdversary::Predicate RuleBasedAdversary::all_of(
    std::vector<Predicate> preds) {
  return [preds = std::move(preds)](const Message& m) {
    return std::all_of(preds.begin(), preds.end(),
                       [&m](const Predicate& p) { return p(m); });
  };
}

PartitionAdversary::PartitionAdversary(
    std::function<bool(sim::ProcessId)> in_group_a, TimePoint heal_at)
    : in_group_a_(std::move(in_group_a)), heal_at_(heal_at) {}

std::optional<TimePoint> PartitionAdversary::propose_delivery(const Message& m,
                                                              TimePoint now) {
  const bool crosses_cut = in_group_a_(m.from) != in_group_a_(m.to);
  if (!crosses_cut || now >= heal_at_) return std::nullopt;
  return heal_at_;
}

}  // namespace xcp::net
