#pragma once
// Exit codes of tools/xcp_node, mirroring exp::worker_exit (exp/dispatch.hpp):
// distinct, stable codes per failure class so process-spawning harnesses and
// supervisors can tell a usage error from a poisoned journal from a bug.
//
// 0, 2 and 3 predate the taxonomy and keep their historical meanings (0 =
// decided/certified, 2 = usage, 3 = wall-clock timeout); the new classes
// append after them. Values are supervision ABI: never renumber.

namespace xcp::net::node_exit {

/// Decided (notary) / all participants certified (client).
inline constexpr int kDecided = 0;
/// Bad command line.
inline constexpr int kUsage = 2;
/// Wall-clock limit elapsed before a decision / full certification.
inline constexpr int kTimeout = 3;
/// Unrecoverable wire-format failure outside the transport's absorb-and-
/// drop path (e.g. a certificate blob that fails to re-encode).
inline constexpr int kWireError = 4;
/// The state journal is corrupt beyond recovery (foreign magic, future
/// version): the node refuses to guess and refuses to truncate.
inline constexpr int kJournalCorrupt = 5;
/// Any other unhandled exception.
inline constexpr int kInternal = 6;

}  // namespace xcp::net::node_exit
