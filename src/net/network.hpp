#pragma once
// The message transport, tying processes, delay model and adversary to the
// simulator. `Actor` is the base class for every protocol participant: a
// simulated process that can receive messages.

#include <cstdint>
#include <memory>
#include <vector>

#include "net/adversary.hpp"
#include "net/delay_model.hpp"
#include "net/message.hpp"
#include "props/trace.hpp"
#include "sim/simulator.hpp"

namespace xcp::net {

class Network;

/// A process that participates in message exchange.
class Actor : public sim::Process {
 public:
  virtual void on_message(const Message& m) = 0;

 protected:
  Network& net() const;
  /// Sends `body` to `to`; delivery time is governed by the network.
  void send(sim::ProcessId to, MsgKind kind, BodyPtr body = nullptr);

 private:
  friend class Network;
  Network* net_ = nullptr;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_gatewayed = 0;  // handed to the egress transport
  std::uint64_t messages_injected = 0;   // arrived from a remote transport
};

/// Abstract egress backend for messages addressed to process ids that are
/// not attached to this Network — the seam that lets the same protocol
/// actors run over real sockets in separate processes as well as in-sim.
/// Backends: SimTransport (net/transport.hpp) and SocketTransport
/// (net/socket_transport.hpp).
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send(const Message& m) = 0;
};

class Network {
 public:
  Network(sim::Simulator& sim, std::unique_ptr<DelayModel> model,
          props::TraceRecorder* trace = nullptr);

  /// Registers an actor (already spawned in the simulator) for delivery.
  void attach(Actor& actor);

  /// Timing adversary; may be null. Not owned.
  void set_adversary(Adversary* adversary) { adversary_ = adversary; }

  /// Egress transport for sends to unattached ids; may be null (then such
  /// sends are dropped at delivery time, the pre-seam behaviour — in-sim
  /// runs that never set a gateway are bit-identical to before the seam
  /// existed). Not owned.
  void set_gateway(Transport* gateway) { gateway_ = gateway; }

  /// Delivers a message that arrived from a remote transport: stamps a
  /// fresh local id and schedules delivery at the current instant, so the
  /// receive runs inside the event loop with normal tracing and stats.
  void inject(Message m);

  /// Sends a message; computes the delivery time as
  ///   clamp(adversary proposal or model sample)  within the legal envelope
  /// and schedules delivery. Messages to unattached ids are dropped.
  void send(sim::ProcessId from, sim::ProcessId to, MsgKind kind,
            BodyPtr body);

  /// Message loss injection: each message is dropped with probability p.
  /// (Only meaningful for experiments that explicitly model lossy links;
  /// the paper's models assume reliable delivery, so the default is 0.)
  void set_drop_probability(double p) { drop_probability_ = p; }

  /// Batched delivery (default on): messages to the same destination with
  /// the same delivery instant coalesce into one simulator event carrying
  /// the whole batch, instead of one event per message. This cuts
  /// per-message callable/heap overhead in committee broadcasts and
  /// adversarial release storms. Off = the one-event-per-message
  /// behaviour, kept for A/B benchmarking. Per-destination delivery order,
  /// per-message trace records and stats counters are preserved; the
  /// *interleaving* of a batch with other same-instant events changes,
  /// because appended messages execute at the batch's (earlier) event
  /// sequence — a timer or another destination's delivery scheduled
  /// between two coalesced sends now runs after both. Runs remain
  /// deterministic either way, but the two modes are distinct schedules:
  /// don't expect bit-identical traces across modes, only within one.
  void set_delivery_batching(bool on) { batching_ = on; }

  const NetworkStats& stats() const { return stats_; }
  DelayModel& model() { return *model_; }
  sim::Simulator& simulator() { return sim_; }
  props::TraceRecorder* trace() { return trace_; }

 private:
  static constexpr std::uint32_t kNoBatch = 0xffffffffu;

  /// A pending same-(destination, instant) delivery batch. Slab-allocated
  /// and recycled through a freelist; the message vector keeps its capacity
  /// across reuse, so steady-state batching allocates nothing.
  struct Batch {
    sim::ProcessId to;
    TimePoint at;
    std::vector<Message> msgs;
    std::uint32_t next_free = kNoBatch;
  };

  struct ActorEntry {
    Actor* actor = nullptr;
    // The still-open batch for this destination, if any: subsequent sends
    // resolving to the same instant append to it instead of scheduling.
    std::uint32_t open_batch = kNoBatch;
    TimePoint open_at;
  };

  void deliver(Message m);
  void deliver_batch(std::uint32_t batch_idx);
  std::uint32_t acquire_batch();
  void record_deliver(const Message& m, TimePoint local_at);

  /// O(1) flat lookup: ProcessIds are dense simulator-assigned indices.
  /// Returns nullptr for ids never attached. (The entry for an attached id
  /// has a non-null actor.)
  ActorEntry* entry_for(sim::ProcessId pid) {
    const std::uint32_t v = pid.value();
    return v < actors_.size() ? &actors_[v] : nullptr;
  }

  sim::Simulator& sim_;
  std::unique_ptr<DelayModel> model_;
  props::TraceRecorder* trace_;
  Adversary* adversary_ = nullptr;
  Transport* gateway_ = nullptr;
  std::vector<ActorEntry> actors_;  // indexed by ProcessId value
  std::vector<Batch> batches_;
  std::uint32_t free_batch_ = kNoBatch;
  std::uint64_t next_message_id_ = 1;
  double drop_probability_ = 0.0;
  bool batching_ = true;
  Rng rng_;
  NetworkStats stats_;
};

}  // namespace xcp::net
