#pragma once
// The message transport, tying processes, delay model and adversary to the
// simulator. `Actor` is the base class for every protocol participant: a
// simulated process that can receive messages.

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/adversary.hpp"
#include "net/delay_model.hpp"
#include "net/message.hpp"
#include "props/trace.hpp"
#include "sim/simulator.hpp"

namespace xcp::net {

class Network;

/// A process that participates in message exchange.
class Actor : public sim::Process {
 public:
  virtual void on_message(const Message& m) = 0;

 protected:
  Network& net() const;
  /// Sends `body` to `to`; delivery time is governed by the network.
  void send(sim::ProcessId to, MsgKind kind, BodyPtr body = nullptr);

 private:
  friend class Network;
  Network* net_ = nullptr;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
};

class Network {
 public:
  Network(sim::Simulator& sim, std::unique_ptr<DelayModel> model,
          props::TraceRecorder* trace = nullptr);

  /// Registers an actor (already spawned in the simulator) for delivery.
  void attach(Actor& actor);

  /// Timing adversary; may be null. Not owned.
  void set_adversary(Adversary* adversary) { adversary_ = adversary; }

  /// Sends a message; computes the delivery time as
  ///   clamp(adversary proposal or model sample)  within the legal envelope
  /// and schedules delivery. Messages to unattached ids are dropped.
  void send(sim::ProcessId from, sim::ProcessId to, MsgKind kind,
            BodyPtr body);

  /// Message loss injection: each message is dropped with probability p.
  /// (Only meaningful for experiments that explicitly model lossy links;
  /// the paper's models assume reliable delivery, so the default is 0.)
  void set_drop_probability(double p) { drop_probability_ = p; }

  const NetworkStats& stats() const { return stats_; }
  DelayModel& model() { return *model_; }
  sim::Simulator& simulator() { return sim_; }
  props::TraceRecorder* trace() { return trace_; }

 private:
  void deliver(Message m);

  sim::Simulator& sim_;
  std::unique_ptr<DelayModel> model_;
  props::TraceRecorder* trace_;
  Adversary* adversary_ = nullptr;
  std::unordered_map<sim::ProcessId, Actor*> actors_;
  std::uint64_t next_message_id_ = 1;
  double drop_probability_ = 0.0;
  Rng rng_;
  NetworkStats stats_;
};

}  // namespace xcp::net
