#pragma once
// Message model. A Message is an addressed envelope around an immutable,
// shared, polymorphic body; each protocol layer defines its own body types
// and downcasts on receipt (the `kind` tag makes dispatch cheap and keeps
// traces readable). Bodies are immutable once sent: the network shares them
// between duplicate deliveries and the trace.

#include <cstdint>
#include <memory>
#include <string>

#include "net/msg_kind.hpp"
#include "sim/process.hpp"
#include "support/pool.hpp"

namespace xcp::net {

/// Base class for message payloads.
struct MessageBody {
  virtual ~MessageBody() = default;
  /// One-line human-readable description, used in traces and logs.
  virtual std::string describe() const = 0;
};

using BodyPtr = std::shared_ptr<const MessageBody>;

/// Allocates a message body from the freelist pool: object and shared_ptr
/// control block share one pooled block, so steady-state delivery churn
/// reuses storage released by earlier messages instead of hitting the heap.
template <typename T, typename... Args>
std::shared_ptr<T> make_body(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>(),
                                 std::forward<Args>(args)...);
}

struct Message {
  std::uint64_t id = 0;  // unique per network, assigned at send
  sim::ProcessId from;
  sim::ProcessId to;
  MsgKind kind;          // interned routing/trace tag, e.g. "G", "P", "$"
  BodyPtr body;          // may be null for pure-signal messages

  /// Convenience downcast; returns nullptr if the body is absent or of a
  /// different type.
  template <typename T>
  const T* body_as() const {
    return dynamic_cast<const T*>(body.get());
  }

  std::string describe() const;
};

}  // namespace xcp::net
