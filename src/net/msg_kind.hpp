#pragma once
// Interned message kinds. The routing/trace tag on every Message used to be
// a std::string constructed per send; production consensus codebases use
// fixed-width message-type enums for exactly this reason. MsgKind is the
// open-ended equivalent: a uint32 wire value backed by a process-wide
// interner, so sends and dispatch compare integers and the name is only
// materialised for traces and logs.
//
// Construction from a string (implicitly, mirroring the old API) interns
// the name: a hash lookup, allocating only the first time a name is seen.
// Hot paths should use the named constants in xcp::net::kinds or cache
// their own `kind("...")` result.
//
// Threading: the interner is the process-wide pre-seeded read-mostly table
// in support/interner.hpp, shared with props::Label — one id space, so a
// kind's wire value doubles as its trace-label id. All well-known kinds
// below are interned at static initialisation (their inline definitions run
// before main, and before any sweep worker thread exists), so protocol runs
// on worker threads only ever take the shared (reader) lock; first-sight
// inserts of ad-hoc names take the exclusive lock on the seldom path.
// Comparing, hashing and copying MsgKind values never touches the interner
// at all.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace xcp::net {

class MsgKind {
 public:
  /// The invalid/empty kind (wire value 0).
  constexpr MsgKind() = default;

  // Implicit by design: every legacy `send(to, "tag", ...)` call site keeps
  // working, paying one interner lookup.
  MsgKind(std::string_view name);  // NOLINT
  MsgKind(const char* name) : MsgKind(std::string_view(name)) {}  // NOLINT
  MsgKind(const std::string& name)  // NOLINT
      : MsgKind(std::string_view(name)) {}

  /// Stable wire value; 0 is the invalid/empty kind.
  constexpr std::uint32_t value() const { return id_; }
  constexpr bool valid() const { return id_ != 0; }

  /// The interned name; valid for the process lifetime.
  std::string_view name() const;
  std::string str() const { return std::string(name()); }

  /// Rebuilds a MsgKind from a wire value produced by this process.
  static MsgKind from_wire(std::uint32_t value);

  friend constexpr bool operator==(MsgKind a, MsgKind b) {
    return a.id_ == b.id_;
  }
  friend constexpr bool operator!=(MsgKind a, MsgKind b) {
    return a.id_ != b.id_;
  }

 private:
  constexpr explicit MsgKind(std::uint32_t id) : id_(id) {}
  friend MsgKind kind(std::string_view name);

  std::uint32_t id_ = 0;
};

/// Interns `name` and returns its kind. O(1) amortised; allocates only on
/// first sight of a name. Thread-safe: lookups of known names take a shared
/// lock, first-sight inserts an exclusive one.
MsgKind kind(std::string_view name);

/// The well-known kinds of the protocol stack, interned once per process at
/// static initialisation (pre-seeding the table before threads exist).
namespace kinds {
inline const MsgKind g = kind("G");        // promise G(d)
inline const MsgKind p = kind("P");        // promise P(a)
inline const MsgKind money = kind("$");    // value transfer notification
inline const MsgKind chi = kind("chi");    // payment certificate
inline const MsgKind tx = kind("tx");             // blockchain transaction
inline const MsgKind chain_event = kind("chain_event");
inline const MsgKind tm_chi = kind("tm_chi");     // chi relayed to the TM
inline const MsgKind tm_report = kind("tm_report");
inline const MsgKind tm_cert = kind("tm_cert");
inline const MsgKind deposit = kind("deposit");   // timelock-commit deals
inline const MsgKind funded = kind("funded");
inline const MsgKind claim = kind("claim");
inline const MsgKind proof = kind("proof");
inline const MsgKind bft_proposal = kind("bft_proposal");
inline const MsgKind bft_vote = kind("bft_vote");
inline const MsgKind bft_newround = kind("bft_newround");
inline const MsgKind bft_decision = kind("bft_decision");
}  // namespace kinds

}  // namespace xcp::net

template <>
struct std::hash<xcp::net::MsgKind> {
  std::size_t operator()(const xcp::net::MsgKind& k) const noexcept {
    return std::hash<std::uint32_t>()(k.value());
  }
};
