#pragma once
// The supervised socket backend of the net::Transport seam: real
// non-blocking sockets between processes, multiplexed by poll() in the
// style of exp/dispatch.cpp's worker supervisor.
//
// Topology: every node listens on one address and dials one outbound
// connection to each peer. Sends travel only on the dialed connection;
// accepted connections are receive-only and identify themselves with a
// Hello control frame. Two simplex channels per pair keeps connection
// management trivially race-free (no simultaneous-open dedup).
//
// Supervision, mirroring the dispatcher's policy rungs:
//  - length-prefix framing survives partial reads and short writes (frames
//    are reassembled per-connection; writes keep a bounded pending buffer);
//  - a failed or broken dial retries with bounded deterministic
//    exponential backoff + jitter (same splitmix64-seeded shape as
//    DispatchOptions backoff);
//  - liveness is heartbeat-based: every established outbound connection
//    carries a Heartbeat control frame each heartbeat_interval, and a peer
//    from which nothing (hello/heartbeat/message) has been heard for
//    peer_timeout is declared down — once, via the peer-down handler;
//  - degradation is graceful: sends to a down peer are counted and
//    dropped, which is exactly the paper's crashed-participant semantics
//    (the protocol tolerates f such crashes); a peer that speaks again is
//    resurrected.
//
// Everything malformed on a connection raises/absorbs net::WireError and
// drops that connection (never the process): a byte-corrupting peer looks
// like a crashing one.
//
// Single-threaded by design: pump() runs one poll iteration; the caller
// (net/node_runtime.hpp) interleaves pumps with simulator slices.

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "net/wire.hpp"

namespace xcp::net {

/// "unix:<path>" or "tcp:<ipv4>:<port>" (numeric only; this is a lab
/// transport, not a resolver).
struct SocketAddress {
  bool is_unix = true;
  std::string path;  // unix form
  std::string ip;    // tcp form
  std::uint16_t port = 0;

  /// Throws std::runtime_error on anything it cannot parse.
  static SocketAddress parse(const std::string& spec);
};

struct SocketTransportOptions {
  std::chrono::milliseconds heartbeat_interval{100};
  /// Silence longer than this declares the peer down (grace-started at
  /// add_peer time, so slow-starting peers are not declared dead early).
  std::chrono::milliseconds peer_timeout{1000};
  std::chrono::milliseconds reconnect_base{25};
  double reconnect_multiplier = 2.0;
  std::chrono::milliseconds reconnect_cap{1000};
  double reconnect_jitter = 0.25;  // +/- fraction of the backoff
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  std::size_t max_frame_bytes = kMaxWireFrame;
  /// Per-peer pending outbound cap; sends past it are dropped (counted).
  std::size_t max_queued_bytes = std::size_t{8} << 20;
  WireContext wire;  // committee roster for participation-bitmap certs
};

struct SocketTransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t wire_rejects = 0;     // WireError on an inbound frame
  std::uint64_t dial_attempts = 0;
  std::uint64_t reconnects = 0;       // dial attempts after the first
  std::uint64_t disconnects = 0;      // established connections lost
  std::uint64_t peers_down = 0;       // heartbeat deadline expiries
  std::uint64_t peers_resurrected = 0;
  std::uint64_t sends_dropped = 0;    // to down/unmapped peers or over cap
  std::uint64_t catchup_requests_sent = 0;
  std::uint64_t catchup_requests_received = 0;
  std::uint64_t hellos_received = 0;
};

/// The deterministic dial backoff: exponential in `attempt` (>= 1) from
/// reconnect_base, hard-capped at reconnect_cap (the loop exits as soon as
/// the cap is reached, so arbitrarily large attempt counts neither overflow
/// nor cost O(attempt) work), with splitmix64 jitter keyed by (node,
/// attempt). Exposed as a free function so the plateau is testable without
/// thousands of real failed dials.
std::chrono::milliseconds dial_backoff(const SocketTransportOptions& opts,
                                       std::uint32_t node, int attempt);

class SocketTransport final : public Transport {
 public:
  using Clock = std::chrono::steady_clock;
  using Millis = std::chrono::milliseconds;

  /// Binds the listener immediately; throws std::runtime_error on failure.
  SocketTransport(std::uint32_t self_node, const std::string& listen_addr,
                  SocketTransportOptions opts = {});
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Declares a peer node and its listen address. Dialing starts at the
  /// next pump().
  void add_peer(std::uint32_t node, const std::string& addr);

  /// Routes a protocol process id to a peer node (or to self, for ids
  /// hosted here — such sends are handed to the receive handler directly).
  void map_pid(sim::ProcessId pid, std::uint32_t node);

  void set_receive_handler(std::function<void(Message&&)> handler) {
    receive_ = std::move(handler);
  }
  /// Called exactly once per down transition, with how long the peer had
  /// been silent when declared.
  void set_peer_down_handler(
      std::function<void(std::uint32_t node, Millis silent)> handler) {
    peer_down_ = std::move(handler);
  }

  // --- crash-recovery extension (docs/ROBUSTNESS.md, crash-recovery rung)

  /// Sets the status word carried in every Hello this node sends (its
  /// journaled protocol state; see docs/WIRE.md for the bit layout). A
  /// change is re-announced immediately on every established connection, so
  /// peers track state transitions (e.g. voted -> decided) without a redial.
  void set_hello_status(std::uint64_t status);
  std::uint64_t hello_status() const { return hello_status_; }

  /// Called for every Hello received, with the sender's status word —
  /// including re-announcements. This is how a survivor notices that a
  /// resurrected peer came back behind (and owes it a state transfer).
  void set_peer_status_handler(
      std::function<void(std::uint32_t node, std::uint64_t status)> handler) {
    peer_status_ = std::move(handler);
  }

  /// Starts requesting catch-up for `instance`: a CatchUp control frame
  /// (carrying the current hello status) goes out on every established
  /// connection now and on every future dial until cancel_catchup(). The
  /// answers arrive as ordinary protocol messages.
  void request_catchup(std::uint64_t instance);
  void cancel_catchup() { catchup_instance_.reset(); }
  bool catchup_active() const { return catchup_instance_.has_value(); }

  /// Called when a peer asks to be caught up on `instance`; `status` is the
  /// requester's announced state.
  void set_catchup_handler(
      std::function<void(std::uint32_t node, std::uint64_t instance,
                         std::uint64_t status)>
          handler) {
    catchup_ = std::move(handler);
  }

  /// Dial attempts since the last successful connect to `node` (-1 when the
  /// node is unknown). Test accessor for the backoff/reset regressions.
  int reconnect_attempt(std::uint32_t node) const;

  // Transport:
  void send(const Message& m) override;

  /// One supervision + multiplexing step: dials due peers, flushes pending
  /// writes, reads and dispatches inbound frames, emits due heartbeats,
  /// applies the peer-death deadline. Blocks in poll() at most `max_wait`.
  /// Returns true if at least one protocol message was received.
  bool pump(Millis max_wait);

  /// True until the peer's heartbeat deadline expires (and again after a
  /// resurrection).
  bool peer_up(std::uint32_t node) const;
  bool peer_connected(std::uint32_t node) const;

  const SocketTransportStats& stats() const { return stats_; }
  std::uint32_t self_node() const { return self_; }

  /// Closes every fd (listener, dialed, accepted). Idempotent; the
  /// destructor calls it.
  void close();

 private:
  struct Peer {
    std::uint32_t node = 0;
    SocketAddress addr;
    int fd = -1;
    bool connecting = false;
    std::vector<std::uint8_t> tx;  // pending outbound bytes
    std::size_t tx_off = 0;        // bytes of tx already written
    int attempt = 0;               // dial attempts since last success
    Clock::time_point next_dial;
    Clock::time_point last_heard;
    bool down = false;
  };

  /// An accepted (receive-only) connection; `node` is unknown (-1) until
  /// the Hello frame arrives.
  struct InConn {
    int fd = -1;
    std::vector<std::uint8_t> rx;
    std::int64_t node = -1;
  };

  Peer* peer_for(std::uint32_t node);
  const Peer* peer_for(std::uint32_t node) const;
  void dial(Peer& p, Clock::time_point now);
  void on_dialed(Peer& p, Clock::time_point now);
  void dial_failed(Peer& p, Clock::time_point now);
  void disconnect(Peer& p, Clock::time_point now);
  Millis backoff_before(const Peer& p) const;
  void flush(Peer& p, Clock::time_point now);
  void queue_frame(Peer& p, const std::vector<std::uint8_t>& payload,
                   Clock::time_point now);
  void queue_control(Peer& p, const ControlFrame& f, Clock::time_point now);
  bool read_conn(InConn& c, Clock::time_point now);  // false = drop conn
  void heard_from(std::int64_t node, Clock::time_point now);
  void check_deadlines(Clock::time_point now);
  void emit_heartbeats(Clock::time_point now);

  std::uint32_t self_;
  SocketAddress listen_addr_;
  int listen_fd_ = -1;
  SocketTransportOptions opts_;
  std::vector<Peer> peers_;
  std::vector<InConn> conns_;
  std::unordered_map<std::uint32_t, std::uint32_t> pid_to_node_;
  std::function<void(Message&&)> receive_;
  std::function<void(std::uint32_t, Millis)> peer_down_;
  std::function<void(std::uint32_t, std::uint64_t)> peer_status_;
  std::function<void(std::uint32_t, std::uint64_t, std::uint64_t)> catchup_;
  std::uint64_t hello_status_ = 0;
  std::optional<std::uint64_t> catchup_instance_;
  Clock::time_point next_heartbeat_;
  std::uint64_t heartbeat_seq_ = 0;
  SocketTransportStats stats_;
  bool closed_ = false;
};

}  // namespace xcp::net
