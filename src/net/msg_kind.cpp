#include "net/msg_kind.hpp"

#include <deque>
#include <unordered_map>

#include "support/status.hpp"

namespace xcp::net {
namespace {

struct Interner {
  // Names live in a deque so their storage never moves: the map's
  // string_view keys point into it.
  std::deque<std::string> names{""};  // id 0 = the invalid/empty kind
  std::unordered_map<std::string_view, std::uint32_t> ids{{"", 0}};
};

Interner& interner() {
  static Interner in;
  return in;
}

}  // namespace

MsgKind::MsgKind(std::string_view name) : MsgKind(kind(name)) {}

MsgKind kind(std::string_view name) {
  Interner& in = interner();
  if (const auto it = in.ids.find(name); it != in.ids.end()) {
    return MsgKind(it->second);
  }
  XCP_REQUIRE(in.names.size() <= 0xffffffffu, "message-kind space exhausted");
  in.names.emplace_back(name);
  const auto id = static_cast<std::uint32_t>(in.names.size() - 1);
  in.ids.emplace(in.names.back(), id);
  return MsgKind(id);
}

std::string_view MsgKind::name() const {
  const Interner& in = interner();
  XCP_REQUIRE(id_ < in.names.size(), "unknown message-kind wire value");
  return in.names[id_];
}

MsgKind MsgKind::from_wire(std::uint32_t value) {
  XCP_REQUIRE(value < interner().names.size(),
              "unknown message-kind wire value");
  MsgKind k;
  k.id_ = value;
  return k;
}

}  // namespace xcp::net
