#include "net/msg_kind.hpp"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "support/status.hpp"

namespace xcp::net {
namespace {

struct Interner {
  // Names live in a deque so their storage never moves: the map's
  // string_view keys point into it, and name() may hand out views that
  // outlive any lock.
  std::deque<std::string> names{""};  // id 0 = the invalid/empty kind
  std::unordered_map<std::string_view, std::uint32_t> ids{{"", 0}};
  // Read-mostly sharding: every well-known kind (net::kinds::*) is interned
  // during static initialisation — before any sweep worker exists — so the
  // hot paths only ever take the shared (reader) side. The exclusive side
  // is the seldom path: first sight of an ad-hoc name.
  mutable std::shared_mutex mu;
};

Interner& interner() {
  // Leaked: sweep-pool worker threads may intern or resolve names during
  // static destruction; the table must outlive every thread.
  static Interner* in = new Interner;
  return *in;
}

}  // namespace

MsgKind::MsgKind(std::string_view name) : MsgKind(kind(name)) {}

MsgKind kind(std::string_view name) {
  Interner& in = interner();
  {
    std::shared_lock lock(in.mu);
    if (const auto it = in.ids.find(name); it != in.ids.end()) {
      return MsgKind(it->second);
    }
  }
  std::unique_lock lock(in.mu);
  // Double-check: another thread may have interned it between the locks.
  if (const auto it = in.ids.find(name); it != in.ids.end()) {
    return MsgKind(it->second);
  }
  XCP_REQUIRE(in.names.size() <= 0xffffffffu, "message-kind space exhausted");
  in.names.emplace_back(name);
  const auto id = static_cast<std::uint32_t>(in.names.size() - 1);
  in.ids.emplace(in.names.back(), id);
  return MsgKind(id);
}

std::string_view MsgKind::name() const {
  const Interner& in = interner();
  std::shared_lock lock(in.mu);
  XCP_REQUIRE(id_ < in.names.size(), "unknown message-kind wire value");
  // Safe to return after unlock: deque elements never move, and names are
  // never removed.
  return in.names[id_];
}

MsgKind MsgKind::from_wire(std::uint32_t value) {
  const Interner& in = interner();
  std::shared_lock lock(in.mu);
  XCP_REQUIRE(value < in.names.size(), "unknown message-kind wire value");
  MsgKind k;
  k.id_ = value;
  return k;
}

}  // namespace xcp::net
