#include "net/msg_kind.hpp"

#include "support/interner.hpp"
#include "support/status.hpp"

namespace xcp::net {

MsgKind::MsgKind(std::string_view name) : MsgKind(kind(name)) {}

MsgKind kind(std::string_view name) {
  MsgKind k;
  k.id_ = support::intern_name(name);
  return k;
}

std::string_view MsgKind::name() const { return support::interned_name(id_); }

MsgKind MsgKind::from_wire(std::uint32_t value) {
  XCP_REQUIRE(support::name_id_known(value),
              "unknown message-kind wire value");
  MsgKind k;
  k.id_ = value;
  return k;
}

}  // namespace xcp::net
