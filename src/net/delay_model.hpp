#pragma once
// Synchrony models. The paper's three timing regimes become three delay
// models over the virtual clock:
//
//  - Synchronous: every message arrives within a *known* bound Delta
//    (uniform in [delta_min, Delta]). Used by Theorem 1.
//  - Partially synchronous (Dwork-Lynch-Stockmeyer GST formulation): there
//    is an unknown Global Stabilisation Time; messages sent at time t are
//    delivered by max(t, GST) + Delta, but before GST the adversary controls
//    timing arbitrarily. Used by Theorems 2 and 3.
//  - Asynchronous: finite but unbounded delays (heavy-tailed sampling with a
//    configurable cap so simulations terminate); no bound is known to the
//    protocol.
//
// A model both *samples* a default delay and *clamps* adversary proposals to
// what the regime legally allows: the network adversary may reorder and
// stretch deliveries, but never break the synchrony guarantee itself.

#include <memory>
#include <optional>

#include "net/message.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"

namespace xcp::net {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Deterministic-delay synchrony preset: every message takes *exactly*
  /// `delta`, and sampling never touches the RNG (unlike a
  /// SynchronousModel with collapsed bounds, which still draws a number
  /// per message). Under it, the m replies of a committee round — or any
  /// broadcast's responses — arrive at their destination at the same
  /// instant and coalesce through the network's batched delivery into one
  /// simulator event, so committee/theorem sweeps pay one event per round
  /// instead of one per message.
  static std::unique_ptr<DelayModel> synchronous(Duration delta);

  /// Default delivery delay for a message sent at `now`.
  virtual Duration sample(const Message& m, TimePoint now, Rng& rng) = 0;

  /// Latest legal delivery time for a message sent at `now`; the adversary's
  /// proposals are clamped to this. TimePoint::max() means "unbounded".
  virtual TimePoint latest_delivery(const Message& m, TimePoint now) const = 0;

  /// The bound the *protocol* is entitled to assume, if any (Delta). For the
  /// partially synchronous and asynchronous models there is no known bound.
  virtual std::optional<Duration> known_bound() const = 0;
};

/// Synchronous network: delay uniform in [delta_min, delta_max]; the bound
/// delta_max is known to protocols.
class SynchronousModel final : public DelayModel {
 public:
  SynchronousModel(Duration delta_min, Duration delta_max);

  Duration sample(const Message& m, TimePoint now, Rng& rng) override;
  TimePoint latest_delivery(const Message& m, TimePoint now) const override;
  std::optional<Duration> known_bound() const override { return delta_max_; }

  Duration delta_max() const { return delta_max_; }

 private:
  Duration delta_min_;
  Duration delta_max_;
};

/// Partially synchronous network with Global Stabilisation Time `gst`:
/// a message sent at t is delivered by max(t, gst) + delta; before GST the
/// default sampling is already erratic (uniform up to the pre-GST cap), and
/// the adversary may stretch it to the legal limit. `gst` is part of the
/// *environment*, never revealed to protocols (known_bound() is empty).
class PartialSynchronyModel final : public DelayModel {
 public:
  PartialSynchronyModel(TimePoint gst, Duration delta,
                        Duration pre_gst_typical);

  Duration sample(const Message& m, TimePoint now, Rng& rng) override;
  TimePoint latest_delivery(const Message& m, TimePoint now) const override;
  std::optional<Duration> known_bound() const override { return std::nullopt; }

  TimePoint gst() const { return gst_; }
  Duration delta() const { return delta_; }

 private:
  TimePoint gst_;
  Duration delta_;
  Duration pre_gst_typical_;
};

/// Asynchronous network: finite but unbounded delay. Sampling is
/// exponential-ish via layered uniforms, capped at `cap` so that runs end.
class AsynchronousModel final : public DelayModel {
 public:
  AsynchronousModel(Duration typical, Duration cap);

  Duration sample(const Message& m, TimePoint now, Rng& rng) override;
  TimePoint latest_delivery(const Message& m, TimePoint now) const override;
  std::optional<Duration> known_bound() const override { return std::nullopt; }

 private:
  Duration typical_;
  Duration cap_;
};

}  // namespace xcp::net
