#include "net/wire.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "chain/transaction.hpp"
#include "consensus/messages.hpp"
#include "proto/bodies.hpp"

namespace xcp::net {
namespace {

// Field caps: defensive upper bounds well above anything the protocols
// produce, well below anything that could act as an amplification lever.
constexpr std::size_t kMaxShortString = 64;    // statement kinds
constexpr std::size_t kMaxNameString = 256;    // contract/op/topic names
constexpr std::size_t kMaxDetailString = 4096; // chain-event detail
constexpr std::size_t kMaxStatements = 1024;
constexpr std::size_t kMaxQuorumSigs = 1024;

// ------------------------------------------------------------- LE writers

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (std::uint32_t i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (std::uint32_t i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s,
             std::size_t cap, const char* field) {
  if (s.size() > cap) {
    throw WireError(std::string("cannot serialize ") + field + ": " +
                        std::to_string(s.size()) + " bytes exceeds cap " +
                        std::to_string(cap),
                    out.size());
  }
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// ------------------------------------------------- bounds-checked reader

/// Every read names its decode context and the byte offset into the frame;
/// any shortfall or invalid value raises WireError carrying both (the same
/// diagnostic shape as exp::WireError in the shard transport).
struct Reader {
  const std::uint8_t* base;
  const std::uint8_t* p;
  std::size_t left;
  const char* what;

  Reader(const std::uint8_t* data, std::size_t size, const char* context)
      : base(data), p(data), left(size), what(context) {}

  std::size_t offset() const { return static_cast<std::size_t>(p - base); }

  [[noreturn]] void fail(const std::string& msg) const {
    throw WireError(std::string(what) + ": " + msg + " at offset " +
                        std::to_string(offset()),
                    offset());
  }

  void need(std::size_t n) const {
    if (left < n) {
      fail("truncated: need " + std::to_string(n) + " byte(s), " +
           std::to_string(left) + " left");
    }
  }

  std::uint8_t u8() {
    need(1);
    const std::uint8_t v = *p;
    ++p;
    --left;
    return v;
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(p[i]) << (8 * i);
    p += 2;
    left -= 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    left -= 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    left -= 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  std::string str(std::size_t cap, const char* field) {
    const std::size_t at = offset();
    const std::uint16_t n = u16();
    if (n > cap) {
      throw WireError(std::string(what) + ": " + field + " length " +
                          std::to_string(n) + " exceeds cap " +
                          std::to_string(cap) + " at offset " +
                          std::to_string(at),
                      at);
    }
    need(n);
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return s;
  }

  /// A flag byte that must be exactly 0 or 1.
  bool flag(const char* field) {
    const std::size_t at = offset();
    const std::uint8_t v = u8();
    if (v > 1) {
      throw WireError(std::string(what) + ": " + field + " flag byte " +
                          std::to_string(v) + " is not 0/1 at offset " +
                          std::to_string(at),
                      at);
    }
    return v == 1;
  }

  void expect_consumed() const {
    if (left != 0) {
      fail(std::to_string(left) + " trailing byte(s) after message");
    }
  }
};

// -------------------------------------------------------- field encoders

void put_signature(std::vector<std::uint8_t>& out, const crypto::Signature& s) {
  put_u32(out, s.signer.value());
  put_u64(out, s.mac);
}

crypto::Signature get_signature(Reader& r) {
  crypto::Signature s;
  s.signer = sim::ProcessId(r.u32());
  s.mac = r.u64();
  return s;
}

void put_amount(std::vector<std::uint8_t>& out, const Amount& a) {
  put_i64(out, a.units());
  put_u16(out, a.currency().id());
}

Amount get_amount(Reader& r) {
  const std::int64_t units = r.i64();
  const std::uint16_t cur = r.u16();
  return Amount(units, Currency(cur));
}

void put_certificate(std::vector<std::uint8_t>& out,
                     const crypto::Certificate& c, const WireContext& ctx) {
  put_u8(out, static_cast<std::uint8_t>(c.kind));
  put_u64(out, c.deal_id);
  put_u32(out, c.issuer.value());
  put_signature(out, c.signature);
  if (c.embedded_payment_sig) {
    put_u8(out, 1);
    put_u32(out, c.embedded_payment_issuer.value());
    put_signature(out, *c.embedded_payment_sig);
  } else {
    put_u8(out, 0);
  }
  // Quorum signers: participation bitmap when a roster is in context and
  // covers every signer exactly once; explicit (signer, mac) list otherwise.
  std::uint64_t bitmap = 0;
  bool bitmap_ok = ctx.roster != nullptr && ctx.roster->size() <= 64 &&
                   !c.quorum.empty();
  if (bitmap_ok) {
    for (const auto& sig : c.quorum) {
      const auto it =
          std::find(ctx.roster->begin(), ctx.roster->end(), sig.signer);
      if (it == ctx.roster->end()) {
        bitmap_ok = false;
        break;
      }
      const std::uint64_t bit =
          std::uint64_t{1} << (it - ctx.roster->begin());
      if (bitmap & bit) {  // duplicate signer: bitmap can't represent it
        bitmap_ok = false;
        break;
      }
      bitmap |= bit;
    }
  }
  if (bitmap_ok) {
    put_u8(out, 1);
    put_u64(out, bitmap);
    // macs in roster index order, so the encoding is canonical regardless
    // of the in-memory vector order.
    for (std::size_t i = 0; i < ctx.roster->size(); ++i) {
      if (!(bitmap & (std::uint64_t{1} << i))) continue;
      const sim::ProcessId member = (*ctx.roster)[i];
      for (const auto& sig : c.quorum) {
        if (sig.signer == member) {
          put_u64(out, sig.mac);
          break;
        }
      }
    }
  } else {
    if (c.quorum.size() > kMaxQuorumSigs) {
      throw WireError("cannot serialize quorum of " +
                          std::to_string(c.quorum.size()) +
                          " signatures (cap " +
                          std::to_string(kMaxQuorumSigs) + ")",
                      out.size());
    }
    put_u8(out, 0);
    put_u16(out, static_cast<std::uint16_t>(c.quorum.size()));
    for (const auto& sig : c.quorum) put_signature(out, sig);
  }
}

crypto::Certificate get_certificate(Reader& r, const WireContext& ctx) {
  crypto::Certificate c;
  {
    const std::size_t at = r.offset();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(crypto::CertKind::kAbort)) {
      throw WireError(std::string(r.what) + ": unknown certificate kind " +
                          std::to_string(kind) + " at offset " +
                          std::to_string(at),
                      at);
    }
    c.kind = static_cast<crypto::CertKind>(kind);
  }
  c.deal_id = r.u64();
  c.issuer = sim::ProcessId(r.u32());
  c.signature = get_signature(r);
  if (r.flag("embedded-chi")) {
    c.embedded_payment_issuer = sim::ProcessId(r.u32());
    c.embedded_payment_sig = get_signature(r);
  }
  const std::size_t mode_at = r.offset();
  if (r.flag("quorum-mode")) {
    // Participation bitmap form: requires the committee roster in context.
    if (ctx.roster == nullptr) {
      throw WireError(std::string(r.what) +
                          ": participation-bitmap certificate without a "
                          "committee roster in context at offset " +
                          std::to_string(mode_at),
                      mode_at);
    }
    if (ctx.roster->size() > 64) {
      throw WireError(std::string(r.what) + ": roster of " +
                          std::to_string(ctx.roster->size()) +
                          " members exceeds the 64-bit participation bitmap "
                          "at offset " +
                          std::to_string(mode_at),
                      mode_at);
    }
    const std::size_t bits_at = r.offset();
    const std::uint64_t bitmap = r.u64();
    if (ctx.roster->size() < 64 &&
        (bitmap >> ctx.roster->size()) != 0) {
      throw WireError(std::string(r.what) +
                          ": participation bitmap has bits beyond the " +
                          std::to_string(ctx.roster->size()) +
                          "-member roster at offset " +
                          std::to_string(bits_at),
                      bits_at);
    }
    for (std::size_t i = 0; i < ctx.roster->size(); ++i) {
      if (!(bitmap & (std::uint64_t{1} << i))) continue;
      crypto::Signature sig;
      sig.signer = (*ctx.roster)[i];
      sig.mac = r.u64();
      c.quorum.push_back(sig);
    }
  } else {
    const std::size_t count_at = r.offset();
    const std::uint16_t count = r.u16();
    if (count > kMaxQuorumSigs) {
      throw WireError(std::string(r.what) + ": quorum signature count " +
                          std::to_string(count) + " exceeds cap " +
                          std::to_string(kMaxQuorumSigs) + " at offset " +
                          std::to_string(count_at),
                      count_at);
    }
    c.quorum.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      c.quorum.push_back(get_signature(r));
    }
  }
  return c;
}

void put_statement(std::vector<std::uint8_t>& out,
                   const consensus::SignedStatement& s) {
  put_str(out, s.kind, kMaxShortString, "statement kind");
  put_u64(out, s.deal_id);
  put_u32(out, s.subject.value());
  put_u64(out, s.detail);
  put_signature(out, s.sig);
}

consensus::SignedStatement get_statement(Reader& r) {
  consensus::SignedStatement s;
  s.kind = r.str(kMaxShortString, "statement kind");
  s.deal_id = r.u64();
  s.subject = sim::ProcessId(r.u32());
  s.detail = r.u64();
  s.sig = get_signature(r);
  return s;
}

void put_justification(std::vector<std::uint8_t>& out,
                       const consensus::Justification& j,
                       const WireContext& ctx) {
  if (j.statements.size() > kMaxStatements) {
    throw WireError("cannot serialize justification with " +
                        std::to_string(j.statements.size()) +
                        " statements (cap " + std::to_string(kMaxStatements) +
                        ")",
                    out.size());
  }
  put_u16(out, static_cast<std::uint16_t>(j.statements.size()));
  for (const auto& s : j.statements) put_statement(out, s);
  if (j.chi) {
    put_u8(out, 1);
    put_certificate(out, *j.chi, ctx);
  } else {
    put_u8(out, 0);
  }
}

consensus::Justification get_justification(Reader& r, const WireContext& ctx) {
  consensus::Justification j;
  const std::size_t count_at = r.offset();
  const std::uint16_t count = r.u16();
  if (count > kMaxStatements) {
    throw WireError(std::string(r.what) + ": statement count " +
                        std::to_string(count) + " exceeds cap " +
                        std::to_string(kMaxStatements) + " at offset " +
                        std::to_string(count_at),
                    count_at);
  }
  j.statements.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    j.statements.push_back(get_statement(r));
  }
  if (r.flag("justification-chi")) j.chi = get_certificate(r, ctx);
  return j;
}

consensus::Value get_value(Reader& r) {
  const std::size_t at = r.offset();
  const std::uint8_t v = r.u8();
  if (v > static_cast<std::uint8_t>(consensus::Value::kAbort)) {
    throw WireError(std::string(r.what) + ": unknown decision value " +
                        std::to_string(v) + " at offset " + std::to_string(at),
                    at);
  }
  return static_cast<consensus::Value>(v);
}

int get_round(Reader& r, const char* field) {
  const std::size_t at = r.offset();
  const std::int32_t v = r.i32();
  if (v < 0) {
    throw WireError(std::string(r.what) + ": negative " + field + " " +
                        std::to_string(v) + " at offset " + std::to_string(at),
                    at);
  }
  return v;
}

// ----------------------------------------------------------- body codecs

WireBody body_tag_for(const MessageBody* b) {
  if (b == nullptr) return WireBody::kNone;
  if (dynamic_cast<const proto::PromiseG*>(b)) return WireBody::kPromiseG;
  if (dynamic_cast<const proto::PromiseP*>(b)) return WireBody::kPromiseP;
  if (dynamic_cast<const proto::MoneyMsg*>(b)) return WireBody::kMoney;
  if (dynamic_cast<const proto::CertMsg*>(b)) return WireBody::kCert;
  if (dynamic_cast<const consensus::ReportMsg*>(b)) return WireBody::kReport;
  if (dynamic_cast<const consensus::ProposalMsg*>(b)) {
    return WireBody::kProposal;
  }
  if (dynamic_cast<const consensus::VoteMsg*>(b)) return WireBody::kVote;
  if (dynamic_cast<const consensus::NewRoundMsg*>(b)) {
    return WireBody::kNewRound;
  }
  if (dynamic_cast<const consensus::DecisionMsg*>(b)) {
    return WireBody::kDecision;
  }
  if (dynamic_cast<const chain::TxMsg*>(b)) return WireBody::kTx;
  if (dynamic_cast<const chain::ChainEventMsg*>(b)) {
    return WireBody::kChainEvent;
  }
  throw WireError("message body type has no wire encoding", 0);
}

void put_body(std::vector<std::uint8_t>& out, WireBody tag,
              const MessageBody* b, const WireContext& ctx) {
  switch (tag) {
    case WireBody::kNone:
      return;
    case WireBody::kPromiseG: {
      const auto& g = static_cast<const proto::PromiseG&>(*b);
      put_u64(out, g.deal_id);
      put_i64(out, g.d.count());
      put_amount(out, g.amount);
      return;
    }
    case WireBody::kPromiseP: {
      const auto& p = static_cast<const proto::PromiseP&>(*b);
      put_u64(out, p.deal_id);
      put_i64(out, p.a.count());
      put_amount(out, p.amount);
      return;
    }
    case WireBody::kMoney: {
      const auto& m = static_cast<const proto::MoneyMsg&>(*b);
      put_u64(out, m.deal_id);
      put_u64(out, m.receipt);
      put_amount(out, m.amount);
      return;
    }
    case WireBody::kCert: {
      put_certificate(out, static_cast<const proto::CertMsg&>(*b).cert, ctx);
      return;
    }
    case WireBody::kReport: {
      put_statement(out,
                    static_cast<const consensus::ReportMsg&>(*b).statement);
      return;
    }
    case WireBody::kProposal: {
      const auto& p = static_cast<const consensus::ProposalMsg&>(*b);
      put_u64(out, p.instance);
      put_i32(out, p.round);
      put_u8(out, static_cast<std::uint8_t>(p.value));
      put_justification(out, p.just, ctx);
      put_signature(out, p.sig);
      return;
    }
    case WireBody::kVote: {
      const auto& v = static_cast<const consensus::VoteMsg&>(*b);
      put_u64(out, v.instance);
      put_i32(out, v.round);
      put_u8(out, static_cast<std::uint8_t>(v.value));
      put_u8(out, static_cast<std::uint8_t>(v.phase));
      put_signature(out, v.sig);
      return;
    }
    case WireBody::kNewRound: {
      const auto& nr = static_cast<const consensus::NewRoundMsg&>(*b);
      put_u64(out, nr.instance);
      put_i32(out, nr.round);
      if (nr.locked) {
        put_u8(out, 1);
        put_u8(out, static_cast<std::uint8_t>(*nr.locked));
      } else {
        put_u8(out, 0);
      }
      put_i32(out, nr.lock_round);
      return;
    }
    case WireBody::kDecision: {
      put_certificate(out, static_cast<const consensus::DecisionMsg&>(*b).cert,
                      ctx);
      return;
    }
    case WireBody::kTx: {
      const auto& t = static_cast<const chain::TxMsg&>(*b).tx;
      put_u32(out, t.sender.value());
      put_str(out, t.contract, kMaxNameString, "tx contract");
      put_str(out, t.op, kMaxNameString, "tx op");
      put_u64(out, t.arg);
      put_u64(out, t.arg2);
      if (t.cert) {
        put_u8(out, 1);
        put_certificate(out, *t.cert, ctx);
      } else {
        put_u8(out, 0);
      }
      put_signature(out, t.sig);
      return;
    }
    case WireBody::kChainEvent: {
      const auto& e = static_cast<const chain::ChainEventMsg&>(*b);
      put_str(out, e.contract, kMaxNameString, "event contract");
      put_str(out, e.topic, kMaxNameString, "event topic");
      put_u64(out, e.block_height);
      if (e.cert) {
        put_u8(out, 1);
        put_certificate(out, *e.cert, ctx);
      } else {
        put_u8(out, 0);
      }
      put_str(out, e.detail, kMaxDetailString, "event detail");
      return;
    }
  }
  throw WireError("unreachable body tag", out.size());
}

BodyPtr get_body(Reader& r, WireBody tag, const WireContext& ctx) {
  switch (tag) {
    case WireBody::kNone:
      return nullptr;
    case WireBody::kPromiseG: {
      auto g = make_body<proto::PromiseG>();
      g->deal_id = r.u64();
      g->d = Duration::micros(r.i64());
      g->amount = get_amount(r);
      return g;
    }
    case WireBody::kPromiseP: {
      auto p = make_body<proto::PromiseP>();
      p->deal_id = r.u64();
      p->a = Duration::micros(r.i64());
      p->amount = get_amount(r);
      return p;
    }
    case WireBody::kMoney: {
      auto m = make_body<proto::MoneyMsg>();
      m->deal_id = r.u64();
      m->receipt = r.u64();
      m->amount = get_amount(r);
      return m;
    }
    case WireBody::kCert: {
      auto c = make_body<proto::CertMsg>();
      c->cert = get_certificate(r, ctx);
      return c;
    }
    case WireBody::kReport: {
      auto rep = make_body<consensus::ReportMsg>();
      rep->statement = get_statement(r);
      return rep;
    }
    case WireBody::kProposal: {
      auto p = make_body<consensus::ProposalMsg>();
      p->instance = r.u64();
      p->round = get_round(r, "round");
      p->value = get_value(r);
      p->just = get_justification(r, ctx);
      p->sig = get_signature(r);
      return p;
    }
    case WireBody::kVote: {
      auto v = make_body<consensus::VoteMsg>();
      v->instance = r.u64();
      v->round = get_round(r, "round");
      v->value = get_value(r);
      {
        const std::size_t at = r.offset();
        const std::uint8_t phase = r.u8();
        if (phase >
            static_cast<std::uint8_t>(consensus::VoteMsg::Phase::kPrecommit)) {
          throw WireError(std::string(r.what) + ": unknown vote phase " +
                              std::to_string(phase) + " at offset " +
                              std::to_string(at),
                          at);
        }
        v->phase = static_cast<consensus::VoteMsg::Phase>(phase);
      }
      v->sig = get_signature(r);
      return v;
    }
    case WireBody::kNewRound: {
      auto nr = make_body<consensus::NewRoundMsg>();
      nr->instance = r.u64();
      nr->round = get_round(r, "round");
      if (r.flag("locked-value")) nr->locked = get_value(r);
      const std::size_t at = r.offset();
      nr->lock_round = r.i32();
      if (nr->lock_round < -1) {
        throw WireError(std::string(r.what) + ": lock round " +
                            std::to_string(nr->lock_round) +
                            " below -1 at offset " + std::to_string(at),
                        at);
      }
      return nr;
    }
    case WireBody::kDecision: {
      auto d = make_body<consensus::DecisionMsg>();
      d->cert = get_certificate(r, ctx);
      return d;
    }
    case WireBody::kTx: {
      auto t = make_body<chain::TxMsg>();
      t->tx.sender = sim::ProcessId(r.u32());
      t->tx.contract = r.str(kMaxNameString, "tx contract");
      t->tx.op = r.str(kMaxNameString, "tx op");
      t->tx.arg = r.u64();
      t->tx.arg2 = r.u64();
      if (r.flag("tx-cert")) t->tx.cert = get_certificate(r, ctx);
      t->tx.sig = get_signature(r);
      return t;
    }
    case WireBody::kChainEvent: {
      auto e = make_body<chain::ChainEventMsg>();
      e->contract = r.str(kMaxNameString, "event contract");
      e->topic = r.str(kMaxNameString, "event topic");
      e->block_height = r.u64();
      if (r.flag("event-cert")) e->cert = get_certificate(r, ctx);
      e->detail = r.str(kMaxDetailString, "event detail");
      return e;
    }
  }
  const std::size_t at = r.offset();
  throw WireError(std::string(r.what) + ": unknown body tag " +
                      std::to_string(static_cast<std::uint32_t>(tag)) +
                      " at offset " + std::to_string(at),
                  at);
}

const char* body_context(WireBody tag) {
  switch (tag) {
    case WireBody::kNone: return "message";
    case WireBody::kPromiseG: return "PromiseG";
    case WireBody::kPromiseP: return "PromiseP";
    case WireBody::kMoney: return "MoneyMsg";
    case WireBody::kCert: return "CertMsg";
    case WireBody::kReport: return "ReportMsg";
    case WireBody::kProposal: return "ProposalMsg";
    case WireBody::kVote: return "VoteMsg";
    case WireBody::kNewRound: return "NewRoundMsg";
    case WireBody::kDecision: return "DecisionMsg";
    case WireBody::kTx: return "TxMsg";
    case WireBody::kChainEvent: return "ChainEventMsg";
  }
  return "message";
}

/// Common 12-byte prologue: magic, version, flags, kind tag, body tag,
/// reserved. Returns (kind, body) after validating everything else.
struct Prologue {
  WireKind kind;
  std::uint8_t body_tag;
};

Prologue read_prologue(Reader& r) {
  {
    const std::size_t at = r.offset();
    const std::uint32_t magic = r.u32();
    if (magic != kWireMagic) {
      throw WireError(std::string(r.what) + ": bad magic 0x" + [&] {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%08x", magic);
        return std::string(buf);
      }() + " at offset " + std::to_string(at),
                      at);
    }
  }
  {
    const std::size_t at = r.offset();
    const std::uint16_t version = r.u16();
    if (version > kWireVersion || version < kWireMinVersion) {
      throw WireError(std::string(r.what) + ": unsupported version " +
                          std::to_string(version) + " (this build speaks " +
                          std::to_string(kWireMinVersion) + ".." +
                          std::to_string(kWireVersion) + ") at offset " +
                          std::to_string(at),
                      at);
    }
  }
  {
    const std::size_t at = r.offset();
    const std::uint16_t flags = r.u16();
    if (flags != 0) {
      throw WireError(std::string(r.what) + ": nonzero flags 0x" +
                          std::to_string(flags) + " at offset " +
                          std::to_string(at),
                      at);
    }
  }
  Prologue pl;
  const std::size_t kind_at = r.offset();
  const std::uint8_t kind = r.u8();
  pl.body_tag = r.u8();
  {
    const std::size_t at = r.offset();
    const std::uint16_t reserved = r.u16();
    if (reserved != 0) {
      throw WireError(std::string(r.what) + ": nonzero reserved field at "
                          "offset " +
                          std::to_string(at),
                      at);
    }
  }
  const bool known_protocol =
      kind >= 1 && kind <= static_cast<std::uint8_t>(WireKind::kBftDecision);
  const bool known_control =
      kind == static_cast<std::uint8_t>(WireKind::kHello) ||
      kind == static_cast<std::uint8_t>(WireKind::kHeartbeat) ||
      kind == static_cast<std::uint8_t>(WireKind::kCatchUp);
  if (!known_protocol && !known_control) {
    throw WireError(std::string(r.what) + ": unknown kind tag " +
                        std::to_string(kind) + " at offset " +
                        std::to_string(kind_at),
                    kind_at);
  }
  pl.kind = static_cast<WireKind>(kind);
  return pl;
}

void put_prologue(std::vector<std::uint8_t>& out, WireKind kind,
                  WireBody body_tag) {
  put_u32(out, kWireMagic);
  put_u16(out, kWireVersion);
  put_u16(out, 0);  // flags
  put_u8(out, static_cast<std::uint8_t>(kind));
  put_u8(out, static_cast<std::uint8_t>(body_tag));
  put_u16(out, 0);  // reserved
}

Message parse_message_after_prologue(Reader& r, const Prologue& pl,
                                     const WireContext& ctx) {
  if (static_cast<std::uint8_t>(pl.kind) >= kControlBase) {
    r.fail("control frame where a protocol message was expected");
  }
  if (pl.body_tag > static_cast<std::uint8_t>(WireBody::kChainEvent)) {
    throw WireError(std::string(r.what) + ": unknown body tag " +
                        std::to_string(pl.body_tag) + " at offset 9",
                    9);
  }
  const WireBody body_tag = static_cast<WireBody>(pl.body_tag);
  r.what = body_context(body_tag);
  Message m;
  m.from = sim::ProcessId(r.u32());
  m.to = sim::ProcessId(r.u32());
  m.id = r.u64();
  m.kind = msg_kind_of(pl.kind);
  m.body = get_body(r, body_tag, ctx);
  r.expect_consumed();
  return m;
}

}  // namespace

// ------------------------------------------------------------ kind tables

WireKind wire_kind_of(MsgKind k) {
  struct Entry {
    std::uint32_t msg_kind;
    WireKind wire;
  };
  // Built once; MsgKind wire values are process-lifetime stable.
  static const std::vector<Entry> table = [] {
    std::vector<Entry> t = {
        {kinds::g.value(), WireKind::kPromiseG},
        {kinds::p.value(), WireKind::kPromiseP},
        {kinds::money.value(), WireKind::kMoney},
        {kinds::chi.value(), WireKind::kChi},
        {kinds::tx.value(), WireKind::kTx},
        {kinds::chain_event.value(), WireKind::kChainEvent},
        {kinds::tm_chi.value(), WireKind::kTmChi},
        {kinds::tm_report.value(), WireKind::kTmReport},
        {kinds::tm_cert.value(), WireKind::kTmCert},
        {kinds::deposit.value(), WireKind::kDeposit},
        {kinds::funded.value(), WireKind::kFunded},
        {kinds::claim.value(), WireKind::kClaim},
        {kinds::proof.value(), WireKind::kProof},
        {kinds::bft_proposal.value(), WireKind::kBftProposal},
        {kinds::bft_vote.value(), WireKind::kBftVote},
        {kinds::bft_newround.value(), WireKind::kBftNewRound},
        {kinds::bft_decision.value(), WireKind::kBftDecision},
    };
    return t;
  }();
  for (const Entry& e : table) {
    if (e.msg_kind == k.value()) return e.wire;
  }
  return WireKind::kInvalid;
}

MsgKind msg_kind_of(WireKind w, std::size_t offset) {
  switch (w) {
    case WireKind::kPromiseG: return kinds::g;
    case WireKind::kPromiseP: return kinds::p;
    case WireKind::kMoney: return kinds::money;
    case WireKind::kChi: return kinds::chi;
    case WireKind::kTx: return kinds::tx;
    case WireKind::kChainEvent: return kinds::chain_event;
    case WireKind::kTmChi: return kinds::tm_chi;
    case WireKind::kTmReport: return kinds::tm_report;
    case WireKind::kTmCert: return kinds::tm_cert;
    case WireKind::kDeposit: return kinds::deposit;
    case WireKind::kFunded: return kinds::funded;
    case WireKind::kClaim: return kinds::claim;
    case WireKind::kProof: return kinds::proof;
    case WireKind::kBftProposal: return kinds::bft_proposal;
    case WireKind::kBftVote: return kinds::bft_vote;
    case WireKind::kBftNewRound: return kinds::bft_newround;
    case WireKind::kBftDecision: return kinds::bft_decision;
    case WireKind::kInvalid:
    case WireKind::kHello:
    case WireKind::kHeartbeat:
    case WireKind::kCatchUp:
      break;
  }
  throw WireError("kind tag " +
                      std::to_string(static_cast<unsigned>(w)) +
                      " is not a protocol message kind at offset " +
                      std::to_string(offset),
                  offset);
}

// --------------------------------------------------------------- messages

void serialize_message(const Message& m, std::vector<std::uint8_t>& out,
                       const WireContext& ctx) {
  const WireKind kind = wire_kind_of(m.kind);
  if (kind == WireKind::kInvalid) {
    throw WireError("message kind \"" + m.kind.str() +
                        "\" has no wire representation",
                    out.size());
  }
  const WireBody body_tag = body_tag_for(m.body.get());
  put_prologue(out, kind, body_tag);
  put_u32(out, m.from.value());
  put_u32(out, m.to.value());
  put_u64(out, m.id);
  put_body(out, body_tag, m.body.get(), ctx);
}

std::vector<std::uint8_t> serialize_message(const Message& m,
                                            const WireContext& ctx) {
  std::vector<std::uint8_t> out;
  serialize_message(m, out, ctx);
  return out;
}

Message parse_message(const std::uint8_t* data, std::size_t size,
                      const WireContext& ctx) {
  if (size > kMaxWireFrame) {
    throw WireError("frame of " + std::to_string(size) +
                        " bytes exceeds the " +
                        std::to_string(kMaxWireFrame) + "-byte cap",
                    0);
  }
  Reader r(data, size, "message header");
  const Prologue pl = read_prologue(r);
  return parse_message_after_prologue(r, pl, ctx);
}

// ---------------------------------------------------------------- control

void serialize_control(const ControlFrame& f, std::vector<std::uint8_t>& out) {
  if (static_cast<std::uint8_t>(f.kind) < kControlBase) {
    throw WireError("not a control kind", out.size());
  }
  put_prologue(out, f.kind, WireBody::kNone);
  put_u64(out, f.a);
  put_u64(out, f.b);
}

ControlFrame parse_control(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxWireFrame) {
    throw WireError("frame of " + std::to_string(size) +
                        " bytes exceeds the " +
                        std::to_string(kMaxWireFrame) + "-byte cap",
                    0);
  }
  Reader r(data, size, "control frame");
  const Prologue pl = read_prologue(r);
  if (static_cast<std::uint8_t>(pl.kind) < kControlBase) {
    r.fail("expected a control frame, got protocol kind " +
           std::to_string(static_cast<std::uint32_t>(pl.kind)));
  }
  if (pl.body_tag != 0) {
    r.fail("control frame with nonzero body tag " +
           std::to_string(pl.body_tag));
  }
  ControlFrame f;
  f.kind = pl.kind;
  f.a = r.u64();
  f.b = r.u64();
  r.expect_consumed();
  return f;
}

ParsedFrame parse_frame(const std::uint8_t* data, std::size_t size,
                        const WireContext& ctx) {
  if (size > kMaxWireFrame) {
    throw WireError("frame of " + std::to_string(size) +
                        " bytes exceeds the " +
                        std::to_string(kMaxWireFrame) + "-byte cap",
                    0);
  }
  Reader r(data, size, "frame header");
  const Prologue pl = read_prologue(r);
  ParsedFrame out;
  if (static_cast<std::uint8_t>(pl.kind) >= kControlBase) {
    r.what = "control frame";
    if (pl.body_tag != 0) {
      r.fail("control frame with nonzero body tag " +
             std::to_string(pl.body_tag));
    }
    out.control.kind = pl.kind;
    out.control.a = r.u64();
    out.control.b = r.u64();
    r.expect_consumed();
    return out;
  }
  out.message = parse_message_after_prologue(r, pl, ctx);
  return out;
}

// ----------------------------------------------------------- certificates

std::vector<std::uint8_t> serialize_certificate(const crypto::Certificate& c,
                                                const WireContext& ctx) {
  std::vector<std::uint8_t> out;
  put_u32(out, kWireMagic);
  put_u16(out, kWireVersion);
  put_u16(out, 0);
  put_certificate(out, c, ctx);
  return out;
}

crypto::Certificate parse_certificate(const std::uint8_t* data,
                                      std::size_t size,
                                      const WireContext& ctx) {
  if (size > kMaxWireFrame) {
    throw WireError("certificate blob of " + std::to_string(size) +
                        " bytes exceeds the " +
                        std::to_string(kMaxWireFrame) + "-byte cap",
                    0);
  }
  Reader r(data, size, "certificate");
  {
    const std::size_t at = r.offset();
    if (r.u32() != kWireMagic) {
      throw WireError(std::string("certificate: bad magic at offset ") +
                          std::to_string(at),
                      at);
    }
  }
  {
    const std::size_t at = r.offset();
    const std::uint16_t version = r.u16();
    if (version > kWireVersion || version < kWireMinVersion) {
      throw WireError("certificate: unsupported version " +
                          std::to_string(version) + " at offset " +
                          std::to_string(at),
                      at);
    }
  }
  {
    const std::size_t at = r.offset();
    if (r.u16() != 0) {
      throw WireError("certificate: nonzero flags at offset " +
                          std::to_string(at),
                      at);
    }
  }
  crypto::Certificate c = get_certificate(r, ctx);
  r.expect_consumed();
  return c;
}

// ----------------------------------------------------------------- framing

void append_stream_frame(std::vector<std::uint8_t>& stream,
                         const std::uint8_t* payload, std::size_t size) {
  if (size > kMaxWireFrame) {
    throw WireError("frame of " + std::to_string(size) +
                        " bytes exceeds the " +
                        std::to_string(kMaxWireFrame) + "-byte cap",
                    0);
  }
  put_u32(stream, static_cast<std::uint32_t>(size));
  stream.insert(stream.end(), payload, payload + size);
}

bool extract_stream_frame(std::vector<std::uint8_t>& stream,
                          std::vector<std::uint8_t>& frame,
                          std::size_t max_frame) {
  if (stream.size() < 4) return false;
  std::uint32_t len = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(stream[i]) << (8 * i);
  }
  if (len > max_frame) {
    throw WireError("stream announces a " + std::to_string(len) +
                        "-byte frame, over the " + std::to_string(max_frame) +
                        "-byte cap",
                    0);
  }
  if (stream.size() < 4 + static_cast<std::size_t>(len)) return false;
  frame.assign(stream.begin() + 4, stream.begin() + 4 + len);
  stream.erase(stream.begin(), stream.begin() + 4 + len);
  return true;
}

}  // namespace xcp::net
