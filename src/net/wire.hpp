#pragma once
// Versioned, endianness-stable binary wire format for every protocol
// message, so the same protocol actors can run over real sockets in
// separate processes as well as in-sim (net/transport.hpp is the seam).
//
// Layout follows the production-consensus idiom (fixed-width little-endian
// fields, uint8 message-type enums, versioned headers, participation
// bitmaps for quorum certificates) and the framing idiom exp/shard.cpp
// already established in-repo (magic + version header, typed WireError on
// anything malformed). Design rules:
//
//  - Every multi-byte integer is little-endian at a fixed width.
//  - A frame starts with magic "XCPM", u16 version, u16 flags (must be 0).
//  - The message kind is a uint8 `WireKind` sharing the `net::MsgKind` id
//    space (bijective with the well-known kinds; ad-hoc kinds are not
//    wire-addressable by design — the wire surface is the protocol, not
//    arbitrary trace tags).
//  - Quorum certificates encode their signers as a committee participation
//    bitmap (u64, indexed by roster position) when a roster is supplied in
//    the WireContext and every signer is a member; otherwise an explicit
//    (signer, mac) list. Both forms parse with either context.
//  - Parsers are total and defensive: truncated, corrupt, over-long,
//    version-bumped, unknown-tag and trailing-byte input all raise
//    net::WireError (with the byte offset and what was being decoded) —
//    never UB, never partially-applied state.
//
// docs/WIRE.md carries the full grammar, versioning rules and rejection
// taxonomy.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/certificate.hpp"
#include "net/message.hpp"

namespace xcp::net {

/// Typed parse/validation failure. Mirrors the diagnostic shape of
/// exp::WireError: the what() string always names the decode context and
/// the byte offset where decoding failed, e.g.
///   "protocol wire: truncated VoteMsg: need 8 byte(s) at offset 23, 2 left"
class WireError : public std::runtime_error {
 public:
  WireError(const std::string& what, std::size_t offset)
      : std::runtime_error("protocol wire: " + what), offset_(offset) {}

  /// Byte offset into the frame at which decoding failed.
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_ = 0;
};

// --------------------------------------------------------------- constants

inline constexpr std::uint32_t kWireMagic = 0x4d504358u;  // "XCPM" LE
inline constexpr std::uint16_t kWireVersion = 1;
/// Oldest version this parser still accepts.
inline constexpr std::uint16_t kWireMinVersion = 1;

/// Hard cap on any single frame; parsers and the stream framer both
/// enforce it (a hostile peer cannot make us buffer unbounded input).
inline constexpr std::size_t kMaxWireFrame = std::size_t{1} << 20;  // 1 MiB

// ------------------------------------------------------------------- kinds

/// uint8 message-kind tags, bijective with the well-known net::MsgKind
/// values (net/msg_kind.hpp). Values are wire ABI: never renumber, only
/// append. 0 is reserved invalid; >= kControlBase are transport-internal
/// control frames that never carry a protocol body.
enum class WireKind : std::uint8_t {
  kInvalid = 0,
  kPromiseG = 1,     // "G"
  kPromiseP = 2,     // "P"
  kMoney = 3,        // "$"
  kChi = 4,          // "chi"
  kTx = 5,           // "tx"
  kChainEvent = 6,   // "chain_event"
  kTmChi = 7,        // "tm_chi"
  kTmReport = 8,     // "tm_report"
  kTmCert = 9,       // "tm_cert"
  kDeposit = 10,     // "deposit"
  kFunded = 11,      // "funded"
  kClaim = 12,       // "claim"
  kProof = 13,       // "proof"
  kBftProposal = 14, // "bft_proposal"
  kBftVote = 15,     // "bft_vote"
  kBftNewRound = 16, // "bft_newround"
  kBftDecision = 17, // "bft_decision"
  // -- transport control (socket_transport.cpp), no protocol body --
  kHello = 240,      // peer handshake: a = node id, b = status word (the
                     // sender's journaled protocol state; 0 from peers that
                     // predate crash recovery — see docs/WIRE.md)
  kHeartbeat = 241,  // liveness beacon: a = sequence number
  kCatchUp = 242,    // state-transfer request from a rejoining node:
                     // a = consensus instance (deal id), b = requester's
                     // status word; the receiver answers with protocol
                     // frames (decision certificates), not a control reply
};

inline constexpr std::uint8_t kControlBase = 240;

// Hello / CatchUp status word (control field `b`): bits 0-7 hold the
// sender's journaled protocol tier — 0 fresh, 1 voted (journal holds a
// prevote or precommit), 2 decided — and bit 8 marks a node that restored
// state from its journal this life. Peers that predate crash recovery send
// 0, which decodes as a fresh, non-recovered node; upper bits are reserved
// and must be ignored on read. See docs/WIRE.md.
inline constexpr std::uint64_t kHelloStatusRecovered = std::uint64_t{1} << 8;

inline constexpr std::uint64_t hello_status_word(std::uint32_t tier,
                                                 bool recovered) {
  return (tier & 0xffu) | (recovered ? kHelloStatusRecovered : 0);
}
inline constexpr std::uint32_t hello_status_tier(std::uint64_t word) {
  return static_cast<std::uint32_t>(word & 0xffu);
}
inline constexpr bool hello_status_recovered(std::uint64_t word) {
  return (word & kHelloStatusRecovered) != 0;
}

/// uint8 body-type tags. A frame's body tag is independent of its kind tag
/// (the same body type travels under several kinds, e.g. CertMsg under
/// "chi", "tm_chi" and "tm_cert"). 0 = no body. Values are wire ABI.
enum class WireBody : std::uint8_t {
  kNone = 0,
  kPromiseG = 1,
  kPromiseP = 2,
  kMoney = 3,
  kCert = 4,
  kReport = 5,
  kProposal = 6,
  kVote = 7,
  kNewRound = 8,
  kDecision = 9,
  kTx = 10,
  kChainEvent = 11,
};

/// Maps a MsgKind to its wire tag; WireKind::kInvalid when the kind has no
/// wire representation (ad-hoc trace tags).
WireKind wire_kind_of(MsgKind kind);

/// Maps a wire tag back to the interned MsgKind. Throws WireError for
/// invalid/unknown/control tags (control frames are not protocol messages).
MsgKind msg_kind_of(WireKind w, std::size_t offset = 0);

// ----------------------------------------------------------------- context

/// Optional committee roster context. When present (and the roster has at
/// most 64 members, the bitmap width), quorum certificates whose signers
/// are all roster members serialize as a participation bitmap + macs in
/// roster order; parsing a bitmap-form certificate requires the same
/// roster. Both sides of a deployment derive the roster from the same
/// deal configuration, so the forms interoperate by construction.
struct WireContext {
  const std::vector<sim::ProcessId>* roster = nullptr;
};

// --------------------------------------------------------------- messages

/// Serializes a protocol message (header + body) into `out` (appended).
/// Throws WireError if the message kind has no wire tag or the body type
/// is not serializable.
void serialize_message(const Message& m, std::vector<std::uint8_t>& out,
                       const WireContext& ctx = {});
std::vector<std::uint8_t> serialize_message(const Message& m,
                                            const WireContext& ctx = {});

/// Parses one complete frame. Rejects control frames (they are transport
/// internals); every malformed input throws WireError. The returned
/// message's id is the sender's id (transports re-stamp on injection).
Message parse_message(const std::uint8_t* data, std::size_t size,
                      const WireContext& ctx = {});
inline Message parse_message(const std::vector<std::uint8_t>& buf,
                             const WireContext& ctx = {}) {
  return parse_message(buf.data(), buf.size(), ctx);
}

// ---------------------------------------------------------------- control

/// A transport-internal control frame (hello / heartbeat).
struct ControlFrame {
  WireKind kind = WireKind::kInvalid;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

void serialize_control(const ControlFrame& f, std::vector<std::uint8_t>& out);

/// Decodes a frame that must be a control frame (the inverse of
/// serialize_control); throws WireError when the bytes carry a protocol
/// message instead. Transport code that accepts either uses parse_frame.
ControlFrame parse_control(const std::uint8_t* data, std::size_t size);
inline ControlFrame parse_control(const std::vector<std::uint8_t>& buf) {
  return parse_control(buf.data(), buf.size());
}

/// Result of parsing an arbitrary inbound frame: exactly one of `control`
/// (kind != kInvalid) or `message` is meaningful.
struct ParsedFrame {
  ControlFrame control;  // control.kind == kInvalid => protocol message
  Message message;
  bool is_control() const { return control.kind != WireKind::kInvalid; }
};

ParsedFrame parse_frame(const std::uint8_t* data, std::size_t size,
                        const WireContext& ctx = {});

// ----------------------------------------------------------- certificates

/// Standalone certificate blob (same encoding as embedded in messages,
/// with the versioned header). Used by tools to export/verify decisions.
std::vector<std::uint8_t> serialize_certificate(const crypto::Certificate& c,
                                                const WireContext& ctx = {});
crypto::Certificate parse_certificate(const std::uint8_t* data,
                                      std::size_t size,
                                      const WireContext& ctx = {});
inline crypto::Certificate parse_certificate(
    const std::vector<std::uint8_t>& buf, const WireContext& ctx = {}) {
  return parse_certificate(buf.data(), buf.size(), ctx);
}

// ----------------------------------------------------------------- framing

/// Appends a length-prefixed frame (u32 LE length, then payload) to a
/// stream buffer. Throws WireError if payload exceeds kMaxWireFrame.
void append_stream_frame(std::vector<std::uint8_t>& stream,
                         const std::uint8_t* payload, std::size_t size);

/// Extracts the next complete frame from the front of `stream`, erasing
/// the consumed bytes. Returns false when the buffer holds only a partial
/// frame. Throws WireError when the announced length exceeds `max_frame`
/// (stream is poisoned; callers drop the connection).
bool extract_stream_frame(std::vector<std::uint8_t>& stream,
                          std::vector<std::uint8_t>& frame,
                          std::size_t max_frame = kMaxWireFrame);

}  // namespace xcp::net
