#include "net/network.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace xcp::net {

Network& Actor::net() const {
  XCP_REQUIRE(net_ != nullptr, "actor not attached to a network");
  return *net_;
}

void Actor::send(sim::ProcessId to, MsgKind kind, BodyPtr body) {
  net().send(id(), to, kind, std::move(body));
}

Network::Network(sim::Simulator& sim, std::unique_ptr<DelayModel> model,
                 props::TraceRecorder* trace)
    : sim_(sim), model_(std::move(model)), trace_(trace), rng_(sim.rng().fork()) {
  XCP_REQUIRE(model_ != nullptr, "network needs a delay model");
}

void Network::attach(Actor& actor) {
  XCP_REQUIRE(actor.id().valid(), "attach before spawning");
  actor.net_ = this;
  const std::uint32_t v = actor.id().value();
  if (v >= actors_.size()) actors_.resize(v + 1);
  actors_[v].actor = &actor;
}

void Network::send(sim::ProcessId from, sim::ProcessId to, MsgKind kind,
                   BodyPtr body) {
  Message m;
  m.id = next_message_id_++;
  m.from = from;
  m.to = to;
  m.kind = kind;
  m.body = std::move(body);

  const TimePoint now = sim_.now();
  ++stats_.messages_sent;

  if (trace_) {
    props::TraceEvent e;
    e.kind = props::EventKind::kSend;
    e.at = now;
    e.local_at = sim_.process(from).local_now();
    e.actor = from;
    e.peer = to;
    e.label = props::Label::from_wire(m.kind.value());
    trace_->record(e);
  }

  // Seam: a send to an id not attached here leaves the process through the
  // gateway transport (when installed). The kSend trace record above still
  // fires — the local trace keeps the send — but the local loss model and
  // delay model do not apply; the remote link is real. Without a gateway
  // the message takes the historical path (scheduled, dropped at delivery).
  if (gateway_ != nullptr) {
    ActorEntry* dest = entry_for(to);
    if (dest == nullptr || dest->actor == nullptr) {
      ++stats_.messages_gatewayed;
      gateway_->send(m);
      return;
    }
  }

  if (drop_probability_ > 0.0 && rng_.next_bool(drop_probability_)) {
    ++stats_.messages_dropped;
    if (trace_) {
      props::TraceEvent e;
      e.kind = props::EventKind::kDrop;
      e.at = now;
      e.local_at = now;
      e.actor = from;
      e.peer = to;
      e.label = props::Label::from_wire(m.kind.value());
      trace_->record(e);
    }
    return;
  }

  // Delivery time: adversary proposal (if any) clamped into the synchrony
  // model's legal envelope; otherwise the model's own sample.
  TimePoint deliver_at = now + model_->sample(m, now, rng_);
  if (adversary_ != nullptr) {
    if (auto proposal = adversary_->propose_delivery(m, now)) {
      deliver_at = *proposal;
    }
  }
  const TimePoint latest = model_->latest_delivery(m, now);
  deliver_at = std::clamp(deliver_at, now, latest);

  // Batched delivery: coalesce same-(destination, instant) messages into
  // one event. The first message opens a batch and schedules its event;
  // later sends resolving to the same instant append for free. Committee
  // broadcasts under a fixed-delay model and adversarial hold-until
  // releases collapse from m events to one.
  ActorEntry* found = batching_ ? entry_for(to) : nullptr;
  if (found == nullptr || found->actor == nullptr) {
    // Unattached destination (dropped at delivery, as before) or batching
    // off: the PR-1 one-event-per-message path.
    sim_.schedule_at(deliver_at, [this, m = std::move(m)] { deliver(m); });
    return;
  }
  ActorEntry& entry = *found;
  if (entry.open_batch == kNoBatch || entry.open_at != deliver_at) {
    const std::uint32_t bi = acquire_batch();
    batches_[bi].to = to;
    batches_[bi].at = deliver_at;
    entry.open_batch = bi;
    entry.open_at = deliver_at;
    sim_.schedule_at(deliver_at, [this, bi] { deliver_batch(bi); });
  }
  batches_[entry.open_batch].msgs.push_back(std::move(m));
}

void Network::inject(Message m) {
  m.id = next_message_id_++;
  ++stats_.messages_injected;
  sim_.schedule_at(sim_.now(), [this, m = std::move(m)] { deliver(m); });
}

std::uint32_t Network::acquire_batch() {
  if (free_batch_ != kNoBatch) {
    const std::uint32_t bi = free_batch_;
    free_batch_ = batches_[bi].next_free;
    return bi;
  }
  batches_.emplace_back();
  return static_cast<std::uint32_t>(batches_.size() - 1);
}

void Network::record_deliver(const Message& m, TimePoint local_at) {
  ++stats_.messages_delivered;
  if (trace_) {
    props::TraceEvent e;
    e.kind = props::EventKind::kDeliver;
    e.at = sim_.now();
    e.local_at = local_at;
    e.actor = m.to;
    e.peer = m.from;
    e.label = props::Label::from_wire(m.kind.value());
    trace_->record(e);
  }
}

void Network::deliver(Message m) {
  ActorEntry* entry = entry_for(m.to);
  if (entry == nullptr || entry->actor == nullptr) {
    ++stats_.messages_dropped;
    return;
  }
  Actor& actor = *entry->actor;
  record_deliver(m, actor.local_now());
  actor.on_message(m);
}

void Network::deliver_batch(std::uint32_t batch_idx) {
  // Close the batch *before* delivering: a handler may send to this same
  // destination at this same instant, which must open a fresh batch (and a
  // fresh event) rather than append to the one being drained. The messages
  // are moved out because handlers can grow batches_ (invalidating
  // references) while we iterate.
  const sim::ProcessId to = batches_[batch_idx].to;
  if (ActorEntry* entry = entry_for(to);
      entry != nullptr && entry->open_batch == batch_idx) {
    entry->open_batch = kNoBatch;
  }
  std::vector<Message> msgs = std::move(batches_[batch_idx].msgs);
  for (Message& m : msgs) {
    // Re-resolve per message: a handler's attach() may grow actors_,
    // invalidating entry pointers mid-loop.
    ActorEntry* entry = entry_for(to);
    Actor* actor = entry == nullptr ? nullptr : entry->actor;
    if (actor == nullptr) {
      ++stats_.messages_dropped;
      continue;
    }
    record_deliver(m, actor->local_now());
    actor->on_message(m);
  }
  // Return the (cleared, capacity-preserving) vector and batch to the slab.
  msgs.clear();
  batches_[batch_idx].msgs = std::move(msgs);
  batches_[batch_idx].next_free = free_batch_;
  free_batch_ = batch_idx;
}

}  // namespace xcp::net
