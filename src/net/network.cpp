#include "net/network.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace xcp::net {

Network& Actor::net() const {
  XCP_REQUIRE(net_ != nullptr, "actor not attached to a network");
  return *net_;
}

void Actor::send(sim::ProcessId to, MsgKind kind, BodyPtr body) {
  net().send(id(), to, kind, std::move(body));
}

Network::Network(sim::Simulator& sim, std::unique_ptr<DelayModel> model,
                 props::TraceRecorder* trace)
    : sim_(sim), model_(std::move(model)), trace_(trace), rng_(sim.rng().fork()) {
  XCP_REQUIRE(model_ != nullptr, "network needs a delay model");
}

void Network::attach(Actor& actor) {
  XCP_REQUIRE(actor.id().valid(), "attach before spawning");
  actor.net_ = this;
  actors_[actor.id()] = &actor;
}

void Network::send(sim::ProcessId from, sim::ProcessId to, MsgKind kind,
                   BodyPtr body) {
  Message m;
  m.id = next_message_id_++;
  m.from = from;
  m.to = to;
  m.kind = kind;
  m.body = std::move(body);

  const TimePoint now = sim_.now();
  ++stats_.messages_sent;

  if (trace_) {
    props::TraceEvent e;
    e.kind = props::EventKind::kSend;
    e.at = now;
    e.local_at = sim_.process(from).local_now();
    e.actor = from;
    e.peer = to;
    e.label = m.kind.str();
    trace_->record(e);
  }

  if (drop_probability_ > 0.0 && rng_.next_bool(drop_probability_)) {
    ++stats_.messages_dropped;
    if (trace_) {
      props::TraceEvent e;
      e.kind = props::EventKind::kDrop;
      e.at = now;
      e.local_at = now;
      e.actor = from;
      e.peer = to;
      e.label = m.kind.str();
      trace_->record(e);
    }
    return;
  }

  // Delivery time: adversary proposal (if any) clamped into the synchrony
  // model's legal envelope; otherwise the model's own sample.
  TimePoint deliver_at = now + model_->sample(m, now, rng_);
  if (adversary_ != nullptr) {
    if (auto proposal = adversary_->propose_delivery(m, now)) {
      deliver_at = *proposal;
    }
  }
  const TimePoint latest = model_->latest_delivery(m, now);
  deliver_at = std::clamp(deliver_at, now, latest);

  sim_.schedule_at(deliver_at, [this, m = std::move(m)] { deliver(m); });
}

void Network::deliver(Message m) {
  auto it = actors_.find(m.to);
  if (it == actors_.end()) {
    ++stats_.messages_dropped;
    return;
  }
  ++stats_.messages_delivered;
  if (trace_) {
    props::TraceEvent e;
    e.kind = props::EventKind::kDeliver;
    e.at = sim_.now();
    e.local_at = it->second->local_now();
    e.actor = m.to;
    e.peer = m.from;
    e.label = m.kind.str();
    trace_->record(e);
  }
  it->second->on_message(m);
}

}  // namespace xcp::net
