#pragma once
// The transport seam: where a message leaves the local process.
//
// Protocol actors always talk to their Network; the Network routes each
// send either to a locally-attached actor (in-sim delivery, delay model,
// adversary — unchanged) or, when the destination id is not attached and a
// gateway transport is installed, to the Transport backend. Two backends
// exist:
//
//  - SimTransport (below): delegates straight back to a Network, used to
//    differential-test the seam itself — a run through SimTransport must
//    be indistinguishable from direct delivery.
//  - SocketTransport (net/socket_transport.hpp): real sockets between
//    processes, with framing, reconnect and heartbeat supervision.
//
// A Network with no gateway behaves exactly as before this seam existed
// (sends to unattached ids are dropped), so in-sim traces are bit-identical.

#include "net/network.hpp"

namespace xcp::net {

/// In-sim backend: hands the message to (another) Network for virtual-time
/// delivery. `send` re-enters Network::send, so delay model, adversary,
/// tracing and batching all apply as if the actor had sent directly.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(Network& net) : net_(net) {}

  void send(const Message& m) override {
    net_.send(m.from, m.to, m.kind, m.body);
  }

 private:
  Network& net_;
};

}  // namespace xcp::net
