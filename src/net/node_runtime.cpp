#include "net/node_runtime.hpp"

#include <algorithm>

namespace xcp::net {

namespace {
// Upper bound on one transport pump: keeps the loop responsive to virtual
// timers even when the next pending event is far away, and bounds how
// stale the heartbeat/death bookkeeping can get.
constexpr std::chrono::milliseconds kMaxPump{5};
}  // namespace

NodeRuntime::NodeRuntime(sim::Simulator& sim, Network& network,
                         SocketTransport& transport)
    : sim_(sim), network_(network), transport_(transport) {
  network_.set_gateway(&transport_);
  transport_.set_receive_handler(
      [this](Message&& m) { network_.inject(std::move(m)); });
}

void NodeRuntime::set_clock(WallClock clock) { clock_ = std::move(clock); }

std::chrono::steady_clock::time_point NodeRuntime::wall_now() const {
  // xcp-lint: allow(determinism-wall-clock) this IS the injectable seam:
  // the one sanctioned real-clock read, overridden via set_clock in tests.
  return clock_ ? clock_() : std::chrono::steady_clock::now();
}

void NodeRuntime::advance_to_wall() {
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      wall_now() - wall_origin_);
  // A wall clock that jumped far ahead (suspend/resume, NTP step, a
  // debugger pause) is absorbed as one run_until: the simulator delivers
  // every event between the old and new instants in order, so missed ticks
  // are processed, never skipped — and never re-polled one by one.
  sim_.run_until(virtual_origin_ +
                 Duration::micros(std::max<std::int64_t>(0, elapsed.count())));
}

bool NodeRuntime::run(Millis wall_limit, const std::function<bool()>& done) {
  if (!started_) {
    wall_origin_ = wall_now();
    virtual_origin_ = sim_.now();
    started_ = true;
  }
  const auto deadline = wall_now() + wall_limit;
  for (;;) {
    advance_to_wall();
    if (done()) return true;
    const auto now = wall_now();
    if (now >= deadline) return false;

    // Sleep inside poll() until the next virtual event is due, capped so
    // inbound traffic and supervision stay fresh.
    Millis wait = kMaxPump;
    if (auto next = sim_.next_event_time()) {
      const std::int64_t gap_us =
          next->count() -
          (virtual_origin_ +
           Duration::micros(std::chrono::duration_cast<
                                std::chrono::microseconds>(now - wall_origin_)
                                .count()))
              .count();
      wait = std::clamp(Millis(gap_us / 1000), Millis(0), kMaxPump);
    }
    wait = std::min(
        wait, std::chrono::duration_cast<Millis>(deadline - now) + Millis(1));
    transport_.pump(wait);
  }
}

void NodeRuntime::linger(Millis extra) {
  const auto until = wall_now() + extra;
  while (wall_now() < until) {
    advance_to_wall();
    transport_.pump(kMaxPump);
  }
  advance_to_wall();
}

}  // namespace xcp::net
