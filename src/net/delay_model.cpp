#include "net/delay_model.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace xcp::net {

namespace {

/// The deterministic-delay preset's model: a fixed delta, no RNG draw per
/// message (a SynchronousModel with delta_min == delta_max would sample —
/// and consume — a random number anyway).
class FixedDelayModel final : public DelayModel {
 public:
  explicit FixedDelayModel(Duration delta) : delta_(delta) {
    XCP_REQUIRE(delta >= Duration::zero(), "negative fixed delay");
  }

  Duration sample(const Message&, TimePoint, Rng&) override { return delta_; }
  TimePoint latest_delivery(const Message&, TimePoint now) const override {
    return now + delta_;
  }
  std::optional<Duration> known_bound() const override { return delta_; }

 private:
  Duration delta_;
};

}  // namespace

std::unique_ptr<DelayModel> DelayModel::synchronous(Duration delta) {
  return std::make_unique<FixedDelayModel>(delta);
}

SynchronousModel::SynchronousModel(Duration delta_min, Duration delta_max)
    : delta_min_(delta_min), delta_max_(delta_max) {
  XCP_REQUIRE(Duration::zero() <= delta_min && delta_min <= delta_max,
              "need 0 <= delta_min <= delta_max");
}

Duration SynchronousModel::sample(const Message&, TimePoint, Rng& rng) {
  return rng.next_duration(delta_min_, delta_max_);
}

TimePoint SynchronousModel::latest_delivery(const Message&, TimePoint now) const {
  return now + delta_max_;
}

PartialSynchronyModel::PartialSynchronyModel(TimePoint gst, Duration delta,
                                             Duration pre_gst_typical)
    : gst_(gst), delta_(delta), pre_gst_typical_(pre_gst_typical) {
  XCP_REQUIRE(delta > Duration::zero(), "delta must be positive");
}

Duration PartialSynchronyModel::sample(const Message& m, TimePoint now, Rng& rng) {
  if (now >= gst_) {
    return rng.next_duration(Duration::micros(1), delta_);
  }
  // Before GST: erratic by default, but still within the legal envelope.
  const Duration erratic =
      rng.next_duration(Duration::micros(1), pre_gst_typical_);
  const TimePoint latest = latest_delivery(m, now);
  return std::min(erratic, latest - now);
}

TimePoint PartialSynchronyModel::latest_delivery(const Message&, TimePoint now) const {
  // DLS guarantee: delivered by max(send, GST) + delta.
  return std::max(now, gst_) + delta_;
}

AsynchronousModel::AsynchronousModel(Duration typical, Duration cap)
    : typical_(typical), cap_(cap) {
  XCP_REQUIRE(Duration::zero() < typical && typical <= cap,
              "need 0 < typical <= cap");
}

Duration AsynchronousModel::sample(const Message&, TimePoint, Rng& rng) {
  // Geometric layering: with prob 1/2 the delay doubles, capped. This gives
  // an unbounded-looking tail while keeping runs finite.
  Duration d = rng.next_duration(Duration::micros(1), typical_);
  while (d < cap_ && rng.next_bool(0.5)) {
    d = std::min(cap_, d * 2);
  }
  return d;
}

TimePoint AsynchronousModel::latest_delivery(const Message&, TimePoint now) const {
  return now + cap_;  // finite (so simulations terminate) but huge/unknown
}

}  // namespace xcp::net
