#pragma once
// Write-ahead journal for committee nodes: every protocol state transition
// that must survive a crash — prevotes and precommits emitted, decisions
// reached (with their quorum certificate) — is appended and fsync'd here
// BEFORE the corresponding message leaves the process. On restart the
// journal is replayed (net/wal.cpp recovery scan) and the notary refuses to
// equivocate against anything it already journaled (amnesia-safety;
// consensus/notary.hpp `restore`).
//
// File layout, following the wire-format idiom (wire.hpp: fixed-width LE
// fields, versioned magic header, CRC framing, total defensive parsers):
//
//   header   u32 magic "XCPJ" | u16 version | u16 flags(=0) | u64 meta
//   record*  u32 payload_len | u32 crc32(payload) | payload
//   payload  u8 kind | u64 instance | u32 round | u8 value
//            | u32 cert_len | cert bytes (wire.hpp certificate blob)
//
// Recovery taxonomy (never UB, mirrors test_wire's rejection discipline):
//  - missing / empty file          -> fresh journal, header written;
//  - partial header                -> treated as a torn creation: truncated
//                                     to empty and re-headered;
//  - bad magic/version/flags       -> WalError: corrupt beyond recovery
//                                     (somebody else's file — refusing to
//                                     truncate it is the safe move);
//  - torn tail (partial record)    -> truncate at the last whole record and
//                                     continue appending;
//  - corrupt record (CRC mismatch,
//    bad kind, oversize, short or
//    over-long payload)            -> same truncate-and-continue: the bad
//                                     record and everything after it is
//                                     dropped (suffix of a torn write).
//
// Compaction: compact() rewrites the journal as header + the given snapshot
// records via support/durable_file.hpp atomic_replace (temp + fsync +
// rename), so a crash mid-compaction leaves the old journal intact.
//
// Crash injection (the recovery harness's torn-write scheduler): WalOptions
// carries a plan that fires on the first append of a matching record kind —
// before the write, after `torn_bytes` of the record, or after the full
// fsync'd write — by invoking `crash` (default: SIGKILL self, giving the
// harness a real in-flight process death).

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/durable_file.hpp"

namespace xcp::net {

/// Journal corruption that recovery must not silently repair (foreign or
/// truncated-to-garbage header). Maps to the journal-corrupt exit code in
/// tools/xcp_node (net/node_exit.hpp).
class WalError : public std::runtime_error {
 public:
  explicit WalError(const std::string& what)
      : std::runtime_error("wal: " + what) {}
};

inline constexpr std::uint32_t kWalMagic = 0x4a504358u;  // "XCPJ" LE
inline constexpr std::uint16_t kWalVersion = 1;
inline constexpr std::size_t kWalHeaderBytes = 16;
/// Hard cap on one record's payload; anything larger is corruption.
inline constexpr std::size_t kMaxWalRecord = std::size_t{1} << 20;  // 1 MiB

/// Record kinds are journal ABI: never renumber, only append.
enum class WalRecordKind : std::uint8_t {
  kInvalid = 0,
  kPrevote = 1,    // prevote emitted: (instance, round, value)
  kPrecommit = 2,  // precommit emitted: (instance, round, value)
  kDecide = 3,     // decision reached: (instance, value, certificate blob)
};

const char* wal_record_kind_name(WalRecordKind k);

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kInvalid;
  std::uint64_t instance = 0;
  std::int32_t round = 0;
  std::uint8_t value = 0;
  /// Wire-encoded quorum certificate (net::serialize_certificate) for
  /// kDecide records; empty otherwise.
  std::vector<std::uint8_t> cert;

  bool operator==(const WalRecord&) const = default;
};

/// What a recovery scan found and did.
struct WalRecoverResult {
  std::vector<WalRecord> records;
  /// Bytes of the file that held the header plus whole valid records.
  std::uint64_t valid_bytes = 0;
  /// Bytes cut from the tail (torn or corrupt suffix).
  std::uint64_t dropped_bytes = 0;
  /// True when the scan truncated anything (torn tail or corrupt record).
  bool truncated = false;
  /// True when the file did not exist / was empty before open().
  bool fresh = false;
};

/// Deterministic crash-injection plan for the restart harness.
struct WalCrashPlan {
  enum class Phase : std::uint8_t {
    kNone = 0,
    kBefore,  // crash before any byte of the record is written
    kTorn,    // crash after `torn_bytes` of the framed record
    kAfter,   // crash after the record is fully written and synced
  };
  WalRecordKind kind = WalRecordKind::kInvalid;
  Phase phase = Phase::kNone;
  /// For kTorn: how many bytes of the framed record reach the file. Clamped
  /// to [1, framed-size-1] so the tail really is torn.
  std::size_t torn_bytes = 6;

  bool armed() const {
    return phase != Phase::kNone && kind != WalRecordKind::kInvalid;
  }
};

struct WalOptions {
  /// fsync after every append (and the header write). Tests that hammer
  /// thousands of appends may disable it; production nodes must not.
  bool sync = true;
  WalCrashPlan crash_plan;
  /// The crash realization; defaults to SIGKILL'ing the own process (set in
  /// wal.cpp). Unit tests substitute a throwing hook to observe torn tails
  /// in-process.
  std::function<void()> crash;
};

/// Encodes one record as it appears in the file (length + CRC + payload) —
/// exposed for tests that hand-craft corruption.
std::vector<std::uint8_t> encode_wal_record(const WalRecord& r);

class WriteAheadLog {
 public:
  explicit WriteAheadLog(std::string path, WalOptions opts = {});

  /// Opens (creating if missing), scans, and truncates any torn/corrupt
  /// tail so the file ends on a record boundary. Throws WalError only for
  /// corruption that must not be silently repaired (foreign magic, future
  /// version, nonzero flags).
  WalRecoverResult open();

  /// Appends one record, honouring the crash plan, and fsyncs (WalOptions::
  /// sync). The journal must be open.
  void append(const WalRecord& r);

  /// Atomically replaces the journal with header + `snapshot` (temp-file +
  /// rename). The open append handle is re-pointed at the new file.
  void compact(const std::vector<WalRecord>& snapshot);

  const std::string& path() const { return path_; }
  bool is_open() const { return file_.is_open(); }
  void close() { file_.close(); }

  /// Recovery scan over raw bytes (no file side effects) — the post-run
  /// journal auditors in the tests use this directly.
  static WalRecoverResult scan(const std::vector<std::uint8_t>& bytes);

 private:
  void write_header();

  std::string path_;
  WalOptions opts_;
  AppendFile file_;
  bool crash_fired_ = false;
};

}  // namespace xcp::net
