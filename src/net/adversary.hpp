#pragma once
// Network adversaries: control over message *timing* within the synchrony
// model's legal envelope. This is the tool the impossibility argument of
// Theorem 2 wields — e.g. holding the certificate chi in flight just past an
// escrow's acceptance deadline while every delivery still respects the
// partially-synchronous contract.
//
// The adversary proposes delivery times; the Network clamps each proposal to
// DelayModel::latest_delivery, so no adversary can break synchrony itself.

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "support/time.hpp"

namespace xcp::net {

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Returns the adversary's proposed delivery time for `m` sent at `now`,
  /// or nullopt to accept the model's default sample.
  virtual std::optional<TimePoint> propose_delivery(const Message& m,
                                                    TimePoint now) = 0;
};

/// Declarative targeted-delay rules, sufficient for all experiments:
/// "delay every message matching PRED until time T / by duration D".
class RuleBasedAdversary final : public Adversary {
 public:
  using Predicate = std::function<bool(const Message&)>;

  /// Messages matching `pred` are held until at least `release_at`.
  void hold_until(Predicate pred, TimePoint release_at);

  /// Messages matching `pred` take an extra `extra` beyond the send time.
  void delay_by(Predicate pred, Duration extra);

  std::optional<TimePoint> propose_delivery(const Message& m,
                                            TimePoint now) override;

  // Common predicates.
  static Predicate kind_is(MsgKind kind);
  static Predicate to_process(sim::ProcessId pid);
  static Predicate from_process(sim::ProcessId pid);
  static Predicate all_of(std::vector<Predicate> preds);

 private:
  struct Rule {
    Predicate pred;
    std::optional<TimePoint> release_at;
    std::optional<Duration> extra;
  };
  std::vector<Rule> rules_;
};

/// Simulates a network partition: messages across the cut are held until the
/// partition heals. Group membership is a predicate over process ids.
class PartitionAdversary final : public Adversary {
 public:
  PartitionAdversary(std::function<bool(sim::ProcessId)> in_group_a,
                     TimePoint heal_at);

  std::optional<TimePoint> propose_delivery(const Message& m,
                                            TimePoint now) override;

 private:
  std::function<bool(sim::ProcessId)> in_group_a_;
  TimePoint heal_at_;
};

}  // namespace xcp::net
