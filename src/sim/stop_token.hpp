#pragma once
// Cooperative early termination for simulation runs.
//
// A StopToken is a one-way latch the simulator polls between events: once
// requested, Simulator::run/run_until return before popping the next event.
// The requester is typically an online property monitor observing the trace
// stream (props::OnlineMonitor) — the moment a run's verdict is decided,
// draining the remaining queue cannot change any checker-visible outcome,
// so the run stops and the sweep moves to the next seed.
//
// Single-threaded like the simulator itself: a plain bool, no atomics.

#include "support/time.hpp"

namespace xcp::sim {

struct StopToken {
  bool stop_requested = false;
  TimePoint requested_at;  // virtual time of the deciding event

  /// Latches the request; later requests keep the first timestamp.
  void request(TimePoint at) {
    if (!stop_requested) {
      stop_requested = true;
      requested_at = at;
    }
  }

  void reset() {
    stop_requested = false;
    requested_at = TimePoint();
  }
};

}  // namespace xcp::sim
