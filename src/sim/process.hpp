#pragma once
// Simulated processes. A Process is a deterministic reactive object driven by
// the Simulator: it is started once, then receives timer callbacks; derived
// layers (xcp::net::Actor) add message delivery. Each process owns a drifting
// local clock and a forked RNG stream.

#include <cstdint>
#include <functional>
#include <string>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"

namespace xcp::sim {

class Simulator;

/// Identifies a process within one Simulator. Index into the process table.
class ProcessId {
 public:
  constexpr ProcessId() = default;
  constexpr explicit ProcessId(std::uint32_t v) : value_(v) {}
  constexpr std::uint32_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }
  constexpr auto operator<=>(const ProcessId&) const = default;

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t value_ = kInvalid;
};

using TimerId = EventId;

class Process {
 public:
  virtual ~Process() = default;

  ProcessId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Invoked once at simulation start (global time of registration run).
  virtual void on_start() {}

  /// Invoked when a timer set by this process fires. `token` is the value
  /// passed to set_timer_*; it lets one process multiplex several timers.
  virtual void on_timer(std::uint64_t token) { (void)token; }

  /// The process's view of the current time (its drifting local clock).
  TimePoint local_now() const;

  /// True global simulation time; protocol logic must not use this (it is
  /// exposed for tracing and property checking only).
  TimePoint global_now() const;

  const DriftClock& clock() const { return clock_; }

 protected:
  Simulator& sim() const;
  Rng& rng() { return rng_; }

  /// Schedules on_timer(token) at the first instant the *local* clock reads
  /// at least `local_deadline`. Returns a cancellable id.
  TimerId set_timer_local_at(TimePoint local_deadline, std::uint64_t token);

  /// Schedules on_timer(token) after `local_delay` on the local clock.
  TimerId set_timer_local_after(Duration local_delay, std::uint64_t token);

  void cancel_timer(TimerId id);

 private:
  friend class Simulator;
  Simulator* sim_ = nullptr;
  ProcessId id_;
  std::string name_;
  DriftClock clock_;
  Rng rng_{0};
};

}  // namespace xcp::sim

template <>
struct std::hash<xcp::sim::ProcessId> {
  std::size_t operator()(const xcp::sim::ProcessId& p) const noexcept {
    return std::hash<std::uint32_t>()(p.value());
  }
};
