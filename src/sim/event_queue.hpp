#pragma once
// The simulator's event queue: a hierarchical timer wheel in front of a
// slab-backed indexed 4-ary min-heap, ordered by (time, push sequence).
// The sequence number makes simultaneous events execute in schedule order,
// which keeps whole experiments bit-for-bit deterministic.
//
// Two-layer routing, invisible to callers:
//  - events whose expiry lands in an undrained wheel slot within the
//    wheel's ~19h horizon get O(1) schedule and O(1) cancel via the wheel's
//    per-slot bucket arrays (sim/timer_wheel.hpp) — the common path for
//    protocol timeouts, which are re-armed or cancelled far more often than
//    they fire;
//  - everything else (past/imminent times, beyond-horizon times) goes to
//    the heap directly. Just before virtual time reaches a wheel slot, the
//    slot's survivors are drained into the heap, which restores the exact
//    (at, seq) total order — so the pop sequence is identical to a pure
//    heap's, and determinism is unaffected by the routing.
//
// Heap layout is split for cache behaviour on the hot path:
//  - heap_  : 4-ary min-heap of 16-byte trivially-copyable entries that
//             carry their own sort key (at, seq), so sifting never touches
//             the slot slab;
//  - pos_   : slot -> heap position (4 bytes/slot), maintained during sifts
//             so cancel(EventId) can remove an entry in place in O(log n);
//  - slots_ : the recycled slab holding each event's callable and the slot
//             generation, touched only at push/pop/cancel, never during
//             comparisons.
// There are no tombstones: storage never grows with the number of
// cancellations, and live_size() is exact by construction (the old
// lazy-cancel design could make it wrap when stale ids lingered).
// Callables are small-buffer-optimised (InlineCallable<64>), so pushing a
// typical capture-a-few-pointers lambda performs no heap allocation; in
// steady state the queue allocates nothing at all.

#include <bit>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/timer_wheel.hpp"
#include "support/inline_callable.hpp"
#include "support/time.hpp"

namespace xcp::sim {

/// Handle to a scheduled event: slot index in the low 32 bits, slot
/// generation in the high 32. Slot generations start at 1 and bump on every
/// release, so a handle never equals kInvalidEvent and stale handles
/// (fired, cancelled, or slot since reused) are recognised in O(1).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Callable type for scheduled events: 64 bytes of inline storage covers
/// every closure on the simulator's hot paths (message delivery included).
using EventFn = InlineCallable<64>;

class EventQueue {
 public:
  /// `use_timer_wheel = false` forces every event through the heap — the
  /// PR-1 behaviour, kept for A/B benchmarking and differential tests. The
  /// pop sequence is identical either way.
  explicit EventQueue(bool use_timer_wheel = true)
      : wheel_enabled_(use_timer_wheel) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue();

  /// A popped event; moves out of the queue, never copies the callable.
  struct Popped {
    TimePoint at;
    EventFn fn;
  };

  /// Enqueues a callable to run at virtual time `at`, constructing it
  /// directly in its slot (no stack temporary, no move chain). Returns a
  /// cancellable id. An EventFn argument is moved in instead.
  template <typename F>
  EventId push(TimePoint at, F&& fn) {
    const PushTicket t = begin_push(at);
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>) {
      *t.fn = std::forward<F>(fn);  // noexcept move
    } else {
      // The event is already routed under t.id; if constructing the
      // closure throws (throwing capture copy, bad_alloc on the oversize
      // heap fallback), unwind it so the queue never holds an event with
      // an empty callable.
      try {
        // xcp-lint: allow(hotpath-alloc) InlineCallable::emplace constructs
        // in place inside the slab slot; it is not container growth (the
        // oversize heap fallback inside it is the cold, counted path).
        t.fn->emplace(std::forward<F>(fn));
      } catch (...) {
        cancel(t.id);
        throw;
      }
    }
    return t.id;
  }

  /// Removes a live event in place (O(log n)), releasing its slot and
  /// captures immediately. Returns false — a no-op — for already-fired,
  /// already-cancelled or unknown ids.
  bool cancel(EventId id);

  /// True when no live events remain.
  bool empty() const { return heap_.empty() && wheel_.empty(); }

  /// Time of the next live event. Requires !empty(). (Non-const: may drain
  /// due wheel slots into the heap to find the global minimum.)
  TimePoint next_time();

  /// Pops the next live event. Requires !empty().
  Popped pop();

  /// Number of live events; exact (cancellation frees immediately).
  std::size_t live_size() const { return heap_.size() + wheel_.size(); }

  /// Live events currently parked in the timer wheel (not yet drained to
  /// the heap). Observability for tests and benchmarks.
  std::size_t wheel_size() const { return wheel_.size(); }

  /// Slots ever allocated — the high-water mark of concurrently-live
  /// events. Exposed so tests can assert churn does not grow storage.
  std::size_t slab_size() const { return slot_count_; }

 private:
  /// A reserved slot mid-push: the event is already routed (wheel or heap)
  /// under its id; the caller stores the callable through `fn`.
  struct PushTicket {
    EventFn* fn;
    EventId id;
  };

  /// Everything push() does except storing the callable: slot acquisition,
  /// sequence assignment, wheel/heap routing.
  PushTicket begin_push(TimePoint at);

  static constexpr std::uint32_t kNil = 0xffffffffu;
  // pos_ tag for "this slot's event lives in the wheel". The low 31 bits
  // carry the wheel's packed locator (bucket << 22 | position), so a
  // cancel resolves the entry from the same hot 4-bytes-per-slot table it
  // reads for heap positions — no parallel node array. (Packing the
  // locator into the Slot beside gen was measured and rejected: the slot
  // slab's 104-byte stride makes that line the coldest possible locator
  // source, and crowd cancels got ~10% slower than sourcing it from
  // pos_.) Heap positions never reach 2^31, so the top bit discriminates;
  // kNil itself only appears for free slots, whose pos_ threads the slot
  // freelist and is never interpreted as a location.
  static constexpr std::uint32_t kWheelBit = 0x80000000u;

  // 16 bytes: sifting a 100k-event heap moves a third of the bytes the
  // old (time, id, std::function) entries did. `seq` is the low 32 bits of
  // the global push counter; push() guards the 2^32 pushes-per-queue cap.
  struct HeapEntry {
    TimePoint at;
    std::uint32_t seq;  // push order; ties on `at` break by seq
    std::uint32_t slot;
  };
  static_assert(sizeof(TimePoint) == 8);

  struct Slot {
    std::uint32_t gen = 1;  // bumped on release; stale ids never match
    EventFn fn;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  static constexpr std::size_t children_of(std::size_t i) { return 4 * i + 1; }
  static constexpr std::size_t parent_of(std::size_t i) { return (i - 1) / 4; }

  void place(std::size_t pos, const HeapEntry& e);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  std::uint32_t acquire_slot();
  void release_slot(Slot& s, std::uint32_t idx);
  void remove_at(std::size_t pos);
  void push_heap_entry(const HeapEntry& e);
  /// Drains every wheel slot due at or before the heap's head time, so the
  /// heap head is the global minimum.
  void sync_wheel();

  // The slab is chunked so growth never moves a live Slot (vector
  // reallocation would relocate every callable through an indirect call).
  // Chunk c holds 64 << c slots, so a simulator with a handful of pending
  // events pays for a 64-slot chunk, not a fixed large one, while big
  // workloads still reach their high-water mark in ~log2 allocations.
  // Chunks are raw storage; a Slot is placement-constructed the first time
  // its index is handed out (indices are dense: 0..slot_count_-1) and
  // destroyed by ~EventQueue. Addresses stay stable for the queue's
  // lifetime. Chunk pointers live in a flat in-object array (not a vector
  // of unique_ptr): slot() runs several times per schedule/cancel pair and
  // a single data-dependent load off `this` keeps it to ~1 ns.
  static constexpr std::uint32_t kFirstChunkShift = 6;  // 64 slots
  // 26 chunks of 64 << c slots exhaust the 32-bit slot index space.
  static constexpr std::size_t kMaxChunks = 26;

  Slot& slot(std::uint32_t idx) {
    const std::uint32_t t = (idx >> kFirstChunkShift) + 1;
    const int c = std::bit_width(t) - 1;
    const std::uint32_t base =
        ((1u << c) - 1u) << kFirstChunkShift;  // slots before chunk c
    return chunks_[static_cast<std::size_t>(c)][idx - base];
  }
  const Slot& slot(std::uint32_t idx) const {
    return const_cast<EventQueue*>(this)->slot(idx);
  }

  std::vector<HeapEntry> heap_;     // 4-ary min-heap, keys inline
  std::vector<std::uint32_t> pos_;  // slot -> heap pos | wheel locator tag
  TimerWheel wheel_;                // O(1) front end for future timeouts
  Slot* chunks_[kMaxChunks] = {};   // recycled slab of callables (owned)
  std::uint32_t chunk_count_ = 0;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNil;
  std::uint64_t next_seq_ = 1;
  bool wheel_enabled_ = true;
};

}  // namespace xcp::sim
