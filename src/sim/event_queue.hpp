#pragma once
// The simulator's event queue: a slab-backed indexed 4-ary min-heap ordered
// by (time, push sequence). The sequence number makes simultaneous events
// execute in schedule order, which keeps whole experiments bit-for-bit
// deterministic.
//
// Layout is split for cache behaviour on the hot path:
//  - heap_  : 4-ary min-heap of 16-byte trivially-copyable entries that
//             carry their own sort key (at, seq), so sifting never touches
//             the slot slab;
//  - pos_   : slot -> heap position (4 bytes/slot), maintained during sifts
//             so cancel(EventId) can remove an entry in place in O(log n);
//  - slots_ : the recycled slab holding each event's callable and the slot
//             generation, touched only at push/pop/cancel, never during
//             comparisons.
// There are no tombstones: storage never grows with the number of
// cancellations, and live_size() is exact by construction (the old
// lazy-cancel design could make it wrap when stale ids lingered).
// Callables are small-buffer-optimised (InlineCallable<64>), so pushing a
// typical capture-a-few-pointers lambda performs no heap allocation; in
// steady state the queue allocates nothing at all.

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/inline_callable.hpp"
#include "support/time.hpp"

namespace xcp::sim {

/// Handle to a scheduled event: slot index in the low 32 bits, slot
/// generation in the high 32. Slot generations start at 1 and bump on every
/// release, so a handle never equals kInvalidEvent and stale handles
/// (fired, cancelled, or slot since reused) are recognised in O(1).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Callable type for scheduled events: 64 bytes of inline storage covers
/// every closure on the simulator's hot paths (message delivery included).
using EventFn = InlineCallable<64>;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue();

  /// A popped event; moves out of the queue, never copies the callable.
  struct Popped {
    TimePoint at;
    EventFn fn;
  };

  /// Enqueues `fn` to run at virtual time `at`. Returns a cancellable id.
  EventId push(TimePoint at, EventFn fn);

  /// Removes a live event in place (O(log n)), releasing its slot and
  /// captures immediately. Returns false — a no-op — for already-fired,
  /// already-cancelled or unknown ids.
  bool cancel(EventId id);

  /// True when no live events remain.
  bool empty() const { return heap_.empty(); }

  /// Time of the next live event. Requires !empty().
  TimePoint next_time() const;

  /// Pops the next live event. Requires !empty().
  Popped pop();

  /// Number of live events; exact (cancellation frees immediately).
  std::size_t live_size() const { return heap_.size(); }

  /// Slots ever allocated — the high-water mark of concurrently-live
  /// events. Exposed so tests can assert churn does not grow storage.
  std::size_t slab_size() const { return slot_count_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  // 16 bytes: sifting a 100k-event heap moves a third of the bytes the
  // old (time, id, std::function) entries did. `seq` is the low 32 bits of
  // the global push counter; push() guards the 2^32 pushes-per-queue cap.
  struct HeapEntry {
    TimePoint at;
    std::uint32_t seq;  // push order; ties on `at` break by seq
    std::uint32_t slot;
  };
  static_assert(sizeof(TimePoint) == 8);

  struct Slot {
    std::uint32_t gen = 1;  // bumped on release; stale ids never match
    EventFn fn;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  static constexpr std::size_t children_of(std::size_t i) { return 4 * i + 1; }
  static constexpr std::size_t parent_of(std::size_t i) { return (i - 1) / 4; }

  void place(std::size_t pos, const HeapEntry& e);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void remove_at(std::size_t pos);

  // The slab is chunked so growth never moves a live Slot (vector
  // reallocation would relocate every callable through an indirect call).
  // Chunk c holds 64 << c slots, so a simulator with a handful of pending
  // events pays for a 64-slot chunk, not a fixed large one, while big
  // workloads still reach their high-water mark in ~log2 allocations.
  // Chunks are raw storage; a Slot is placement-constructed the first time
  // its index is handed out (indices are dense: 0..slot_count_-1) and
  // destroyed by ~EventQueue. Addresses stay stable for the queue's
  // lifetime.
  static constexpr std::uint32_t kFirstChunkShift = 6;  // 64 slots

  struct ChunkDeleter {
    void operator()(std::byte* p) const { ::operator delete[](p); }
  };
  using Chunk = std::unique_ptr<std::byte[], ChunkDeleter>;

  Slot& slot(std::uint32_t idx) {
    const std::uint32_t t = (idx >> kFirstChunkShift) + 1;
    const int c = std::bit_width(t) - 1;
    const std::uint32_t base =
        ((1u << c) - 1u) << kFirstChunkShift;  // slots before chunk c
    return reinterpret_cast<Slot*>(chunks_[static_cast<std::size_t>(c)]
                                       .get())[idx - base];
  }
  const Slot& slot(std::uint32_t idx) const {
    return const_cast<EventQueue*>(this)->slot(idx);
  }

  std::vector<HeapEntry> heap_;     // 4-ary min-heap, keys inline
  std::vector<std::uint32_t> pos_;  // slot -> heap position; freelist link
  std::vector<Chunk> chunks_;       // recycled slab of callables
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNil;
  std::uint64_t next_seq_ = 1;
};

}  // namespace xcp::sim
