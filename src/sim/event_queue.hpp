#pragma once
// The simulator's event queue: a binary min-heap ordered by (time, sequence
// number). The sequence number makes simultaneous events execute in schedule
// order, which keeps whole experiments bit-for-bit deterministic.
// Cancellation is lazy: cancelled ids are skipped at pop time.

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "support/time.hpp"

namespace xcp::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Enqueues `fn` to run at virtual time `at`. Returns a cancellable id.
  EventId push(TimePoint at, std::function<void()> fn);

  /// Marks an event as cancelled; a no-op for already-fired or unknown ids.
  void cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool empty() const;

  /// Time of the next live event. Requires !empty().
  TimePoint next_time() const;

  /// Pops the next live event. Requires !empty().
  std::pair<TimePoint, std::function<void()>> pop();

  std::size_t live_size() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Entry {
    TimePoint at;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  void drop_cancelled_top() const;

  mutable std::vector<Entry> heap_;  // std::push_heap/pop_heap with greater<>
  mutable std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
};

}  // namespace xcp::sim
