#pragma once
// Hierarchical timer wheel: the O(1) front end of the event queue.
//
// Protocol timeouts (timelock deadlines, notary rounds, impatience timers)
// cluster around a handful of deltas and are usually cancelled or re-armed
// before they fire. A comparison-based heap charges O(log n) for every such
// schedule/cancel pair; the wheel charges O(1) for both by hashing the
// expiry time into a slot of a power-of-64 hierarchy:
//
//   level k covers slots of width 64^k microseconds, 64 slots per level,
//   so 6 levels reach a horizon of 64^6 us (~19 hours of virtual time).
//
// An entry is placed at the *lowest* level whose current wheel revolution
// contains its expiry (the classic hashed hierarchical wheel rule), which
// guarantees each (level, slot) bucket only ever holds entries from a
// single revolution. A per-level occupancy bitmap (one word per level, 64
// slots) makes "when is the next non-empty slot due?" a rotate +
// count-trailing-zeros.
//
// Buckets are *per-slot arrays of entries*: each (level, slot) owns a
// contiguous growable array of 16-byte Entry{at, seq, idx} records. The
// PR-2/PR-3 designs threaded a doubly-linked chain through a global
// slot-indexed node slab, so every unlink dirtied two neighbour-node
// lines scattered across the whole slab; here live entries carry no links
// at all. Concretely:
//
//  - insert reuses the most recently freed position in the bucket (warm
//    line — re-arm churn cycles a small hot set, via an in-array free
//    stack) or appends. Amortised O(1); arrays keep their capacity and
//    freed positions are recycled, so a bucket's footprint tracks its
//    live high-water mark, not its cancel count, and a warmed wheel
//    allocates nothing.
//  - erase frees the entry *in place* — its own line is the only random
//    memory the operation touches. Bucket emptiness is a counter, not a
//    chain head, and an all-free bucket collapses to size 0 immediately.
//    (Variants that moved entries were measured and rejected on the
//    65536-crowd bench: swap-with-last dirtied a second random line
//    fixing the moved entry's locator, and tombstone-plus-compaction
//    paid an amortised locator scatter per erase; see docs/PERF.md.)
//  - draining a due slot walks one contiguous array (skipping free
//    entries) instead of pointer-chasing across the owner's slab.
//
// Owner-side state per entry vanishes entirely: try_insert returns a
// 31-bit packed locator (bucket << 22 | pos) which the owner stows in the
// payload bits of its existing slot -> position table (EventQueue's pos_
// already stores a wheel-residency tag there) and hands back to erase().
// The PR-3 design kept a whole parallel node array and addressed it
// through an accessor; that array, its growth, and the extra dependent
// load per cancel are gone. Positions are stable for an entry's lifetime
// (the free list recycles them without moving live entries), which is
// what makes the packed locator possible. Buckets deeper than 2^22
// entries are routed to the heap instead — a loud, graceful bound far
// above the million-timer design point.
//
// The wheel does NOT order entries within a slot (position reuse
// scrambles them freely). Instead of cascading expired slots down the
// hierarchy, the owner (sim::EventQueue) drains the earliest slot into
// its indexed min-heap just before virtual time reaches the slot's start;
// the heap restores the exact (time, seq) total order, so pop order is
// independent of bucket layout. Entries cancelled before their slot comes
// due — the common case for timeouts — never touch the heap at all.
//
// Single-threaded, like the EventQueue that owns it.

#include <array>
#include <cstdint>
#include <limits>

#include "support/time.hpp"

namespace xcp::sim {

class TimerWheel {
 public:
  /// Sentinel entry index: "not in the wheel".
  static constexpr std::uint32_t kNone = 0xffffffffu;

  static constexpr int kLevels = 6;
  static constexpr int kSlotBits = 6;  // 64 slots per level, 1 bitmap word
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kSlotBits;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kLevels) * kSlotsPerLevel;

  // Routing policy: only entries that land at this level or above are
  // accepted (level 3 slots are 64^3 us ~ 0.26 s wide). Near-future events
  // — message deliveries, imminent work — would be drained to the heap
  // almost immediately, paying the wheel hop for nothing; they are exactly
  // the events that *fire*. Protocol timeouts (timelock deadlines, notary
  // rounds, impatience timers — all >= seconds) land at level >= 3 and are
  // exactly the events that get cancelled or re-armed, where the wheel's
  // O(1) erase wins. try_insert rejects below-threshold entries and the
  // owner routes them straight to its heap.
  static constexpr int kMinLevel = 3;

  /// Packed locator layout: bit 31 unused (the owner's tag bit), bits
  /// 22..30 the bucket, bits 0..21 the position within it.
  static constexpr int kPosBits = 22;
  static constexpr std::uint32_t kMaxBucketEntries = 1u << kPosBits;
  static_assert(kBuckets <= (1u << (31 - kPosBits)),
                "bucket index must fit the locator's upper bits");

  /// One parked entry; bucket arrays are contiguous runs of these, with
  /// the bucket's free stack threaded *through the array* by position: a
  /// free (erased, reusable) entry has idx == kNone and its seq field
  /// holds the next free position. Consumers of a DetachedView must skip
  /// free entries. There is no live chain: draining walks the array, and
  /// bucket emptiness is a counter, so live entries carry no links.
  struct Entry {
    TimePoint at;
    std::uint32_t seq;  // push sequence; for free entries: next free pos
    std::uint32_t idx;  // owner slot index; kNone marks a free entry
  };
  static_assert(sizeof(Entry) == 16);

  /// A due bucket handed to the owner by detach_earliest_if_due(): a view
  /// over its contiguous entries — unordered, and including free entries
  /// (idx == kNone), which the consumer skips. The consumer reports how
  /// many live entries it took via release_detached(consumed). Valid until
  /// that call; no wheel mutation is legal in between. An occupied slot
  /// always holds at least one live entry, so size == 0 unambiguously
  /// means "nothing due".
  struct DetachedView {
    const Entry* data = nullptr;
    std::size_t size = 0;
  };

  TimerWheel() = default;
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;
  ~TimerWheel();

  /// Places an entry, returning its packed locator — or kNone when the
  /// entry does not fit the wheel (expiry at or before the cursor, i.e. in
  /// a slot already drained; beyond the horizon; or a pathologically deep
  /// bucket) and must go to the fallback ordering structure instead. The
  /// caller keeps the locator (EventQueue stows it in pos_'s payload bits)
  /// and passes it back to erase(). Amortised O(1). Defined inline below:
  /// this is the schedule hot path.
  std::uint32_t try_insert(TimePoint at, std::uint32_t seq,
                           std::uint32_t idx);

  /// Unlinks the live entry behind a packed locator. O(1). Inline: the
  /// cancel/re-arm hot path.
  void erase(std::uint32_t locator);

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// A lower bound on the earliest non-empty slot's start time,
  /// maintained in O(1): the owner's pop path compares the heap head
  /// against this single value and only scans the wheel
  /// (detach_earliest_if_due) when a slot might actually be due.
  /// INT64_MAX when empty.
  std::int64_t next_due_lower_bound() const { return next_due_lb_; }

  /// If the earliest non-empty slot starts at or before `limit`, hands its
  /// entry array to the caller (unordered view) and advances the cursor
  /// past every slot before it; the caller consumes the view and
  /// acknowledges with release_detached(). Otherwise refreshes the cached
  /// lower bound and returns an empty view. One bitmap scan either way.
  /// Requires !empty().
  DetachedView detach_earliest_if_due(std::int64_t limit);

  /// Acknowledges a detached bucket: forgets its entries (the array keeps
  /// its capacity for reuse). `consumed` is the number of live entries the
  /// caller took from the view (free entries excluded).
  void release_detached(std::size_t consumed);

  /// Returns a detached bucket unconsumed: re-occupies its slot and
  /// restores the due lower bound, as if detach_earliest_if_due had never
  /// run (the cursor stays where detach left it — the slot's start is
  /// still ahead of it, so a later drain finds the bucket again). The
  /// unwind path when a consumer throws mid-drain; normally reached via
  /// DetachScope, not called directly.
  void restore_detached();

  /// RAII loan of a due bucket. detach_earliest_if_due hands out a raw
  /// view; if the consumer throws mid-drain before release_detached, the
  /// bucket stays on loan forever and the next detach trips
  /// XCP_REQUIRE(detached_ == kNoBucket), bricking the queue. Construct a
  /// scope after a successful (non-empty) detach: release(consumed) on the
  /// happy path, and unwinding restores the bucket — entries intact, loan
  /// returned, wheel usable.
  class DetachScope {
   public:
    explicit DetachScope(TimerWheel& wheel) : wheel_(&wheel) {}
    DetachScope(const DetachScope&) = delete;
    DetachScope& operator=(const DetachScope&) = delete;
    ~DetachScope() {
      if (wheel_ != nullptr) wheel_->restore_detached();
    }
    /// Happy-path acknowledgement; forwards to release_detached once.
    /// Disarms *before* forwarding: by this point the consumer has taken
    /// the view's entries, so if release_detached throws (consumption
    /// mismatch), restoring would resurrect entries the consumer already
    /// owns — the loud invariant failure must not become duplication.
    void release(std::size_t consumed) {
      TimerWheel* w = wheel_;
      wheel_ = nullptr;
      w->release_detached(consumed);
    }

   private:
    TimerWheel* wheel_;
  };

  /// Moves the cursor (e.g. back in time when the owning queue has fully
  /// drained and is being reused). Requires empty().
  void reset_cursor(std::int64_t t) { cursor_ = t; }
  std::int64_t cursor() const { return cursor_; }

 private:
  static constexpr std::uint16_t kNoBucket = 0xffff;

  /// Minimal growable entry array with an in-array free stack. Not
  /// std::vector: the insert/erase hot paths want a flat header with
  /// plain-integer size/capacity — libstdc++'s three-pointer layout
  /// recomputes size/cap by pointer subtraction and cost a measured ~5 ns
  /// per re-arm pair. `free` is the free-position stack top; erased
  /// positions are recycled by inserts, so the array's footprint tracks
  /// the bucket's live high-water mark. A bucket whose last live entry is
  /// erased collapses to size 0 on the spot (the 1-live watchdog pattern
  /// cycles a bucket through size 1/0 and never accumulates free
  /// entries).
  struct Bucket {
    Entry* data = nullptr;
    std::uint32_t size = 0;
    std::uint32_t cap = 0;
    std::uint32_t live = 0;
    std::uint32_t free = kNone;  // free stack top (position)
  };

  /// The cold growth path (doubling, 64-entry floor), out of line so
  /// try_insert inlines tight.
  static void grow(Bucket& b);

  // Earliest non-empty slot: level and its absolute slot quotient.
  void find_earliest(int& level, std::int64_t& quotient) const;

  // All slots whose start time is <= cursor_ are empty; entries at or
  // before the cursor are rejected by try_insert (they belong to the
  // fallback heap). Starts at -1 so a fresh wheel accepts times >= 0.
  std::int64_t cursor_ = -1;
  // Invariant: next_due_lb_ <= start of every occupied slot (exact after
  // detach_earliest_if_due's refresh, possibly stale-low after erases).
  // INT64_MAX when the wheel is empty.
  std::int64_t next_due_lb_ = std::numeric_limits<std::int64_t>::max();
  std::size_t count_ = 0;
  std::uint16_t detached_ = kNoBucket;  // bucket currently on loan
  std::int64_t detached_start_ = 0;     // its slot start, for restore
  std::array<std::uint64_t, kLevels> occupied_{};  // per-level slot bitmap
  std::array<Bucket, kBuckets> buckets_;
};

// ------------------------------------------------------- inline hot paths

inline std::uint32_t TimerWheel::try_insert(TimePoint at, std::uint32_t seq,
                                            std::uint32_t idx) {
  const std::int64_t t = at.count();
  if (t <= cursor_) return kNone;  // slot already drained: fallback orders it
  // Lowest level >= kMinLevel whose current revolution contains t. The
  // quotient difference is computed in uint64: t > cursor_, so the wrapped
  // difference equals the true (non-negative) difference even when the
  // int64 subtraction would overflow.
  int level = kMinLevel;
  std::int64_t qt = t >> (kSlotBits * kMinLevel);
  std::int64_t qc = cursor_ >> (kSlotBits * kMinLevel);
  for (;; ++level) {
    if (level == kLevels) return kNone;  // beyond the horizon
    const std::uint64_t diff =
        static_cast<std::uint64_t>(qt) - static_cast<std::uint64_t>(qc);
    if (diff < kSlotsPerLevel) {
      // diff == 0 means t shares the cursor's (possibly part-drained)
      // kMinLevel slot — a near-future event that will fire almost
      // immediately. It belongs on the heap (see kMinLevel).
      if (diff == 0) return kNone;
      break;
    }
    qt >>= kSlotBits;
    qc >>= kSlotBits;
  }
  const std::uint32_t slot =
      static_cast<std::uint32_t>(qt) & (kSlotsPerLevel - 1);
  const std::uint32_t bucket =
      static_cast<std::uint32_t>(level) * kSlotsPerLevel + slot;
  const std::int64_t slot_start = static_cast<std::int64_t>(
      static_cast<std::uint64_t>(qt) << (kSlotBits * level));
  if (slot_start < next_due_lb_) next_due_lb_ = slot_start;

  Bucket& b = buckets_[bucket];
  std::uint32_t pos;
  if (b.free != kNone) {
    // Reuse the most recently freed position — its line is warm from the
    // erase that freed it (re-arm churn cycles a small hot set).
    pos = b.free;
    b.free = b.data[pos].seq;
  } else {
    if (b.size == b.cap) {
      if (b.size == kMaxBucketEntries) return kNone;  // locator bound
      grow(b);
    }
    pos = b.size++;
  }
  Entry& e = b.data[pos];
  e.at = at;
  e.seq = seq;
  e.idx = idx;
  ++b.live;
  occupied_[static_cast<std::size_t>(level)] |= std::uint64_t{1} << slot;
  ++count_;
  return (bucket << kPosBits) | pos;
}

inline void TimerWheel::erase(std::uint32_t locator) {
  const std::uint32_t bucket = locator >> kPosBits;
  const std::uint32_t pos = locator & (kMaxBucketEntries - 1);
  Bucket& b = buckets_[bucket];
  // Free the position in place: the erase's only random memory traffic is
  // the entry's own line (live entries carry no links, so nothing else
  // needs touching — vs the two neighbour-node lines of the PR-3 global
  // slab's unlink).
  Entry& e = b.data[pos];
  e.idx = kNone;
  e.seq = b.free;
  b.free = pos;
  if (--b.live == 0) {
    // Last live entry gone: collapse the bucket outright and clear its
    // occupancy bit.
    b.size = 0;
    b.free = kNone;
    occupied_[bucket >> kSlotBits] &=
        ~(std::uint64_t{1} << (bucket & (kSlotsPerLevel - 1)));
  }
  if (--count_ == 0) {
    next_due_lb_ = std::numeric_limits<std::int64_t>::max();
  }
}

}  // namespace xcp::sim
