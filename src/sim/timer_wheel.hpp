#pragma once
// Hierarchical timer wheel: the O(1) front end of the event queue.
//
// Protocol timeouts (timelock deadlines, notary rounds, impatience timers)
// cluster around a handful of deltas and are usually cancelled or re-armed
// before they fire. A comparison-based heap charges O(log n) for every such
// schedule/cancel pair; the wheel charges O(1) for both by hashing the
// expiry time into a slot of a power-of-64 hierarchy:
//
//   level k covers slots of width 64^k microseconds, 64 slots per level,
//   so 6 levels reach a horizon of 64^6 us (~19 hours of virtual time).
//
// An entry is placed at the *lowest* level whose current wheel revolution
// contains its expiry (the classic hashed hierarchical wheel rule), which
// guarantees each (level, slot) bucket only ever holds entries from a
// single revolution. Buckets are doubly-linked lists threaded through a
// recycled node slab, so insert and erase are a few pointer writes; a
// per-level occupancy bitmap (one word per level, 64 slots) makes "when is
// the next non-empty slot due?" a rotate + count-trailing-zeros.
//
// The wheel does NOT order entries within a slot. Instead of cascading
// expired slots down the hierarchy, the owner (sim::EventQueue) drains the
// earliest slot into its indexed min-heap just before virtual time reaches
// the slot's start; the heap restores the exact (time, seq) total order.
// Entries cancelled before their slot comes due — the common case for
// timeouts — never touch the heap at all.
//
// Single-threaded, like the EventQueue that owns it.

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/time.hpp"

namespace xcp::sim {

class TimerWheel {
 public:
  /// Sentinel node index: "not in the wheel" / end of a chain.
  static constexpr std::uint32_t kNone = 0xffffffffu;

  static constexpr int kLevels = 6;
  static constexpr int kSlotBits = 6;  // 64 slots per level, 1 bitmap word
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kSlotBits;

  // Routing policy: only entries that land at this level or above are
  // accepted (level 3 slots are 64^3 us ~ 0.26 s wide). Near-future events
  // — message deliveries, imminent work — would be drained to the heap
  // almost immediately, paying the wheel hop for nothing; they are exactly
  // the events that *fire*. Protocol timeouts (timelock deadlines, notary
  // rounds, impatience timers — all >= seconds) land at level >= 3 and are
  // exactly the events that get cancelled or re-armed, where the wheel's
  // O(1) erase wins. try_insert rejects below-threshold entries and the
  // owner routes them straight to its heap.
  static constexpr int kMinLevel = 3;

  // 32 bytes, 32-byte aligned: two nodes per cache line, never straddling
  // one — a re-arm touches exactly one node line.
  struct alignas(32) Node {
    TimePoint at;
    std::uint32_t seq;      // the owner's push sequence, for final ordering
    std::uint32_t payload;  // opaque owner data (EventQueue slot index)
    std::uint32_t prev;     // bucket list links (node indices)
    std::uint32_t next;
    std::uint16_t bucket;   // level * kSlotsPerLevel + slot, for O(1) erase
  };
  static_assert(sizeof(Node) == 32);

  TimerWheel() { heads_.fill(kNone); }

  /// Places an entry, returning its node index — or kNone when the entry
  /// does not fit the wheel (expiry at or before the cursor, i.e. in a slot
  /// already drained, or beyond the horizon) and must go to the fallback
  /// ordering structure instead. O(1). Defined inline below: this is the
  /// schedule hot path and must inline into the caller.
  std::uint32_t try_insert(TimePoint at, std::uint32_t seq,
                           std::uint32_t payload);

  /// Unlinks a live node and recycles it, returning its payload. O(1).
  /// Inline: the cancel/re-arm hot path.
  std::uint32_t erase(std::uint32_t node_idx);

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// A lower bound on the earliest non-empty slot's start time,
  /// maintained in O(1): the owner's pop path compares the heap head
  /// against this single value and only scans the wheel
  /// (detach_earliest_if_due) when a slot might actually be due.
  /// INT64_MAX when empty.
  std::int64_t next_due_lower_bound() const { return next_due_lb_; }

  /// If the earliest non-empty slot starts at or before `limit`, detaches
  /// its chain (linked via Node::next, unordered) and advances the cursor
  /// past every slot before it; the caller consumes each node with node()
  /// and returns it with release(). Otherwise refreshes the cached lower
  /// bound and returns kNone. One bitmap scan either way. Requires
  /// !empty().
  std::uint32_t detach_earliest_if_due(std::int64_t limit);

  const Node& node(std::uint32_t idx) const { return nodes_[idx]; }

  /// Recycles a node obtained from detach_earliest(). Inline.
  void release(std::uint32_t idx);

  /// Moves the cursor (e.g. back in time when the owning queue has fully
  /// drained and is being reused). Requires empty().
  void reset_cursor(std::int64_t t) { cursor_ = t; }
  std::int64_t cursor() const { return cursor_; }

  /// Nodes ever allocated — high-water mark of concurrently-live entries.
  std::size_t node_slab_size() const { return nodes_.size(); }

 private:
  std::uint32_t acquire_node();
  std::uint32_t grow_nodes();  // slab growth: the out-of-line cold path
  // Earliest non-empty slot: level and its absolute slot quotient.
  void find_earliest(int& level, std::int64_t& quotient) const;

  // All slots whose start time is <= cursor_ are empty; entries at or
  // before the cursor are rejected by try_insert (they belong to the
  // fallback heap). Starts at -1 so a fresh wheel accepts times >= 0.
  std::int64_t cursor_ = -1;
  // Invariant: next_due_lb_ <= start of every occupied slot (exact after
  // next_slot_start(), possibly stale-low after erases). INT64_MAX when
  // the wheel is empty.
  std::int64_t next_due_lb_ = std::numeric_limits<std::int64_t>::max();
  std::size_t count_ = 0;
  std::uint32_t free_head_ = kNone;
  std::array<std::uint64_t, kLevels> occupied_{};  // per-level slot bitmap
  std::array<std::uint32_t, static_cast<std::size_t>(kLevels) * kSlotsPerLevel>
      heads_;
  std::vector<Node> nodes_;  // recycled slab; indices stable, storage POD
};

// ------------------------------------------------------- inline hot paths

inline std::uint32_t TimerWheel::try_insert(TimePoint at, std::uint32_t seq,
                                            std::uint32_t payload) {
  const std::int64_t t = at.count();
  if (t <= cursor_) return kNone;  // slot already drained: fallback orders it
  // Lowest level >= kMinLevel whose current revolution contains t. The
  // quotient difference is computed in uint64: t > cursor_, so the wrapped
  // difference equals the true (non-negative) difference even when the
  // int64 subtraction would overflow.
  int level = kMinLevel;
  std::int64_t qt = t >> (kSlotBits * kMinLevel);
  std::int64_t qc = cursor_ >> (kSlotBits * kMinLevel);
  for (;; ++level) {
    if (level == kLevels) return kNone;  // beyond the horizon
    const std::uint64_t diff =
        static_cast<std::uint64_t>(qt) - static_cast<std::uint64_t>(qc);
    if (diff < kSlotsPerLevel) {
      // diff == 0 means t shares the cursor's (possibly part-drained)
      // kMinLevel slot — a near-future event that will fire almost
      // immediately. It belongs on the heap (see kMinLevel).
      if (diff == 0) return kNone;
      break;
    }
    qt >>= kSlotBits;
    qc >>= kSlotBits;
  }
  const std::uint32_t slot =
      static_cast<std::uint32_t>(qt) & (kSlotsPerLevel - 1);
  const std::uint16_t bucket =
      static_cast<std::uint16_t>(level * kSlotsPerLevel + slot);
  const std::int64_t slot_start = static_cast<std::int64_t>(
      static_cast<std::uint64_t>(qt) << (kSlotBits * level));
  if (slot_start < next_due_lb_) next_due_lb_ = slot_start;

  const std::uint32_t idx = acquire_node();
  Node& n = nodes_[idx];
  n.at = at;
  n.seq = seq;
  n.payload = payload;
  n.bucket = bucket;
  n.prev = kNone;
  n.next = heads_[bucket];
  if (n.next != kNone) nodes_[n.next].prev = idx;
  heads_[bucket] = idx;
  occupied_[static_cast<std::size_t>(level)] |= std::uint64_t{1} << slot;
  ++count_;
  return idx;
}

inline std::uint32_t TimerWheel::erase(std::uint32_t node_idx) {
  Node& n = nodes_[node_idx];
  const std::uint16_t bucket = n.bucket;
  if (n.prev != kNone) {
    nodes_[n.prev].next = n.next;
  } else {
    heads_[bucket] = n.next;
  }
  if (n.next != kNone) nodes_[n.next].prev = n.prev;
  if (heads_[bucket] == kNone) {
    occupied_[bucket >> kSlotBits] &=
        ~(std::uint64_t{1} << (bucket & (kSlotsPerLevel - 1)));
  }
  const std::uint32_t payload = n.payload;
  release(node_idx);
  return payload;
}

inline void TimerWheel::release(std::uint32_t idx) {
  nodes_[idx].next = free_head_;
  free_head_ = idx;
  if (--count_ == 0) {
    next_due_lb_ = std::numeric_limits<std::int64_t>::max();
  }
}

inline std::uint32_t TimerWheel::acquire_node() {
  if (free_head_ != kNone) {
    const std::uint32_t idx = free_head_;
    free_head_ = nodes_[idx].next;  // freelist threaded through next
    return idx;
  }
  return grow_nodes();
}

}  // namespace xcp::sim
