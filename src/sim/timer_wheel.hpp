#pragma once
// Hierarchical timer wheel: the O(1) front end of the event queue.
//
// Protocol timeouts (timelock deadlines, notary rounds, impatience timers)
// cluster around a handful of deltas and are usually cancelled or re-armed
// before they fire. A comparison-based heap charges O(log n) for every such
// schedule/cancel pair; the wheel charges O(1) for both by hashing the
// expiry time into a slot of a power-of-64 hierarchy:
//
//   level k covers slots of width 64^k microseconds, 64 slots per level,
//   so 6 levels reach a horizon of 64^6 us (~19 hours of virtual time).
//
// An entry is placed at the *lowest* level whose current wheel revolution
// contains its expiry (the classic hashed hierarchical wheel rule), which
// guarantees each (level, slot) bucket only ever holds entries from a
// single revolution. Buckets are doubly-linked lists; a per-level occupancy
// bitmap (one word per level, 64 slots) makes "when is the next non-empty
// slot due?" a rotate + count-trailing-zeros.
//
// Storage is *intrusive*: the wheel owns no node slab and runs no freelist.
// Each entry's links (TimerWheel::Node) live in owner storage indexed by
// the owner's own event-slot index — sim::EventQueue keeps them in a dense
// slot-indexed parallel array alongside its pos_ table — and the wheel
// addresses them through the owner-supplied `node_of(index)` accessor (a
// template parameter, so it inlines to a direct array index). Entry index
// == owner slot index, which removes the payload field, the node-index
// indirection through the owner's position table, and all freelist
// maintenance the PR-2 recycled slab needed, and packs nodes to 24 bytes —
// so the bucket-neighbour unlink traffic of a big timer crowd hits a ~25%
// denser array. (Embedding the links *inside* the event slot itself was
// measured and rejected: it spread exactly that neighbour traffic over the
// 104-byte slot stride and lost ~7% on the 65536-timer crowd bench.)
//
// The wheel does NOT order entries within a slot. Instead of cascading
// expired slots down the hierarchy, the owner (sim::EventQueue) drains the
// earliest slot into its indexed min-heap just before virtual time reaches
// the slot's start; the heap restores the exact (time, seq) total order.
// Entries cancelled before their slot comes due — the common case for
// timeouts — never touch the heap at all.
//
// Single-threaded, like the EventQueue that owns it.

#include <array>
#include <cstdint>
#include <limits>

#include "support/time.hpp"

namespace xcp::sim {

class TimerWheel {
 public:
  /// Sentinel entry index: "not in the wheel" / end of a chain.
  static constexpr std::uint32_t kNone = 0xffffffffu;

  static constexpr int kLevels = 6;
  static constexpr int kSlotBits = 6;  // 64 slots per level, 1 bitmap word
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kSlotBits;

  // Routing policy: only entries that land at this level or above are
  // accepted (level 3 slots are 64^3 us ~ 0.26 s wide). Near-future events
  // — message deliveries, imminent work — would be drained to the heap
  // almost immediately, paying the wheel hop for nothing; they are exactly
  // the events that *fire*. Protocol timeouts (timelock deadlines, notary
  // rounds, impatience timers — all >= seconds) land at level >= 3 and are
  // exactly the events that get cancelled or re-armed, where the wheel's
  // O(1) erase wins. try_insert rejects below-threshold entries and the
  // owner routes them straight to its heap.
  static constexpr int kMinLevel = 3;

  /// The intrusive per-entry state, kept in owner storage indexed by the
  /// owner's slot index (EventQueue's dense parallel array). 24 bytes.
  struct Node {
    TimePoint at;
    std::uint32_t seq;      // the owner's push sequence, for final ordering
    std::uint32_t prev;     // bucket list links (owner slot indices)
    std::uint32_t next;
    std::uint16_t bucket;   // level * kSlotsPerLevel + slot, for O(1) erase
  };

  TimerWheel() { heads_.fill(kNone); }

  /// Places entry `idx` (whose Node lives at node_of(idx)), returning true
  /// — or false when the entry does not fit the wheel (expiry at or before
  /// the cursor, i.e. in a slot already drained, or beyond the horizon)
  /// and must go to the fallback ordering structure instead. O(1). Defined
  /// inline below: this is the schedule hot path and must inline into the
  /// caller together with the node accessor.
  template <typename NodeOf>
  bool try_insert(NodeOf&& node_of, TimePoint at, std::uint32_t seq,
                  std::uint32_t idx);

  /// Unlinks live entry `idx`. O(1). Inline: the cancel/re-arm hot path.
  template <typename NodeOf>
  void erase(NodeOf&& node_of, std::uint32_t idx);

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// A lower bound on the earliest non-empty slot's start time,
  /// maintained in O(1): the owner's pop path compares the heap head
  /// against this single value and only scans the wheel
  /// (detach_earliest_if_due) when a slot might actually be due.
  /// INT64_MAX when empty.
  std::int64_t next_due_lower_bound() const { return next_due_lb_; }

  /// If the earliest non-empty slot starts at or before `limit`, detaches
  /// its chain (linked via Node::next, unordered) and advances the cursor
  /// past every slot before it; the caller consumes each entry by reading
  /// its own node storage and acknowledging with consume_detached().
  /// Otherwise refreshes the cached lower bound and returns kNone. One
  /// bitmap scan either way. Requires !empty().
  std::uint32_t detach_earliest_if_due(std::int64_t limit);

  /// Acknowledges one entry of a detached chain (bookkeeping only; the
  /// entry's storage belongs to the owner). Inline.
  void consume_detached() {
    if (--count_ == 0) {
      next_due_lb_ = std::numeric_limits<std::int64_t>::max();
    }
  }

  /// Moves the cursor (e.g. back in time when the owning queue has fully
  /// drained and is being reused). Requires empty().
  void reset_cursor(std::int64_t t) { cursor_ = t; }
  std::int64_t cursor() const { return cursor_; }

 private:
  // Earliest non-empty slot: level and its absolute slot quotient.
  void find_earliest(int& level, std::int64_t& quotient) const;

  // All slots whose start time is <= cursor_ are empty; entries at or
  // before the cursor are rejected by try_insert (they belong to the
  // fallback heap). Starts at -1 so a fresh wheel accepts times >= 0.
  std::int64_t cursor_ = -1;
  // Invariant: next_due_lb_ <= start of every occupied slot (exact after
  // next_slot_start(), possibly stale-low after erases). INT64_MAX when
  // the wheel is empty.
  std::int64_t next_due_lb_ = std::numeric_limits<std::int64_t>::max();
  std::size_t count_ = 0;
  std::array<std::uint64_t, kLevels> occupied_{};  // per-level slot bitmap
  std::array<std::uint32_t, static_cast<std::size_t>(kLevels) * kSlotsPerLevel>
      heads_;
};

// ------------------------------------------------------- inline hot paths

template <typename NodeOf>
inline bool TimerWheel::try_insert(NodeOf&& node_of, TimePoint at,
                                   std::uint32_t seq, std::uint32_t idx) {
  const std::int64_t t = at.count();
  if (t <= cursor_) return false;  // slot already drained: fallback orders it
  // Lowest level >= kMinLevel whose current revolution contains t. The
  // quotient difference is computed in uint64: t > cursor_, so the wrapped
  // difference equals the true (non-negative) difference even when the
  // int64 subtraction would overflow.
  int level = kMinLevel;
  std::int64_t qt = t >> (kSlotBits * kMinLevel);
  std::int64_t qc = cursor_ >> (kSlotBits * kMinLevel);
  for (;; ++level) {
    if (level == kLevels) return false;  // beyond the horizon
    const std::uint64_t diff =
        static_cast<std::uint64_t>(qt) - static_cast<std::uint64_t>(qc);
    if (diff < kSlotsPerLevel) {
      // diff == 0 means t shares the cursor's (possibly part-drained)
      // kMinLevel slot — a near-future event that will fire almost
      // immediately. It belongs on the heap (see kMinLevel).
      if (diff == 0) return false;
      break;
    }
    qt >>= kSlotBits;
    qc >>= kSlotBits;
  }
  const std::uint32_t slot =
      static_cast<std::uint32_t>(qt) & (kSlotsPerLevel - 1);
  const std::uint16_t bucket =
      static_cast<std::uint16_t>(level * kSlotsPerLevel + slot);
  const std::int64_t slot_start = static_cast<std::int64_t>(
      static_cast<std::uint64_t>(qt) << (kSlotBits * level));
  if (slot_start < next_due_lb_) next_due_lb_ = slot_start;

  Node& n = node_of(idx);
  n.at = at;
  n.seq = seq;
  n.bucket = bucket;
  n.prev = kNone;
  n.next = heads_[bucket];
  if (n.next != kNone) node_of(n.next).prev = idx;
  heads_[bucket] = idx;
  occupied_[static_cast<std::size_t>(level)] |= std::uint64_t{1} << slot;
  ++count_;
  return true;
}

template <typename NodeOf>
inline void TimerWheel::erase(NodeOf&& node_of, std::uint32_t idx) {
  Node& n = node_of(idx);
  const std::uint16_t bucket = n.bucket;
  if (n.prev != kNone) {
    node_of(n.prev).next = n.next;
  } else {
    heads_[bucket] = n.next;
  }
  if (n.next != kNone) node_of(n.next).prev = n.prev;
  if (heads_[bucket] == kNone) {
    occupied_[bucket >> kSlotBits] &=
        ~(std::uint64_t{1} << (bucket & (kSlotsPerLevel - 1)));
  }
  if (--count_ == 0) {
    next_due_lb_ = std::numeric_limits<std::int64_t>::max();
  }
}

}  // namespace xcp::sim
