#pragma once
// Per-process local clocks with bounded drift.
//
// The paper's synchronous protocol is "fine-tuned to work correctly in the
// presence of clock drift": each participant reads `now` from its own clock
// and sets deadlines on it, while the network's delay bounds hold in true
// (global) time. We model a local clock as the affine map
//
//     local(g) = local_origin + rate * (g - global_origin)
//
// with rate drawn from [1 - rho, 1 + rho]. This is the standard bounded-rate
// drifting clock; offsets model unsynchronised starts.

#include "support/rng.hpp"
#include "support/time.hpp"

namespace xcp::sim {

class DriftClock {
 public:
  /// Perfect clock: rate 1, no offset.
  DriftClock() = default;

  DriftClock(TimePoint global_origin, TimePoint local_origin, double rate);

  /// Samples a clock with rate uniform in [1-rho, 1+rho] and local origin
  /// offset uniform in [-max_offset, +max_offset] relative to global_origin.
  static DriftClock sample(Rng& rng, double rho, Duration max_offset,
                           TimePoint global_origin = TimePoint::origin());

  double rate() const { return rate_; }

  /// Local reading at global instant g (monotone in g).
  TimePoint to_local(TimePoint g) const;

  /// Earliest *global* instant at which the local reading is >= `local`.
  /// Used to schedule a timer for a local-clock deadline: the timer fires at
  /// the first global time where the guard `now >= deadline` holds locally.
  TimePoint to_global(TimePoint local) const;

  /// Local measure of a true duration (rounded down: what the clock shows).
  Duration measure(Duration true_duration) const;

 private:
  TimePoint global_origin_ = TimePoint::origin();
  TimePoint local_origin_ = TimePoint::origin();
  double rate_ = 1.0;
};

}  // namespace xcp::sim
