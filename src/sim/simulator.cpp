#include "sim/simulator.hpp"

#include "support/status.hpp"

namespace xcp::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

ProcessId Simulator::adopt(std::unique_ptr<Process> p, std::string name) {
  XCP_REQUIRE(p != nullptr, "adopting null process");
  const ProcessId pid(static_cast<std::uint32_t>(processes_.size()));
  p->sim_ = this;
  p->id_ = pid;
  p->name_ = std::move(name);
  p->rng_ = rng_.fork();
  processes_.push_back(std::move(p));
  unstarted_.push_back(pid);
  return pid;
}

void Simulator::set_clock(ProcessId pid, DriftClock clock) {
  process(pid).clock_ = clock;
}

Process& Simulator::process(ProcessId pid) {
  XCP_REQUIRE(pid.valid() && pid.value() < processes_.size(), "bad process id");
  return *processes_[pid.value()];
}

const Process& Simulator::process(ProcessId pid) const {
  XCP_REQUIRE(pid.valid() && pid.value() < processes_.size(), "bad process id");
  return *processes_[pid.value()];
}

void Simulator::cancel(EventId id) { queue_.cancel(id); }

void Simulator::start_all_pending() {
  // on_start callbacks run as time-zero (well, current-time) events in
  // registration order so that processes created later still start.
  for (ProcessId pid : unstarted_) {
    schedule_at(now_, [this, pid] { process(pid).on_start(); });
  }
  unstarted_.clear();
}

bool Simulator::step() {
  start_all_pending();
  if (stop_token_.stop_requested) return false;
  if (queue_.empty()) return false;
  EventQueue::Popped ev = queue_.pop();
  XCP_REQUIRE(ev.at >= now_, "event queue time went backwards");
  now_ = ev.at;
  ++events_executed_;
  XCP_REQUIRE(events_executed_ <= event_limit_, "event limit exceeded (livelock?)");
  ev.fn();
  return true;
}

void Simulator::run() {
  running_ = true;
  while (step()) {
  }
  running_ = false;
}

bool Simulator::run_until(TimePoint deadline) {
  running_ = true;
  for (;;) {
    start_all_pending();
    if (stop_token_.stop_requested) {
      running_ = false;
      return false;
    }
    if (queue_.empty()) {
      running_ = false;
      return true;
    }
    if (queue_.next_time() > deadline) {
      now_ = deadline;
      running_ = false;
      return false;
    }
    step();
  }
}

std::optional<TimePoint> Simulator::next_event_time() {
  start_all_pending();
  if (queue_.empty()) return std::nullopt;
  return queue_.next_time();
}

}  // namespace xcp::sim
