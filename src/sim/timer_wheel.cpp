#include "sim/timer_wheel.hpp"

#include <bit>

#include "support/status.hpp"

namespace xcp::sim {

namespace {

// Floor division by 64^level via arithmetic shift (exact for negatives too,
// which matters only for the fresh-wheel cursor of -1).
constexpr std::int64_t quot(std::int64_t t, int level) {
  return t >> (TimerWheel::kSlotBits * level);
}

}  // namespace

void TimerWheel::find_earliest(int& level, std::int64_t& quotient) const {
  // Per level: occupied slots hold quotients in (qc, qc + 64]; rotating the
  // bitmap so bit 0 is quotient qc+1 makes the earliest a countr_zero.
  std::int64_t best_start = 0;
  int best_level = -1;
  std::int64_t best_quot = 0;
  for (int k = 0; k < kLevels; ++k) {
    const std::uint64_t bits = occupied_[static_cast<std::size_t>(k)];
    if (bits == 0) continue;
    const std::int64_t qc = quot(cursor_, k);
    const unsigned rot =
        static_cast<unsigned>(static_cast<std::uint64_t>(qc + 1) &
                              (kSlotsPerLevel - 1));
    const int j = std::countr_zero(std::rotr(bits, static_cast<int>(rot)));
    const std::int64_t q = qc + 1 + j;
    const std::int64_t start = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(q) << (kSlotBits * k));
    if (best_level < 0 || start < best_start) {
      best_start = start;
      best_level = k;
      best_quot = q;
    }
  }
  XCP_REQUIRE(best_level >= 0, "find_earliest on empty wheel");
  level = best_level;
  quotient = best_quot;
}

std::uint32_t TimerWheel::detach_earliest_if_due(std::int64_t limit) {
  int level = 0;
  std::int64_t q = 0;
  find_earliest(level, q);
  const std::int64_t start = static_cast<std::int64_t>(
      static_cast<std::uint64_t>(q) << (kSlotBits * level));
  if (start > limit) {
    next_due_lb_ = start;  // exact: nothing is due before this
    return kNone;
  }
  const std::uint32_t slot =
      static_cast<std::uint32_t>(q) & (kSlotsPerLevel - 1);
  const std::uint16_t bucket =
      static_cast<std::uint16_t>(level * kSlotsPerLevel + slot);
  const std::uint32_t head = heads_[bucket];
  heads_[bucket] = kNone;
  occupied_[static_cast<std::size_t>(level)] &= ~(std::uint64_t{1} << slot);
  // Every slot before this one is empty (this was the earliest); advance to
  // just before its start so same-start slots at other levels — and entries
  // re-inserted at exactly this start — are still found and drained.
  if (start - 1 > cursor_) cursor_ = start - 1;
  return head;
}

}  // namespace xcp::sim
