#include "sim/timer_wheel.hpp"

#include <bit>
#include <cstring>
#include <new>

#include "support/status.hpp"

namespace xcp::sim {

namespace {

// Floor division by 64^level via arithmetic shift (exact for negatives too,
// which matters only for the fresh-wheel cursor of -1).
constexpr std::int64_t quot(std::int64_t t, int level) {
  return t >> (TimerWheel::kSlotBits * level);
}

}  // namespace

TimerWheel::~TimerWheel() {
  for (Bucket& b : buckets_) {
    ::operator delete(static_cast<void*>(b.data));
  }
}

void TimerWheel::grow(Bucket& b) {
  const std::uint32_t cap = b.cap == 0 ? 64 : b.cap * 2;
  auto* data = static_cast<Entry*>(
      ::operator new(static_cast<std::size_t>(cap) * sizeof(Entry)));
  if (b.size != 0) {
    std::memcpy(data, b.data, static_cast<std::size_t>(b.size) * sizeof(Entry));
  }
  ::operator delete(static_cast<void*>(b.data));
  b.data = data;
  b.cap = cap;
}

void TimerWheel::find_earliest(int& level, std::int64_t& quotient) const {
  // Per level: occupied slots hold quotients in (qc, qc + 64]; rotating the
  // bitmap so bit 0 is quotient qc+1 makes the earliest a countr_zero.
  std::int64_t best_start = 0;
  int best_level = -1;
  std::int64_t best_quot = 0;
  for (int k = 0; k < kLevels; ++k) {
    const std::uint64_t bits = occupied_[static_cast<std::size_t>(k)];
    if (bits == 0) continue;
    const std::int64_t qc = quot(cursor_, k);
    const unsigned rot =
        static_cast<unsigned>(static_cast<std::uint64_t>(qc + 1) &
                              (kSlotsPerLevel - 1));
    const int j = std::countr_zero(std::rotr(bits, static_cast<int>(rot)));
    const std::int64_t q = qc + 1 + j;
    const std::int64_t start = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(q) << (kSlotBits * k));
    if (best_level < 0 || start < best_start) {
      best_start = start;
      best_level = k;
      best_quot = q;
    }
  }
  XCP_REQUIRE(best_level >= 0, "find_earliest on empty wheel");
  level = best_level;
  quotient = best_quot;
}

TimerWheel::DetachedView TimerWheel::detach_earliest_if_due(
    std::int64_t limit) {
  XCP_REQUIRE(detached_ == kNoBucket, "previous detach not released");
  int level = 0;
  std::int64_t q = 0;
  find_earliest(level, q);
  const std::int64_t start = static_cast<std::int64_t>(
      static_cast<std::uint64_t>(q) << (kSlotBits * level));
  if (start > limit) {
    next_due_lb_ = start;  // exact: nothing is due before this
    return DetachedView{};
  }
  const std::uint32_t slot =
      static_cast<std::uint32_t>(q) & (kSlotsPerLevel - 1);
  const std::uint16_t bucket =
      static_cast<std::uint16_t>(level * kSlotsPerLevel + slot);
  occupied_[static_cast<std::size_t>(level)] &= ~(std::uint64_t{1} << slot);
  // Every slot before this one is empty (this was the earliest); advance to
  // just before its start so same-start slots at other levels — and entries
  // re-inserted at exactly this start — are still found and drained.
  if (start - 1 > cursor_) cursor_ = start - 1;
  detached_ = bucket;
  detached_start_ = start;
  const Bucket& b = buckets_[bucket];
  return DetachedView{b.data, b.size};
}

void TimerWheel::restore_detached() {
  XCP_REQUIRE(detached_ != kNoBucket, "restore without a detach");
  // Re-occupy the slot exactly as detach found it. The cursor stays where
  // detach advanced it (just before the slot's start), so the bucket is
  // still ahead of the cursor and the next drain re-finds it; entries were
  // never touched, so counts and the free stack are already correct.
  occupied_[detached_ >> kSlotBits] |=
      std::uint64_t{1} << (detached_ & (kSlotsPerLevel - 1));
  if (detached_start_ < next_due_lb_) next_due_lb_ = detached_start_;
  detached_ = kNoBucket;
}

void TimerWheel::release_detached(std::size_t consumed) {
  XCP_REQUIRE(detached_ != kNoBucket, "release without a detach");
  Bucket& b = buckets_[detached_];
  XCP_REQUIRE(consumed == b.live, "detached-view consumption mismatch");
  count_ -= consumed;  // count_ tracks live entries only
  // Forget entries and free positions alike; capacity is kept, so a
  // warmed wheel re-fills without allocating.
  b.size = 0;
  b.live = 0;
  b.free = kNone;
  detached_ = kNoBucket;
  if (count_ == 0) {
    next_due_lb_ = std::numeric_limits<std::int64_t>::max();
  }
}

}  // namespace xcp::sim
