#include "sim/clock.hpp"

#include <cmath>

#include "support/status.hpp"

namespace xcp::sim {

DriftClock::DriftClock(TimePoint global_origin, TimePoint local_origin, double rate)
    : global_origin_(global_origin), local_origin_(local_origin), rate_(rate) {
  XCP_REQUIRE(rate > 0.0, "clock rate must be positive");
}

DriftClock DriftClock::sample(Rng& rng, double rho, Duration max_offset,
                              TimePoint global_origin) {
  XCP_REQUIRE(rho >= 0.0 && rho < 1.0, "drift bound rho must be in [0,1)");
  const double rate = rng.next_double(1.0 - rho, 1.0 + rho);
  const Duration offset =
      rng.next_duration(-max_offset, max_offset);
  return DriftClock(global_origin, global_origin + offset, rate);
}

TimePoint DriftClock::to_local(TimePoint g) const {
  const double elapsed = static_cast<double>((g - global_origin_).count());
  const auto local_elapsed =
      static_cast<std::int64_t>(std::floor(elapsed * rate_));
  return local_origin_ + Duration::micros(local_elapsed);
}

TimePoint DriftClock::to_global(TimePoint local) const {
  const double local_elapsed =
      static_cast<double>((local - local_origin_).count());
  // Round up, then nudge forward until the local reading truly passes the
  // deadline (floor in to_local can leave us one microsecond short).
  auto global_elapsed =
      static_cast<std::int64_t>(std::ceil(local_elapsed / rate_));
  TimePoint g = global_origin_ + Duration::micros(global_elapsed);
  while (to_local(g) < local) g = g + Duration::micros(1);
  return g;
}

Duration DriftClock::measure(Duration true_duration) const {
  const double scaled = static_cast<double>(true_duration.count()) * rate_;
  return Duration::micros(static_cast<std::int64_t>(std::floor(scaled)));
}

}  // namespace xcp::sim
