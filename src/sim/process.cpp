#include "sim/process.hpp"

#include "sim/simulator.hpp"
#include "support/status.hpp"

namespace xcp::sim {

Simulator& Process::sim() const {
  XCP_REQUIRE(sim_ != nullptr, "process not registered with a simulator");
  return *sim_;
}

TimePoint Process::local_now() const { return clock_.to_local(sim().now()); }

TimePoint Process::global_now() const { return sim().now(); }

TimerId Process::set_timer_local_at(TimePoint local_deadline, std::uint64_t token) {
  const TimePoint global_at = clock_.to_global(local_deadline);
  // Timers never fire in the past: clamp to now.
  const TimePoint at = std::max(global_at, sim().now());
  return sim().schedule_at(at, [this, token] { on_timer(token); });
}

TimerId Process::set_timer_local_after(Duration local_delay, std::uint64_t token) {
  return set_timer_local_at(local_now() + local_delay, token);
}

void Process::cancel_timer(TimerId id) { sim().cancel(id); }

}  // namespace xcp::sim
