#pragma once
// The discrete-event simulator: single-threaded, deterministic virtual time.
//
// Synchrony assumptions (the heart of the paper's theorems) are *timing*
// assumptions; running all participants over one virtual clock lets us
// realise "every message arrives within Delta" exactly, hand pre-GST timing
// control to an adversary, and measure termination bounds without wall-clock
// noise. Determinism: every run is a pure function of (seed, configuration).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/process.hpp"
#include "sim/stop_token.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace xcp::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed);

  TimePoint now() const { return now_; }

  /// Registers a process, assigning it an id, a forked RNG stream and a
  /// perfect clock (override with set_clock). The simulator owns the process.
  template <typename P, typename... Args>
  P& spawn(std::string name, Args&&... args) {
    auto owned = std::make_unique<P>(std::forward<Args>(args)...);
    P& ref = *owned;
    adopt(std::move(owned), std::move(name));
    return ref;
  }

  /// Registers an externally-constructed process.
  ProcessId adopt(std::unique_ptr<Process> p, std::string name);

  void set_clock(ProcessId pid, DriftClock clock);

  Process& process(ProcessId pid);
  const Process& process(ProcessId pid) const;
  std::size_t process_count() const { return processes_.size(); }

  /// Schedules a callable at an absolute / relative virtual time. Templates
  /// so the closure is constructed directly in its event slot — scheduling
  /// a lambda never copies it through an EventFn temporary.
  template <typename F>
  EventId schedule_at(TimePoint at, F&& fn) {
    XCP_REQUIRE(at >= now_, "scheduling into the past");
    return queue_.push(at, std::forward<F>(fn));
  }
  template <typename F>
  EventId schedule_after(Duration delay, F&& fn) {
    XCP_REQUIRE(delay >= Duration::zero(), "negative delay");
    return queue_.push(now_ + delay, std::forward<F>(fn));
  }
  void cancel(EventId id);

  /// Executes the next event; returns false when the queue is empty or a
  /// stop has been requested.
  bool step();

  /// Runs until the queue empties, a stop is requested, or
  /// `events_executed` reaches the limit.
  void run();

  /// Runs events with time <= deadline; the simulator clock ends at
  /// min(deadline, time-of-last-event). Returns true if the queue drained.
  /// A stop request (see stop_token()) ends the loop early with `false`;
  /// callers distinguish the cases via stop_requested().
  bool run_until(TimePoint deadline);

  /// The run's stop latch. Online monitors hold a pointer to it and
  /// request() the moment a verdict is decided mid-event; the simulator
  /// checks it before popping each event, so the stop lands at event
  /// granularity (the deciding event completes, nothing after it runs).
  StopToken& stop_token() { return stop_token_; }
  bool stop_requested() const { return stop_token_.stop_requested; }

  std::uint64_t events_executed() const { return events_executed_; }

  /// Time of the earliest pending event, or nullopt when the queue is
  /// empty. Used by real-time runtimes (net/node_runtime.hpp) to size
  /// their wait between run_until slices. Flushes pending on_start
  /// registrations first so their events are visible.
  std::optional<TimePoint> next_event_time();

  /// Hard cap to catch accidental livelock in experiments (default 50M).
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  /// Simulator-level RNG (network delays etc. fork their own streams).
  Rng& rng() { return rng_; }

  /// Called by processes at start; ensures on_start runs inside the event
  /// loop at registration time order.
  void start_all_pending();

 private:
  TimePoint now_ = TimePoint::origin();
  EventQueue queue_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<ProcessId> unstarted_;
  Rng rng_;
  std::uint64_t events_executed_ = 0;
  std::uint64_t event_limit_ = 50'000'000;
  StopToken stop_token_;
  bool running_ = false;
};

}  // namespace xcp::sim
