#include "sim/event_queue.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace xcp::sim {

namespace {

constexpr std::uint32_t slot_of(EventId id) {
  return static_cast<std::uint32_t>(id);
}
constexpr std::uint32_t gen_of(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}
constexpr EventId make_id(std::uint32_t gen, std::uint32_t slot) {
  return (static_cast<EventId>(gen) << 32) | slot;
}

}  // namespace

void EventQueue::place(std::size_t pos, const HeapEntry& e) {
  heap_[pos] = e;
  pos_[e.slot] = static_cast<std::uint32_t>(pos);
}

void EventQueue::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = parent_of(pos);
    if (!before(e, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, e);
}

void EventQueue::sift_down(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = children_of(pos);
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, e);
}

EventQueue::~EventQueue() {
  for (std::uint32_t idx = 0; idx < slot_count_; ++idx) slot(idx).~Slot();
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = pos_[idx];  // freelist threaded through pos_
    return idx;
  }
  XCP_REQUIRE(slot_count_ < kNil, "event slab full");
  const std::uint32_t capacity =
      ((1u << chunks_.size()) - 1u) << kFirstChunkShift;
  if (slot_count_ == capacity) {
    static_assert(alignof(Slot) <= alignof(std::max_align_t));
    const std::size_t chunk_slots = std::size_t{1}
                                    << (kFirstChunkShift + chunks_.size());
    chunks_.push_back(Chunk(static_cast<std::byte*>(
        ::operator new[](chunk_slots * sizeof(Slot)))));
  }
  pos_.push_back(kNil);
  const std::uint32_t idx = slot_count_++;
  ::new (static_cast<void*>(&slot(idx))) Slot();
  return idx;
}

void EventQueue::release_slot(std::uint32_t idx) {
  Slot& s = slot(idx);
  s.fn.reset();  // release captures promptly (no-op after a pop's move-out)
  ++s.gen;       // invalidates every outstanding id for this slot
  pos_[idx] = free_head_;
  free_head_ = idx;
}

EventId EventQueue::push(TimePoint at, EventFn fn) {
  // HeapEntry's tie-break field is 32 bits; 2^32 pushes per queue is far
  // beyond the simulator's event limit, but fail loudly rather than let
  // same-instant ordering silently wrap.
  XCP_REQUIRE(next_seq_ <= 0xffffffffu, "event sequence space exhausted");
  const std::uint32_t idx = acquire_slot();
  Slot& s = slot(idx);
  s.fn = std::move(fn);
  heap_.push_back(
      HeapEntry{at, static_cast<std::uint32_t>(next_seq_++), idx});
  pos_[idx] = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  return make_id(s.gen, idx);
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  const std::uint32_t idx = slot_of(id);
  if (idx >= slot_count_) return false;
  // A slot's generation matches an id only while that id's event is live:
  // release bumps it, so fired/cancelled/reused handles all mismatch.
  if (slot(idx).gen != gen_of(id)) return false;
  remove_at(pos_[idx]);
  return true;
}

void EventQueue::remove_at(std::size_t pos) {
  XCP_REQUIRE(pos < heap_.size(), "corrupt heap position");
  const std::uint32_t idx = heap_[pos].slot;
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (idx != moved.slot) {
    place(pos, moved);
    if (pos > 0 && before(moved, heap_[(pos - 1) / 4])) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  }
  release_slot(idx);
}

TimePoint EventQueue::next_time() const {
  XCP_REQUIRE(!heap_.empty(), "next_time on empty queue");
  return heap_[0].at;
}

EventQueue::Popped EventQueue::pop() {
  XCP_REQUIRE(!heap_.empty(), "pop on empty queue");
  const std::uint32_t idx = heap_[0].slot;
  Popped out{heap_[0].at, std::move(slot(idx).fn)};
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (!heap_.empty() && idx != moved.slot) {
    place(0, moved);
    sift_down(0);
  }
  release_slot(idx);
  if (!heap_.empty()) {
    // Start fetching the next event's callable now; in drain loops this
    // hides the slab access behind the caller's work.
    __builtin_prefetch(&slot(heap_[0].slot));
  }
  return out;
}

}  // namespace xcp::sim
