#include "sim/event_queue.hpp"

#include <algorithm>
#include <limits>

#include "support/status.hpp"

namespace xcp::sim {

namespace {

constexpr std::uint32_t slot_of(EventId id) {
  return static_cast<std::uint32_t>(id);
}
constexpr std::uint32_t gen_of(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}
constexpr EventId make_id(std::uint32_t gen, std::uint32_t slot) {
  return (static_cast<EventId>(gen) << 32) | slot;
}

}  // namespace

void EventQueue::place(std::size_t pos, const HeapEntry& e) {
  heap_[pos] = e;
  pos_[e.slot] = static_cast<std::uint32_t>(pos);
}

void EventQueue::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = parent_of(pos);
    if (!before(e, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, e);
}

void EventQueue::sift_down(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = children_of(pos);
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, e);
}

EventQueue::~EventQueue() {
  for (std::uint32_t idx = 0; idx < slot_count_; ++idx) slot(idx).~Slot();
  for (std::uint32_t c = 0; c < chunk_count_; ++c) {
    ::operator delete[](static_cast<void*>(chunks_[c]));
  }
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = pos_[idx];  // freelist threaded through pos_
    return idx;
  }
  XCP_REQUIRE(slot_count_ < kNil, "event slab full");
  const std::uint32_t capacity =
      ((1u << chunk_count_) - 1u) << kFirstChunkShift;
  if (slot_count_ == capacity) {
    static_assert(alignof(Slot) <= alignof(std::max_align_t));
    XCP_REQUIRE(chunk_count_ < kMaxChunks, "event slab chunk table full");
    const std::size_t chunk_slots = std::size_t{1}
                                    << (kFirstChunkShift + chunk_count_);
    chunks_[chunk_count_++] = static_cast<Slot*>(
        ::operator new[](chunk_slots * sizeof(Slot)));
  }
  pos_.push_back(kNil);
  const std::uint32_t idx = slot_count_++;
  ::new (static_cast<void*>(&slot(idx))) Slot();
  return idx;
}

void EventQueue::release_slot(Slot& s, std::uint32_t idx) {
  s.fn.reset();  // release captures promptly (no-op after a pop's move-out)
  ++s.gen;       // invalidates every outstanding id for this slot
  pos_[idx] = free_head_;
  free_head_ = idx;
}

void EventQueue::push_heap_entry(const HeapEntry& e) {
  // Heap positions share pos_ with kWheelBit-tagged wheel node indices;
  // fail loudly (like the seq-wrap guard) rather than let a position's top
  // bit silently alias the tag. 2^31 live events is ~200 GB of slots, but
  // loud beats corrupt.
  XCP_REQUIRE(heap_.size() < kWheelBit, "event heap position space exhausted");
  // xcp-lint: allow(hotpath-alloc) amortized warm capacity: the vector
  // grows geometrically to its high-water mark during warm-up, after which
  // push_back never reallocates (test_alloc's counting allocator enforces
  // the steady state this grant relies on).
  heap_.push_back(e);
  pos_[e.slot] = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
}

void EventQueue::sync_wheel() {
  // Drain every wheel slot due at or before the heap head; afterwards the
  // heap head is the global (at, seq) minimum. Each flush advances the
  // wheel cursor, so the loop terminates (no pushes happen mid-drain).
  // The common not-due-yet case costs one compare against the wheel's
  // cached lower bound; the slot-bitmap scan only runs when a slot might
  // actually be due.
  while (!wheel_.empty()) {
    const std::int64_t heap_top = heap_.empty()
                                      ? std::numeric_limits<std::int64_t>::max()
                                      : heap_[0].at.count();
    if (wheel_.next_due_lower_bound() > heap_top) break;
    const TimerWheel::DetachedView due =
        wheel_.detach_earliest_if_due(heap_top);
    if (due.size == 0) break;  // exact bound refreshed: not due
    // The bucket is on loan until released; if anything below throws, the
    // scope restores it (entries intact, loan returned) instead of leaving
    // the wheel's detach latch stuck. Throwing is confined to the guarded
    // reservation: after it, moving entries into the heap cannot fail, so
    // an entry is never both restored to the wheel and pushed to the heap.
    TimerWheel::DetachScope scope(wheel_);
    XCP_REQUIRE(heap_.size() + due.size < kWheelBit,
                "event heap position space exhausted");
    if (heap_.capacity() - heap_.size() < due.size) {
      // Keep vector growth geometric: repeated exact-size reserves would
      // otherwise reallocate on every drain once the heap is near capacity.
      // xcp-lint: allow(hotpath-alloc) guarded cold branch: it runs only
      // until the heap reaches its high-water mark, then never again
      // (test_alloc's counting allocator enforces the warm state).
      heap_.reserve(std::max(heap_.size() + due.size, heap_.capacity() * 2));
    }
    // One contiguous walk of the bucket's entry array, skipping free
    // entries (cancelled positions awaiting reuse); the heap restores the
    // (at, seq) total order, so the array's scrambled order is irrelevant
    // to the pop sequence.
    std::size_t consumed = 0;
    for (std::size_t i = 0; i < due.size; ++i) {
      const TimerWheel::Entry& e = due.data[i];
      if (e.idx == TimerWheel::kNone) continue;
      push_heap_entry(HeapEntry{e.at, e.seq, e.idx});
      ++consumed;
    }
    scope.release(consumed);
  }
}

EventQueue::PushTicket EventQueue::begin_push(TimePoint at) {
  // HeapEntry's tie-break field is 32 bits; 2^32 pushes per queue is far
  // beyond the simulator's event limit, but fail loudly rather than let
  // same-instant ordering silently wrap.
  XCP_REQUIRE(next_seq_ <= 0xffffffffu, "event sequence space exhausted");
  const std::uint32_t idx = acquire_slot();
  Slot& s = slot(idx);
  const auto seq = static_cast<std::uint32_t>(next_seq_++);
  if (wheel_enabled_) {
    // A fully-drained queue being refilled (a fresh run, or a benchmark
    // reusing one instance) gets its wheel rewound so the new epoch's
    // timeouts take the O(1) path again.
    if (heap_.empty() && wheel_.empty() &&
        at.count() != std::numeric_limits<std::int64_t>::min()) {
      wheel_.reset_cursor(at.count() - 1);
    }
    const std::uint32_t locator = wheel_.try_insert(at, seq, idx);
    if (locator != TimerWheel::kNone) {
      pos_[idx] = kWheelBit | locator;
      return PushTicket{&s.fn, make_id(s.gen, idx)};
    }
  }
  push_heap_entry(HeapEntry{at, seq, idx});
  return PushTicket{&s.fn, make_id(s.gen, idx)};
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  const std::uint32_t idx = slot_of(id);
  if (idx >= slot_count_) return false;
  // A slot's generation matches an id only while that id's event is live:
  // release bumps it, so fired/cancelled/reused handles all mismatch.
  Slot& s = slot(idx);
  if (s.gen != gen_of(id)) return false;
  const std::uint32_t p = pos_[idx];
  if (p & kWheelBit) {
    wheel_.erase(p & ~kWheelBit);
    release_slot(s, idx);
  } else {
    remove_at(p);
  }
  return true;
}

void EventQueue::remove_at(std::size_t pos) {
  XCP_REQUIRE(pos < heap_.size(), "corrupt heap position");
  const std::uint32_t idx = heap_[pos].slot;
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (idx != moved.slot) {
    place(pos, moved);
    if (pos > 0 && before(moved, heap_[(pos - 1) / 4])) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  }
  release_slot(slot(idx), idx);
}

TimePoint EventQueue::next_time() {
  XCP_REQUIRE(!empty(), "next_time on empty queue");
  sync_wheel();
  return heap_[0].at;
}

EventQueue::Popped EventQueue::pop() {
  XCP_REQUIRE(!empty(), "pop on empty queue");
  sync_wheel();
  const std::uint32_t idx = heap_[0].slot;
  Slot& s = slot(idx);
  Popped out{heap_[0].at, std::move(s.fn)};
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (!heap_.empty() && idx != moved.slot) {
    place(0, moved);
    sift_down(0);
  }
  release_slot(s, idx);
  if (!heap_.empty()) {
    // Start fetching the next event's callable now; in drain loops this
    // hides the slab access behind the caller's work.
    __builtin_prefetch(&slot(heap_[0].slot));
  }
  return out;
}

}  // namespace xcp::sim
