#include "sim/event_queue.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace xcp::sim {

EventId EventQueue::push(TimePoint at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  cancelled_.insert(id);
}

void EventQueue::drop_cancelled_top() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    heap_.pop_back();
  }
}

bool EventQueue::empty() const {
  drop_cancelled_top();
  return heap_.empty();
}

TimePoint EventQueue::next_time() const {
  drop_cancelled_top();
  XCP_REQUIRE(!heap_.empty(), "next_time on empty queue");
  return heap_.front().at;
}

std::pair<TimePoint, std::function<void()>> EventQueue::pop() {
  drop_cancelled_top();
  XCP_REQUIRE(!heap_.empty(), "pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  return {e.at, std::move(e.fn)};
}

}  // namespace xcp::sim
