#include "ledger/ledger.hpp"

#include <algorithm>

namespace xcp::ledger {

void Ledger::mint(sim::ProcessId who, Amount amount) {
  XCP_REQUIRE(!amount.is_negative(), "cannot mint negative value");
  balances_[Key{who.value(), amount.currency().id()}] += amount.units();
  supply_[amount.currency().id()] += amount.units();
}

Amount Ledger::balance(sim::ProcessId who, Currency c) const {
  auto it = balances_.find(Key{who.value(), c.id()});
  return Amount(it == balances_.end() ? 0 : it->second, c);
}

Status Ledger::transfer(sim::ProcessId from, sim::ProcessId to, Amount amount,
                        TimePoint at, TransferId* out_id) {
  if (amount.units() <= 0) {
    return Status::error("transfer amount must be positive");
  }
  if (from == to) {
    return Status::error("self-transfer");
  }
  auto& from_bal = balances_[Key{from.value(), amount.currency().id()}];
  if (from_bal < amount.units()) {
    return Status::error("insufficient funds: p" + std::to_string(from.value()) +
                         " holds " + std::to_string(from_bal) + ", needs " +
                         std::to_string(amount.units()) + " " +
                         amount.currency().code());
  }
  from_bal -= amount.units();
  balances_[Key{to.value(), amount.currency().id()}] += amount.units();

  TransferReceipt r;
  r.id = receipts_.size() + 1;
  r.from = from;
  r.to = to;
  r.amount = amount;
  r.at = at;
  receipts_.push_back(r);
  if (out_id != nullptr) *out_id = r.id;

  if (trace_ != nullptr) {
    props::TraceEvent e;
    e.kind = props::EventKind::kTransfer;
    e.at = at;
    e.local_at = at;
    e.actor = from;
    e.peer = to;
    e.amount = amount;
    trace_->record(e);
  }
  return Status::ok();
}

std::optional<TransferReceipt> Ledger::receipt(TransferId id) const {
  if (id == kInvalidTransfer || id > receipts_.size()) return std::nullopt;
  return receipts_[id - 1];
}

bool Ledger::verify_incoming(TransferId id, sim::ProcessId expected_to,
                             Amount expected_amount) const {
  const auto r = receipt(id);
  if (!r) return false;
  if (r->to != expected_to) return false;
  if (r->amount.currency() != expected_amount.currency()) return false;
  return !r->amount.less_than(expected_amount);
}

bool Ledger::verify_exact(TransferId id, sim::ProcessId expected_from,
                          sim::ProcessId expected_to,
                          Amount expected_amount) const {
  const auto r = receipt(id);
  if (!r) return false;
  return r->from == expected_from && r->to == expected_to &&
         r->amount == expected_amount;
}

std::int64_t Ledger::total_supply(Currency c) const {
  auto it = supply_.find(c.id());
  return it == supply_.end() ? 0 : it->second;
}

std::int64_t Ledger::sum_of_balances(Currency c) const {
  std::int64_t sum = 0;
  // xcp-lint: allow(determinism-unordered-iter) integer sum, fold is
  // order-insensitive (addition over int64 is commutative/associative).
  for (const auto& [key, units] : balances_) {
    if (key.cur == c.id()) sum += units;
  }
  return sum;
}

std::vector<Amount> Ledger::holdings(sim::ProcessId who) const {
  std::vector<Amount> out;
  // xcp-lint: allow(determinism-unordered-iter) collection is sorted by
  // currency below before returning, so hash order never escapes.
  for (const auto& [key, units] : balances_) {
    if (key.pid == who.value() && units != 0) {
      out.emplace_back(units, Currency(key.cur));
    }
  }
  std::sort(out.begin(), out.end(), [](const Amount& a, const Amount& b) {
    return a.currency().id() < b.currency().id();
  });
  return out;
}

}  // namespace xcp::ledger
