#pragma once
// The value substrate. The paper's "$" messages move real value; here the
// Ledger is the single source of truth for who holds what. A transfer debits
// the sender at initiation and produces a TransferReceipt; the "$" message
// carries the receipt id, and the receiver *verifies* it before treating the
// payment as made. A Byzantine process can therefore claim to have paid, but
// cannot fake the receipt — the analogue of not being able to mint money.
//
// The ledger enforces: no overdrafts, per-currency conservation (checked by
// an always-on audit), and append-only receipts.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "props/trace.hpp"
#include "sim/process.hpp"
#include "support/amount.hpp"
#include "support/status.hpp"

namespace xcp::ledger {

using TransferId = std::uint64_t;
inline constexpr TransferId kInvalidTransfer = 0;

struct TransferReceipt {
  TransferId id = kInvalidTransfer;
  sim::ProcessId from;
  sim::ProcessId to;
  Amount amount;
  TimePoint at;  // global time of the debit
};

class Ledger {
 public:
  explicit Ledger(props::TraceRecorder* trace = nullptr) : trace_(trace) {}

  /// Creates value out of thin air; only for scenario setup.
  void mint(sim::ProcessId who, Amount amount);

  Amount balance(sim::ProcessId who, Currency c) const;

  /// Moves value; fails (without side effects) on overdraft or non-positive
  /// amounts. On success appends a receipt and returns its id.
  Status transfer(sim::ProcessId from, sim::ProcessId to, Amount amount,
                  TimePoint at, TransferId* out_id = nullptr);

  /// Looks up a receipt; nullopt for unknown ids.
  std::optional<TransferReceipt> receipt(TransferId id) const;

  /// True iff `id` names a completed transfer to `expected_to` of at least
  /// `expected_amount` (receivers use >= so commissions can't be griefed by
  /// overpaying). Exact-match variant available via verify_exact.
  bool verify_incoming(TransferId id, sim::ProcessId expected_to,
                       Amount expected_amount) const;
  bool verify_exact(TransferId id, sim::ProcessId expected_from,
                    sim::ProcessId expected_to, Amount expected_amount) const;

  /// Total units in existence for a currency (minted supply). The audit
  /// invariant: sum of balances == total_supply at all times.
  std::int64_t total_supply(Currency c) const;
  std::int64_t sum_of_balances(Currency c) const;

  /// Snapshot of a process's balance in every currency it ever touched.
  std::vector<Amount> holdings(sim::ProcessId who) const;

  const std::vector<TransferReceipt>& receipts() const { return receipts_; }

 private:
  struct Key {
    std::uint32_t pid;
    std::uint16_t cur;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return (static_cast<std::size_t>(k.pid) << 16) ^ k.cur;
    }
  };

  props::TraceRecorder* trace_;
  std::unordered_map<Key, std::int64_t, KeyHash> balances_;
  std::unordered_map<std::uint16_t, std::int64_t> supply_;
  std::vector<TransferReceipt> receipts_;  // receipts_[id-1]
};

}  // namespace xcp::ledger
