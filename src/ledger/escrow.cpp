#include "ledger/escrow.hpp"

namespace xcp::ledger {

const char* escrow_state_name(EscrowState s) {
  switch (s) {
    case EscrowState::kLocked: return "locked";
    case EscrowState::kCompleted: return "completed";
    case EscrowState::kRefunded: return "refunded";
  }
  return "?";
}

Status EscrowRegistry::lock(sim::ProcessId escrow, sim::ProcessId depositor,
                            sim::ProcessId beneficiary, Amount amount,
                            TransferId tid, TimePoint at,
                            std::uint64_t* out_deal) {
  if (!ledger_.verify_incoming(tid, escrow, amount)) {
    return Status::error("escrow lock: transfer receipt does not fund escrow");
  }
  const auto r = ledger_.receipt(tid);
  if (r->from != depositor) {
    return Status::error("escrow lock: receipt not from claimed depositor");
  }
  EscrowDeal d;
  d.id = deals_.size() + 1;
  d.escrow = escrow;
  d.depositor = depositor;
  d.beneficiary = beneficiary;
  d.amount = amount;
  d.state = EscrowState::kLocked;
  d.locked_at = at;
  deals_.push_back(d);
  if (out_deal != nullptr) *out_deal = d.id;
  record(props::EventKind::kEscrowLock, d, at);
  return Status::ok();
}

Status EscrowRegistry::complete(std::uint64_t deal_id, TimePoint at,
                                TransferId* out_tid) {
  if (deal_id == 0 || deal_id > deals_.size()) {
    return Status::error("unknown escrow deal");
  }
  EscrowDeal& d = deals_[deal_id - 1];
  if (d.state != EscrowState::kLocked) {
    return Status::error(std::string("complete on ") + escrow_state_name(d.state) +
                         " deal");
  }
  Status s = ledger_.transfer(d.escrow, d.beneficiary, d.amount, at, out_tid);
  if (!s) return s;
  d.state = EscrowState::kCompleted;
  d.resolved_at = at;
  record(props::EventKind::kEscrowComplete, d, at);
  return Status::ok();
}

Status EscrowRegistry::refund(std::uint64_t deal_id, TimePoint at,
                              TransferId* out_tid) {
  if (deal_id == 0 || deal_id > deals_.size()) {
    return Status::error("unknown escrow deal");
  }
  EscrowDeal& d = deals_[deal_id - 1];
  if (d.state != EscrowState::kLocked) {
    return Status::error(std::string("refund on ") + escrow_state_name(d.state) +
                         " deal");
  }
  Status s = ledger_.transfer(d.escrow, d.depositor, d.amount, at, out_tid);
  if (!s) return s;
  d.state = EscrowState::kRefunded;
  d.resolved_at = at;
  record(props::EventKind::kEscrowRefund, d, at);
  return Status::ok();
}

const EscrowDeal* EscrowRegistry::deal(std::uint64_t deal_id) const {
  if (deal_id == 0 || deal_id > deals_.size()) return nullptr;
  return &deals_[deal_id - 1];
}

std::vector<const EscrowDeal*> EscrowRegistry::unresolved() const {
  std::vector<const EscrowDeal*> out;
  for (const auto& d : deals_) {
    if (d.state == EscrowState::kLocked) out.push_back(&d);
  }
  return out;
}

void EscrowRegistry::record(props::EventKind kind, const EscrowDeal& d,
                            TimePoint at) {
  if (trace_ == nullptr) return;
  props::TraceEvent e;
  e.kind = kind;
  e.at = at;
  e.local_at = at;
  e.actor = d.escrow;
  e.peer = kind == props::EventKind::kEscrowComplete ? d.beneficiary : d.depositor;
  e.amount = d.amount;
  trace_->record(e);
}

}  // namespace xcp::ledger
