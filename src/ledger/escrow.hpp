#pragma once
// Escrow deals over the ledger.
//
// "Two customers may make a deal with an escrow to place value from the
// first customer in escrow, and, after a predefined period, depending on
// which conditions are met, either complete the transfer to the second
// customer, or return the value to the first one." (Sec. 2)
//
// EscrowRegistry tracks each deal's lifecycle so that (a) escrow processes
// have a uniform lock/complete/refund API with the ledger operations and
// trace events bundled, and (b) the ES/CS property checkers can audit that
// every locked deposit was either completed or refunded — never both, never
// neither (for abiding escrows).

#include <cstdint>
#include <vector>

#include "ledger/ledger.hpp"

namespace xcp::ledger {

enum class EscrowState { kLocked, kCompleted, kRefunded };

const char* escrow_state_name(EscrowState s);

struct EscrowDeal {
  std::uint64_t id = 0;
  sim::ProcessId escrow;       // the escrow process holding the funds
  sim::ProcessId depositor;    // upstream customer who paid in
  sim::ProcessId beneficiary;  // downstream customer to pay on completion
  Amount amount;
  EscrowState state = EscrowState::kLocked;
  TimePoint locked_at;
  TimePoint resolved_at;
};

class EscrowRegistry {
 public:
  EscrowRegistry(Ledger& ledger, props::TraceRecorder* trace = nullptr)
      : ledger_(ledger), trace_(trace) {}

  /// Records that `escrow` holds `amount` received from `depositor` via the
  /// verified incoming transfer `tid`, to be paid to `beneficiary` on
  /// completion. Fails if the receipt does not actually fund the escrow.
  Status lock(sim::ProcessId escrow, sim::ProcessId depositor,
              sim::ProcessId beneficiary, Amount amount, TransferId tid,
              TimePoint at, std::uint64_t* out_deal = nullptr);

  /// Pays the locked amount to the beneficiary. Fails unless Locked.
  Status complete(std::uint64_t deal_id, TimePoint at,
                  TransferId* out_tid = nullptr);

  /// Returns the locked amount to the depositor. Fails unless Locked.
  Status refund(std::uint64_t deal_id, TimePoint at,
                TransferId* out_tid = nullptr);

  const EscrowDeal* deal(std::uint64_t deal_id) const;
  const std::vector<EscrowDeal>& deals() const { return deals_; }

  /// Deals still locked (used by checkers: an abiding escrow must end with
  /// none, matching [3]'s "no asset is escrowed forever").
  std::vector<const EscrowDeal*> unresolved() const;

 private:
  void record(props::EventKind kind, const EscrowDeal& d, TimePoint at);

  Ledger& ledger_;
  props::TraceRecorder* trace_;
  std::vector<EscrowDeal> deals_;
};

}  // namespace xcp::ledger
