#include "support/pool.hpp"

#include <array>
#include <mutex>
#include <vector>

#include "support/status.hpp"

namespace xcp::detail {

BlockPool::BlockPool(std::size_t block_size) : block_size_(block_size) {
  XCP_REQUIRE(block_size_ >= sizeof(Node), "pool block below node size");
}

void BlockPool::check_owner() const {
#ifndef NDEBUG
  // A BlockPool is single-threaded state. pool_for() hands each thread its
  // own set, so this only fires when a pool pointer is smuggled across
  // threads — exactly the misuse that silently corrupts a freelist in
  // release builds.
  XCP_REQUIRE(owner_ == std::this_thread::get_id(),
              "BlockPool used from a thread other than its owner");
#endif
}

void* BlockPool::allocate() {
  check_owner();
  ++total_allocs_;
  if (free_ != nullptr) {
    ++freelist_hits_;
    Node* n = free_;
    free_ = n->next;
    return n;
  }
  if (bump_ == bump_end_) {
    const std::size_t blocks = next_slab_blocks_;
    next_slab_blocks_ *= 2;
    auto slab = std::make_unique<std::byte[]>(blocks * block_size_);
    bump_ = slab.get();
    bump_end_ = bump_ + blocks * block_size_;
    slabs_.push_back(std::move(slab));
  }
  std::byte* p = bump_;
  bump_ += block_size_;
  return p;
}

void BlockPool::deallocate(void* p) {
  check_owner();
  Node* n = static_cast<Node*>(p);
  n->next = free_;
  free_ = n;
}

BlockPool* pool_for(std::size_t size) {
  if (size > kMaxPooledBlock) return nullptr;
  constexpr std::size_t kClassBytes = 32;
  constexpr std::size_t kClasses = kMaxPooledBlock / kClassBytes;
  // max_align_t is 16 on x86-64, so 32-byte classes keep every block
  // suitably aligned as long as slabs start aligned (make_unique of byte[]
  // yields operator new[] alignment, i.e. max_align_t).
  static_assert(kClassBytes % alignof(std::max_align_t) == 0);
  const std::size_t cls = (size + kClassBytes - 1) / kClassBytes;
  // One pool set per thread: sweep workers allocate and free without any
  // synchronisation, and cross-thread frees just migrate blocks between
  // threads' freelists (slabs are immortal, so that is safe).
  static thread_local std::array<BlockPool*, kClasses + 1> pools = {};
  BlockPool*& pool = pools[cls];
  if (pool == nullptr) {
    // Pools are immortal by design: bodies may be released during static
    // destruction, or on another thread long after the allocating thread
    // exited, so no teardown order is safe. Park each pool in a
    // process-lifetime registry (itself never destroyed) so the
    // immortality is an explicit live root rather than an allocation that
    // becomes unreachable when the owning thread's TLS is torn down —
    // without this, LeakSanitizer reports every exited worker's pools.
    pool = new BlockPool(cls * kClassBytes);
    static std::mutex registry_mu;
    static std::vector<BlockPool*>* registry = new std::vector<BlockPool*>();
    const std::lock_guard<std::mutex> lock(registry_mu);
    registry->push_back(pool);
  }
  return pool;
}

}  // namespace xcp::detail
