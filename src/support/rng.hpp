#pragma once
// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the simulator (message delays, clock-drift
// rates, adversary decisions) is drawn from an Rng that is seeded explicitly,
// so that every experiment is reproducible from its (seed, config) pair and
// failures found by randomized property tests can be replayed.
//
// Implementation: xoshiro256** (Blackman & Vigna), seeded via splitmix64 —
// the standard recommendation for seeding xoshiro-family generators.

#include <cstdint>

#include "support/time.hpp"

namespace xcp {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound), bias-free via rejection. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Bernoulli trial.
  bool next_bool(double p_true);

  /// Uniform duration in [lo, hi] inclusive (microsecond resolution).
  Duration next_duration(Duration lo, Duration hi);

  /// Derives an independent child generator; used to give each process /
  /// network link its own stream so adding a draw in one component does not
  /// perturb the others.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace xcp
