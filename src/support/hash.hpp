#pragma once
// Non-cryptographic hashing used by the *simulated* signature scheme and for
// content addressing of blocks/transactions. See crypto/signature.hpp for why
// a simulated scheme is sound in this model.

#include <cstdint>
#include <string>
#include <string_view>

namespace xcp {

/// FNV-1a 64-bit over a byte string.
std::uint64_t fnv1a64(std::string_view bytes);

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xffffffff) — the checksum
/// framing the write-ahead journal uses to detect torn and corrupt records
/// (net/wal.hpp). Table-driven, byte-at-a-time.
std::uint32_t crc32(const void* data, std::size_t size);
inline std::uint32_t crc32(std::string_view bytes) {
  return crc32(bytes.data(), bytes.size());
}

/// Order-dependent combinator (boost-style golden-ratio mix).
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

/// A tiny growable byte-buffer for hashing structured data in a canonical,
/// platform-independent order. All protocol objects that get signed or
/// content-addressed serialize through this.
class HashWriter {
 public:
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_u32(std::uint32_t v);
  void write_str(std::string_view s);

  /// Digest of everything written so far.
  std::uint64_t digest() const;

  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

}  // namespace xcp
