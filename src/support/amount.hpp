#pragma once
// Money amounts with checked integer arithmetic and explicit currencies.
//
// The paper allows the values transferred on each hop to differ (commissions)
// and even be expressed in different currencies; an Amount therefore pairs an
// integer quantity of minor units with a currency tag, and cross-currency
// arithmetic is a programming error caught at runtime.

#include <cstdint>
#include <compare>
#include <stdexcept>
#include <string>

namespace xcp {

/// A currency (or asset-type) tag. Small integer id plus human-readable code.
class Currency {
 public:
  constexpr Currency() = default;
  constexpr explicit Currency(std::uint16_t id) : id_(id) {}

  constexpr std::uint16_t id() const { return id_; }
  constexpr auto operator<=>(const Currency&) const = default;

  std::string code() const;

  // Pre-registered convenience currencies for examples and tests.
  static constexpr Currency generic() { return Currency(0); }
  static constexpr Currency usd() { return Currency(1); }
  static constexpr Currency eur() { return Currency(2); }
  static constexpr Currency btc() { return Currency(3); }
  static constexpr Currency eth() { return Currency(4); }

 private:
  std::uint16_t id_ = 0;
};

/// Thrown on overflow or cross-currency arithmetic: both indicate a bug in
/// protocol code, not a recoverable runtime condition.
class AmountError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An integer quantity of minor units of one currency. Checked add/sub.
class Amount {
 public:
  constexpr Amount() = default;
  constexpr Amount(std::int64_t units, Currency c) : units_(units), currency_(c) {}

  static constexpr Amount zero(Currency c = Currency::generic()) { return Amount(0, c); }

  constexpr std::int64_t units() const { return units_; }
  constexpr Currency currency() const { return currency_; }
  constexpr bool is_zero() const { return units_ == 0; }
  constexpr bool is_negative() const { return units_ < 0; }

  Amount operator+(Amount o) const;
  Amount operator-(Amount o) const;
  Amount operator-() const { return Amount(-units_, currency_); }
  Amount& operator+=(Amount o) { return *this = *this + o; }
  Amount& operator-=(Amount o) { return *this = *this - o; }

  /// Ordering is only defined within one currency.
  bool operator==(const Amount& o) const {
    return units_ == o.units_ && currency_ == o.currency_;
  }
  bool less_than(const Amount& o) const;

  std::string str() const;

 private:
  std::int64_t units_ = 0;
  Currency currency_ = Currency::generic();
};

}  // namespace xcp
