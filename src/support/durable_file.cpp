#include "support/durable_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace xcp {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("durable file: " + what + " " + path + ": " +
                           std::strerror(errno));
}

std::string parent_dir_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void write_fully(int fd, const void* data, std::size_t size,
                 const std::string& path) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, p + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write", path);
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

AppendFile::~AppendFile() { close(); }

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

void AppendFile::open(const std::string& path) {
  close();
  // O_APPEND is deliberately absent: truncate() must be able to cut a torn
  // tail and subsequent appends land at the new end via explicit lseek.
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) fail("open", path);
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    fail("lseek", path);
  }
  fd_ = fd;
  path_ = path;
}

void AppendFile::append(const void* data, std::size_t size) {
  if (fd_ < 0) throw std::runtime_error("durable file: append on closed file");
  write_fully(fd_, data, size, path_);
}

void AppendFile::sync() {
  if (fd_ < 0) return;
#if defined(__linux__)
  if (::fdatasync(fd_) < 0 && errno != EINVAL && errno != ENOSYS) {
    fail("fdatasync", path_);
  }
#else
  if (::fsync(fd_) < 0 && errno != EINVAL) fail("fsync", path_);
#endif
}

void AppendFile::truncate(std::uint64_t size) {
  if (fd_ < 0) throw std::runtime_error("durable file: truncate on closed file");
  if (::ftruncate(fd_, static_cast<off_t>(size)) < 0) fail("ftruncate", path_);
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    fail("lseek", path_);
  }
}

std::uint64_t AppendFile::size() const {
  if (fd_ < 0) return 0;
  struct stat st;
  if (::fstat(fd_, &st) < 0) fail("fstat", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

std::vector<std::uint8_t> AppendFile::read_all() const {
  if (fd_ < 0) return {};
  std::vector<std::uint8_t> out(size());
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::pread(fd_, out.data() + off, out.size() - off,
                static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("pread", path_);
    }
    if (n == 0) {  // shrank under us; return what exists
      out.resize(off);
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  return out;
}

void AppendFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void fsync_parent_dir(const std::string& path) {
  const std::string dir = parent_dir_of(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);  // best effort by contract
  ::close(fd);
}

void atomic_replace(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail("open", tmp);
  try {
    write_fully(fd, bytes.data(), bytes.size(), tmp);
    if (::fsync(fd) < 0 && errno != EINVAL) fail("fsync", tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) < 0) {
    ::unlink(tmp.c_str());
    fail("rename", tmp + " -> " + path);
  }
  fsync_parent_dir(path);
}

}  // namespace xcp
