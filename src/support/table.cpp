#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/status.hpp"

namespace xcp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  XCP_REQUIRE(cells.size() == headers_.size(), "table row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += "\"";
    return q;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c ? "," : "") << quote(headers_[c]);
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << quote(row[c]);
    }
    out << "\n";
  }
  return out.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "\n== " << title << " ==\n";
  os << render();
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

std::string Table::fmt(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Table::fmt(bool v) { return v ? "yes" : "no"; }

std::string Table::pct(double fraction, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace xcp
