#pragma once
// The process-wide name interner behind net::MsgKind and props::Label.
//
// One table, one id space: a name interned as a message kind and the same
// name interned as a trace label resolve to the same 32-bit id, so a
// Network can stamp a trace event with a message kind's id without touching
// the table at all.
//
// Threading: read-mostly. Every well-known name (net::kinds::*,
// props::labels::*) is interned during static initialisation — before any
// sweep worker thread exists — so hot paths only ever take the shared
// (reader) lock; first-sight inserts of ad-hoc names take the exclusive
// lock on the seldom path. Resolving an id to its name never invalidates:
// names live for the process lifetime and their storage never moves.

#include <cstdint>
#include <string_view>

namespace xcp::support {

/// Interns `name`, returning its stable id. Id 0 is the empty name. O(1)
/// amortised; allocates only on first sight of a name. Thread-safe.
std::uint32_t intern_name(std::string_view name);

/// The interned name for `id`; aborts on ids this process never produced.
/// The returned view is valid for the process lifetime.
std::string_view interned_name(std::uint32_t id);

/// True iff `id` was produced by intern_name in this process.
bool name_id_known(std::uint32_t id);

/// Non-inserting lookup: the id for `name` if it was ever interned,
/// 0xffffffff otherwise. For read-only query paths that must not grow the
/// table (a probe with an arbitrary string is a question, not a fact).
inline constexpr std::uint32_t kNameNotFound = 0xffffffffu;
std::uint32_t find_name(std::string_view name);

}  // namespace xcp::support
