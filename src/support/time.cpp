#include "support/time.hpp"

#include <cmath>
#include <cstdio>

namespace xcp {

Duration Duration::scaled_up(double factor) const {
  const double scaled = static_cast<double>(us_) * factor;
  return Duration(static_cast<std::int64_t>(std::ceil(scaled)));
}

Duration Duration::scaled_down(double factor) const {
  const double scaled = static_cast<double>(us_) * factor;
  return Duration(static_cast<std::int64_t>(std::floor(scaled)));
}

std::string Duration::str() const {
  char buf[64];
  if (us_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(us_ / 1'000'000));
  } else if (us_ % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(us_ / 1'000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us_));
  }
  return buf;
}

std::string TimePoint::str() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.6fs", to_seconds());
  return buf;
}

}  // namespace xcp
