#include "support/rng.hpp"

#include <cassert>

namespace xcp {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random bits into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

Duration Rng::next_duration(Duration lo, Duration hi) {
  return Duration::micros(next_int(lo.count(), hi.count()));
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace xcp
