#pragma once
// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn on kInfo to narrate protocol runs.

#include <sstream>
#include <string>

namespace xcp {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr with a level prefix. Prefer the XCP_LOG macro.
void log_line(LogLevel level, const std::string& text);

#define XCP_LOG(level, expr)                          \
  do {                                                \
    if (static_cast<int>(level) >=                    \
        static_cast<int>(::xcp::log_level())) {       \
      std::ostringstream xcp_log_os;                  \
      xcp_log_os << expr;                             \
      ::xcp::log_line(level, xcp_log_os.str());       \
    }                                                 \
  } while (0)

}  // namespace xcp
