#include "support/status.hpp"

namespace xcp {

void Status::expect(const char* context) const {
  if (!ok_) {
    throw std::runtime_error(std::string(context) + ": " + msg_);
  }
}

}  // namespace xcp
