#pragma once
// A move-only, type-erased `void()` callable with small-buffer optimisation.
// Callables whose captures fit in `Capacity` bytes (and are nothrow-movable)
// live entirely inside the object; larger ones fall back to the heap. The
// event queue stores these so that scheduling a typical
// capture-a-few-pointers lambda performs no allocation at all.
//
// Trivial fast path: captures that are trivially copyable and trivially
// destructible (pointers, ids, PODs — almost every timer closure) relocate
// with an inline fixed-size copy and destroy as a no-op, so the hot
// schedule/cancel cycle pays zero indirect calls; only invocation and
// non-trivial captures (e.g. a shared_ptr-carrying delivery Message) go
// through the erased ops table.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace xcp {

template <std::size_t Capacity>
class InlineCallable {
  static_assert(Capacity >= sizeof(void*), "capacity below pointer size");

 public:
  InlineCallable() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallable> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallable(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    init(std::forward<F>(f));
  }

  InlineCallable(InlineCallable&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      relocate_from(o);
      o.ops_ = nullptr;
    }
  }

  InlineCallable& operator=(InlineCallable&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        relocate_from(o);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallable(const InlineCallable&) = delete;
  InlineCallable& operator=(const InlineCallable&) = delete;

  ~InlineCallable() { reset(); }

  /// Destroys the held callable (releasing its captures), leaving empty.
  /// A no-op beyond clearing the ops pointer for trivial captures.
  void reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Replaces the held callable, constructing the new one directly in
  /// place — the zero-copy path the event queue uses to build a scheduled
  /// closure straight into its slot (no stack temporary, no move chain).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallable> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& f) {
    reset();
    init(std::forward<F>(f));
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  /// True when the callable lives in the inline buffer (no heap storage).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, end src
    void (*destroy)(void*);
    bool inline_storage;
    // Trivially copyable + trivially destructible inline capture: relocate
    // is a plain byte copy done inline at the call site (no indirect call)
    // and destroy is skipped entirely.
    bool trivial;
  };

  void relocate_from(InlineCallable& o) {
    if (ops_->trivial) {
      // Fixed-size copy: compiles to a handful of wide stores, no call.
      __builtin_memcpy(buf_, o.buf_, Capacity);
    } else {
      ops_->relocate(buf_, o.buf_);
    }
  }

  template <typename F>
  void init(F&& f) {
    using D = std::decay_t<F>;
    constexpr bool kFitsInline = sizeof(D) <= Capacity &&
                                 alignof(D) <= alignof(std::max_align_t) &&
                                 std::is_nothrow_move_constructible_v<D>;
    if constexpr (kFitsInline) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      static constexpr Ops ops = {
          [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
          [](void* dst, void* src) {
            D* s = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
          },
          [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
          true,
          std::is_trivially_copyable_v<D> &&
              std::is_trivially_destructible_v<D>};
      ops_ = &ops;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      static constexpr Ops ops = {
          [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
          [](void* dst, void* src) {
            ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
          },
          [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
          false, false};
      ops_ = &ops;
    }
  }

  alignas(std::max_align_t) std::byte buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace xcp
