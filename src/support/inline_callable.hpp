#pragma once
// A move-only, type-erased `void()` callable with small-buffer optimisation.
// Callables whose captures fit in `Capacity` bytes (and are nothrow-movable)
// live entirely inside the object; larger ones fall back to the heap. The
// event queue stores these so that scheduling a typical
// capture-a-few-pointers lambda performs no allocation at all.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace xcp {

template <std::size_t Capacity>
class InlineCallable {
  static_assert(Capacity >= sizeof(void*), "capacity below pointer size");

 public:
  InlineCallable() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallable> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallable(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    emplace(std::forward<F>(f));
  }

  InlineCallable(InlineCallable&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  InlineCallable& operator=(InlineCallable&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallable(const InlineCallable&) = delete;
  InlineCallable& operator=(const InlineCallable&) = delete;

  ~InlineCallable() { reset(); }

  /// Destroys the held callable (releasing its captures), leaving empty.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  /// True when the callable lives in the inline buffer (no heap storage).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, end src
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    constexpr bool kFitsInline = sizeof(D) <= Capacity &&
                                 alignof(D) <= alignof(std::max_align_t) &&
                                 std::is_nothrow_move_constructible_v<D>;
    if constexpr (kFitsInline) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      static constexpr Ops ops = {
          [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
          [](void* dst, void* src) {
            D* s = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
          },
          [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
          true};
      ops_ = &ops;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      static constexpr Ops ops = {
          [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
          [](void* dst, void* src) {
            ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
          },
          [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
          false};
      ops_ = &ops;
    }
  }

  alignas(std::max_align_t) std::byte buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace xcp
