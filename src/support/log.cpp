#include "support/log.hpp"

#include <cstdio>

namespace xcp {

namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& text) {
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), text.c_str());
}

}  // namespace xcp
