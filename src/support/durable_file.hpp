#pragma once
// Durable file primitives for the write-ahead journal (net/wal.hpp):
//
//   AppendFile      an fd-owning append handle with full-write semantics
//                   (EINTR/short-write loops), explicit fsync, and
//                   truncate-to-length for cutting a torn journal tail;
//   atomic_replace  temp-file + fsync + rename(2) + parent-directory fsync
//                   — the snapshot-compaction idiom: readers see either the
//                   old file or the complete new one, never a partial write.
//
// Everything here reports failure with std::system_error-style runtime
// errors carrying errno text; callers that can continue without durability
// (tests on exotic filesystems) can disable fsync at the WAL layer instead.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xcp {

/// Owning handle to a file opened for appending (created 0644 if missing).
/// Reads are also possible through read_all() for recovery scans.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;

  /// Opens (creating if absent) for read+append. Throws std::runtime_error.
  void open(const std::string& path);
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Appends every byte (loops over EINTR and short writes); throws on any
  /// unrecoverable write error.
  void append(const void* data, std::size_t size);
  void append(const std::vector<std::uint8_t>& bytes) {
    append(bytes.data(), bytes.size());
  }

  /// fdatasync/fsync the file contents to stable storage.
  void sync();

  /// Truncates the file to `size` bytes (cutting a torn tail) and repositions
  /// the append offset.
  void truncate(std::uint64_t size);

  std::uint64_t size() const;

  /// Reads the whole file from offset 0 (recovery scan).
  std::vector<std::uint8_t> read_all() const;

  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Writes `bytes` to `path` atomically: a sibling temp file is written and
/// fsync'd, rename(2)'d over `path`, and the parent directory fsync'd so
/// the rename itself is durable. Throws std::runtime_error on failure.
void atomic_replace(const std::string& path,
                    const std::vector<std::uint8_t>& bytes);

/// Best-effort fsync of the directory containing `path` (makes a freshly
/// created file durable against power loss). No-op on errors: some
/// filesystems refuse O_RDONLY directory fsync and the data fsync already
/// happened.
void fsync_parent_dir(const std::string& path);

}  // namespace xcp
