#include "support/interner.hpp"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "support/status.hpp"

namespace xcp::support {
namespace {

struct Table {
  // Names live in a deque so their storage never moves: the map's
  // string_view keys point into it, and interned_name() may hand out views
  // that outlive any lock.
  std::deque<std::string> names{""};  // id 0 = the empty name
  std::unordered_map<std::string_view, std::uint32_t> ids{{"", 0}};
  mutable std::shared_mutex mu;
};

Table& table() {
  // Leaked: sweep-pool worker threads may intern or resolve names during
  // static destruction; the table must outlive every thread.
  static Table* t = new Table;
  return *t;
}

}  // namespace

std::uint32_t intern_name(std::string_view name) {
  Table& t = table();
  {
    std::shared_lock lock(t.mu);
    if (const auto it = t.ids.find(name); it != t.ids.end()) {
      return it->second;
    }
  }
  std::unique_lock lock(t.mu);
  // Double-check: another thread may have interned it between the locks.
  if (const auto it = t.ids.find(name); it != t.ids.end()) {
    return it->second;
  }
  // Strictly below kNameNotFound: 0xffffffff is the find_name() sentinel
  // and must never be a real id.
  XCP_REQUIRE(t.names.size() < 0xffffffffu, "interned-name space exhausted");
  t.names.emplace_back(name);
  const auto id = static_cast<std::uint32_t>(t.names.size() - 1);
  t.ids.emplace(t.names.back(), id);
  return id;
}

std::string_view interned_name(std::uint32_t id) {
  const Table& t = table();
  std::shared_lock lock(t.mu);
  XCP_REQUIRE(id < t.names.size(), "unknown interned-name id");
  // Safe to return after unlock: deque elements never move, and names are
  // never removed.
  return t.names[id];
}

bool name_id_known(std::uint32_t id) {
  const Table& t = table();
  std::shared_lock lock(t.mu);
  return id < t.names.size();
}

std::uint32_t find_name(std::string_view name) {
  const Table& t = table();
  std::shared_lock lock(t.mu);
  if (const auto it = t.ids.find(name); it != t.ids.end()) {
    return it->second;
  }
  return kNameNotFound;
}

}  // namespace xcp::support
