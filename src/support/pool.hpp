#pragma once
// Freelist pools for fixed-size allocations. Message bodies (and their
// shared_ptr control blocks, via allocate_shared) churn at every delivery;
// routing them through a per-size-class freelist makes steady-state sends
// reuse storage released by earlier deliveries instead of hitting the
// global heap.
//
// Sharding model: pools are *thread-local*. Each thread that allocates
// bodies gets its own per-size-class BlockPool set, so parallel experiment
// sweeps (exp::parallel_sweep) never contend — or race — on a shared
// freelist. A block freed on a different thread than it was allocated on
// simply migrates to the freeing thread's freelist; slabs live until
// process exit, so the block stays valid wherever it ends up. Each
// individual BlockPool therefore remains strictly single-threaded, and
// debug builds enforce that with a thread-ownership check so misuse fails
// loudly instead of corrupting a freelist.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace xcp {

namespace detail {

/// A freelist of fixed-size blocks carved from geometrically-growing slabs.
/// Blocks are aligned to max_align_t and never returned to the OS until
/// process exit: the pool's footprint is the workload's high-water mark.
/// Owned by exactly one thread (pool_for hands each thread its own);
/// allocate/deallocate from any other thread is a bug, asserted in debug
/// builds.
class BlockPool {
 public:
  explicit BlockPool(std::size_t block_size);

  void* allocate();
  void deallocate(void* p);

  std::uint64_t total_allocs() const { return total_allocs_; }
  std::uint64_t freelist_hits() const { return freelist_hits_; }

 private:
  struct Node {
    Node* next;
  };

  void check_owner() const;

  std::size_t block_size_;
  Node* free_ = nullptr;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::byte* bump_ = nullptr;
  std::byte* bump_end_ = nullptr;
  std::size_t next_slab_blocks_ = 16;
  std::uint64_t total_allocs_ = 0;
  std::uint64_t freelist_hits_ = 0;
  // Always present so the class layout is identical across NDEBUG settings
  // (mixed-mode linking would otherwise be an ODR hazard); only the check
  // itself is compiled away in release builds.
  std::thread::id owner_ = std::this_thread::get_id();
};

/// Largest block served from a pool; bigger requests use operator new.
inline constexpr std::size_t kMaxPooledBlock = 512;

/// The *calling thread's* pool for blocks of `size` bytes (rounded up to a
/// 32-byte size class), or nullptr when `size` exceeds kMaxPooledBlock.
BlockPool* pool_for(std::size_t size);

}  // namespace detail

/// Minimal allocator over the size-class freelists; usable with
/// std::allocate_shared so one pooled block holds control block + object.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT: rebinding

  T* allocate(std::size_t n) {
    if (n == 1 && alignof(T) <= alignof(std::max_align_t)) {
      if (detail::BlockPool* pool = detail::pool_for(sizeof(T))) {
        return static_cast<T*>(pool->allocate());
      }
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1 && alignof(T) <= alignof(std::max_align_t)) {
      if (detail::BlockPool* pool = detail::pool_for(sizeof(T))) {
        pool->deallocate(p);
        return;
      }
    }
    ::operator delete(p);
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

}  // namespace xcp
