#include "support/hash.hpp"

#include <array>

namespace xcp {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint32_t crc32(const void* data, std::size_t size) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  // 64-bit analogue of boost::hash_combine.
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

void HashWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void HashWriter::write_i64(std::int64_t v) {
  write_u64(static_cast<std::uint64_t>(v));
}

void HashWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void HashWriter::write_str(std::string_view s) {
  write_u64(s.size());
  buf_.append(s);
}

std::uint64_t HashWriter::digest() const { return fnv1a64(buf_); }

}  // namespace xcp
