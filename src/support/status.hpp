#pragma once
// Lightweight error propagation for operations that may legitimately fail at
// runtime (e.g. a ledger rejecting an overdraft from a Byzantine process).
// Programming errors use assertions / exceptions instead.

#include <stdexcept>
#include <string>
#include <utility>

namespace xcp {

class Status {
 public:
  static Status ok() { return Status(); }
  static Status error(std::string msg) { return Status(std::move(msg)); }

  bool is_ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const std::string& message() const { return msg_; }

  /// Throws if not ok. For call-sites where failure is a bug.
  void expect(const char* context) const;

 private:
  Status() : ok_(true) {}
  explicit Status(std::string msg) : ok_(false), msg_(std::move(msg)) {}
  bool ok_;
  std::string msg_;
};

/// Assertion macro for simulator invariants: always on (benchmarks included)
/// because a silently-corrupt simulation is worthless.
#define XCP_REQUIRE(cond, msg)                                    \
  do {                                                            \
    if (!(cond)) {                                                \
      throw std::logic_error(std::string("XCP_REQUIRE failed: ") + \
                             (msg) + " [" #cond "]");             \
    }                                                             \
  } while (0)

}  // namespace xcp
