#include "support/amount.hpp"

#include <array>
#include <cstdio>

namespace xcp {

std::string Currency::code() const {
  switch (id_) {
    case 0: return "GEN";
    case 1: return "USD";
    case 2: return "EUR";
    case 3: return "BTC";
    case 4: return "ETH";
    default: {
      char buf[16];
      std::snprintf(buf, sizeof buf, "CUR%u", static_cast<unsigned>(id_));
      return buf;
    }
  }
}

namespace {
void require_same_currency(Currency a, Currency b, const char* op) {
  if (a != b) {
    throw AmountError(std::string("cross-currency ") + op + ": " + a.code() +
                      " vs " + b.code());
  }
}
}  // namespace

Amount Amount::operator+(Amount o) const {
  require_same_currency(currency_, o.currency_, "add");
  std::int64_t out = 0;
  if (__builtin_add_overflow(units_, o.units_, &out)) {
    throw AmountError("amount addition overflow");
  }
  return Amount(out, currency_);
}

Amount Amount::operator-(Amount o) const {
  require_same_currency(currency_, o.currency_, "subtract");
  std::int64_t out = 0;
  if (__builtin_sub_overflow(units_, o.units_, &out)) {
    throw AmountError("amount subtraction overflow");
  }
  return Amount(out, currency_);
}

bool Amount::less_than(const Amount& o) const {
  require_same_currency(currency_, o.currency_, "compare");
  return units_ < o.units_;
}

std::string Amount::str() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld %s", static_cast<long long>(units_),
                currency_.code().c_str());
  return buf;
}

}  // namespace xcp
