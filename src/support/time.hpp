#pragma once
// Strong virtual-time types used throughout the simulator and protocols.
//
// All simulated time is kept in integer microseconds (a fixed-point
// representation): the event queue, clock-drift conversions and timelock
// arithmetic stay exact and deterministic, with no floating-point
// accumulation error across long runs.

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace xcp {

/// A span of virtual time, in microseconds. May be negative in intermediate
/// arithmetic (e.g. clock-offset computations) but protocol deadlines are
/// always non-negative.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr static Duration micros(std::int64_t us) { return Duration(us); }
  constexpr static Duration millis(std::int64_t ms) { return Duration(ms * 1000); }
  constexpr static Duration seconds(std::int64_t s) { return Duration(s * 1'000'000); }
  constexpr static Duration zero() { return Duration(0); }
  constexpr static Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t count() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double to_millis() const { return static_cast<double>(us_) / 1e3; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration(us_ + o.us_); }
  constexpr Duration operator-(Duration o) const { return Duration(us_ - o.us_); }
  constexpr Duration operator-() const { return Duration(-us_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(us_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(us_ / k); }
  constexpr Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  constexpr Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }

  /// Scales by a real factor, rounding *up*: deadline inflation (e.g. drift
  /// compensation a_i = A_i * (1+rho)) must never under-approximate.
  Duration scaled_up(double factor) const;
  /// Scales by a real factor, rounding down (for lower bounds).
  Duration scaled_down(double factor) const;

  std::string str() const;

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// An absolute instant of virtual time. The simulator starts at
/// TimePoint::origin() (t = 0). Local clocks map global instants to local
/// instants; both are represented with this type.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr static TimePoint origin() { return TimePoint(0); }
  constexpr static TimePoint micros(std::int64_t us) { return TimePoint(us); }
  constexpr static TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t count() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint(us_ + d.count()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(us_ - d.count()); }
  constexpr Duration operator-(TimePoint o) const { return Duration::micros(us_ - o.us_); }

  std::string str() const;

 private:
  constexpr explicit TimePoint(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

}  // namespace xcp
