#pragma once
// Aligned-column table printing + CSV emission. Every bench binary uses this
// to print the rows/series corresponding to the paper's figures and tables,
// so the output format is uniform across experiments.

#include <iosfwd>
#include <string>
#include <vector>

namespace xcp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns and a rule under the header.
  std::string render() const;

  /// Renders as CSV (RFC-4180-ish quoting).
  std::string to_csv() const;

  /// Convenience: render() to the stream, with an optional title line.
  void print(std::ostream& os, const std::string& title = "") const;

  std::size_t row_count() const { return rows_.size(); }

  // Cell formatting helpers.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(std::int64_t v);
  static std::string fmt(std::uint64_t v);
  static std::string fmt(bool v);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xcp
