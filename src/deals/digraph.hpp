#pragma once
// Directed graphs over deal parties: strong connectivity (Tarjan) decides
// well-formedness of a cross-chain deal [3]; BFS depths parameterize the
// timelock commit protocol's timeouts.

#include <cstdint>
#include <vector>

namespace xcp::deals {

class Digraph {
 public:
  explicit Digraph(int vertices);

  void add_edge(int from, int to);

  int vertex_count() const { return static_cast<int>(adj_.size()); }
  const std::vector<int>& out(int v) const {
    return adj_.at(static_cast<std::size_t>(v));
  }

  /// Tarjan strongly-connected components; returns the component id of each
  /// vertex (ids are arbitrary but equal iff same SCC).
  std::vector<int> scc_ids() const;
  int scc_count() const;

  /// A deal is well-formed iff its transfer graph is strongly connected [3].
  bool strongly_connected() const;

  /// BFS hop distance from `source` (-1 when unreachable).
  std::vector<int> bfs_depths(int source) const;

  /// Longest finite BFS distance from `source`.
  int eccentricity(int source) const;

  /// max over vertices of eccentricity (only meaningful if strongly
  /// connected; returns the max finite distance otherwise).
  int diameter() const;

 private:
  std::vector<std::vector<int>> adj_;
};

}  // namespace xcp::deals
