#pragma once
// The certified-blockchain commit protocol for cross-chain deals [3]:
// all escrows and votes go through a certified chain (here: the simulated
// blockchain, whose inclusion proofs are unforgeable by construction).
// Requires only partial synchrony and preserves Safety and Termination, but
// *not* strong liveness — any party may time out and vote abort, so the
// all-abort outcome is always possible. Used for the TAB-properties and
// SEC5 benches.

#include <cstdint>
#include <string>
#include <vector>

#include "deals/deal_matrix.hpp"
#include "deals/timelock_commit.hpp"  // PartyResult
#include "proto/timebounded.hpp"      // EnvironmentConfig

namespace xcp::deals {

struct CertifiedDealConfig {
  std::uint64_t seed = 1;
  DealMatrix deal = DealMatrix::swap_cycle(3, Amount(100, Currency::generic()));
  proto::EnvironmentConfig env = [] {
    proto::EnvironmentConfig e;
    e.synchrony = proto::SynchronyKind::kPartiallySynchronous;
    return e;
  }();
  Duration block_interval = Duration::millis(500);
  /// Per-party local patience: a compliant party votes abort if the deal has
  /// not committed by then.
  Duration patience = Duration::seconds(30);
  std::vector<int> crashed_parties;  // Byzantine: never deposit
  Duration horizon = Duration::seconds(120);
};

struct CertifiedDealResult {
  bool committed = false;
  bool aborted = false;
  int transfers_completed = 0;
  int transfers_refunded = 0;
  std::vector<PartyResult> parties;  // reuse the timelock result row type
  bool safety_holds = true;          // every compliant party acceptable payoff
  bool no_asset_stuck = true;        // nothing escrowed forever (termination)
  std::string summary() const;
};

CertifiedDealResult run_certified_deal(const CertifiedDealConfig& config);

}  // namespace xcp::deals
