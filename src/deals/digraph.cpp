#include "deals/digraph.hpp"

#include <algorithm>
#include <deque>

#include "support/status.hpp"

namespace xcp::deals {

Digraph::Digraph(int vertices) {
  XCP_REQUIRE(vertices >= 0, "negative vertex count");
  adj_.resize(static_cast<std::size_t>(vertices));
}

void Digraph::add_edge(int from, int to) {
  XCP_REQUIRE(from >= 0 && from < vertex_count(), "edge from unknown vertex");
  XCP_REQUIRE(to >= 0 && to < vertex_count(), "edge to unknown vertex");
  adj_[static_cast<std::size_t>(from)].push_back(to);
}

std::vector<int> Digraph::scc_ids() const {
  // Iterative Tarjan (explicit stack) so deep graphs cannot overflow the
  // call stack.
  const int n = vertex_count();
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> scc(static_cast<std::size_t>(n), -1);
  std::vector<int> stack;
  int next_index = 0;
  int next_scc = 0;

  struct Frame {
    int v;
    std::size_t child;
  };

  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[static_cast<std::size_t>(root)] =
        lowlink[static_cast<std::size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& edges = adj_[static_cast<std::size_t>(f.v)];
      if (f.child < edges.size()) {
        const int w = edges[f.child++];
        if (index[static_cast<std::size_t>(w)] == -1) {
          index[static_cast<std::size_t>(w)] =
              lowlink[static_cast<std::size_t>(w)] = next_index++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          frames.push_back({w, 0});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(f.v)] =
              std::min(lowlink[static_cast<std::size_t>(f.v)],
                       index[static_cast<std::size_t>(w)]);
        }
      } else {
        if (lowlink[static_cast<std::size_t>(f.v)] ==
            index[static_cast<std::size_t>(f.v)]) {
          for (;;) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            scc[static_cast<std::size_t>(w)] = next_scc;
            if (w == f.v) break;
          }
          ++next_scc;
        }
        const int v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[static_cast<std::size_t>(frames.back().v)] =
              std::min(lowlink[static_cast<std::size_t>(frames.back().v)],
                       lowlink[static_cast<std::size_t>(v)]);
        }
      }
    }
  }
  return scc;
}

int Digraph::scc_count() const {
  const auto ids = scc_ids();
  return ids.empty() ? 0 : *std::max_element(ids.begin(), ids.end()) + 1;
}

bool Digraph::strongly_connected() const {
  return vertex_count() > 0 && scc_count() == 1;
}

std::vector<int> Digraph::bfs_depths(int source) const {
  std::vector<int> depth(static_cast<std::size_t>(vertex_count()), -1);
  std::deque<int> q{source};
  depth[static_cast<std::size_t>(source)] = 0;
  while (!q.empty()) {
    const int v = q.front();
    q.pop_front();
    for (int w : adj_[static_cast<std::size_t>(v)]) {
      if (depth[static_cast<std::size_t>(w)] == -1) {
        depth[static_cast<std::size_t>(w)] = depth[static_cast<std::size_t>(v)] + 1;
        q.push_back(w);
      }
    }
  }
  return depth;
}

int Digraph::eccentricity(int source) const {
  const auto depths = bfs_depths(source);
  int ecc = 0;
  for (int d : depths) ecc = std::max(ecc, d);
  return ecc;
}

int Digraph::diameter() const {
  int diam = 0;
  for (int v = 0; v < vertex_count(); ++v) {
    diam = std::max(diam, eccentricity(v));
  }
  return diam;
}

}  // namespace xcp::deals
