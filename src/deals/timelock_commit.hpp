#pragma once
// The timelock commit protocol for cross-chain deals (Herlihy, Liskov &
// Shrira [3]) — the synchronous baseline of Sec. 5. Reconstruction
// (simplifications recorded in DESIGN.md):
//
//  - one escrow actor per transfer/arc (each asset lives on its own chain);
//  - phase 1: every compliant party escrows its outgoing assets; escrows
//    announce funding to all parties;
//  - phase 2: once a compliant party observes *every* arc of the deal
//    escrowed, it is ready; the ready leader (party 0) starts the commit by
//    signing a path proof [0]; a ready party receiving a valid proof along
//    an arc extends it with its signature, claims its inbound escrows with
//    it, and forwards it along its outbound arcs;
//  - timelocks: an escrow accepts a claim whose proof has k signatures only
//    before local time T0 + k*step (each hop of the proof is allowed one
//    step), and refunds its depositor at T0 + (parties+2)*step.
//
// Under synchrony with a well-formed (strongly connected) deal this gives
// safety + termination + strong liveness; the Sec. 5 experiments run it on
// payment-shaped (path) deals, where well-formedness fails, to compare with
// the payment protocols.

#include <cstdint>
#include <string>
#include <vector>

#include "deals/deal_matrix.hpp"
#include "support/time.hpp"

namespace xcp::deals {

enum class PartyBehaviour {
  kCompliant,
  kNoEscrow,      // never escrows its outgoing assets
  kCrash,         // does nothing at all
  kNoForward,     // escrows and claims, but never propagates proofs
  kRogueLeader,   // (leader only) starts commit without the all-escrowed gate
};

const char* party_behaviour_name(PartyBehaviour b);

struct TimelockDealConfig {
  std::uint64_t seed = 1;
  DealMatrix deal = DealMatrix::swap_cycle(3, Amount(100, Currency::generic()));
  Duration delta = Duration::millis(100);   // message bound the step derives from
  Duration processing = Duration::millis(5);
  double rho = 1e-3;                        // clock drift of all actors
  std::vector<PartyBehaviour> behaviours;   // per party; default compliant
  Duration extra_horizon = Duration::zero();
};

struct PartyResult {
  int party = 0;
  bool compliant = true;
  std::vector<std::pair<Currency, std::int64_t>> net_by_currency;
  bool payoff_acceptable = true;
  bool holds_any_proof = false;  // did it ever possess a commit proof?
};

struct TimelockDealResult {
  TimelockDealConfig config;
  bool well_formed = false;
  std::vector<PartyResult> parties;
  int transfers_completed = 0;
  int transfers_refunded = 0;
  int transfers_stuck = 0;
  bool all_or_nothing = true;  // every compliant party all-in or untouched
  std::string summary() const;
};

TimelockDealResult run_timelock_deal(const TimelockDealConfig& config);

}  // namespace xcp::deals
