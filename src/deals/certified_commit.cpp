#include "deals/certified_commit.hpp"

#include <memory>
#include <set>
#include <sstream>

#include "chain/blockchain.hpp"
#include "ledger/ledger.hpp"
#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "support/status.hpp"

namespace xcp::deals {

namespace {

/// The on-chain deal contract: parties deposit arc funding (verified via
/// ledger receipts), the contract commits once every arc is funded, aborts
/// on the first timeout vote, and moves the money itself (the chain holds
/// the escrowed funds).
class CertifiedDealContract final : public chain::Contract {
 public:
  CertifiedDealContract(DealMatrix deal, std::vector<sim::ProcessId> party_ids,
                        ledger::Ledger& ledger)
      : deal_(std::move(deal)), arcs_(deal_.transfers()),
        party_ids_(std::move(party_ids)), ledger_(ledger) {}

  const std::string& name() const override { return name_; }

  bool committed() const { return committed_; }
  bool aborted() const { return aborted_; }
  int completed() const { return completed_; }
  int refunded() const { return refunded_; }

  Status apply(const chain::Transaction& tx, chain::ChainContext& ctx) override {
    if (tx.op == "deposit") {
      const auto arc = tx.arg;
      if (arc >= arcs_.size()) return Status::error("bad arc");
      const auto& t = arcs_[arc];
      const auto from_id = party_ids_[static_cast<std::size_t>(t.from)];
      if (tx.sender != from_id) return Status::error("deposit by non-owner");
      if (!ledger_.verify_exact(tx.arg2, from_id, ctx.chain_id(), t.amount)) {
        return Status::error("deposit receipt invalid");
      }
      if (funded_.count(arc) != 0) return Status::error("duplicate deposit");
      if (aborted_ || committed_) {
        // A deposit that raced the decision: the contract's refund path
        // stays open forever, so the depositor never strands value here.
        ledger_.transfer(ctx.chain_id(), from_id, t.amount, ctx.block_time())
            .expect("late deposit refund");
        ++refunded_;
        return Status::ok();
      }
      funded_.insert(arc);
      if (funded_.size() == arcs_.size()) {
        committed_ = true;
        for (std::size_t a = 0; a < arcs_.size(); ++a) {
          ledger_
              .transfer(ctx.chain_id(),
                        party_ids_[static_cast<std::size_t>(arcs_[a].to)],
                        arcs_[a].amount, ctx.block_time())
              .expect("certified deal payout");
          ++completed_;
        }
        ctx.emit(name_, "committed");
      }
      return Status::ok();
    }
    if (committed_ || aborted_) return Status::error("deal decided");
    if (tx.op == "abort") {
      // Any party may vote abort (timeout); the first one ends the deal.
      aborted_ = true;
      for (std::uint64_t a : funded_) {
        ledger_
            .transfer(ctx.chain_id(),
                      party_ids_[static_cast<std::size_t>(
                          arcs_[static_cast<std::size_t>(a)].from)],
                      arcs_[static_cast<std::size_t>(a)].amount,
                      ctx.block_time())
            .expect("certified deal refund");
        ++refunded_;
      }
      ctx.emit(name_, "aborted");
      return Status::ok();
    }
    return Status::error("unknown op");
  }

 private:
  std::string name_ = "deal";
  DealMatrix deal_;
  std::vector<DealMatrix::Transfer> arcs_;
  std::vector<sim::ProcessId> party_ids_;
  ledger::Ledger& ledger_;
  std::set<std::uint64_t> funded_;
  bool committed_ = false;
  bool aborted_ = false;
  int completed_ = 0;
  int refunded_ = 0;
};

class CertifiedParty final : public net::Actor {
 public:
  CertifiedParty(DealMatrix deal, int index, sim::ProcessId chain,
                 std::vector<DealMatrix::Transfer> arcs,
                 ledger::Ledger& ledger, crypto::KeyRegistry& keys,
                 Duration patience, bool crashed)
      : deal_(std::move(deal)), index_(index), chain_(chain),
        arcs_(std::move(arcs)), ledger_(ledger), keys_(keys),
        patience_(patience), crashed_(crashed) {}

  bool done() const { return done_; }

  void on_start() override {
    if (crashed_) return;
    signer_ = keys_.signer_for(id());
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
      if (arcs_[a].from != index_) continue;
      ledger::TransferId tid = ledger::kInvalidTransfer;
      ledger_.transfer(id(), chain_, arcs_[a].amount, global_now(), &tid)
          .expect("certified deposit");
      auto tx = net::make_body<chain::TxMsg>();
      tx->tx = chain::make_signed_tx(signer_, "deal", "deposit",
                                     static_cast<std::uint64_t>(a), tid);
      send(chain_, net::kinds::tx, tx);
    }
    set_timer_local_after(patience_, /*token=*/1);
  }

  void on_message(const net::Message& m) override {
    if (crashed_ || m.kind != net::kinds::chain_event) return;
    const auto* body = m.body_as<chain::ChainEventMsg>();
    if (body == nullptr) return;
    if (body->topic == "committed" || body->topic == "aborted") done_ = true;
  }

  void on_timer(std::uint64_t) override {
    if (crashed_ || done_) return;
    auto tx = net::make_body<chain::TxMsg>();
    tx->tx = chain::make_signed_tx(signer_, "deal", "abort");
    send(chain_, net::kinds::tx, tx);
  }

 private:
  DealMatrix deal_;
  int index_;
  sim::ProcessId chain_;
  std::vector<DealMatrix::Transfer> arcs_;
  ledger::Ledger& ledger_;
  crypto::KeyRegistry& keys_;
  crypto::Signer signer_;
  Duration patience_;
  bool crashed_;
  bool done_ = false;
};

std::unique_ptr<net::DelayModel> make_model(const proto::EnvironmentConfig& env) {
  using proto::SynchronyKind;
  switch (env.synchrony) {
    case SynchronyKind::kSynchronous:
      return std::make_unique<net::SynchronousModel>(env.delta_min,
                                                     env.delta_max);
    case SynchronyKind::kPartiallySynchronous:
      return std::make_unique<net::PartialSynchronyModel>(
          env.gst, env.delta_max, env.pre_gst_typical);
    case SynchronyKind::kAsynchronous:
      return std::make_unique<net::AsynchronousModel>(env.async_typical,
                                                      env.async_cap);
  }
  XCP_REQUIRE(false, "unreachable");
  return nullptr;
}

}  // namespace

CertifiedDealResult run_certified_deal(const CertifiedDealConfig& config) {
  CertifiedDealResult result;

  sim::Simulator simulator(config.seed);
  net::Network network(simulator, make_model(config.env));
  ledger::Ledger ledger;
  crypto::KeyRegistry keys(config.seed ^ 0xcafef00dULL);

  const int parties = config.deal.party_count();
  const auto arcs = config.deal.transfers();

  std::vector<sim::ProcessId> party_ids;
  for (int i = 0; i < parties; ++i) {
    party_ids.push_back(sim::ProcessId(static_cast<std::uint32_t>(i)));
  }
  const sim::ProcessId chain_id(static_cast<std::uint32_t>(parties));

  auto crashed = [&](int i) {
    return std::find(config.crashed_parties.begin(),
                     config.crashed_parties.end(),
                     i) != config.crashed_parties.end();
  };

  std::vector<CertifiedParty*> party_actors;
  for (int i = 0; i < parties; ++i) {
    auto& p = simulator.spawn<CertifiedParty>(
        "party_" + std::to_string(i), config.deal, i, chain_id, arcs, ledger,
        keys, config.patience, crashed(i));
    XCP_REQUIRE(p.id() == party_ids[static_cast<std::size_t>(i)],
                "party id prediction broken");
    network.attach(p);
    party_actors.push_back(&p);
  }
  auto& bc = simulator.spawn<chain::Blockchain>("chain", config.block_interval,
                                                keys);
  XCP_REQUIRE(bc.id() == chain_id, "chain id prediction broken");
  network.attach(bc);
  auto contract = std::make_unique<CertifiedDealContract>(config.deal,
                                                          party_ids, ledger);
  auto* contract_ptr = contract.get();
  bc.register_contract(std::move(contract));
  for (auto pid : party_ids) bc.subscribe(pid);

  for (const auto& t : arcs) {
    ledger.mint(party_ids[static_cast<std::size_t>(t.from)], t.amount);
  }
  std::vector<std::vector<Amount>> initial;
  for (auto pid : party_ids) initial.push_back(ledger.holdings(pid));

  // Slice the run so the chain can be stopped once every compliant party saw
  // the outcome.
  const TimePoint deadline = TimePoint::origin() + config.horizon;
  while (simulator.now() < deadline) {
    const TimePoint next =
        std::min(deadline, simulator.now() + Duration::seconds(1));
    const bool drained = simulator.run_until(next);
    bool all_done = true;
    for (int i = 0; i < parties; ++i) {
      if (!crashed(i) && !party_actors[static_cast<std::size_t>(i)]->done()) {
        all_done = false;
      }
    }
    if (all_done && (contract_ptr->committed() || contract_ptr->aborted())) {
      // Grace window: deposits that raced the decision may still be in
      // flight; keep the chain sealing long enough to refund them.
      const TimePoint grace =
          std::min(deadline, simulator.now() + Duration::seconds(30) +
                                 config.env.pre_gst_typical * 4);
      simulator.run_until(std::max(grace, config.env.gst + Duration::seconds(1)));
      bc.stop();
      simulator.run_until(deadline);
      break;
    }
    if (drained) break;
  }

  result.committed = contract_ptr->committed();
  result.aborted = contract_ptr->aborted();
  result.transfers_completed = contract_ptr->completed();
  result.transfers_refunded = contract_ptr->refunded();

  for (int i = 0; i < parties; ++i) {
    PartyResult pr;
    pr.party = i;
    pr.compliant = !crashed(i);
    std::set<std::uint16_t> currencies;
    for (const Amount& a : initial[static_cast<std::size_t>(i)]) {
      currencies.insert(a.currency().id());
    }
    for (const Amount& a : ledger.holdings(party_ids[static_cast<std::size_t>(i)])) {
      currencies.insert(a.currency().id());
    }
    for (std::uint16_t c : currencies) {
      std::int64_t net = 0;
      for (const Amount& a :
           ledger.holdings(party_ids[static_cast<std::size_t>(i)])) {
        if (a.currency().id() == c) net += a.units();
      }
      for (const Amount& a : initial[static_cast<std::size_t>(i)]) {
        if (a.currency().id() == c) net -= a.units();
      }
      pr.net_by_currency.emplace_back(Currency(c), net);
    }
    pr.payoff_acceptable = config.deal.payoff_acceptable(i, pr.net_by_currency);
    if (pr.compliant && !pr.payoff_acceptable) result.safety_holds = false;
    result.parties.push_back(std::move(pr));
  }

  // Termination: nothing left escrowed at the chain.
  for (const Amount& a : ledger.holdings(chain_id)) {
    if (a.units() != 0) result.no_asset_stuck = false;
  }
  return result;
}

std::string CertifiedDealResult::summary() const {
  std::ostringstream os;
  os << "certified deal: " << (committed ? "committed" : "")
     << (aborted ? "aborted" : "")
     << (!committed && !aborted ? "undecided" : "")
     << ", completed=" << transfers_completed
     << ", refunded=" << transfers_refunded
     << ", safety=" << (safety_holds ? "yes" : "NO")
     << ", no-stuck-assets=" << (no_asset_stuck ? "yes" : "NO") << "\n";
  return os.str();
}

}  // namespace xcp::deals
