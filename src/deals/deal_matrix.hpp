#pragma once
// Cross-chain deals in the sense of Herlihy, Liskov & Shrira [3]: a matrix M
// where M[i][j] lists the asset party i transfers to party j; equivalently a
// directed labelled graph. A deal is *well-formed* iff that graph is
// strongly connected; both commit protocols of [3] are proven correct for
// well-formed deals only — the hinge of the paper's Sec. 5 comparison,
// because a payment's path graph is not strongly connected.

#include <optional>
#include <string>
#include <vector>

#include "deals/digraph.hpp"
#include "support/amount.hpp"

namespace xcp::deals {

class DealMatrix {
 public:
  explicit DealMatrix(int parties);

  void set(int from, int to, Amount amount);
  std::optional<Amount> get(int from, int to) const;
  int party_count() const { return parties_; }

  /// All non-zero transfers as (from, to, amount).
  struct Transfer {
    int from;
    int to;
    Amount amount;
  };
  std::vector<Transfer> transfers() const;

  Digraph to_digraph() const;
  bool well_formed() const { return to_digraph().strongly_connected(); }

  /// Encodes the cross-chain *payment* of Fig. 1 as a deal: a path
  /// c_0 -> c_1 -> ... -> c_n with hop values (this is the Sec. 5 embedding;
  /// it is never well-formed for n >= 1 since the path is not strongly
  /// connected).
  static DealMatrix from_payment_path(const std::vector<Amount>& hops);

  /// A classic well-formed example: a cycle of swaps.
  static DealMatrix swap_cycle(int parties, Amount amount);

  /// Acceptable-payoff test for party i given its net changes per currency:
  /// either "all in" (received everything due, paid everything owed — or
  /// better) or "nothing lost" (net >= 0 everywhere).
  bool payoff_acceptable(int party,
                         const std::vector<std::pair<Currency, std::int64_t>>&
                             net_by_currency) const;

  std::string str() const;

 private:
  std::int64_t net_due(int party, Currency c) const;

  int parties_;
  std::vector<std::optional<Amount>> cells_;  // row-major
};

}  // namespace xcp::deals
