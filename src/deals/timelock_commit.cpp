#include "deals/timelock_commit.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>

#include "crypto/certificate.hpp"
#include "ledger/ledger.hpp"
#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "support/status.hpp"

namespace xcp::deals {

const char* party_behaviour_name(PartyBehaviour b) {
  switch (b) {
    case PartyBehaviour::kCompliant: return "compliant";
    case PartyBehaviour::kNoEscrow: return "no-escrow";
    case PartyBehaviour::kCrash: return "crash";
    case PartyBehaviour::kNoForward: return "no-forward";
    case PartyBehaviour::kRogueLeader: return "rogue-leader";
  }
  return "?";
}

namespace {

/// A commit proof: the party path from the leader, one signature per hop.
/// Signature k is party path[k]'s signature over the proof prefix digest.
struct ProofMsg final : net::MessageBody {
  std::vector<int> path;
  std::vector<crypto::Signature> sigs;
  std::string describe() const override {
    return "proof(len=" + std::to_string(path.size()) + ")";
  }
};

struct DepositMsg final : net::MessageBody {
  int arc = 0;
  ledger::TransferId receipt = ledger::kInvalidTransfer;
  std::string describe() const override {
    return "deposit(arc=" + std::to_string(arc) + ")";
  }
};

struct FundedMsg final : net::MessageBody {
  int arc = 0;
  std::string describe() const override {
    return "funded(arc=" + std::to_string(arc) + ")";
  }
};

struct SharedState {
  DealMatrix deal{1};
  std::vector<DealMatrix::Transfer> arcs;
  std::vector<sim::ProcessId> party_ids;
  std::vector<sim::ProcessId> escrow_ids;
  ledger::Ledger* ledger = nullptr;
  crypto::KeyRegistry* keys = nullptr;
  Duration step;         // per-hop proof budget (timelock unit)
  TimePoint claim_start;  // T0: when the proof clock starts
  int deadline_hops = 0;

  std::uint64_t proof_digest(const std::vector<int>& path,
                             std::size_t upto) const {
    HashWriter w;
    w.write_str("deal-proof");
    for (std::size_t k = 0; k < upto; ++k) w.write_i64(path[k]);
    return w.digest();
  }

  bool proof_valid(const ProofMsg& p) const {
    if (p.path.empty() || p.path.front() != 0) return false;
    if (p.sigs.size() != p.path.size()) return false;
    for (std::size_t k = 0; k < p.path.size(); ++k) {
      const int party = p.path[k];
      if (party < 0 || party >= deal.party_count()) return false;
      if (k > 0 && !deal.get(p.path[k - 1], party)) return false;  // arc exists
      const crypto::Signature& sig = p.sigs[k];
      if (sig.signer != party_ids[static_cast<std::size_t>(party)]) return false;
      if (!keys->verify(sig, proof_digest(p.path, k + 1))) return false;
    }
    return true;
  }
};

using SharedPtr = std::shared_ptr<SharedState>;

/// One escrow per arc: holds party `from`'s asset for `to`.
class ArcEscrow final : public net::Actor {
 public:
  ArcEscrow(SharedPtr s, int arc) : s_(std::move(s)), arc_(arc) {}

  bool completed() const { return state_ == State::kCompleted; }
  bool refunded() const { return state_ == State::kRefunded; }
  bool funded_but_stuck() const { return state_ == State::kFunded; }
  bool ever_funded() const { return ever_funded_; }

  void on_start() override {
    // Refund timeout: generous enough for escrow phase + full propagation.
    set_timer_local_after(
        (s_->claim_start - TimePoint::origin()) +
            s_->step * static_cast<std::int64_t>(s_->deadline_hops + 2),
        /*token=*/1);
  }

  void on_message(const net::Message& m) override {
    const auto& t = s_->arcs[static_cast<std::size_t>(arc_)];
    if (m.kind == net::kinds::deposit && state_ == State::kEmpty) {
      const auto* body = m.body_as<DepositMsg>();
      if (body == nullptr || body->arc != arc_) return;
      const auto from_id = s_->party_ids[static_cast<std::size_t>(t.from)];
      if (m.from != from_id ||
          !s_->ledger->verify_exact(body->receipt, from_id, id(), t.amount)) {
        return;
      }
      state_ = State::kFunded;
      ever_funded_ = true;
      auto funded = net::make_body<FundedMsg>();
      funded->arc = arc_;
      for (sim::ProcessId pid : s_->party_ids) send(pid, net::kinds::funded, funded);
      return;
    }
    if (m.kind == net::kinds::claim && state_ == State::kFunded) {
      const auto* body = m.body_as<ProofMsg>();
      if (body == nullptr || !s_->proof_valid(*body)) return;
      // The proof must end at the beneficiary and arrive within its hop
      // budget: local time <= T0 + |path| * step.
      if (body->path.back() != t.to) return;
      if (m.from != s_->party_ids[static_cast<std::size_t>(t.to)]) return;
      const TimePoint deadline =
          s_->claim_start +
          s_->step * static_cast<std::int64_t>(body->path.size());
      if (!(local_now() <= deadline)) return;
      s_->ledger
          ->transfer(id(), s_->party_ids[static_cast<std::size_t>(t.to)],
                     t.amount, global_now())
          .expect("arc escrow release");
      state_ = State::kCompleted;
      return;
    }
  }

  void on_timer(std::uint64_t) override {
    if (state_ != State::kFunded) return;
    const auto& t = s_->arcs[static_cast<std::size_t>(arc_)];
    s_->ledger
        ->transfer(id(), s_->party_ids[static_cast<std::size_t>(t.from)],
                   t.amount, global_now())
        .expect("arc escrow refund");
    state_ = State::kRefunded;
  }

 private:
  enum class State { kEmpty, kFunded, kCompleted, kRefunded };
  SharedPtr s_;
  int arc_;
  State state_ = State::kEmpty;
  bool ever_funded_ = false;
};

class DealParty final : public net::Actor {
 public:
  DealParty(SharedPtr s, int index, PartyBehaviour behaviour)
      : s_(std::move(s)), index_(index), behaviour_(behaviour) {}

  bool holds_proof() const { return acted_on_proof_; }

  void on_start() override {
    if (behaviour_ == PartyBehaviour::kCrash) return;
    signer_ = s_->keys->signer_for(id());
    if (behaviour_ != PartyBehaviour::kNoEscrow) {
      // Phase 1: escrow every outgoing asset.
      for (std::size_t a = 0; a < s_->arcs.size(); ++a) {
        const auto& t = s_->arcs[a];
        if (t.from != index_) continue;
        ledger::TransferId tid = ledger::kInvalidTransfer;
        s_->ledger
            ->transfer(id(), s_->escrow_ids[a], t.amount, global_now(), &tid)
            .expect("deal escrow deposit");
        auto body = net::make_body<DepositMsg>();
        body->arc = static_cast<int>(a);
        body->receipt = tid;
        send(s_->escrow_ids[a], net::kinds::deposit, body);
      }
    }
    if (behaviour_ == PartyBehaviour::kRogueLeader && index_ == 0) {
      start_commit();  // without waiting for the all-escrowed gate
    }
  }

  void on_message(const net::Message& m) override {
    if (behaviour_ == PartyBehaviour::kCrash) return;
    if (m.kind == net::kinds::funded) {
      const auto* body = m.body_as<FundedMsg>();
      if (body == nullptr) return;
      funded_.insert(body->arc);
      if (index_ == 0 && behaviour_ != PartyBehaviour::kRogueLeader &&
          all_escrowed() && !started_) {
        start_commit();
      }
      if (pending_proof_ && all_escrowed()) {
        const ProofMsg proof = *pending_proof_;
        pending_proof_.reset();
        act_on_proof(proof);
      }
      return;
    }
    if (m.kind == net::kinds::proof) {
      const auto* body = m.body_as<ProofMsg>();
      if (body == nullptr || acted_on_proof_) return;
      if (!s_->proof_valid(*body)) return;
      // Must arrive along an arc into this party.
      const int last = body->path.back();
      if (!s_->deal.get(last, index_)) return;
      if (m.from != s_->party_ids[static_cast<std::size_t>(last)]) return;
      if (!all_escrowed() && behaviour_ != PartyBehaviour::kRogueLeader) {
        pending_proof_ = *body;  // compliant gate: act once fully escrowed
        return;
      }
      act_on_proof(*body);
      return;
    }
  }

 private:
  bool all_escrowed() const {
    return funded_.size() >= s_->arcs.size();
  }

  void start_commit() {
    started_ = true;
    ProofMsg seed;
    seed.path = {0};
    seed.sigs = {signer_.sign(s_->proof_digest(seed.path, 1))};
    acted_on_proof_ = true;
    claim_and_forward(seed);
  }

  void act_on_proof(const ProofMsg& incoming) {
    acted_on_proof_ = true;
    ProofMsg mine = incoming;
    mine.path.push_back(index_);
    mine.sigs.push_back(
        signer_.sign(s_->proof_digest(mine.path, mine.path.size())));
    claim_and_forward(mine);
  }

  void claim_and_forward(const ProofMsg& proof) {
    auto body = net::make_body<ProofMsg>(proof);
    // Claim all inbound escrows with the proof ending at this party.
    for (std::size_t a = 0; a < s_->arcs.size(); ++a) {
      if (s_->arcs[a].to == index_) send(s_->escrow_ids[a], net::kinds::claim, body);
    }
    if (behaviour_ == PartyBehaviour::kNoForward) return;
    // Forward along outbound arcs.
    std::set<int> neighbours;
    for (const auto& t : s_->arcs) {
      if (t.from == index_) neighbours.insert(t.to);
    }
    for (int nb : neighbours) {
      send(s_->party_ids[static_cast<std::size_t>(nb)], net::kinds::proof, body);
    }
  }

  SharedPtr s_;
  int index_;
  PartyBehaviour behaviour_;
  crypto::Signer signer_;
  std::set<int> funded_;
  bool started_ = false;
  bool acted_on_proof_ = false;
  std::optional<ProofMsg> pending_proof_;
};

}  // namespace

TimelockDealResult run_timelock_deal(const TimelockDealConfig& config) {
  TimelockDealResult result;
  result.config = config;
  result.well_formed = config.deal.well_formed();

  sim::Simulator simulator(config.seed);
  net::Network network(
      simulator,
      std::make_unique<net::SynchronousModel>(Duration::micros(1), config.delta));
  ledger::Ledger ledger;
  crypto::KeyRegistry keys(config.seed ^ 0xdeaddeadULL);

  auto s = std::make_shared<SharedState>();
  s->deal = config.deal;
  s->arcs = config.deal.transfers();
  s->ledger = &ledger;
  s->keys = &keys;
  // Per-hop budget: a proof hop costs at most one delivery + processing,
  // inflated for drift; the claim clock starts after the escrow phase
  // (deposits + funded broadcasts: 2 deliveries + processing, with margin).
  s->step = ((config.delta + config.processing) * 2).scaled_up(1.0 + config.rho);
  s->claim_start = TimePoint::origin() +
                   ((config.delta + config.processing) * 4).scaled_up(1.0 + config.rho);
  s->deadline_hops = config.deal.party_count() + 1;

  const int parties = config.deal.party_count();
  auto behaviour_of = [&](int i) {
    return i < static_cast<int>(config.behaviours.size())
               ? config.behaviours[static_cast<std::size_t>(i)]
               : PartyBehaviour::kCompliant;
  };

  // Spawn parties then escrows (ids predicted inside SharedState).
  for (int i = 0; i < parties; ++i) {
    s->party_ids.push_back(sim::ProcessId(static_cast<std::uint32_t>(i)));
  }
  for (std::size_t a = 0; a < s->arcs.size(); ++a) {
    s->escrow_ids.push_back(
        sim::ProcessId(static_cast<std::uint32_t>(parties + a)));
  }

  std::vector<DealParty*> party_actors;
  for (int i = 0; i < parties; ++i) {
    auto& p = simulator.spawn<DealParty>("party_" + std::to_string(i), s, i,
                                         behaviour_of(i));
    XCP_REQUIRE(p.id() == s->party_ids[static_cast<std::size_t>(i)],
                "party id prediction broken");
    network.attach(p);
    party_actors.push_back(&p);
  }
  std::vector<ArcEscrow*> escrow_actors;
  for (std::size_t a = 0; a < s->arcs.size(); ++a) {
    auto& e = simulator.spawn<ArcEscrow>("arc_" + std::to_string(a), s,
                                         static_cast<int>(a));
    XCP_REQUIRE(e.id() == s->escrow_ids[a], "escrow id prediction broken");
    network.attach(e);
    escrow_actors.push_back(&e);
  }

  // Drifting clocks.
  {
    Rng clock_rng = simulator.rng().fork();
    for (std::uint32_t pid = 0; pid < simulator.process_count(); ++pid) {
      simulator.set_clock(
          sim::ProcessId(pid),
          sim::DriftClock::sample(clock_rng, config.rho, Duration::millis(10)));
    }
  }

  // Fund parties with exactly their outgoing obligations.
  std::vector<std::vector<Amount>> initial(
      static_cast<std::size_t>(parties));
  for (const auto& t : s->arcs) {
    ledger.mint(s->party_ids[static_cast<std::size_t>(t.from)], t.amount);
  }
  for (int i = 0; i < parties; ++i) {
    initial[static_cast<std::size_t>(i)] =
        ledger.holdings(s->party_ids[static_cast<std::size_t>(i)]);
  }

  const Duration horizon =
      (s->claim_start - TimePoint::origin()) +
      s->step * static_cast<std::int64_t>(s->deadline_hops + 4) +
      config.extra_horizon;
  simulator.run_until(TimePoint::origin() + horizon);

  // Extract per-party results.
  for (int i = 0; i < parties; ++i) {
    PartyResult pr;
    pr.party = i;
    pr.compliant = behaviour_of(i) == PartyBehaviour::kCompliant;
    pr.holds_any_proof = party_actors[static_cast<std::size_t>(i)]->holds_proof();
    std::set<std::uint16_t> currencies;
    for (const Amount& a : initial[static_cast<std::size_t>(i)]) {
      currencies.insert(a.currency().id());
    }
    for (const Amount& a :
         ledger.holdings(s->party_ids[static_cast<std::size_t>(i)])) {
      currencies.insert(a.currency().id());
    }
    for (std::uint16_t c : currencies) {
      std::int64_t net = 0;
      for (const Amount& a :
           ledger.holdings(s->party_ids[static_cast<std::size_t>(i)])) {
        if (a.currency().id() == c) net += a.units();
      }
      for (const Amount& a : initial[static_cast<std::size_t>(i)]) {
        if (a.currency().id() == c) net -= a.units();
      }
      pr.net_by_currency.emplace_back(Currency(c), net);
    }
    pr.payoff_acceptable = config.deal.payoff_acceptable(i, pr.net_by_currency);
    result.parties.push_back(std::move(pr));
  }

  for (const auto* e : escrow_actors) {
    if (e->completed()) ++result.transfers_completed;
    if (e->refunded()) ++result.transfers_refunded;
    if (e->funded_but_stuck()) ++result.transfers_stuck;
  }
  for (const auto& pr : result.parties) {
    if (pr.compliant && !pr.payoff_acceptable) result.all_or_nothing = false;
  }
  return result;
}

std::string TimelockDealResult::summary() const {
  std::ostringstream os;
  os << config.deal.str() << "\n"
     << "completed=" << transfers_completed << " refunded=" << transfers_refunded
     << " stuck=" << transfers_stuck
     << " all-or-nothing=" << (all_or_nothing ? "yes" : "NO") << "\n";
  for (const auto& p : parties) {
    os << "  party_" << p.party << (p.compliant ? "" : " (byz)") << ": ";
    for (const auto& [c, net] : p.net_by_currency) {
      os << net << " " << c.code() << " ";
    }
    os << (p.payoff_acceptable ? "[acceptable]" : "[UNACCEPTABLE]") << "\n";
  }
  return os.str();
}

}  // namespace xcp::deals
