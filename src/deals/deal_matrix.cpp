#include "deals/deal_matrix.hpp"

#include <sstream>

#include "support/status.hpp"

namespace xcp::deals {

DealMatrix::DealMatrix(int parties) : parties_(parties) {
  XCP_REQUIRE(parties >= 1, "deal needs parties");
  cells_.resize(static_cast<std::size_t>(parties) *
                static_cast<std::size_t>(parties));
}

void DealMatrix::set(int from, int to, Amount amount) {
  XCP_REQUIRE(from >= 0 && from < parties_ && to >= 0 && to < parties_,
              "party index out of range");
  XCP_REQUIRE(from != to, "no self-transfers in a deal");
  XCP_REQUIRE(amount.units() > 0, "transfers must be positive");
  cells_[static_cast<std::size_t>(from) * static_cast<std::size_t>(parties_) +
         static_cast<std::size_t>(to)] = amount;
}

std::optional<Amount> DealMatrix::get(int from, int to) const {
  return cells_[static_cast<std::size_t>(from) *
                    static_cast<std::size_t>(parties_) +
                static_cast<std::size_t>(to)];
}

std::vector<DealMatrix::Transfer> DealMatrix::transfers() const {
  std::vector<Transfer> out;
  for (int i = 0; i < parties_; ++i) {
    for (int j = 0; j < parties_; ++j) {
      if (const auto a = get(i, j)) out.push_back({i, j, *a});
    }
  }
  return out;
}

Digraph DealMatrix::to_digraph() const {
  Digraph g(parties_);
  for (const auto& t : transfers()) g.add_edge(t.from, t.to);
  return g;
}

DealMatrix DealMatrix::from_payment_path(const std::vector<Amount>& hops) {
  DealMatrix m(static_cast<int>(hops.size()) + 1);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    m.set(static_cast<int>(i), static_cast<int>(i) + 1, hops[i]);
  }
  return m;
}

DealMatrix DealMatrix::swap_cycle(int parties, Amount amount) {
  DealMatrix m(parties);
  for (int i = 0; i < parties; ++i) {
    m.set(i, (i + 1) % parties, amount);
  }
  return m;
}

std::int64_t DealMatrix::net_due(int party, Currency c) const {
  std::int64_t due = 0;
  for (const auto& t : transfers()) {
    if (t.amount.currency() != c) continue;
    if (t.to == party) due += t.amount.units();
    if (t.from == party) due -= t.amount.units();
  }
  return due;
}

bool DealMatrix::payoff_acceptable(
    int party,
    const std::vector<std::pair<Currency, std::int64_t>>& net_by_currency)
    const {
  bool all_in = true;       // got at least the deal's net in every currency
  bool nothing_lost = true; // net >= 0 in every currency
  for (const auto& [c, net] : net_by_currency) {
    if (net < net_due(party, c)) all_in = false;
    if (net < 0) nothing_lost = false;
  }
  return all_in || nothing_lost;
}

std::string DealMatrix::str() const {
  std::ostringstream os;
  os << "deal(" << parties_ << " parties";
  for (const auto& t : transfers()) {
    os << ", " << t.from << "->" << t.to << ":" << t.amount.str();
  }
  os << ")" << (well_formed() ? " [well-formed]" : " [NOT well-formed]");
  return os.str();
}

}  // namespace xcp::deals
