#include "baselines/interledger.hpp"

namespace xcp::baselines {

proto::RunRecord run_universal(proto::TimeBoundedConfig config) {
  config.compensated = false;
  proto::RunRecord record = proto::run_time_bounded(config);
  record.protocol = "interledger-universal";
  return record;
}

proto::RunRecord run_atomic(AtomicConfig config) {
  config.weak.tm = proto::weak::TmKind::kTrustedParty;
  config.weak.tm_abort_deadline = config.notary_deadline;
  // Atomic-protocol customers do not petition; the notary deadline is the
  // only abort trigger. Model that with effectively infinite patience.
  config.weak.patience = Duration::seconds(86'400);
  proto::RunRecord record = proto::weak::run_weak(config.weak);
  record.protocol = "interledger-atomic";
  return record;
}

}  // namespace xcp::baselines
