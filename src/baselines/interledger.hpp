#pragma once
// The Interledger baselines of Thomas & Schwartz [4], as characterised in
// the paper's introduction:
//
//  - the *universal* protocol "requires synchrony" and, crucially for the
//    ablation, "does not consider clock drift": it is the time-bounded
//    protocol run with the *naive* timelock schedule (a_i = A_i, no (1+rho)
//    inflation);
//  - the *atomic* protocol "merely requires partial synchrony" but
//    establishes no success guarantee: escrows follow a notary that aborts
//    on its own fixed deadline, so an all-abort run is possible even when
//    every participant is honest and willing.

#include "proto/timebounded.hpp"
#include "proto/weak/protocol.hpp"

namespace xcp::baselines {

/// Universal protocol [4]: the Fig. 2 machine with the naive schedule.
/// Identical to proto::run_time_bounded with compensated = false; this entry
/// point exists so benches name the baseline explicitly.
proto::RunRecord run_universal(proto::TimeBoundedConfig config);

struct AtomicConfig {
  proto::weak::WeakConfig weak;  // participants, environment, deal
  /// The notary's fixed local abort deadline.
  Duration notary_deadline = Duration::seconds(5);
};

/// Atomic protocol [4]: weak-protocol participants driven by a single
/// deadline-based notary. Safety matches the weak protocol's; strong
/// liveness does not hold (the deadline may beat slow honest traffic).
proto::RunRecord run_atomic(AtomicConfig config);

}  // namespace xcp::baselines
