#include "consensus/committee.hpp"

#include <algorithm>

namespace xcp::consensus {

bool ValidityRules::valid(Value v, const Justification& just) const {
  if (keys == nullptr) return false;
  if (v == Value::kCommit) {
    if (!just.chi.has_value()) return false;
    const crypto::Certificate& chi = *just.chi;
    if (chi.kind != crypto::CertKind::kPayment || chi.deal_id != deal_id ||
        chi.issuer != bob || !crypto::verify_cert(*keys, chi)) {
      return false;
    }
    // One valid "escrowed" statement from each expected escrow.
    for (sim::ProcessId e : expected_escrows) {
      const bool found = std::any_of(
          just.statements.begin(), just.statements.end(),
          [&](const SignedStatement& s) {
            return s.kind == "escrowed" && s.deal_id == deal_id &&
                   s.subject == e && s.verify(*keys);
          });
      if (!found) return false;
    }
    return true;
  }
  // Abort: one valid petition from an expected customer.
  return std::any_of(just.statements.begin(), just.statements.end(),
                     [&](const SignedStatement& s) {
                       if (s.kind != "abort-petition" || s.deal_id != deal_id ||
                           !s.verify(*keys)) {
                         return false;
                       }
                       return std::find(expected_customers.begin(),
                                        expected_customers.end(),
                                        s.subject) != expected_customers.end();
                     });
}

Duration CommitteeConfig::round_duration(int round) const {
  // DLS-style growing rounds: linear back-off, capped. Linear (not
  // exponential) keeps post-GST latency modest while still guaranteeing that
  // round durations eventually exceed any fixed post-GST message delay.
  Duration d = base_round * static_cast<std::int64_t>(round + 1);
  return std::min(d, max_round);
}

}  // namespace xcp::consensus
