#include "consensus/standalone.hpp"

#include <string>

#include "proto/bodies.hpp"
#include "support/status.hpp"

namespace xcp::consensus {

std::vector<sim::ProcessId> StandaloneCommittee::notary_pids() const {
  std::vector<sim::ProcessId> out;
  for (int i = 0; i < notaries; ++i) out.push_back(notary_pid(i));
  return out;
}

std::vector<sim::ProcessId> StandaloneCommittee::participant_pids() const {
  std::vector<sim::ProcessId> out;
  for (int i = 0; i < participant_count(); ++i) {
    out.push_back(sim::ProcessId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

crypto::KeyRegistry StandaloneCommittee::make_keys() const {
  // Same derivation as the weak-protocol runner. Registration order is
  // part of the key material (identity.cpp advances its seed state per
  // first-sight registration), so this canonical order is load-bearing.
  crypto::KeyRegistry keys(seed ^ 0xc0ffee1234ULL);
  for (int i = 0; i < participant_count(); ++i) {
    keys.signer_for(sim::ProcessId(static_cast<std::uint32_t>(i)));
  }
  for (int i = 0; i < notaries; ++i) keys.signer_for(notary_pid(i));
  keys.signer_for(committee_identity());
  return keys;
}

std::shared_ptr<CommitteeConfig> StandaloneCommittee::make_config(
    const crypto::KeyRegistry& keys) const {
  auto config = std::make_shared<CommitteeConfig>();
  config->instance = deal_id;
  config->committee_identity = committee_identity();
  config->members = notary_pids();
  config->base_round = base_round;
  config->notify = participant_pids();
  config->validity.deal_id = deal_id;
  for (int i = 0; i < n; ++i) {
    config->validity.expected_escrows.push_back(escrow_pid(i));
  }
  for (int i = 0; i < customer_count(); ++i) {
    config->validity.expected_customers.push_back(customer_pid(i));
  }
  config->validity.bob = bob_pid();
  config->validity.keys = &keys;
  return config;
}

std::vector<net::Message> StandaloneCommittee::client_messages(
    crypto::KeyRegistry& keys) const {
  std::vector<net::Message> msgs;
  auto to_all_notaries = [&](sim::ProcessId from, net::MsgKind kind,
                             net::BodyPtr body) {
    for (int i = 0; i < notaries; ++i) {
      net::Message m;
      m.from = from;
      m.to = notary_pid(i);
      m.kind = kind;
      m.body = body;
      msgs.push_back(std::move(m));
    }
  };
  if (evidence == Value::kCommit) {
    auto chi_body = net::make_body<proto::CertMsg>();
    chi_body->cert =
        crypto::make_payment_cert(keys.signer_for(bob_pid()), deal_id);
    to_all_notaries(bob_pid(), net::kinds::tm_chi, chi_body);
    for (int i = 0; i < n; ++i) {
      auto stmt = make_statement(keys.signer_for(escrow_pid(i)), "escrowed",
                                 deal_id);
      to_all_notaries(escrow_pid(i), net::kinds::tm_report,
                      make_report_body(std::move(stmt)));
    }
  } else {
    auto stmt = make_statement(keys.signer_for(customer_pid(0)),
                               "abort-petition", deal_id);
    to_all_notaries(customer_pid(0), net::kinds::tm_report,
                    make_report_body(std::move(stmt)));
  }
  return msgs;
}

void DecisionCollector::on_message(const net::Message& m) {
  if (value_) return;
  if (m.kind != net::kinds::tm_cert) return;
  const auto* d = m.body_as<DecisionMsg>();
  if (d == nullptr) return;
  const crypto::Certificate& cert = d->cert;
  if (cert.deal_id != config_->instance ||
      cert.issuer != config_->committee_identity ||
      cert.kind == crypto::CertKind::kPayment) {
    return;
  }
  if (!crypto::verify_quorum_cert(keys_, cert, config_->members,
                                  static_cast<std::size_t>(
                                      config_->quorum()))) {
    return;
  }
  cert_ = cert;
  value_ = cert.kind == crypto::CertKind::kCommit ? Value::kCommit
                                                  : Value::kAbort;
}

std::string CommitteeOutcome::canonical() const {
  if (!value) return "undecided";
  std::string s = "value=";
  s += value_name(*value);
  s += " cert=";
  s += crypto::cert_kind_name(cert.kind);
  s += " deal=" + std::to_string(cert.deal_id);
  s += " issuer=" + std::to_string(cert.issuer.value());
  s += cert_valid ? " quorum=valid" : " quorum=INVALID";
  return s;
}

CommitteeOutcome run_standalone_sim(const StandaloneCommittee& sc,
                                    const TransportFactory& make_via) {
  sim::Simulator sim(sc.seed);
  crypto::KeyRegistry keys = sc.make_keys();
  net::Network network(sim, net::DelayModel::synchronous(sc.delta));
  auto config = sc.make_config(keys);
  std::unique_ptr<net::Transport> via;
  if (make_via) via = make_via(network);

  std::vector<DecisionCollector*> collectors;
  for (int i = 0; i < sc.participant_count(); ++i) {
    auto& c = sim.spawn<DecisionCollector>("participant_" + std::to_string(i),
                                           config, keys);
    XCP_REQUIRE(c.id() == sim::ProcessId(static_cast<std::uint32_t>(i)),
                "participant id prediction broken");
    network.attach(c);
    collectors.push_back(&c);
  }
  for (int i = 0; i < sc.notaries; ++i) {
    auto& notary =
        sim.spawn<Notary>("notary_" + std::to_string(i), config, keys);
    XCP_REQUIRE(notary.id() == sc.notary_pid(i),
                "notary id prediction broken");
    network.attach(notary);
  }

  auto msgs = sc.client_messages(keys);
  sim.schedule_at(TimePoint::origin(), [&] {
    for (const auto& m : msgs) {
      if (via) {
        via->send(m);
      } else {
        network.send(m.from, m.to, m.kind, m.body);
      }
    }
  });
  sim.run_until(TimePoint::origin() + Duration::seconds(120));

  CommitteeOutcome out;
  const DecisionCollector& c0 = *collectors[0];
  out.value = c0.value();
  if (out.value) {
    out.cert = c0.cert();
    out.cert_valid = crypto::verify_quorum_cert(
        keys, out.cert, config->members,
        static_cast<std::size_t>(config->quorum()));
  }
  return out;
}

}  // namespace xcp::consensus
