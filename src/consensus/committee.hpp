#pragma once
// Committee-wide configuration shared by all notaries of one agreement
// instance, plus the application-level validity rules.

#include <functional>
#include <memory>
#include <vector>

#include "consensus/messages.hpp"

namespace xcp::consensus {

/// Application validity: which (value, justification) pairs a correct notary
/// accepts. For the payment TM:
///  - commit requires Bob's valid chi for the deal plus a valid "escrowed"
///    statement from each of the n expected escrows;
///  - abort requires one valid "abort-petition" from an expected customer.
struct ValidityRules {
  std::uint64_t deal_id = 0;
  std::vector<sim::ProcessId> expected_escrows;
  std::vector<sim::ProcessId> expected_customers;
  sim::ProcessId bob;
  const crypto::KeyRegistry* keys = nullptr;

  bool valid(Value v, const Justification& just) const;
};

struct CommitteeConfig {
  std::uint64_t instance = 0;          // = deal id
  sim::ProcessId committee_identity;   // issuer of the quorum certificate
  std::vector<sim::ProcessId> members; // notary process ids, fixed order
  Duration base_round = Duration::millis(500);
  Duration max_round = Duration::seconds(60);
  ValidityRules validity;
  /// Everyone who must learn the decision (participants of the payment).
  std::vector<sim::ProcessId> notify;

  int f() const { return (static_cast<int>(members.size()) - 1) / 3; }
  int quorum() const { return 2 * f() + 1; }
  int leader_of_round(int round) const {
    return round % static_cast<int>(members.size());
  }
  Duration round_duration(int round) const;
};

}  // namespace xcp::consensus
