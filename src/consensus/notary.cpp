#include "consensus/notary.hpp"

#include <algorithm>

#include "net/wire.hpp"
#include "proto/bodies.hpp"
#include "support/log.hpp"
#include "support/status.hpp"

namespace xcp::consensus {

namespace {
constexpr std::uint64_t kRoundTimerToken = 1;
}  // namespace

Notary::Notary(std::shared_ptr<const CommitteeConfig> config,
               crypto::KeyRegistry& keys, NotaryBehaviour behaviour)
    : config_(std::move(config)), keys_(keys), behaviour_(behaviour) {
  XCP_REQUIRE(config_ != nullptr, "null committee config");
  XCP_REQUIRE(!config_->members.empty(), "empty committee");
}

void Notary::on_start() {
  signer_ = keys_.signer_for(id());
  for (std::size_t i = 0; i < config_->members.size(); ++i) {
    if (config_->members[i] == id()) self_index_ = static_cast<int>(i);
  }
  XCP_REQUIRE(self_index_ >= 0, "notary not a committee member");
  if (behaviour_ == NotaryBehaviour::kSilent) return;  // crashed from birth
  if (restored_decided_ && decided_) {
    // A journaled decision is final: no rounds to rejoin. Re-broadcast the
    // certificate so peers and participants that missed it converge
    // (idempotent for receivers), then serve catch-ups from decision_cert().
    if (cert_) {
      auto body = net::make_body<DecisionMsg>();
      body->cert = *cert_;
      for (sim::ProcessId pid : config_->notify) {
        send(pid, net::kinds::tm_cert, body);
      }
      broadcast_to_committee(net::kinds::bft_decision, body);
    }
    return;
  }
  enter_round(0);
}

void Notary::restore(const std::vector<net::WalRecord>& records) {
  XCP_REQUIRE(!decided_, "restore on a notary that already decided");
  for (const net::WalRecord& r : records) {
    if (r.instance != config_->instance) continue;  // another deal's records
    const Value v = static_cast<Value>(r.value != 0);
    switch (r.kind) {
      case net::WalRecordKind::kPrevote:
        journaled_prevotes_.emplace(r.round, v);  // first write wins
        break;
      case net::WalRecordKind::kPrecommit:
        // Precommits sign the round-independent decision digest, so one
        // journaled precommit pins this notary's lock for good.
        if (!journaled_precommit_) journaled_precommit_ = v;
        if (r.round >= lock_round_) {
          locked_ = *journaled_precommit_;
          lock_round_ = r.round;
        }
        break;
      case net::WalRecordKind::kDecide: {
        decided_ = v;
        restored_decided_ = true;
        if (!r.cert.empty()) {
          net::WireContext ctx;
          ctx.roster = &config_->members;
          cert_ = net::parse_certificate(r.cert, ctx);
        }
        break;
      }
      case net::WalRecordKind::kInvalid:
        break;
    }
  }
}

void Notary::journal(net::WalRecordKind kind, int round, Value v,
                     std::vector<std::uint8_t> cert_bytes) {
  if (wal_ == nullptr || behaviour_ != NotaryBehaviour::kHonest) return;
  net::WalRecord r;
  r.kind = kind;
  r.instance = config_->instance;
  r.round = round;
  r.value = static_cast<std::uint8_t>(v);
  r.cert = std::move(cert_bytes);
  wal_->append(r);
}

std::vector<std::uint8_t> Notary::wire_cert_bytes(
    const crypto::Certificate& c) const {
  net::WireContext ctx;
  ctx.roster = &config_->members;
  return net::serialize_certificate(c, ctx);
}

bool Notary::is_leader(int round) const {
  return config_->leader_of_round(round) == self_index_;
}

void Notary::enter_round(int round) {
  round_ = round;
  proposed_this_round_ = false;
  prevoted_this_round_ = false;
  precommitted_this_round_ = false;
  if (round_timer_ != 0) cancel_timer(round_timer_);
  round_timer_ =
      set_timer_local_after(config_->round_duration(round), kRoundTimerToken);
  // Tell the round's leader (and everyone, for simplicity) what we have
  // locked, so the leader re-proposes a locked value.
  auto nr = net::make_body<NewRoundMsg>();
  nr->instance = config_->instance;
  nr->round = round;
  nr->locked = locked_;
  nr->lock_round = lock_round_;
  broadcast_to_committee(net::kinds::bft_newround, nr);
  maybe_propose();
}

void Notary::maybe_propose() {
  if (decided_ || proposed_this_round_ || !is_leader(round_)) return;

  // Choose the value: a lock (own or reported) takes priority; otherwise the
  // preference formed from collected reports. With no evidence at all there
  // is nothing valid to propose yet.
  std::optional<Value> value = locked_;
  if (!value && reported_lock_) value = reported_lock_;
  if (!value) value = preference();
  if (!value) return;

  Justification just = justification_for(*value);
  if (!config_->validity.valid(*value, just)) {
    // A locked/reported value is always re-justifiable by whoever locked it,
    // but this notary may lack the evidence (e.g. reported lock without the
    // underlying reports). Fall back to its own preference if valid.
    value = preference();
    if (!value) return;
    just = justification_for(*value);
    if (!config_->validity.valid(*value, just)) return;
  }

  proposed_this_round_ = true;
  auto p = net::make_body<ProposalMsg>();
  p->instance = config_->instance;
  p->round = round_;
  p->value = *value;
  p->just = std::move(just);
  p->sig = signer_.sign(proposal_digest(p->instance, p->round, p->value));
  broadcast_to_committee(net::kinds::bft_proposal, p);

  if (behaviour_ == NotaryBehaviour::kEquivocator) {
    // Also propose the opposite value if it can be justified.
    const Value other = *value == Value::kCommit ? Value::kAbort : Value::kCommit;
    Justification oj = justification_for(other);
    if (config_->validity.valid(other, oj)) {
      auto p2 = net::make_body<ProposalMsg>();
      p2->instance = config_->instance;
      p2->round = round_;
      p2->value = other;
      p2->just = std::move(oj);
      p2->sig = signer_.sign(proposal_digest(p2->instance, p2->round, other));
      broadcast_to_committee(net::kinds::bft_proposal, p2);
    }
  }
}

std::optional<Value> Notary::preference() const {
  // Abort preference as soon as any petition is in hand; commit preference
  // once the full escrow evidence plus chi is assembled. When both are
  // available, prefer commit (the petitioner is covered either way; CC is
  // enforced by agreement, not by preference).
  const bool commit_ready =
      chi_.has_value() &&
      escrowed_.size() >= config_->validity.expected_escrows.size();
  if (commit_ready) return Value::kCommit;
  if (petition_) return Value::kAbort;
  return std::nullopt;
}

Justification Notary::justification_for(Value v) const {
  Justification j;
  if (v == Value::kCommit) {
    j.chi = chi_;
    for (const auto& [pid, s] : escrowed_) j.statements.push_back(s);
  } else if (petition_) {
    j.statements.push_back(*petition_);
  }
  return j;
}

void Notary::ingest_report(const net::Message& m) {
  if (m.kind == net::kinds::tm_chi) {
    const auto* body = m.body_as<proto::CertMsg>();
    if (body == nullptr) return;
    const crypto::Certificate& cert = body->cert;
    if (cert.kind == crypto::CertKind::kPayment &&
        cert.deal_id == config_->instance &&
        cert.issuer == config_->validity.bob &&
        crypto::verify_cert(keys_, cert)) {
      chi_ = cert;
    }
    return;
  }
  const auto* body = m.body_as<ReportMsg>();
  if (body == nullptr) return;
  const SignedStatement& s = body->statement;
  if (s.deal_id != config_->instance || !s.verify(keys_)) return;
  if (s.kind == "escrowed") {
    const auto& expected = config_->validity.expected_escrows;
    if (std::find(expected.begin(), expected.end(), s.subject) != expected.end()) {
      escrowed_.emplace(s.subject.value(), s);
    }
  } else if (s.kind == "abort-petition") {
    const auto& customers = config_->validity.expected_customers;
    if (std::find(customers.begin(), customers.end(), s.subject) !=
        customers.end()) {
      if (!petition_) petition_ = s;
    }
  }
}

void Notary::handle_proposal(const ProposalMsg& p, sim::ProcessId from) {
  if (p.instance != config_->instance || p.round != round_) return;
  if (from != config_->members[static_cast<std::size_t>(
                  config_->leader_of_round(p.round))]) {
    return;  // not from this round's leader
  }
  if (!keys_.verify(p.sig, proposal_digest(p.instance, p.round, p.value))) return;
  if (!config_->validity.valid(p.value, p.just)) return;
  if (prevoted_this_round_ && behaviour_ != NotaryBehaviour::kEquivocator) return;
  // Locked notaries only prevote their locked value.
  if (locked_ && *locked_ != p.value &&
      behaviour_ != NotaryBehaviour::kEquivocator) {
    return;
  }
  // Adopt the justification so this notary can re-propose later if it
  // becomes leader while locked.
  if (p.value == Value::kCommit) {
    if (p.just.chi) chi_ = p.just.chi;
    for (const auto& s : p.just.statements) {
      if (s.kind == "escrowed" && s.verify(keys_)) {
        escrowed_.emplace(s.subject.value(), s);
      }
    }
  } else {
    for (const auto& s : p.just.statements) {
      if (s.kind == "abort-petition" && s.verify(keys_) && !petition_) {
        petition_ = s;
      }
    }
  }
  prevoted_this_round_ = true;
  send_prevote(p.value);
}

void Notary::send_prevote(Value v) {
  if (behaviour_ == NotaryBehaviour::kHonest) {
    // Amnesia-safety: a journaled prevote for this round pins the value a
    // previous life signed. Re-sending the same vote is harmless (receivers
    // dedup by signer); signing a different one would be equivocation.
    const auto it = journaled_prevotes_.find(round_);
    if (it != journaled_prevotes_.end() && it->second != v) return;
    if (it == journaled_prevotes_.end()) {
      journal(net::WalRecordKind::kPrevote, round_, v);
      journaled_prevotes_.emplace(round_, v);
    }
  }
  auto vote = net::make_body<VoteMsg>();
  vote->instance = config_->instance;
  vote->round = round_;
  vote->value = v;
  vote->phase = VoteMsg::Phase::kPrevote;
  vote->sig = signer_.sign(prevote_digest(config_->instance, round_, v));
  broadcast_to_committee(net::kinds::bft_vote, vote);
  if (behaviour_ == NotaryBehaviour::kEquivocator) {
    const Value other = v == Value::kCommit ? Value::kAbort : Value::kCommit;
    auto vote2 = net::make_body<VoteMsg>();
    vote2->instance = config_->instance;
    vote2->round = round_;
    vote2->value = other;
    vote2->phase = VoteMsg::Phase::kPrevote;
    vote2->sig = signer_.sign(prevote_digest(config_->instance, round_, other));
    broadcast_to_committee(net::kinds::bft_vote, vote2);
  }
}

void Notary::send_precommit(Value v) {
  if (behaviour_ == NotaryBehaviour::kHonest) {
    // Precommits sign the round-independent decision digest: one journaled
    // precommit for the other value forbids this one forever.
    if (journaled_precommit_ && *journaled_precommit_ != v) return;
    if (!journaled_precommit_) {
      journal(net::WalRecordKind::kPrecommit, round_, v);
      journaled_precommit_ = v;
    }
  }
  auto vote = net::make_body<VoteMsg>();
  vote->instance = config_->instance;
  vote->round = round_;
  vote->value = v;
  vote->phase = VoteMsg::Phase::kPrecommit;
  vote->sig = signer_.sign(
      decision_digest(config_->instance, config_->committee_identity, v));
  broadcast_to_committee(net::kinds::bft_vote, vote);
}

void Notary::handle_vote(const VoteMsg& v, sim::ProcessId from) {
  if (v.instance != config_->instance) return;
  const bool member =
      std::find(config_->members.begin(), config_->members.end(), from) !=
      config_->members.end();
  if (!member || from != v.sig.signer) return;

  if (v.phase == VoteMsg::Phase::kPrevote) {
    if (!keys_.verify(v.sig, prevote_digest(v.instance, v.round, v.value))) return;
    auto& voters = prevotes_[{v.round, static_cast<int>(v.value)}];
    voters.insert(from.value());
    if (v.round == round_ &&
        static_cast<int>(voters.size()) >= config_->quorum() &&
        !precommitted_this_round_) {
      if (behaviour_ == NotaryBehaviour::kHonest && journaled_precommit_ &&
          *journaled_precommit_ != v.value) {
        // A previous life precommitted the other value; adopting this
        // quorum's lock would let us sign a conflicting decision digest.
        return;
      }
      // Lock and precommit.
      locked_ = v.value;
      lock_round_ = v.round;
      precommitted_this_round_ = true;
      send_precommit(v.value);
      if (behaviour_ == NotaryBehaviour::kEquivocator) {
        send_precommit(v.value == Value::kCommit ? Value::kAbort
                                                 : Value::kCommit);
      }
    }
    return;
  }

  // Precommit: signature over the decision digest.
  const std::uint64_t digest =
      decision_digest(v.instance, config_->committee_identity, v.value);
  if (!keys_.verify(v.sig, digest)) return;
  auto& sigs = precommits_[static_cast<int>(v.value)];
  sigs.emplace(from.value(), v.sig);
  if (static_cast<int>(sigs.size()) >= config_->quorum() && !decided_) {
    decide(v.value);
  }
}

void Notary::handle_new_round(const NewRoundMsg& nr, sim::ProcessId from) {
  if (nr.instance != config_->instance) return;
  const bool member =
      std::find(config_->members.begin(), config_->members.end(), from) !=
      config_->members.end();
  if (!member) return;
  if (nr.locked && nr.lock_round > reported_lock_round_) {
    reported_lock_ = nr.locked;
    reported_lock_round_ = nr.lock_round;
  }
  maybe_propose();
}

void Notary::decide(Value v) {
  if (v == Value::kCommit && !chi_.has_value()) {
    // A recovered notary can reach a commit precommit quorum before it has
    // re-collected chi (the in-memory evidence died with the old process).
    // Without chi it cannot assemble a valid commit certificate, so it waits
    // for a bft_decision relay or catch-up response instead.
    return;
  }
  decided_ = v;
  if (round_timer_ != 0) cancel_timer(round_timer_);

  // Assemble the quorum certificate from the collected precommit signatures.
  std::vector<crypto::Signature> sigs;
  for (const auto& [signer, sig] : precommits_[static_cast<int>(v)]) {
    sigs.push_back(sig);
    if (static_cast<int>(sigs.size()) == config_->quorum()) break;
  }
  const crypto::Certificate* chi_ptr = nullptr;
  crypto::Certificate chi_store;
  if (v == Value::kCommit) {
    XCP_REQUIRE(chi_.has_value(), "committing without chi in hand");
    chi_store = *chi_;
    chi_ptr = &chi_store;
  }
  const crypto::Certificate cert = crypto::make_quorum_cert(
      cert_kind_of(v), config_->instance, config_->committee_identity,
      std::move(sigs), chi_ptr);
  cert_ = cert;
  journal(net::WalRecordKind::kDecide, round_, v, wire_cert_bytes(cert));

  record_decide_event(v);

  auto body = net::make_body<DecisionMsg>();
  body->cert = cert;
  for (sim::ProcessId pid : config_->notify) send(pid, net::kinds::tm_cert, body);
  broadcast_to_committee(net::kinds::bft_decision, body);
}

void Notary::record_decide_event(Value v) {
  if (net().trace() == nullptr) return;
  props::TraceEvent e;
  e.kind = props::EventKind::kDecide;
  e.at = global_now();
  e.local_at = local_now();
  e.actor = id();
  e.label = value_label(v);
  e.deal_id = config_->instance;
  net().trace()->record(e);
}

void Notary::handle_decision(const DecisionMsg& d) {
  if (decided_) return;
  const crypto::Certificate& cert = d.cert;
  if (cert.deal_id != config_->instance) return;
  if (cert.issuer != config_->committee_identity) return;
  if (cert.kind != crypto::CertKind::kCommit &&
      cert.kind != crypto::CertKind::kAbort) {
    return;
  }
  if (!crypto::verify_quorum_cert(keys_, cert, config_->members,
                                  static_cast<std::size_t>(config_->quorum()))) {
    return;
  }
  decided_ = cert.kind == crypto::CertKind::kCommit ? Value::kCommit
                                                    : Value::kAbort;
  cert_ = cert;
  journal(net::WalRecordKind::kDecide, round_, *decided_,
          wire_cert_bytes(cert));
  if (round_timer_ != 0) cancel_timer(round_timer_);
  // Relay to participants (helps when the original decider's sends were
  // slow); decision relays are idempotent for receivers.
  auto body = net::make_body<DecisionMsg>(d);
  for (sim::ProcessId pid : config_->notify) send(pid, net::kinds::tm_cert, body);
}

void Notary::on_message(const net::Message& m) {
  if (behaviour_ == NotaryBehaviour::kSilent) return;
  if (decided_ && m.kind != net::kinds::bft_decision) return;

  if (m.kind == net::kinds::tm_report || m.kind == net::kinds::tm_chi) {
    ingest_report(m);
    maybe_propose();
    return;
  }
  if (m.kind == net::kinds::bft_proposal) {
    if (const auto* p = m.body_as<ProposalMsg>()) handle_proposal(*p, m.from);
    return;
  }
  if (m.kind == net::kinds::bft_vote) {
    if (const auto* v = m.body_as<VoteMsg>()) handle_vote(*v, m.from);
    return;
  }
  if (m.kind == net::kinds::bft_newround) {
    if (const auto* nr = m.body_as<NewRoundMsg>()) handle_new_round(*nr, m.from);
    return;
  }
  if (m.kind == net::kinds::bft_decision) {
    if (const auto* d = m.body_as<DecisionMsg>()) handle_decision(*d);
    return;
  }
}

void Notary::on_timer(std::uint64_t token) {
  if (behaviour_ == NotaryBehaviour::kSilent || decided_) return;
  if (token == kRoundTimerToken) enter_round(round_ + 1);
}

void Notary::broadcast_to_committee(net::MsgKind kind, net::BodyPtr body) {
  for (sim::ProcessId pid : config_->members) {
    if (pid == id()) continue;
    send(pid, kind, body);
  }
  // Self-delivery without the network: process own votes/proposals inline.
  net::Message self;
  self.from = id();
  self.to = id();
  self.kind = kind;
  self.body = std::move(body);
  on_message(self);
}

}  // namespace xcp::consensus
