#include "consensus/messages.hpp"

namespace xcp::consensus {

const char* value_name(Value v) {
  return v == Value::kCommit ? "commit" : "abort";
}

props::Label value_label(Value v) {
  return v == Value::kCommit ? props::labels::commit : props::labels::abort_;
}

crypto::CertKind cert_kind_of(Value v) {
  return v == Value::kCommit ? crypto::CertKind::kCommit
                             : crypto::CertKind::kAbort;
}

net::BodyPtr make_report_body(SignedStatement s) {
  auto body = net::make_body<ReportMsg>();
  body->statement = std::move(s);
  return body;
}

SignedStatement make_statement(const crypto::Signer& signer, std::string kind,
                               std::uint64_t deal_id, std::uint64_t detail) {
  SignedStatement s;
  s.kind = std::move(kind);
  s.deal_id = deal_id;
  s.subject = signer.id();
  s.detail = detail;
  s.sig = signer.sign(s.digest());
  return s;
}

std::uint64_t proposal_digest(std::uint64_t instance, int round, Value v) {
  return crypto::statement_digest("bft-proposal", instance, sim::ProcessId(),
                                  (static_cast<std::uint64_t>(round) << 8) |
                                      static_cast<std::uint64_t>(v));
}

std::uint64_t prevote_digest(std::uint64_t instance, int round, Value v) {
  return crypto::statement_digest("bft-prevote", instance, sim::ProcessId(),
                                  (static_cast<std::uint64_t>(round) << 8) |
                                      static_cast<std::uint64_t>(v));
}

std::uint64_t decision_digest(std::uint64_t instance, sim::ProcessId committee,
                              Value v) {
  // Must equal Certificate::digest() of the quorum certificate the
  // participants verify: statement_digest(kind-name, deal, issuer).
  crypto::Certificate c;
  c.kind = cert_kind_of(v);
  c.deal_id = instance;
  c.issuer = committee;
  return c.digest();
}

}  // namespace xcp::consensus
