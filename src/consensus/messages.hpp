#pragma once
// Messages of the notary-committee agreement.
//
// The paper (Sec. 3): the transaction manager "can also be a collection of
// notaries appointed by the participants in the protocol, of which less than
// one-third is assumed to be unreliable. They would run a consensus
// algorithm for partial synchrony such as the one from Dwork, Lynch &
// Stockmeyer". We implement a single-shot binary agreement in that style:
// rotating leaders, rounds with growing timeouts, 2f+1 prevote/precommit
// quorums and value locking — safe under asynchrony, live after GST.
//
// A precommit is a signature over the *decision certificate digest* for the
// value, so 2f+1 precommits literally assemble into the quorum certificate
// (crypto::Certificate with `quorum`) that participants verify.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/certificate.hpp"
#include "crypto/signature.hpp"
#include "net/message.hpp"

namespace xcp::consensus {

enum class Value : std::uint8_t { kCommit = 0, kAbort = 1 };

const char* value_name(Value v);

/// The pre-interned trace label for a decision value ("commit"/"abort") —
/// lock-free on the decide-event emit path.
props::Label value_label(Value v);

/// Converts between decision values and certificate kinds.
crypto::CertKind cert_kind_of(Value v);

/// A signed application-level statement used to justify proposals: escrow
/// e_i saying "deposit i is escrowed", or a customer petitioning abort.
struct SignedStatement {
  std::string kind;  // "escrowed" | "abort-petition"
  std::uint64_t deal_id = 0;
  sim::ProcessId subject;  // the signer's protocol identity
  std::uint64_t detail = 0;
  crypto::Signature sig;

  std::uint64_t digest() const {
    return crypto::statement_digest(kind, deal_id, subject, detail);
  }
  bool verify(const crypto::KeyRegistry& keys) const {
    return sig.signer == subject && keys.verify(sig, digest());
  }
};

SignedStatement make_statement(const crypto::Signer& signer, std::string kind,
                               std::uint64_t deal_id, std::uint64_t detail = 0);

/// Evidence carried by a proposal. Commit proposals need Bob's chi plus one
/// "escrowed" statement per escrow; abort proposals need one petition.
struct Justification {
  std::vector<SignedStatement> statements;
  std::optional<crypto::Certificate> chi;
};

/// Participant -> notary (or other TM) report carrying a signed statement.
struct ReportMsg final : net::MessageBody {
  SignedStatement statement;
  std::string describe() const override {
    return "report(" + statement.kind + ")";
  }
};

net::BodyPtr make_report_body(SignedStatement s);

struct ProposalMsg final : net::MessageBody {
  std::uint64_t instance = 0;  // = deal id
  int round = 0;
  Value value = Value::kAbort;
  Justification just;
  crypto::Signature sig;  // leader's signature over (instance, round, value)

  std::string describe() const override {
    return "propose(r=" + std::to_string(round) + ", " + value_name(value) + ")";
  }
};

struct VoteMsg final : net::MessageBody {
  enum class Phase : std::uint8_t { kPrevote = 0, kPrecommit = 1 };
  std::uint64_t instance = 0;
  int round = 0;
  Value value = Value::kAbort;
  Phase phase = Phase::kPrevote;
  /// Prevotes sign (instance, round, phase, value); precommits sign the
  /// decision-certificate digest for `value` (round-independent; see header
  /// comment — the no-conflicting-locks argument makes that safe).
  crypto::Signature sig;

  std::string describe() const override {
    return std::string(phase == Phase::kPrevote ? "prevote" : "precommit") +
           "(r=" + std::to_string(round) + ", " + value_name(value) + ")";
  }
};

struct NewRoundMsg final : net::MessageBody {
  std::uint64_t instance = 0;
  int round = 0;  // the round being entered
  std::optional<Value> locked;
  int lock_round = -1;

  std::string describe() const override {
    return "new-round(r=" + std::to_string(round) + ")";
  }
};

struct DecisionMsg final : net::MessageBody {
  crypto::Certificate cert;  // quorum certificate

  std::string describe() const override { return "decision " + cert.str(); }
};

/// Digest a leader signs for its proposal.
std::uint64_t proposal_digest(std::uint64_t instance, int round, Value v);

/// Digest a notary signs for a prevote.
std::uint64_t prevote_digest(std::uint64_t instance, int round, Value v);

/// Digest of the decision certificate for (instance, value) issued under the
/// committee identity; precommits sign this.
std::uint64_t decision_digest(std::uint64_t instance, sim::ProcessId committee,
                              Value v);

}  // namespace xcp::consensus
