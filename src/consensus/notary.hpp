#pragma once
// A notary: one member of the committee transaction manager. It plays two
// roles at once:
//  - report collector: participants broadcast "escrowed" statements, Bob's
//    chi and abort petitions to every notary; from these each notary forms
//    its preference (commit once the full escrow evidence is in; abort once
//    any petition arrives);
//  - consensus participant: rotating-leader rounds with prevote/precommit
//    quorums and value locking (consensus/messages.hpp for the scheme).
//
// On deciding, a notary assembles the 2f+1 precommit signatures into a
// quorum certificate and broadcasts it to all parties in `config.notify`.
//
// Byzantine notary behaviours (for fault-injection tests and the TM bench):
// silent (crashes immediately) and equivocator (prevotes and precommits both
// values, and proposes whichever value it can when leader).

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "consensus/committee.hpp"
#include "net/network.hpp"
#include "net/wal.hpp"
#include "props/trace.hpp"

namespace xcp::consensus {

enum class NotaryBehaviour { kHonest, kSilent, kEquivocator };

class Notary : public net::Actor {
 public:
  Notary(std::shared_ptr<const CommitteeConfig> config,
         crypto::KeyRegistry& keys,
         NotaryBehaviour behaviour = NotaryBehaviour::kHonest);

  bool decided() const { return decided_.has_value(); }
  std::optional<Value> decision() const { return decided_; }
  /// The quorum certificate this notary assembled or adopted; set exactly
  /// when decided(). Catch-up responders (tools/xcp_node) serve it to
  /// rejoining peers.
  const std::optional<crypto::Certificate>& decision_cert() const {
    return cert_;
  }
  int rounds_entered() const { return round_ + 1; }

  // --- crash recovery (net/wal.hpp; docs/ROBUSTNESS.md crash-recovery rung)

  /// Attaches the write-ahead journal: every prevote, precommit and
  /// decision is appended (and fsync'd) BEFORE the corresponding broadcast
  /// leaves this notary, so a crash can lose an unsent vote but never sends
  /// an unjournaled one. Honest notaries only; Byzantine behaviours ignore
  /// the journal by design.
  void set_wal(net::WriteAheadLog* wal) { wal_ = wal; }

  /// Replays journal records from a previous life (WriteAheadLog::open()).
  /// Call after construction, before the simulation starts. Amnesia-safety
  /// afterwards: this notary refuses to prevote a different value in any
  /// round it already prevoted, refuses to precommit a value conflicting
  /// with a journaled precommit (precommits sign the round-independent
  /// decision digest), and a journaled decision is immediately final —
  /// on_start re-broadcasts its certificate instead of rejoining rounds.
  void restore(const std::vector<net::WalRecord>& records);

  void on_start() override;
  void on_message(const net::Message& m) override;
  void on_timer(std::uint64_t token) override;

 private:
  // --- report collection / preference formation ---
  void ingest_report(const net::Message& m);
  std::optional<Value> preference() const;
  Justification justification_for(Value v) const;

  // --- consensus core ---
  bool is_leader(int round) const;
  void enter_round(int round);
  void maybe_propose();
  void handle_proposal(const ProposalMsg& p, sim::ProcessId from);
  void handle_vote(const VoteMsg& v, sim::ProcessId from);
  void handle_new_round(const NewRoundMsg& nr, sim::ProcessId from);
  void handle_decision(const DecisionMsg& d);
  void broadcast_to_committee(net::MsgKind kind, net::BodyPtr body);
  void send_prevote(Value v);
  void send_precommit(Value v);
  void decide(Value v);
  void record_decide_event(Value v);
  void journal(net::WalRecordKind kind, int round, Value v,
               std::vector<std::uint8_t> cert_bytes = {});
  std::vector<std::uint8_t> wire_cert_bytes(const crypto::Certificate& c) const;

  std::shared_ptr<const CommitteeConfig> config_;
  crypto::KeyRegistry& keys_;
  NotaryBehaviour behaviour_;
  crypto::Signer signer_;
  int self_index_ = -1;

  // Collected application evidence.
  std::map<std::uint32_t, SignedStatement> escrowed_;  // by escrow pid
  std::optional<crypto::Certificate> chi_;
  std::optional<SignedStatement> petition_;

  // Round state.
  int round_ = 0;
  bool proposed_this_round_ = false;
  bool prevoted_this_round_ = false;
  bool precommitted_this_round_ = false;
  std::optional<Value> locked_;
  int lock_round_ = -1;
  sim::TimerId round_timer_ = 0;

  // Vote bookkeeping: prevotes per (round, value) by signer; precommit
  // signatures per value by signer (accumulated across rounds — they sign
  // the round-independent decision digest).
  std::map<std::pair<int, int>, std::set<std::uint32_t>> prevotes_;
  std::map<int, std::map<std::uint32_t, crypto::Signature>> precommits_;
  // Highest locked value reported by peers entering the current round.
  std::optional<Value> reported_lock_;
  int reported_lock_round_ = -1;

  std::optional<Value> decided_;
  std::optional<crypto::Certificate> cert_;

  // Crash-recovery state: the journal (may be null) and what it already
  // holds — the amnesia-safety guards consult these before signing.
  net::WriteAheadLog* wal_ = nullptr;
  std::map<int, Value> journaled_prevotes_;  // round -> value signed
  std::optional<Value> journaled_precommit_;
  bool restored_decided_ = false;
};

}  // namespace xcp::consensus
