#pragma once
// A deterministic standalone committee scenario: one deal, n+1 customers,
// n escrows and m notaries, with the committee configuration, key registry
// and client evidence all derivable from the scenario parameters alone.
//
// This is the fixture for the transport differential: every process of a
// multi-process deployment (tools/xcp_node) constructs the same scenario
// from the same flags and gets byte-identical keys, committee config and
// evidence — and the in-sim reference runner (run_standalone_sim) produces
// the outcome the socket deployment must match.
//
// Process-id layout (mirrors proto/weak's run_weak so the pids read the
// same in traces): customers c_0..c_n at pids 0..n (Bob = c_n, the last
// customer), escrows e_0..e_{n-1} at pids n+1..2n, notaries at pids
// 2n+1..2n+m. The committee identity is ProcessId(3'000'000 + deal_id).
//
// KeyRegistry caveat: secrets depend on the order of first-sight
// registration (crypto/identity.cpp), so make_keys() registers every
// identity in one canonical order; any process building the registry this
// way verifies any other process's signatures.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "consensus/notary.hpp"
#include "net/network.hpp"

namespace xcp::consensus {

struct StandaloneCommittee {
  std::uint64_t seed = 7;
  std::uint64_t deal_id = 13;
  int n = 2;         // escrows; customers = n + 1
  int notaries = 4;  // m; tolerates f = (m-1)/3 faults
  /// Which evidence the participants broadcast: kCommit = Bob's chi plus
  /// one "escrowed" statement per escrow; kAbort = one abort petition.
  Value evidence = Value::kCommit;
  Duration base_round = Duration::millis(100);
  /// In-sim message delay (reference runner only; sockets are real).
  Duration delta = Duration::millis(5);

  int customer_count() const { return n + 1; }
  int participant_count() const { return 2 * n + 1; }
  sim::ProcessId customer_pid(int i) const { return sim::ProcessId(i); }
  sim::ProcessId bob_pid() const { return customer_pid(n); }
  sim::ProcessId escrow_pid(int i) const {
    return sim::ProcessId(static_cast<std::uint32_t>(n + 1 + i));
  }
  sim::ProcessId notary_pid(int i) const {
    return sim::ProcessId(static_cast<std::uint32_t>(2 * n + 1 + i));
  }
  sim::ProcessId committee_identity() const {
    return sim::ProcessId(3'000'000u + static_cast<std::uint32_t>(deal_id));
  }
  std::vector<sim::ProcessId> notary_pids() const;
  std::vector<sim::ProcessId> participant_pids() const;

  /// The registry every process derives: same seed, same canonical
  /// registration order (participants, then notaries).
  crypto::KeyRegistry make_keys() const;

  /// Committee config with validity rules bound to `keys` (which must
  /// outlive the config).
  std::shared_ptr<CommitteeConfig> make_config(
      const crypto::KeyRegistry& keys) const;

  /// The evidence messages the participants broadcast to every notary at
  /// t = 0 (tm_chi carrying Bob's chi + "escrowed" reports for kCommit, an
  /// abort petition for kAbort). `keys` must be the make_keys() registry.
  std::vector<net::Message> client_messages(crypto::KeyRegistry& keys) const;
};

/// A participant-side actor that waits for the committee's decision
/// certificate ("tm_cert" carrying a DecisionMsg) and verifies the quorum.
/// Invalid or mismatched certificates are ignored, not fatal.
class DecisionCollector final : public net::Actor {
 public:
  DecisionCollector(std::shared_ptr<const CommitteeConfig> config,
                    const crypto::KeyRegistry& keys)
      : config_(std::move(config)), keys_(keys) {}

  bool done() const { return value_.has_value(); }
  std::optional<Value> value() const { return value_; }
  const crypto::Certificate& cert() const { return cert_; }

  void on_message(const net::Message& m) override;

 private:
  std::shared_ptr<const CommitteeConfig> config_;
  const crypto::KeyRegistry& keys_;
  std::optional<Value> value_;
  crypto::Certificate cert_;
};

/// Outcome of a committee run as observed by a participant.
struct CommitteeOutcome {
  std::optional<Value> value;
  crypto::Certificate cert;
  bool cert_valid = false;

  /// Canonical comparison string: decision value, certificate kind, deal
  /// and issuer, and whether the quorum verified — the protocol outcome.
  /// Deliberately excludes the exact signer subset: over real sockets a
  /// different (equally valid) 2f+1 subset may assemble the certificate.
  std::string canonical() const;
};

/// In-sim reference: runs the whole committee in one simulator and returns
/// the outcome observed by customer 0. When `make_via` is set it is called
/// with the run's Network and the client evidence is routed through the
/// returned transport (differential-testing the transport seam); default
/// is direct Network::send.
using TransportFactory =
    std::function<std::unique_ptr<net::Transport>(net::Network&)>;
CommitteeOutcome run_standalone_sim(const StandaloneCommittee& sc,
                                    const TransportFactory& make_via = {});

}  // namespace xcp::consensus
