#include "chain/transaction.hpp"

#include "support/hash.hpp"

namespace xcp::chain {

std::uint64_t Transaction::digest() const {
  HashWriter w;
  w.write_u32(sender.valid() ? sender.value() : 0xffffffffu);
  w.write_str(contract);
  w.write_str(op);
  w.write_u64(arg);
  w.write_u64(arg2);
  if (cert) {
    w.write_u64(cert->digest());
    w.write_u64(cert->signature.mac);
  } else {
    w.write_u64(0);
  }
  return w.digest();
}

Transaction make_signed_tx(const crypto::Signer& signer, std::string contract,
                           std::string op, std::uint64_t arg, std::uint64_t arg2,
                           std::optional<crypto::Certificate> cert) {
  Transaction tx;
  tx.sender = signer.id();
  tx.contract = std::move(contract);
  tx.op = std::move(op);
  tx.arg = arg;
  tx.arg2 = arg2;
  tx.cert = std::move(cert);
  tx.sig = signer.sign(tx.digest());
  return tx;
}

bool verify_tx(const crypto::KeyRegistry& keys, const Transaction& tx) {
  if (tx.sig.signer != tx.sender) return false;
  return keys.verify(tx.sig, tx.digest());
}

}  // namespace xcp::chain
