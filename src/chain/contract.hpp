#pragma once
// Smart contracts: deterministic state machines applied in block order.
// The TM contract of the weak-liveness protocol (proto/weak/contract_tm.cpp)
// and the certified-commit contract of the deals baseline are Contracts.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/transaction.hpp"
#include "props/trace.hpp"
#include "support/status.hpp"
#include "support/time.hpp"

namespace xcp::chain {

class Blockchain;

/// Execution context handed to Contract::apply. Events emitted here are
/// broadcast to every chain subscriber after the block is sealed.
class ChainContext {
 public:
  ChainContext(Blockchain& chain, std::uint64_t height, TimePoint at);

  /// The chain's own identity (issuer of contract-signed certificates) and
  /// its signing capability — the contract's code is the chain's code.
  sim::ProcessId chain_id() const;
  const crypto::Signer& chain_signer() const;
  const crypto::KeyRegistry& keys() const;

  std::uint64_t block_height() const { return height_; }
  TimePoint block_time() const { return at_; }

  /// Queues an event for broadcast to all subscribers.
  void emit(const std::string& contract, std::string topic,
            std::optional<crypto::Certificate> cert = std::nullopt,
            std::string detail = "");

  props::TraceRecorder* trace();

 private:
  friend class Blockchain;
  Blockchain& chain_;
  std::uint64_t height_;
  TimePoint at_;
  std::vector<ChainEventMsg> pending_events_;
};

class Contract {
 public:
  virtual ~Contract() = default;
  virtual const std::string& name() const = 0;
  /// Applies one transaction. A failed Status means the transaction is
  /// rejected (no state change); the chain records and moves on.
  virtual Status apply(const Transaction& tx, ChainContext& ctx) = 0;
};

}  // namespace xcp::chain
