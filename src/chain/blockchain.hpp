#pragma once
// A simulated blockchain actor: clients submit signed transactions; the
// chain seals a block every `block_interval`, applying transactions in
// arrival order through registered contracts and broadcasting contract
// events to subscribers.
//
// Simplifications (recorded in DESIGN.md): a single fork-free chain with
// instant finality per block — the "certified blockchain" abstraction of
// Herlihy et al. [3], where a proof of inclusion is unforgeable. Consensus
// *inside* the chain is out of scope here; the notary-committee TM
// (src/consensus) covers the distributed-agreement case explicitly.

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/contract.hpp"
#include "chain/transaction.hpp"
#include "net/network.hpp"

namespace xcp::chain {

struct Block {
  std::uint64_t height = 0;
  TimePoint sealed_at;
  std::vector<Transaction> txs;
  std::uint64_t parent_hash = 0;
  std::uint64_t hash = 0;
};

/// A certified-blockchain inclusion proof [3]: the chain attests that a
/// transaction with the given digest is included at `height`. Unforgeable in
/// the model (only the chain holds its signing key), so any party can hand
/// it to any other as evidence — the primitive the certified-blockchain
/// commit protocol of the deals baseline relies on.
struct InclusionProof {
  std::uint64_t tx_digest = 0;
  std::uint64_t height = 0;
  std::uint64_t block_hash = 0;
  crypto::Signature sig;  // chain's signature over the statement

  std::uint64_t statement_digest(sim::ProcessId chain_id) const;
};

/// Verifies a proof against the chain identity that allegedly issued it.
bool verify_inclusion(const crypto::KeyRegistry& keys, sim::ProcessId chain_id,
                      const InclusionProof& proof);

struct BlockchainStats {
  std::uint64_t txs_accepted = 0;
  std::uint64_t txs_rejected_sig = 0;
  std::uint64_t txs_rejected_apply = 0;
  std::uint64_t blocks_sealed = 0;
  std::uint64_t events_emitted = 0;
};

class Blockchain : public net::Actor {
 public:
  Blockchain(Duration block_interval, crypto::KeyRegistry& keys);

  void register_contract(std::unique_ptr<Contract> contract);
  void subscribe(sim::ProcessId pid) { subscribers_.push_back(pid); }

  const std::vector<Block>& blocks() const { return blocks_; }
  const BlockchainStats& stats() const { return stats_; }
  const crypto::Signer& signer() const { return signer_; }
  const crypto::KeyRegistry& key_registry() const { return keys_; }
  props::TraceRecorder* trace_recorder() { return net().trace(); }

  /// Stops sealing further blocks (end-of-run cleanliness for tests).
  void stop() { stopped_ = true; }

  /// Issues an inclusion proof for a sealed transaction, or nullopt if no
  /// sealed block contains a transaction with this digest.
  std::optional<InclusionProof> prove_inclusion(std::uint64_t tx_digest) const;

  void on_start() override;
  void on_message(const net::Message& m) override;
  void on_timer(std::uint64_t token) override;

 private:
  void seal_block();

  Duration block_interval_;
  crypto::KeyRegistry& keys_;
  crypto::Signer signer_;
  std::unordered_map<std::string, std::unique_ptr<Contract>> contracts_;
  std::deque<Transaction> mempool_;
  std::vector<Block> blocks_;
  std::vector<sim::ProcessId> subscribers_;
  BlockchainStats stats_;
  bool stopped_ = false;
};

}  // namespace xcp::chain
