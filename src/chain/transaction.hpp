#pragma once
// Transactions for the simulated blockchain. Every transaction is signed by
// its sender (Byzantine-with-authentication: the chain rejects transactions
// whose signature does not verify, so nobody can submit in another's name).

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/certificate.hpp"
#include "crypto/identity.hpp"
#include "net/message.hpp"

namespace xcp::chain {

struct Transaction {
  sim::ProcessId sender;
  std::string contract;  // target contract name
  std::string op;        // operation tag interpreted by the contract
  std::uint64_t arg = 0;
  std::uint64_t arg2 = 0;
  /// Optional certificate payload (e.g. Bob submitting chi to the TM
  /// contract).
  std::optional<crypto::Certificate> cert;
  crypto::Signature sig;

  /// Canonical digest covering all semantic fields.
  std::uint64_t digest() const;
};

/// Builds a transaction signed by `signer` (the sender).
Transaction make_signed_tx(const crypto::Signer& signer, std::string contract,
                           std::string op, std::uint64_t arg = 0,
                           std::uint64_t arg2 = 0,
                           std::optional<crypto::Certificate> cert = std::nullopt);

/// Verifies the sender's signature.
bool verify_tx(const crypto::KeyRegistry& keys, const Transaction& tx);

/// Network body wrapping a transaction submission.
struct TxMsg final : net::MessageBody {
  Transaction tx;
  std::string describe() const override {
    return "tx(" + tx.contract + "." + tx.op + " from p" +
           std::to_string(tx.sender.value()) + ")";
  }
};

/// Network body for a contract event broadcast to subscribers.
struct ChainEventMsg final : net::MessageBody {
  std::string contract;
  std::string topic;
  std::uint64_t block_height = 0;
  std::optional<crypto::Certificate> cert;
  std::string detail;

  std::string describe() const override {
    return "event(" + contract + "." + topic + " @" +
           std::to_string(block_height) + ")";
  }
};

}  // namespace xcp::chain
