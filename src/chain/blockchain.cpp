#include "chain/blockchain.hpp"

#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/status.hpp"

namespace xcp::chain {

ChainContext::ChainContext(Blockchain& chain, std::uint64_t height, TimePoint at)
    : chain_(chain), height_(height), at_(at) {}

sim::ProcessId ChainContext::chain_id() const { return chain_.id(); }

const crypto::Signer& ChainContext::chain_signer() const {
  return chain_.signer();
}

const crypto::KeyRegistry& ChainContext::keys() const {
  return chain_.key_registry();
}

void ChainContext::emit(const std::string& contract, std::string topic,
                        std::optional<crypto::Certificate> cert,
                        std::string detail) {
  ChainEventMsg e;
  e.contract = contract;
  e.topic = std::move(topic);
  e.block_height = height_;
  e.cert = std::move(cert);
  e.detail = std::move(detail);
  pending_events_.push_back(std::move(e));
}

props::TraceRecorder* ChainContext::trace() { return chain_.trace_recorder(); }

std::uint64_t InclusionProof::statement_digest(sim::ProcessId chain_id) const {
  HashWriter w;
  w.write_str("inclusion");
  w.write_u32(chain_id.value());
  w.write_u64(tx_digest);
  w.write_u64(height);
  w.write_u64(block_hash);
  return w.digest();
}

bool verify_inclusion(const crypto::KeyRegistry& keys, sim::ProcessId chain_id,
                      const InclusionProof& proof) {
  if (proof.sig.signer != chain_id) return false;
  return keys.verify(proof.sig, proof.statement_digest(chain_id));
}

std::optional<InclusionProof> Blockchain::prove_inclusion(
    std::uint64_t tx_digest) const {
  for (const Block& b : blocks_) {
    for (const Transaction& tx : b.txs) {
      if (tx.digest() != tx_digest) continue;
      InclusionProof proof;
      proof.tx_digest = tx_digest;
      proof.height = b.height;
      proof.block_hash = b.hash;
      proof.sig = signer_.sign(proof.statement_digest(id()));
      return proof;
    }
  }
  return std::nullopt;
}

Blockchain::Blockchain(Duration block_interval, crypto::KeyRegistry& keys)
    : block_interval_(block_interval), keys_(keys) {
  XCP_REQUIRE(block_interval > Duration::zero(), "block interval must be > 0");
}

void Blockchain::register_contract(std::unique_ptr<Contract> contract) {
  XCP_REQUIRE(contract != nullptr, "null contract");
  const std::string name = contract->name();
  XCP_REQUIRE(contracts_.emplace(name, std::move(contract)).second,
              "duplicate contract name: " + name);
}

void Blockchain::on_start() {
  signer_ = keys_.signer_for(id());
  set_timer_local_after(block_interval_, /*token=*/0);
}

void Blockchain::on_message(const net::Message& m) {
  if (m.kind != net::kinds::tx) return;
  const auto* body = m.body_as<TxMsg>();
  if (body == nullptr) return;
  // The submitting message's network sender must be the transaction sender;
  // combined with the signature check this pins authorship.
  if (m.from != body->tx.sender || !verify_tx(keys_, body->tx)) {
    ++stats_.txs_rejected_sig;
    return;
  }
  mempool_.push_back(body->tx);
}

void Blockchain::on_timer(std::uint64_t) {
  if (stopped_) return;
  seal_block();
  set_timer_local_after(block_interval_, /*token=*/0);
}

void Blockchain::seal_block() {
  Block b;
  b.height = blocks_.size() + 1;
  b.sealed_at = global_now();
  b.parent_hash = blocks_.empty() ? 0 : blocks_.back().hash;

  ChainContext ctx(*this, b.height, b.sealed_at);
  while (!mempool_.empty()) {
    Transaction tx = std::move(mempool_.front());
    mempool_.pop_front();
    auto it = contracts_.find(tx.contract);
    if (it == contracts_.end()) {
      ++stats_.txs_rejected_apply;
      continue;
    }
    const Status s = it->second->apply(tx, ctx);
    if (s.is_ok()) {
      ++stats_.txs_accepted;
      b.txs.push_back(std::move(tx));
    } else {
      ++stats_.txs_rejected_apply;
      XCP_LOG(LogLevel::kDebug, "chain rejected tx: " << s.message());
    }
  }

  HashWriter w;
  w.write_u64(b.height);
  w.write_u64(b.parent_hash);
  w.write_i64(b.sealed_at.count());
  for (const auto& tx : b.txs) w.write_u64(tx.digest());
  b.hash = w.digest();

  // Empty blocks are sealed too (height advances), matching real chains and
  // keeping block timestamps usable as a clock.
  ++stats_.blocks_sealed;
  const bool had_events = !ctx.pending_events_.empty();
  for (ChainEventMsg& e : ctx.pending_events_) {
    auto body = net::make_body<ChainEventMsg>(std::move(e));
    for (sim::ProcessId sub : subscribers_) {
      send(sub, net::kinds::chain_event, body);
    }
    ++stats_.events_emitted;
  }
  (void)had_events;
  blocks_.push_back(std::move(b));
}

}  // namespace xcp::chain
