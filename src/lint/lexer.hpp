// A minimal C++ tokenizer for xcp-lint (tools/xcp_lint.cpp).
//
// This is not a compiler front end: it has no preprocessor, no symbol
// table and no type system. It produces exactly the view the lint rules
// need — a flat token stream with line numbers, comments collected
// separately (suppression directives live there), and preprocessor
// directives folded into single tokens so `#include <vector>` never leaks
// a stray `<` into a rule's pattern match. String/char literals (including
// raw strings) are single tokens, so an identifier inside a string can
// never trip a rule.
//
// The trade-off is deliberate: the rules in rules.cpp are written against
// lexical patterns plus small amounts of local structure (balanced
// parens/braces), which keeps the analyzer dependency-free — no
// libclang, no clang-dev headers — while still being include/flag-aware
// at the driver layer via compile_commands.json.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace xcp::lint {

enum class TokKind : std::uint8_t {
  kIdent,      // identifiers and keywords
  kNumber,     // numeric literals (approximate: one token per literal)
  kString,     // "..." including raw strings and encoding prefixes
  kChar,       // '...'
  kPunct,      // operators/punctuation; `::` is a single token
  kDirective,  // a whole preprocessor line (continuations folded in)
};

struct Token {
  TokKind kind;
  std::string_view text;  // view into the source buffer
  int line;               // 1-based line of the token's first character
};

/// A comment with its location; `text` excludes the delimiters.
struct Comment {
  std::string_view text;
  int line;        // line the comment starts on
  bool own_line;   // no code token precedes it on its line
};

struct LexedSource {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  int last_line = 1;
};

/// Tokenizes `source` (which must outlive the result — tokens are views).
/// Never throws on malformed input: an unterminated literal or comment is
/// consumed to end-of-file and lexing ends cleanly; lint rules must work
/// on the code people actually write, including mid-edit states.
LexedSource lex(std::string_view source);

}  // namespace xcp::lint
