// The xcp-lint project-invariant static analysis pass.
//
// Every correctness claim this repo makes — byte-identical sweeps under
// sharding/churn/crash-restart, amnesia-safe journaling, allocation-free
// steady state — is enforced dynamically by differential tests, counting
// allocators and sanitizers. Those catch a violation only when a test
// happens to sample it. This pass encodes the same invariants as
// compile-time-checkable lexical rules so the obvious regressions
// (a stray wall-clock read, an unordered-map range-for feeding a report,
// a blocking read in the dispatcher poll loop, a non-fixed-width field in
// an encoder) are rejected at lint time, deterministically, on every
// commit. Rule catalog and rationale: docs/LINT.md.
//
// Layering: lexer.hpp tokenizes, this header owns findings/suppressions/
// baseline/engine, rules.cpp registers the rules, tools/xcp_lint.cpp is
// the CLI (file discovery via compile_commands.json or a tree walk).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace xcp::lint {

// ------------------------------------------------------------- findings

struct Finding {
  std::string rule;     // rule id, e.g. "determinism-wall-clock"
  std::string path;     // repo-relative path with forward slashes
  int line = 0;         // 1-based
  std::string message;  // what is wrong and why it matters here
  std::string excerpt;  // trimmed source line (baseline matching key)
};

/// Stable ordering for reports and baselines: path, then line, then rule.
bool finding_less(const Finding& a, const Finding& b);

// --------------------------------------------------------- suppressions
//
// In-source suppressions are explicit and carry a reason:
//
//   blocking_call();  // xcp-lint: allow(loop-blocking) child is dead here
//
// A same-line comment suppresses that rule on its own line. An own-line
// comment (alone or anywhere inside a contiguous block of own-line
// comments, so the grant can carry a multi-line explanation) suppresses
// the first code line after the block. A file-wide grant:
//
//   // xcp-lint: allow-file(determinism-wall-clock) supervision timing
//
// suppresses the rule everywhere in the file (for files whose whole job
// is the suppressed domain, e.g. wall-clock supervision layers). A
// directive with no reason, an unknown rule id, or unparseable syntax is
// itself a finding (rule "lint-directive"): a suppression nobody can
// audit is worse than none.

struct Suppression {
  std::string rule;
  int line = 0;         // line the directive appears on
  bool file_wide = false;
  bool own_line = false;  // comment stands alone -> applies past the block
  /// For own-line grants: the code line the grant covers (the first line
  /// after the contiguous own-line comment block the directive sits in).
  int grants_line = 0;
};

// ------------------------------------------------------------- sources

/// One lexed file plus everything rules need to scan it.
struct SourceFile {
  std::string path;     // repo-relative, forward slashes
  std::string text;     // owning buffer; tokens view into it
  LexedSource lexed;
  std::vector<Suppression> suppressions;
  /// Malformed/unauditable directives found while parsing comments;
  /// surfaced by run_files as rule "lint-directive".
  std::vector<Finding> directive_findings;

  const std::vector<Token>& tokens() const { return lexed.tokens; }
  /// Trimmed text of a 1-based source line (excerpt for findings).
  std::string line_text(int line) const;
};

/// Lexes `text` as `path` and extracts suppression directives.
SourceFile make_source(std::string path, std::string text);

// --------------------------------------------------------------- rules

/// A hot function registered with the hotpath-alloc rule: `file_suffix`
/// selects the file (match on path suffix), `function` the definition's
/// name within it.
struct HotFunction {
  std::string_view file_suffix;
  std::string_view function;
};

/// Project-shape configuration for the rules. The defaults encode this
/// repo's layout; tests substitute fixture paths.
struct Config {
  /// Result-producing code: determinism rules apply here.
  std::vector<std::string> determinism_scopes{
      "src/sim/", "src/exp/", "src/props/", "src/consensus/", "src/net/"};
  /// Order-sensitive output code outside the core five: the unordered-
  /// iteration rule also covers these (iteration order leaks into any
  /// rendered report, not just sweep accumulators).
  std::vector<std::string> iteration_extra_scopes{
      "src/ledger/", "src/crypto/", "src/chain/", "src/anta/",
      "src/deals/", "src/proto/", "src/baselines/"};
  /// Files whose poll loops must never block.
  std::vector<std::string> loop_scopes{
      "src/exp/dispatch.cpp", "src/net/socket_transport.cpp",
      "src/exp/remote.cpp", "src/net/node_runtime.cpp"};
  /// Encode/decode code: wire-safety rules apply here.
  std::vector<std::string> wire_scopes{
      "src/net/wire.hpp", "src/net/wire.cpp", "src/exp/shard.hpp",
      "src/exp/shard.cpp"};
  /// Kind/record-kind switches outside the wire files proper.
  std::vector<std::string> kind_switch_extra_scopes{
      "src/net/wal.hpp", "src/net/wal.cpp", "src/consensus/notary.cpp"};
  /// Steady-state hot functions: no allocation, period.
  std::vector<HotFunction> hot_functions{
      {"src/sim/event_queue.hpp", "push"},
      {"src/sim/event_queue.cpp", "begin_push"},
      {"src/sim/event_queue.cpp", "push_heap_entry"},
      {"src/sim/event_queue.cpp", "pop"},
      {"src/sim/event_queue.cpp", "cancel"},
      {"src/sim/event_queue.cpp", "remove_at"},
      {"src/sim/event_queue.cpp", "sync_wheel"},
      {"src/sim/timer_wheel.cpp", "detach_earliest_if_due"},
      {"src/sim/timer_wheel.cpp", "release_detached"},
      {"src/props/trace.hpp", "record"},
  };
};

/// One registered rule. `applies` decides per-file scope from the
/// repo-relative path; `scan` appends findings. `all_files` is the whole
/// scan set — the unordered-iteration rule resolves member declarations
/// from a .cpp's sibling header through it.
struct Rule {
  std::string_view id;
  std::string_view summary;
  bool (*applies)(const Config&, std::string_view path);
  void (*scan)(const Config&, const SourceFile& file,
               const std::vector<SourceFile>& all_files,
               std::vector<Finding>& out);
};

/// The rule registry, in catalog order (docs/LINT.md mirrors it).
const std::vector<Rule>& rules();

/// True when some registered rule (or "lint-directive") has this id.
bool known_rule(std::string_view id);

// --------------------------------------------------------------- engine

struct RunOptions {
  /// Restrict to these rule ids (empty = all).
  std::vector<std::string> only_rules;
};

struct RunResult {
  std::vector<Finding> findings;    // survived suppressions, sorted
  std::vector<Finding> suppressed;  // matched an in-source allow
  int files_scanned = 0;
};

/// Runs every applicable rule over every file, applies in-source
/// suppressions, then runs the cross-file rules (serialize/parse pairing
/// needs the whole set). `files` must already be lexed via make_source.
RunResult run_files(const Config& config, const std::vector<SourceFile>& files,
                    const RunOptions& options = {});

/// Cross-file pass run by run_files: every serialize_X declared in the
/// wire scope must have a matching parse_X. Exposed for tests.
void scan_serialize_parse_pairs(const Config& config,
                                const std::vector<SourceFile>& files,
                                std::vector<Finding>& out);

// ------------------------------------------------------------- baseline
//
// The baseline is the escape hatch for findings that are understood but
// not yet fixed: a checked-in file of `rule|path|excerpt` lines. A
// finding is baselined when its (rule, path, trimmed line text) matches
// an unconsumed baseline entry — line numbers are deliberately absent so
// unrelated edits above a finding don't invalidate the baseline, while
// any edit to the flagged line itself resurfaces it.

struct Baseline {
  // Multiset semantics: the same (rule, path, excerpt) may appear N times
  // and absolves at most N findings.
  std::map<std::string, int> entries;

  static std::string key(const Finding& f);
  /// Serializes `findings` in stable order, with a header comment.
  static std::string render(const std::vector<Finding>& findings);
  /// Parses baseline text; returns std::nullopt and sets `error` (with a
  /// 1-based line number) on malformed input.
  static std::optional<Baseline> parse(std::string_view text,
                                       std::string& error);
};

/// Splits `result.findings` into non-baselined (kept) and baselined
/// (moved to `baselined`), consuming baseline entries.
void apply_baseline(const Baseline& baseline, RunResult& result,
                    std::vector<Finding>& baselined);

// ----------------------------------------------------------- exit codes

/// Exit-code taxonomy of tools/xcp_lint, mirroring exp::worker_exit and
/// net::node_exit: scripts and CI branch on these.
namespace lint_exit {
inline constexpr int kClean = 0;     // no non-baselined findings
inline constexpr int kFindings = 1;  // at least one finding survived
inline constexpr int kUsage = 2;     // bad flags / unknown rule id
inline constexpr int kIo = 3;        // unreadable file / compile db / root
inline constexpr int kBaseline = 4;  // baseline file malformed
}  // namespace lint_exit

}  // namespace xcp::lint
