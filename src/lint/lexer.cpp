#include "lint/lexer.hpp"

#include <cctype>

namespace xcp::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `c` can continue a numeric literal once one has started —
/// generous on purpose (hex, binary, digit separators, exponents and
/// suffixes all fold into one token; rules never look inside numbers).
bool number_char(std::string_view src, std::size_t i) {
  const char c = src[i];
  if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' ||
      c == '\'') {
    return true;
  }
  // Exponent signs: 1e+9, 0x1p-3.
  if ((c == '+' || c == '-') && i > 0) {
    const char p = src[i - 1];
    return p == 'e' || p == 'E' || p == 'p' || p == 'P';
  }
  return false;
}

}  // namespace

LexedSource lex(std::string_view src) {
  LexedSource out;
  out.tokens.reserve(src.size() / 6);
  std::size_t i = 0;
  int line = 1;
  // Line of the most recent code token; lets a comment know whether it
  // shares its line with code (trailing) or stands alone.
  int last_code_line = 0;

  auto advance_lines = [&](std::string_view text) {
    for (const char c : text) {
      if (c == '\n') ++line;
    }
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // ---- comments --------------------------------------------------------
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      std::size_t end = src.find('\n', start);
      if (end == std::string_view::npos) end = src.size();
      out.comments.push_back(
          {src.substr(start, end - start), line, last_code_line != line});
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const std::size_t start = i + 2;
      const int start_line = line;
      std::size_t end = src.find("*/", start);
      std::size_t resume;
      if (end == std::string_view::npos) {
        end = src.size();
        resume = src.size();
      } else {
        resume = end + 2;
      }
      const std::string_view body = src.substr(start, end - start);
      out.comments.push_back({body, start_line, last_code_line != start_line});
      advance_lines(src.substr(i, resume - i));
      i = resume;
      continue;
    }

    // ---- preprocessor directive (only at logical line start) -------------
    if (c == '#' &&
        (out.tokens.empty() || out.tokens.back().line != line ||
         out.tokens.back().kind == TokKind::kDirective)) {
      const std::size_t start = i;
      const int start_line = line;
      while (i < src.size()) {
        if (src[i] == '\\' && i + 1 < src.size() && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      out.tokens.push_back(
          {TokKind::kDirective, src.substr(start, i - start), start_line});
      continue;
    }

    // ---- string / char literals -----------------------------------------
    // Encoding prefixes (u8"", L"", ...) lex as an identifier token followed
    // by the string token; rules don't care. Raw strings are the one case
    // handled here because their body may contain quotes and newlines.
    if (c == '"' || c == '\'') {
      // R"delim( ... )delim" — recognise when the immediately preceding
      // token is the identifier R / u8R / uR / LR glued to this quote.
      bool raw = false;
      if (c == '"' && !out.tokens.empty()) {
        const Token& p = out.tokens.back();
        if (p.kind == TokKind::kIdent &&
            p.text.data() + p.text.size() == src.data() + i &&
            !p.text.empty() && p.text.back() == 'R') {
          raw = true;
        }
      }
      const std::size_t start = i;
      const int start_line = line;
      if (raw) {
        std::size_t d = i + 1;
        while (d < src.size() && src[d] != '(') ++d;
        const std::string delim(src.substr(i + 1, d - (i + 1)));
        const std::string closer = ")" + delim + "\"";
        std::size_t end = src.find(closer, d);
        end = end == std::string_view::npos ? src.size()
                                            : end + closer.size();
        advance_lines(src.substr(i, end - i));
        out.tokens.push_back(
            {TokKind::kString, src.substr(start, end - start), start_line});
        i = end;
      } else {
        ++i;
        while (i < src.size() && src[i] != c && src[i] != '\n') {
          if (src[i] == '\\' && i + 1 < src.size()) ++i;
          ++i;
        }
        if (i < src.size() && src[i] == c) ++i;
        out.tokens.push_back({c == '"' ? TokKind::kString : TokKind::kChar,
                              src.substr(start, i - start), start_line});
      }
      last_code_line = line;
      continue;
    }

    // ---- identifiers / numbers ------------------------------------------
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < src.size() && ident_char(src[i])) ++i;
      out.tokens.push_back(
          {TokKind::kIdent, src.substr(start, i - start), line});
      last_code_line = line;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t start = i;
      ++i;
      while (i < src.size() && number_char(src, i)) ++i;
      out.tokens.push_back(
          {TokKind::kNumber, src.substr(start, i - start), line});
      last_code_line = line;
      continue;
    }

    // ---- punctuation -----------------------------------------------------
    // `::` is the one multi-character operator rules pattern-match on;
    // everything else can stay single-character.
    if (c == ':' && i + 1 < src.size() && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, src.substr(i, 2), line});
      i += 2;
      last_code_line = line;
      continue;
    }
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, src.substr(i, 2), line});
      i += 2;
      last_code_line = line;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, src.substr(i, 1), line});
    ++i;
    last_code_line = line;
  }
  out.last_line = line;
  return out;
}

}  // namespace xcp::lint
