// The xcp-lint rule registry: the project's load-bearing invariants as
// lexical rules. Each rule is a token scan with just enough local
// structure (balanced parens/braces, qualified-id chains) to stay
// precise; docs/LINT.md carries the catalog, per-rule rationale and the
// honest list of what each rule cannot see.
#include <algorithm>
#include <string>
#include <unordered_set>

#include "lint/lint.hpp"

namespace xcp::lint {
namespace {

using Tokens = std::vector<Token>;

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_ident(const Token& t, std::string_view s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

bool path_in(const std::vector<std::string>& scopes, std::string_view path) {
  for (const std::string& s : scopes) {
    if (s.empty()) continue;
    if (s.back() == '/') {
      if (path.rfind(s, 0) == 0) return true;       // directory prefix
    } else if (path == s || (path.size() > s.size() &&
                             path.compare(path.size() - s.size(), s.size(),
                                          s) == 0)) {
      return true;                                  // exact or suffix
    }
  }
  return false;
}

/// Index of the token matching the opener at `open` ("(" / "{" / "<"),
/// or tokens.size() when unbalanced.
std::size_t matching(const Tokens& toks, std::size_t open,
                     std::string_view open_text, std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], open_text)) ++depth;
    if (is_punct(toks[i], close_text)) {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

void add(std::vector<Finding>& out, const SourceFile& f, std::string_view rule,
         int line, std::string message) {
  Finding fd;
  fd.rule = std::string(rule);
  fd.path = f.path;
  fd.line = line;
  fd.message = std::move(message);
  fd.excerpt = f.line_text(line);
  out.push_back(std::move(fd));
}

// ------------------------------------------------- determinism-wall-clock
//
// Result-producing code must read time from the simulation (sim().now(),
// local_now()) or an injectable seam (NodeRuntime::set_clock), never from
// a machine clock: a wall-clock read in a result path makes two runs of
// the same seed diverge, which silently voids every byte-identity
// differential. The scan flags chrono-clock now() chains
// (std::chrono::*_clock::now(), Clock::now() aliases) and the C clock
// API; virtual-time now() calls (obj.now(), sim().now()) don't match
// because they are unqualified or object-qualified, not clock-qualified.

bool applies_determinism(const Config& c, std::string_view path) {
  return path_in(c.determinism_scopes, path);
}

bool chain_names_a_clock(const Tokens& toks, std::size_t now_index) {
  // Walk the qualified-id chain leftwards from `now`: X :: Y :: now.
  std::size_t i = now_index;
  while (i >= 2 && is_punct(toks[i - 1], "::") &&
         toks[i - 2].kind == TokKind::kIdent) {
    const std::string_view q = toks[i - 2].text;
    if (q == "chrono" || q == "Clock" || q == "WallClock" ||
        (q.size() > 6 && q.compare(q.size() - 6, 6, "_clock") == 0)) {
      return true;
    }
    i -= 2;
  }
  return false;
}

void scan_wall_clock(const Config&, const SourceFile& f,
                     const std::vector<SourceFile>&,
                     std::vector<Finding>& out) {
  static const std::unordered_set<std::string_view> kCClock = {
      "gettimeofday", "clock_gettime", "localtime", "gmtime",
      "mktime",       "asctime",       "ctime",     "ftime"};
  const Tokens& toks = f.tokens();
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_punct(toks[i + 1], "(")) continue;
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "now" && chain_names_a_clock(toks, i)) {
      add(out, f, "determinism-wall-clock", t.line,
          "wall-clock read in result-producing code; use simulation time "
          "or an injectable clock seam (NodeRuntime::set_clock)");
      continue;
    }
    if (kCClock.count(t.text) != 0) {
      add(out, f, "determinism-wall-clock", t.line,
          "C wall-clock API '" + std::string(t.text) +
              "' in result-producing code");
      continue;
    }
    // std::time(...) / ::time(...) — the bare word `time` alone is too
    // common to flag (members, locals), so require the qualification.
    if (t.text == "time" && i >= 1 && is_punct(toks[i - 1], "::") &&
        (i < 2 || toks[i - 2].kind != TokKind::kIdent ||
         toks[i - 2].text == "std")) {
      add(out, f, "determinism-wall-clock", t.line,
          "std::time() read in result-producing code");
    }
  }
}

// ---------------------------------------------------- determinism-random
//
// All randomness in result paths must flow from the run's seed through
// support/rng (splitmix64 keyed on documented inputs). Ambient entropy —
// rand(), std::random_device, getrandom — produces results no
// differential can reproduce.

void scan_random(const Config&, const SourceFile& f,
                 const std::vector<SourceFile>&, std::vector<Finding>& out) {
  static const std::unordered_set<std::string_view> kCalls = {
      "rand",    "srand",    "rand_r",    "drand48",   "lrand48",
      "mrand48", "srandom",  "getrandom", "getentropy"};
  const Tokens& toks = f.tokens();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "random_device") {
      add(out, f, "determinism-random", t.line,
          "std::random_device draws ambient entropy; seed from the run's "
          "deterministic RNG (support/rng) instead");
      continue;
    }
    if (i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        kCalls.count(t.text) != 0) {
      // Member calls (obj.rand(), obj->random()) are someone else's API.
      if (i >= 1 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
        continue;
      }
      add(out, f, "determinism-random", t.line,
          "nondeterministic '" + std::string(t.text) +
              "()' in result-producing code; derive from the run seed via "
              "support/rng");
    }
  }
}

// -------------------------------------------- determinism-unordered-iter
//
// Iterating an unordered container in result-producing code leaks hash
// order (which varies by libstdc++ version, pointer values and insertion
// history) into whatever the loop feeds: an accumulator, a report line,
// a message send order. Lookups are fine; ordered iteration is fine;
// range-for (or .begin() walks) over unordered_{map,set} is flagged.
// Member declarations are resolved from the file itself plus its sibling
// header (x.cpp -> x.hpp in the scan set), which is where this repo
// declares the members its .cpp files iterate.

bool applies_unordered_iter(const Config& c, std::string_view path) {
  return path_in(c.determinism_scopes, path) ||
         path_in(c.iteration_extra_scopes, path);
}

void collect_unordered_names(const SourceFile& f,
                             std::unordered_set<std::string>& names) {
  static const std::unordered_set<std::string_view> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const Tokens& toks = f.tokens();
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || kUnordered.count(toks[i].text) == 0) {
      continue;
    }
    if (!is_punct(toks[i + 1], "<")) continue;
    // Balance the template argument list, tolerating >> as two tokens.
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      if (is_punct(toks[j], "<")) ++depth;
      if (is_punct(toks[j], ">") && --depth == 0) break;
    }
    if (j >= toks.size()) continue;
    // Skip declarator decorations, then take the declared name.
    std::size_t k = j + 1;
    while (k < toks.size() &&
           (is_punct(toks[k], "*") || is_punct(toks[k], "&") ||
            is_ident(toks[k], "const"))) {
      ++k;
    }
    if (k < toks.size() && toks[k].kind == TokKind::kIdent &&
        !is_ident(toks[k], "iterator") && !is_ident(toks[k], "const_iterator")) {
      // `unordered_map<K,V>::iterator` and friends reach here as `::` —
      // only a plain identifier is a declaration.
      names.insert(std::string(toks[k].text));
    }
  }
}

const SourceFile* sibling_header(const SourceFile& f,
                                 const std::vector<SourceFile>& all) {
  if (f.path.size() < 4 ||
      f.path.compare(f.path.size() - 4, 4, ".cpp") != 0) {
    return nullptr;
  }
  const std::string header = f.path.substr(0, f.path.size() - 4) + ".hpp";
  for (const SourceFile& s : all) {
    if (s.path == header) return &s;
  }
  return nullptr;
}

void scan_unordered_iter(const Config&, const SourceFile& f,
                         const std::vector<SourceFile>& all,
                         std::vector<Finding>& out) {
  std::unordered_set<std::string> names;
  collect_unordered_names(f, names);
  if (const SourceFile* h = sibling_header(f, all)) {
    collect_unordered_names(*h, names);
  }
  if (names.empty()) return;

  const Tokens& toks = f.tokens();
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    // for ( ... : <range containing an unordered name> )
    if (is_ident(toks[i], "for") && is_punct(toks[i + 1], "(")) {
      const std::size_t close = matching(toks, i + 1, "(", ")");
      if (close == toks.size()) continue;
      // The range-for colon: a lone `:` at paren depth 1 (the lexer emits
      // `::` as one token, so any `:` here is structural).
      std::size_t colon = toks.size();
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (is_punct(toks[j], "(")) ++depth;
        if (is_punct(toks[j], ")")) --depth;
        if (depth == 1 && is_punct(toks[j], ":")) {
          colon = j;
          break;
        }
      }
      if (colon == toks.size()) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == TokKind::kIdent &&
            names.count(std::string(toks[j].text)) != 0) {
          add(out, f, "determinism-unordered-iter", toks[i].line,
              "range-for over unordered container '" +
                  std::string(toks[j].text) +
                  "' in result-producing code: hash order leaks into the "
                  "result; iterate a sorted view or fold "
                  "order-insensitively");
          break;
        }
      }
      continue;
    }
    // <unordered name> . begin ( — iterator walks have the same problem.
    if (toks[i].kind == TokKind::kIdent &&
        names.count(std::string(toks[i].text)) != 0 && i + 3 < toks.size() &&
        (is_punct(toks[i + 1], ".") || is_punct(toks[i + 1], "->")) &&
        is_ident(toks[i + 2], "begin") && is_punct(toks[i + 3], "(")) {
      add(out, f, "determinism-unordered-iter", toks[i].line,
          "iterator walk over unordered container '" +
              std::string(toks[i].text) + "' in result-producing code");
    }
  }
}

// --------------------------------------------------------- hotpath-alloc
//
// The registered hot functions (event core push/pop/cancel, trace
// record, wheel drain) are proven allocation-free at runtime by counting
// allocators (test_alloc); this rule is the static half of that proof:
// inside those definitions, operator new, malloc, std::string
// construction, container growth calls and std::function are errors.
// Cold paths factored into named helpers (next_event_chunk, grow) stay
// callable — the rule sees a call, not an allocation; the helper is
// where the allocation belongs.

struct FunctionBody {
  std::size_t begin;  // token index of `{`
  std::size_t end;    // token index of matching `}`
  int line;
};

/// Finds definitions of `name` in `f`: the identifier, not preceded by
/// `.`/`->`, whose parameter list's `)` is followed (through cv/ref/
/// noexcept/trailing-return tokens) by `{`.
std::vector<FunctionBody> find_definitions(const SourceFile& f,
                                           std::string_view name) {
  std::vector<FunctionBody> bodies;
  const Tokens& toks = f.tokens();
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], name) || !is_punct(toks[i + 1], "(")) continue;
    if (i >= 1 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      continue;
    }
    const std::size_t close = matching(toks, i + 1, "(", ")");
    if (close == toks.size()) continue;
    std::size_t j = close + 1;
    bool ok = true;
    while (j < toks.size() && !is_punct(toks[j], "{")) {
      const Token& t = toks[j];
      if (is_ident(t, "const") || is_ident(t, "noexcept") ||
          is_ident(t, "override") || is_ident(t, "final") ||
          is_punct(t, "&") || is_punct(t, "->") || is_punct(t, "::") ||
          t.kind == TokKind::kIdent) {
        ++j;
        continue;
      }
      // `<` of a trailing-return template type, or anything else: only a
      // handful of shapes are definitions; bail on the rest.
      ok = false;
      break;
    }
    if (!ok || j >= toks.size()) continue;
    const std::size_t body_end = matching(toks, j, "{", "}");
    if (body_end == toks.size()) continue;
    bodies.push_back({j, body_end, toks[i].line});
  }
  return bodies;
}

bool applies_hotpath(const Config& c, std::string_view path) {
  for (const HotFunction& h : c.hot_functions) {
    if (path_in({std::string(h.file_suffix)}, path)) return true;
  }
  return false;
}

void scan_hotpath_alloc(const Config& c, const SourceFile& f,
                        const std::vector<SourceFile>&,
                        std::vector<Finding>& out) {
  static const std::unordered_set<std::string_view> kAllocCalls = {
      "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
      "make_unique", "make_shared", "to_string"};
  static const std::unordered_set<std::string_view> kGrowthMembers = {
      "push_back", "emplace_back", "emplace", "insert",
      "resize",    "reserve",      "append",  "assign"};
  const Tokens& toks = f.tokens();
  for (const HotFunction& h : c.hot_functions) {
    if (!path_in({std::string(h.file_suffix)}, f.path)) continue;
    for (const FunctionBody& body : find_definitions(f, h.function)) {
      const std::string where =
          " in hot function '" + std::string(h.function) +
          "' (steady state must not allocate; move cold work to a named "
          "helper)";
      for (std::size_t i = body.begin + 1; i < body.end; ++i) {
        const Token& t = toks[i];
        if (t.kind != TokKind::kIdent) continue;
        if (t.text == "new") {
          add(out, f, "hotpath-alloc", t.line, "operator new" + where);
          continue;
        }
        const bool call = i + 1 < toks.size() && is_punct(toks[i + 1], "(");
        const bool member =
            i >= 1 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
        if (call && !member && kAllocCalls.count(t.text) != 0) {
          add(out, f, "hotpath-alloc", t.line,
              "allocating call '" + std::string(t.text) + "()'" + where);
          continue;
        }
        if (call && member && kGrowthMembers.count(t.text) != 0) {
          add(out, f, "hotpath-alloc", t.line,
              "container growth '." + std::string(t.text) + "()'" + where);
          continue;
        }
        if ((t.text == "string" || t.text == "function") && i >= 2 &&
            is_punct(toks[i - 1], "::") && is_ident(toks[i - 2], "std")) {
          add(out, f, "hotpath-alloc", t.line,
              "std::" + std::string(t.text) + " construction" + where);
        }
      }
    }
  }
}

// ---------------------------------------------------------- loop-blocking
//
// The dispatcher and socket transport multiplex many children/peers
// through one poll() loop; a single blocking call anywhere in those
// files stalls every shard and every peer behind it (the exact bug class
// PR 6 removed from the popen driver). waitpid must carry WNOHANG,
// descriptor reads require the file to practice O_NONBLOCK discipline,
// and sleeps/system()/popen() have no business in a supervision loop.

bool applies_loop(const Config& c, std::string_view path) {
  return path_in(c.loop_scopes, path);
}

void scan_loop_blocking(const Config&, const SourceFile& f,
                        const std::vector<SourceFile>&,
                        std::vector<Finding>& out) {
  static const std::unordered_set<std::string_view> kAlwaysBlocking = {
      "sleep",     "usleep", "nanosleep", "sleep_for", "sleep_until",
      "system",    "popen",  "pclose",    "fread",     "fgets",
      "getline",   "getchar", "scanf",    "fscanf"};
  static const std::unordered_set<std::string_view> kFdReads = {
      "read", "recv", "recvfrom", "recvmsg", "accept"};
  const bool nonblock_discipline =
      f.text.find("O_NONBLOCK") != std::string::npos ||
      f.text.find("SOCK_NONBLOCK") != std::string::npos;
  const Tokens& toks = f.tokens();
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || !is_punct(toks[i + 1], "(")) continue;
    const bool member =
        i >= 1 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    if (member) continue;  // obj.insert(...), stream.read(...): not libc
    if (t.text == "waitpid") {
      const std::size_t close = matching(toks, i + 1, "(", ")");
      bool has_wnohang = false;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (is_ident(toks[j], "WNOHANG")) has_wnohang = true;
      }
      if (!has_wnohang) {
        add(out, f, "loop-blocking", t.line,
            "waitpid without WNOHANG can block the poll loop on a live "
            "child; reap non-blockingly and re-poll");
      }
      continue;
    }
    if (kAlwaysBlocking.count(t.text) != 0) {
      add(out, f, "loop-blocking", t.line,
          "blocking call '" + std::string(t.text) +
              "()' inside an event-loop file");
      continue;
    }
    if (kFdReads.count(t.text) != 0 && !nonblock_discipline) {
      add(out, f, "loop-blocking", t.line,
          "'" + std::string(t.text) +
              "()' in an event-loop file that never sets O_NONBLOCK; a "
              "slow peer stalls every other shard/peer");
    }
  }
}

// ------------------------------------------------------- wire-fixed-width
//
// Encode/decode paths speak for bytes on the wire: a platform-width type
// (int, long, unsigned, size_t-excepted) in a serialize_/parse_/put_/
// get_ body is a latent cross-host incompatibility — exactly what the
// endianness-stable format exists to prevent.

bool applies_wire(const Config& c, std::string_view path) {
  return path_in(c.wire_scopes, path);
}

bool has_wire_prefix(std::string_view name) {
  for (const std::string_view p :
       {"serialize_", "parse_", "put_", "get_", "extract_"}) {
    if (name.rfind(p, 0) == 0) return true;
  }
  return false;
}

void scan_fixed_width(const Config&, const SourceFile& f,
                      const std::vector<SourceFile>&,
                      std::vector<Finding>& out) {
  const Tokens& toks = f.tokens();
  // Collect encode/decode function bodies by name prefix.
  std::vector<FunctionBody> bodies;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !has_wire_prefix(toks[i].text)) {
      continue;
    }
    for (const FunctionBody& b : find_definitions(f, toks[i].text)) {
      if (toks[i].line == b.line) bodies.push_back(b);
    }
  }
  for (const FunctionBody& body : bodies) {
    for (std::size_t i = body.begin + 1; i < body.end; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      const std::string_view w = t.text;
      if (w != "int" && w != "short" && w != "long" && w != "unsigned" &&
          w != "signed" && w != "float" && w != "double") {
        continue;
      }
      // `unsigned char` / `signed char` are byte types; `long` following
      // `unsigned`/`long` was already flagged once at the first keyword.
      if ((w == "unsigned" || w == "signed") && i + 1 < toks.size() &&
          is_ident(toks[i + 1], "char")) {
        continue;
      }
      if (i >= 1 && (is_ident(toks[i - 1], "unsigned") ||
                     is_ident(toks[i - 1], "signed") ||
                     is_ident(toks[i - 1], "long"))) {
        continue;
      }
      add(out, f, "wire-fixed-width", t.line,
          "platform-width type '" + std::string(w) +
              "' in an encode/decode path; use a fixed-width type "
              "(std::uint32_t, std::int64_t, ...)");
    }
  }
}

// -------------------------------------------------- wire-exhaustive-switch
//
// A switch over a wire tag or journal record kind with a silent default
// swallows the very case the format evolved to add: the new enumerator
// compiles, parses as nothing, and the differential that would have
// caught it only fires if a test happens to exercise the new kind. An
// exhaustive switch (no default) makes -Wswitch/-Werror name the missing
// case at compile time; a defaulted switch must fail loudly (throw /
// fail / abort / XCP_REQUIRE).

bool applies_kind_switch(const Config& c, std::string_view path) {
  return path_in(c.wire_scopes, path) ||
         path_in(c.kind_switch_extra_scopes, path);
}

void scan_exhaustive_switch(const Config&, const SourceFile& f,
                            const std::vector<SourceFile>&,
                            std::vector<Finding>& out) {
  static const std::unordered_set<std::string_view> kLoud = {
      "throw", "fail", "abort", "unreachable", "XCP_REQUIRE", "assert",
      "exit"};
  const Tokens& toks = f.tokens();
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "switch") || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t cond_close = matching(toks, i + 1, "(", ")");
    if (cond_close + 1 >= toks.size() || !is_punct(toks[cond_close + 1], "{")) {
      continue;
    }
    const std::size_t body_end = matching(toks, cond_close + 1, "{", "}");
    for (std::size_t j = cond_close + 2; j < body_end; ++j) {
      // A nested switch owns its own default; skip its body wholesale.
      if (is_ident(toks[j], "switch") && j + 1 < body_end &&
          is_punct(toks[j + 1], "(")) {
        const std::size_t nc = matching(toks, j + 1, "(", ")");
        if (nc + 1 < body_end && is_punct(toks[nc + 1], "{")) {
          j = matching(toks, nc + 1, "{", "}");
          continue;
        }
      }
      if (!is_ident(toks[j], "default") || j + 1 >= body_end ||
          !is_punct(toks[j + 1], ":")) {
        continue;
      }
      // Silent unless the default's statement list (up to the next label
      // or the switch end) contains a loud exit.
      bool loud = false;
      for (std::size_t k = j + 2; k < body_end; ++k) {
        if (is_ident(toks[k], "case") || is_ident(toks[k], "default")) break;
        if (toks[k].kind == TokKind::kIdent && kLoud.count(toks[k].text) != 0) {
          loud = true;
          break;
        }
      }
      if (!loud) {
        add(out, f, "wire-exhaustive-switch", toks[j].line,
            "silent 'default:' in a kind switch: a new enumerator would "
            "be swallowed here; drop the default (let -Wswitch name "
            "missing cases) or fail loudly");
      }
    }
  }
}

// ---------------------------------------------- wire-serialize-parse-pair
//
// Every serialize_X in the wire scope must have a parse_X: an encoder
// without a decoder can only be round-trip-tested through some wider
// frame, and its output format silently becomes "whatever the one
// consumer happens to accept".

struct NamedDecl {
  std::string path;
  int line;
};

}  // namespace

void scan_serialize_parse_pairs(const Config& config,
                                const std::vector<SourceFile>& files,
                                std::vector<Finding>& out) {
  std::map<std::string, NamedDecl> serializers;
  std::unordered_set<std::string> parsers;
  for (const SourceFile& f : files) {
    if (!path_in(config.wire_scopes, f.path)) continue;
    const Tokens& toks = f.tokens();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || !is_punct(toks[i + 1], "(")) {
        continue;
      }
      const std::string_view name = toks[i].text;
      if (name.rfind("serialize_", 0) == 0) {
        const std::string suffix(name.substr(std::string_view("serialize_").size()));
        // Prefer the header declaration as the anchor (stable under
        // .cpp refactors); first hit otherwise.
        auto it = serializers.find(suffix);
        const bool is_header = f.path.size() > 4 &&
                               f.path.compare(f.path.size() - 4, 4, ".hpp") == 0;
        if (it == serializers.end() ||
            (is_header && it->second.path.compare(it->second.path.size() - 4,
                                                  4, ".hpp") != 0)) {
          serializers[suffix] = {f.path, toks[i].line};
        }
      } else if (name.rfind("parse_", 0) == 0) {
        parsers.insert(std::string(name.substr(std::string_view("parse_").size())));
      }
    }
  }
  for (const auto& [suffix, decl] : serializers) {
    if (parsers.count(suffix) != 0) continue;
    Finding fd;
    fd.rule = "wire-serialize-parse-pair";
    fd.path = decl.path;
    fd.line = decl.line;
    fd.message = "serialize_" + suffix + " has no matching parse_" + suffix +
                 "; an encoder without a decoder cannot be round-trip "
                 "tested in isolation";
    for (const SourceFile& f : files) {
      if (f.path == decl.path) {
        fd.excerpt = f.line_text(decl.line);
        break;
      }
    }
    out.push_back(std::move(fd));
  }
}

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"determinism-wall-clock",
       "no machine-clock reads in result-producing code",
       applies_determinism, scan_wall_clock},
      {"determinism-random",
       "no ambient entropy in result-producing code",
       applies_determinism, scan_random},
      {"determinism-unordered-iter",
       "no unordered-container iteration feeding results",
       applies_unordered_iter, scan_unordered_iter},
      {"hotpath-alloc",
       "registered hot functions must not allocate",
       applies_hotpath, scan_hotpath_alloc},
      {"loop-blocking",
       "no blocking calls in supervision/event-loop files",
       applies_loop, scan_loop_blocking},
      {"wire-fixed-width",
       "fixed-width types only in encode/decode paths",
       applies_wire, scan_fixed_width},
      {"wire-exhaustive-switch",
       "kind switches are exhaustive or fail loudly",
       applies_kind_switch, scan_exhaustive_switch},
      {"wire-serialize-parse-pair",
       "every serialize_X has a parse_X",
       applies_wire,
       // Cross-file: implemented by scan_serialize_parse_pairs, invoked
       // once per run by the engine; the per-file hook is a no-op.
       [](const Config&, const SourceFile&, const std::vector<SourceFile>&,
          std::vector<Finding>&) {}},
  };
  return kRules;
}

}  // namespace xcp::lint
