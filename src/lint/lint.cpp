#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

namespace xcp::lint {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

constexpr std::string_view kDirectiveMark = "xcp-lint:";

/// Parses the directive in one comment, if any. Returns true when the
/// comment contains the directive mark at all (so callers can report
/// malformed ones); fills `sup` only on a well-formed grant with a reason.
bool parse_directive(const Comment& c, Suppression& sup, std::string& error) {
  const std::size_t at = c.text.find(kDirectiveMark);
  if (at == std::string_view::npos) return false;
  std::string_view rest = trim(c.text.substr(at + kDirectiveMark.size()));

  bool file_wide = false;
  if (rest.rfind("allow-file(", 0) == 0) {
    file_wide = true;
    rest.remove_prefix(std::string_view("allow-file(").size());
  } else if (rest.rfind("allow(", 0) == 0) {
    rest.remove_prefix(std::string_view("allow(").size());
  } else {
    error = "directive must be allow(rule-id) or allow-file(rule-id)";
    return true;
  }
  const std::size_t close = rest.find(')');
  if (close == std::string_view::npos) {
    error = "unterminated rule id (missing ')')";
    return true;
  }
  const std::string_view rule = trim(rest.substr(0, close));
  const std::string_view reason = trim(rest.substr(close + 1));
  if (rule.empty()) {
    error = "empty rule id";
    return true;
  }
  if (!known_rule(rule)) {
    error = "unknown rule id '" + std::string(rule) + "'";
    return true;
  }
  if (reason.empty()) {
    error = "suppression of '" + std::string(rule) +
            "' carries no reason; an unauditable grant is worse than none";
    return true;
  }
  sup.rule = std::string(rule);
  sup.line = c.line;
  sup.file_wide = file_wide;
  sup.own_line = c.own_line;
  error.clear();
  return true;
}

}  // namespace

bool finding_less(const Finding& a, const Finding& b) {
  if (a.path != b.path) return a.path < b.path;
  if (a.line != b.line) return a.line < b.line;
  return a.rule < b.rule;
}

std::string SourceFile::line_text(int line) const {
  std::size_t pos = 0;
  for (int n = 1; n < line; ++n) {
    pos = text.find('\n', pos);
    if (pos == std::string::npos) return "";
    ++pos;
  }
  std::size_t end = text.find('\n', pos);
  if (end == std::string::npos) end = text.size();
  return std::string(trim(std::string_view(text).substr(pos, end - pos)));
}

SourceFile make_source(std::string path, std::string text) {
  SourceFile f;
  f.path = std::move(path);
  f.text = std::move(text);
  f.lexed = lex(f.text);
  for (const Comment& c : f.lexed.comments) {
    Suppression sup;
    std::string error;
    if (!parse_directive(c, sup, error)) continue;
    if (!error.empty()) {
      Finding bad;
      bad.rule = "lint-directive";
      bad.path = f.path;
      bad.line = c.line;
      bad.message = "malformed xcp-lint directive: " + error;
      bad.excerpt = f.line_text(c.line);
      f.directive_findings.push_back(std::move(bad));
      continue;
    }
    f.suppressions.push_back(std::move(sup));
  }
  // An own-line directive grants the first code line after the contiguous
  // own-line comment block it sits in, so a grant can carry a multi-line
  // explanation above the statement it covers.
  std::set<int> own_comment_lines;
  for (const Comment& c : f.lexed.comments) {
    if (c.own_line) own_comment_lines.insert(c.line);
  }
  for (Suppression& s : f.suppressions) {
    if (!s.own_line) continue;
    int last = s.line;
    while (own_comment_lines.count(last + 1) != 0) ++last;
    s.grants_line = last + 1;
  }
  return f;
}

bool known_rule(std::string_view id) {
  if (id == "lint-directive") return true;
  for (const Rule& r : rules()) {
    if (r.id == id) return true;
  }
  return false;
}

namespace {

bool suppressed_by(const SourceFile& file, const Finding& f) {
  for (const Suppression& s : file.suppressions) {
    if (s.rule != f.rule) continue;
    if (s.file_wide) return true;
    if (!s.own_line && s.line == f.line) return true;
    // An own-line comment block grants the statement line right after it.
    if (s.own_line && s.grants_line == f.line) return true;
  }
  return false;
}

bool rule_selected(const RunOptions& options, std::string_view id) {
  if (options.only_rules.empty()) return true;
  return std::find(options.only_rules.begin(), options.only_rules.end(),
                   id) != options.only_rules.end();
}

}  // namespace

RunResult run_files(const Config& config, const std::vector<SourceFile>& files,
                    const RunOptions& options) {
  RunResult result;
  result.files_scanned = static_cast<int>(files.size());
  std::vector<Finding> raw;
  for (const SourceFile& file : files) {
    if (rule_selected(options, "lint-directive")) {
      raw.insert(raw.end(), file.directive_findings.begin(),
                 file.directive_findings.end());
    }
    for (const Rule& rule : rules()) {
      if (!rule_selected(options, rule.id)) continue;
      if (!rule.applies(config, file.path)) continue;
      std::vector<Finding> found;
      rule.scan(config, file, files, found);
      for (Finding& f : found) {
        if (suppressed_by(file, f)) {
          result.suppressed.push_back(std::move(f));
        } else {
          raw.push_back(std::move(f));
        }
      }
    }
  }
  if (rule_selected(options, "wire-serialize-parse-pair")) {
    std::vector<Finding> pair_findings;
    scan_serialize_parse_pairs(config, files, pair_findings);
    for (Finding& f : pair_findings) {
      const SourceFile* origin = nullptr;
      for (const SourceFile& file : files) {
        if (file.path == f.path) {
          origin = &file;
          break;
        }
      }
      if (origin != nullptr && suppressed_by(*origin, f)) {
        result.suppressed.push_back(std::move(f));
      } else {
        raw.push_back(std::move(f));
      }
    }
  }
  std::sort(raw.begin(), raw.end(), finding_less);
  result.findings = std::move(raw);
  std::sort(result.suppressed.begin(), result.suppressed.end(), finding_less);
  return result;
}

// --------------------------------------------------------------- baseline

std::string Baseline::key(const Finding& f) {
  return f.rule + "|" + f.path + "|" + f.excerpt;
}

std::string Baseline::render(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "# xcp-lint baseline: findings that are understood but not yet "
      "fixed.\n"
      "# Format: rule-id|path|trimmed source line. Line numbers are "
      "omitted on\n"
      "# purpose: edits elsewhere in the file keep the entry valid, while "
      "any\n"
      "# edit to the flagged line itself resurfaces the finding. Shrink "
      "me.\n";
  std::vector<Finding> sorted = findings;
  std::sort(sorted.begin(), sorted.end(), finding_less);
  for (const Finding& f : sorted) {
    out += key(f) + "\n";
  }
  return out;
}

std::optional<Baseline> Baseline::parse(std::string_view text,
                                        std::string& error) {
  Baseline b;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = trim(text.substr(pos, end - pos));
    ++line_no;
    pos = end + 1;
    if (line.empty() || line.front() == '#') {
      if (end == text.size()) break;
      continue;
    }
    // rule|path|excerpt — excerpt may itself contain '|', so split on the
    // first two separators only.
    const std::size_t p1 = line.find('|');
    const std::size_t p2 =
        p1 == std::string_view::npos ? std::string_view::npos
                                     : line.find('|', p1 + 1);
    if (p2 == std::string_view::npos) {
      error = "baseline line " + std::to_string(line_no) +
              ": expected rule-id|path|excerpt, got '" + std::string(line) +
              "'";
      return std::nullopt;
    }
    const std::string_view rule = trim(line.substr(0, p1));
    if (!known_rule(rule)) {
      error = "baseline line " + std::to_string(line_no) +
              ": unknown rule id '" + std::string(rule) + "'";
      return std::nullopt;
    }
    ++b.entries[std::string(line)];
    if (end == text.size()) break;
  }
  error.clear();
  return b;
}

void apply_baseline(const Baseline& baseline, RunResult& result,
                    std::vector<Finding>& baselined) {
  std::map<std::string, int> budget = baseline.entries;
  std::vector<Finding> kept;
  for (Finding& f : result.findings) {
    auto it = budget.find(Baseline::key(f));
    if (it != budget.end() && it->second > 0) {
      --it->second;
      baselined.push_back(std::move(f));
    } else {
      kept.push_back(std::move(f));
    }
  }
  result.findings = std::move(kept);
}

}  // namespace xcp::lint
