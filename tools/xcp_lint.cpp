// xcp_lint — the project-invariant static analysis pass (docs/LINT.md).
//
//   xcp_lint --root . --compile-commands build/compile_commands.json
//            --baseline tools/lint_baseline.txt
//
// File discovery, most specific wins:
//   1. explicit positional files;
//   2. --compile-commands: every translation unit the build actually
//      compiles, plus every project-local header reachable from one
//      through `#include "..."` resolved against the TU's -I flags (so
//      the scan set tracks the build graph, not a directory glob);
//   3. fallback: a tree walk of <root>/src and <root>/tools.
//
// Exit codes (see lint::lint_exit): 0 clean, 1 findings, 2 usage, 3 I/O,
// 4 malformed baseline.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace fs = std::filesystem;
using namespace xcp::lint;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--compile-commands FILE]\n"
               "          [--baseline FILE] [--write-baseline FILE]\n"
               "          [--rules ID[,ID...]] [--list-rules] [--quiet]\n"
               "          [files...]\n",
               argv0);
  return lint_exit::kUsage;
}

std::optional<std::string> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Repo-relative path with forward slashes; files outside root keep an
/// absolute-ish lexical form (rules then scope them out).
std::string rel_path(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path canon_file = fs::weakly_canonical(file, ec);
  const fs::path canon_root = fs::weakly_canonical(root, ec);
  fs::path rel = canon_file.lexically_relative(canon_root);
  if (rel.empty() || *rel.begin() == "..") rel = canon_file;
  return rel.generic_string();
}

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

// ------------------------------------------------ compile_commands.json
//
// A compilation database is a JSON array of objects with "directory",
// "file" and "command"/"arguments" keys. This parser extracts exactly
// those string fields (with escape handling) — no general JSON tree.

std::string json_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'u': i += 4; out += '?'; break;  // rules never need non-ASCII
      default: out += s[i];
    }
  }
  return out;
}

struct CompileEntry {
  std::string directory;
  std::string file;
  std::vector<std::string> include_dirs;  // from -I / -isystem flags
};

/// Splits a shell-ish command string into words (quotes respected enough
/// for compiler command lines).
std::vector<std::string> split_command(const std::string& cmd) {
  std::vector<std::string> words;
  std::string cur;
  char quote = 0;
  for (std::size_t i = 0; i < cmd.size(); ++i) {
    const char c = cmd[i];
    if (quote != 0) {
      if (c == quote) {
        quote = 0;
      } else if (c == '\\' && quote == '"' && i + 1 < cmd.size()) {
        cur += cmd[++i];
      } else {
        cur += c;
      }
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
    } else if (c == ' ' || c == '\t') {
      if (!cur.empty()) words.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\\' && i + 1 < cmd.size()) {
      cur += cmd[++i];
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) words.push_back(std::move(cur));
  return words;
}

void collect_include_dirs(const std::vector<std::string>& words,
                          std::vector<std::string>& dirs) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::string& w = words[i];
    if (w == "-I" || w == "-isystem" || w == "-iquote") {
      if (i + 1 < words.size()) dirs.push_back(words[i + 1]);
    } else if (w.rfind("-I", 0) == 0 && w.size() > 2) {
      dirs.push_back(w.substr(2));
    }
  }
}

std::optional<std::vector<CompileEntry>> parse_compile_commands(
    const std::string& text) {
  std::vector<CompileEntry> entries;
  CompileEntry cur;
  bool in_object = false;
  std::size_t i = 0;
  auto read_string = [&](std::size_t& pos) -> std::optional<std::string> {
    // pos points at the opening quote.
    std::size_t j = pos + 1;
    std::string raw;
    while (j < text.size() && text[j] != '"') {
      if (text[j] == '\\' && j + 1 < text.size()) {
        raw += text[j];
        raw += text[j + 1];
        j += 2;
      } else {
        raw += text[j];
        ++j;
      }
    }
    if (j >= text.size()) return std::nullopt;
    pos = j + 1;
    return json_unescape(raw);
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == '{') {
      in_object = true;
      cur = CompileEntry{};
      ++i;
    } else if (c == '}') {
      if (in_object && !cur.file.empty()) entries.push_back(cur);
      in_object = false;
      ++i;
    } else if (c == '"' && in_object) {
      std::size_t pos = i;
      const auto key = read_string(pos);
      if (!key) return std::nullopt;
      // Skip to the value.
      while (pos < text.size() && (text[pos] == ':' || text[pos] == ' ' ||
                                   text[pos] == '\n' || text[pos] == '\t')) {
        ++pos;
      }
      if (pos < text.size() && text[pos] == '"') {
        const auto value = read_string(pos);
        if (!value) return std::nullopt;
        if (*key == "directory") {
          cur.directory = *value;
        } else if (*key == "file") {
          cur.file = *value;
        } else if (*key == "command") {
          collect_include_dirs(split_command(*value), cur.include_dirs);
        }
        i = pos;
      } else if (pos < text.size() && text[pos] == '[') {
        // "arguments": ["cc", "-I", "include", ...]
        std::vector<std::string> words;
        ++pos;
        while (pos < text.size() && text[pos] != ']') {
          if (text[pos] == '"') {
            const auto w = read_string(pos);
            if (!w) return std::nullopt;
            words.push_back(*w);
          } else {
            ++pos;
          }
        }
        if (*key == "arguments") collect_include_dirs(words, cur.include_dirs);
        i = pos;
      } else {
        i = pos;
      }
    } else {
      ++i;
    }
  }
  return entries;
}

/// Quoted-include targets of one lexed file, in order.
std::vector<std::string> quoted_includes(const SourceFile& f) {
  std::vector<std::string> out;
  for (const Token& t : f.tokens()) {
    if (t.kind != TokKind::kDirective) continue;
    const std::string_view d = t.text;
    if (d.find("include") == std::string_view::npos) continue;
    const std::size_t q1 = d.find('"');
    if (q1 == std::string_view::npos) continue;
    const std::size_t q2 = d.find('"', q1 + 1);
    if (q2 == std::string_view::npos) continue;
    out.emplace_back(d.substr(q1 + 1, q2 - q1 - 1));
  }
  return out;
}

struct Cli {
  fs::path root = ".";
  std::string compile_commands;
  std::string baseline_path;
  std::string write_baseline_path;
  RunOptions run_options;
  bool list_rules = false;
  bool quiet = false;
  std::vector<std::string> files;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--root") {
      const char* v = need_value("--root");
      if (v == nullptr) return usage(argv[0]);
      cli.root = v;
    } else if (a == "--compile-commands") {
      const char* v = need_value("--compile-commands");
      if (v == nullptr) return usage(argv[0]);
      cli.compile_commands = v;
    } else if (a == "--baseline") {
      const char* v = need_value("--baseline");
      if (v == nullptr) return usage(argv[0]);
      cli.baseline_path = v;
    } else if (a == "--write-baseline") {
      const char* v = need_value("--write-baseline");
      if (v == nullptr) return usage(argv[0]);
      cli.write_baseline_path = v;
    } else if (a == "--rules") {
      const char* v = need_value("--rules");
      if (v == nullptr) return usage(argv[0]);
      std::string ids = v;
      std::size_t pos = 0;
      while (pos <= ids.size()) {
        std::size_t comma = ids.find(',', pos);
        if (comma == std::string::npos) comma = ids.size();
        const std::string id = ids.substr(pos, comma - pos);
        if (!id.empty()) {
          if (!known_rule(id)) {
            std::fprintf(stderr, "unknown rule id '%s' (try --list-rules)\n",
                         id.c_str());
            return lint_exit::kUsage;
          }
          cli.run_options.only_rules.push_back(id);
        }
        pos = comma + 1;
      }
    } else if (a == "--list-rules") {
      cli.list_rules = true;
    } else if (a == "--quiet") {
      cli.quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      return usage(argv[0]);
    } else {
      cli.files.push_back(a);
    }
  }

  if (cli.list_rules) {
    for (const Rule& r : rules()) {
      std::printf("%-28s %s\n", std::string(r.id).c_str(),
                  std::string(r.summary).c_str());
    }
    std::printf("%-28s %s\n", "lint-directive",
                "xcp-lint suppressions parse and carry a reason");
    return lint_exit::kClean;
  }

  // ------------------------------------------------------ file discovery
  std::vector<fs::path> scan_paths;
  if (!cli.files.empty()) {
    for (const std::string& f : cli.files) scan_paths.emplace_back(f);
  } else if (!cli.compile_commands.empty()) {
    const auto db_text = read_file(cli.compile_commands);
    if (!db_text) {
      std::fprintf(stderr, "cannot read compile database '%s'\n",
                   cli.compile_commands.c_str());
      return lint_exit::kIo;
    }
    const auto entries = parse_compile_commands(*db_text);
    if (!entries) {
      std::fprintf(stderr, "cannot parse compile database '%s'\n",
                   cli.compile_commands.c_str());
      return lint_exit::kIo;
    }
    // Seed with the TUs, then chase project-local quoted includes using
    // each entry's include dirs. `queued` keys on the canonical path.
    std::set<std::string> queued;
    std::vector<std::pair<fs::path, std::vector<std::string>>> pending;
    for (const CompileEntry& e : *entries) {
      fs::path file = e.file;
      if (file.is_relative()) file = fs::path(e.directory) / file;
      const std::string rel = rel_path(file, cli.root);
      if (rel.rfind("src/", 0) != 0 && rel.rfind("tools/", 0) != 0 &&
          rel.rfind("tests/", 0) != 0 && rel.rfind("bench/", 0) != 0 &&
          rel.rfind("examples/", 0) != 0) {
        continue;  // third-party (FetchContent) TUs
      }
      std::vector<std::string> dirs = e.include_dirs;
      dirs.push_back(file.parent_path().string());
      if (queued.insert(fs::weakly_canonical(file).string()).second) {
        pending.emplace_back(file, dirs);
      }
    }
    while (!pending.empty()) {
      auto [file, dirs] = std::move(pending.back());
      pending.pop_back();
      scan_paths.push_back(file);
      const auto text = read_file(file);
      if (!text) continue;  // header listed but deleted: skip quietly here
      SourceFile probe = make_source(rel_path(file, cli.root), *text);
      for (const std::string& inc : quoted_includes(probe)) {
        for (const std::string& d : dirs) {
          const fs::path candidate = fs::path(d) / inc;
          std::error_code ec;
          if (!fs::exists(candidate, ec)) continue;
          const std::string rel = rel_path(candidate, cli.root);
          if (rel.rfind("src/", 0) != 0 && rel.rfind("tools/", 0) != 0) break;
          if (queued.insert(fs::weakly_canonical(candidate).string()).second) {
            pending.emplace_back(candidate, dirs);
          }
          break;
        }
      }
    }
  } else {
    for (const char* sub : {"src", "tools"}) {
      const fs::path dir = cli.root / sub;
      std::error_code ec;
      if (!fs::exists(dir, ec)) continue;
      for (auto it = fs::recursive_directory_iterator(dir, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file() && is_cpp_source(it->path())) {
          scan_paths.push_back(it->path());
        }
      }
    }
    if (scan_paths.empty()) {
      std::fprintf(stderr, "no sources found under '%s'\n",
                   cli.root.string().c_str());
      return lint_exit::kIo;
    }
  }

  // ------------------------------------------------------------- lexing
  std::vector<SourceFile> sources;
  sources.reserve(scan_paths.size());
  for (const fs::path& p : scan_paths) {
    auto text = read_file(p);
    if (!text) {
      std::fprintf(stderr, "cannot read '%s'\n", p.string().c_str());
      return lint_exit::kIo;
    }
    sources.push_back(make_source(rel_path(p, cli.root), std::move(*text)));
  }
  std::sort(sources.begin(), sources.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });

  // ------------------------------------------------------------ analysis
  const Config config;
  RunResult result = run_files(config, sources, cli.run_options);

  if (!cli.write_baseline_path.empty()) {
    std::ofstream out(cli.write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write baseline '%s'\n",
                   cli.write_baseline_path.c_str());
      return lint_exit::kIo;
    }
    out << Baseline::render(result.findings);
    std::fprintf(stderr, "wrote %zu baseline entr%s to %s\n",
                 result.findings.size(),
                 result.findings.size() == 1 ? "y" : "ies",
                 cli.write_baseline_path.c_str());
    return lint_exit::kClean;
  }

  std::vector<Finding> baselined;
  if (!cli.baseline_path.empty()) {
    const auto text = read_file(cli.baseline_path);
    if (!text) {
      std::fprintf(stderr, "cannot read baseline '%s'\n",
                   cli.baseline_path.c_str());
      return lint_exit::kIo;
    }
    std::string error;
    const auto baseline = Baseline::parse(*text, error);
    if (!baseline) {
      std::fprintf(stderr, "%s: %s\n", cli.baseline_path.c_str(),
                   error.c_str());
      return lint_exit::kBaseline;
    }
    apply_baseline(*baseline, result, baselined);
  }

  if (!cli.quiet) {
    for (const Finding& f : result.findings) {
      std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
  }
  std::printf(
      "xcp-lint: %zu finding(s) in %d file(s) (%zu baselined, %zu "
      "suppressed in-source)\n",
      result.findings.size(), result.files_scanned, baselined.size(),
      result.suppressed.size());
  return result.findings.empty() ? lint_exit::kClean : lint_exit::kFindings;
}
