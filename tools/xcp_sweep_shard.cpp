// xcp_sweep_shard: one shard of a distributed property-matrix sweep.
//
// exp::distributed_sweep launches one of these per shard attempt: scenario
// + cell + seed range in on the command line, one serialized accumulator
// blob (exp::serialize_shard_blob) out on stdout. The process is stateless
// and deterministic — per-seed determinism plus CellAccum's
// order-insensitive merge make the driver's fold byte-identical to a
// single-process sweep, whatever the shard count. Run with --help for the
// flag list.
//
// Exit codes are distinct so the dispatcher can classify failures without
// parsing stderr: 0 success, 2 usage, 3 wire/serialize error, 4 short
// write on stdout, 5 internal error (exp::worker_exit in exp/dispatch.hpp).
//
// Deterministic fault injection (--fault MODE[@K][:if-first-seed=S],
// repeatable) exists so tests can prove the dispatcher's central
// invariant: under any fault schedule that leaves each shard one
// successful attempt, the supervised sweep stays byte-identical to the
// single-process run_matrix_cell. A fault fires only while the dispatcher's
// --attempt ordinal is <= K (default 1) and, with the :if-first-seed
// filter, only in the shard whose range starts at S — so "fail the first
// attempt, succeed on retry" schedules are one flag.

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "exp/dispatch.hpp"
#include "exp/runner.hpp"
#include "exp/shard.hpp"

namespace {

using xcp::exp::worker_exit::kInternal;
using xcp::exp::worker_exit::kShortWrite;
using xcp::exp::worker_exit::kUsage;
using xcp::exp::worker_exit::kWireError;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --protocol TOKEN --regime TOKEN [--n N] [--first-seed S]\n"
      "          [--seeds COUNT] [--online 0|1] [--early-stop 0|1]\n"
      "          [--attempt A] [--fault MODE[@K][:if-first-seed=S]]...\n"
      "          [--fault-delay-ms MS]\n"
      "\n"
      "Runs COUNT seeds of one property-matrix cell and writes a versioned\n"
      "accumulator blob to stdout (parse with exp::parse_shard_blob).\n"
      "protocol tokens: time-bounded universal-naive interledger-atomic\n"
      "                 weak-trusted weak-contract weak-committee\n"
      "regime tokens:   synchrony synchrony-drift partial-synchrony\n"
      "                 partial-adversary\n"
      "fault modes (fire while --attempt <= K, default K=1):\n"
      "  crash-before-write  SIGKILL before any output\n"
      "  crash-mid-blob      write half the blob, then SIGKILL\n"
      "  corrupt-blob        flip the first frame tag byte (parse reject)\n"
      "  stall-forever       never write, never exit (deadline fodder)\n"
      "  ignore-sigterm      SIG_IGN SIGTERM, then stall (escalation fodder)\n"
      "  slow-start          sleep --fault-delay-ms, then run normally\n"
      "  wrong-meta          blob describes a shifted seed range\n"
      "  nonzero-exit        diagnostic on stderr, exit 7\n"
      "  huge-blob           valid blob + 1 MiB trailing junk, stderr flood\n"
      "exit codes: 0 ok, 2 usage, 3 wire error, 4 short write, 5 internal\n",
      argv0);
  return kUsage;
}

// Strict numeric parsing: the whole token must be a non-negative decimal
// in range. std::sto* would let "--seeds -1" wrap to 2^64-1 and throw
// (uncaught -> SIGABRT) on "--n abc"; bad values must be usage errors.
bool parse_u64(const char* s, std::uint64_t& out) {
  // Require a leading digit, not just "no leading '-'": strtoull itself
  // skips whitespace and accepts a sign, so " -1" would otherwise wrap to
  // 2^64-1.
  if (s == nullptr || *s < '0' || *s > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_i32(const char* s, std::int32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > 0x7fffffffu) return false;
  out = static_cast<std::int32_t>(v);
  return true;
}

bool parse_bool(const char* s, bool& out) {
  if (std::strcmp(s, "0") == 0) {
    out = false;
    return true;
  }
  if (std::strcmp(s, "1") == 0) {
    out = true;
    return true;
  }
  return false;
}

enum class FaultMode {
  kNone,
  kCrashBeforeWrite,
  kCrashMidBlob,
  kCorruptBlob,
  kStallForever,
  kIgnoreSigterm,
  kSlowStart,
  kWrongMeta,
  kNonzeroExit,
  kHugeBlob,
};

struct FaultSpec {
  FaultMode mode = FaultMode::kNone;
  std::uint64_t max_attempt = 1;  // fires while attempt <= max_attempt
  bool has_seed_filter = false;
  std::uint64_t first_seed_filter = 0;
};

bool parse_fault_mode(const std::string& tok, FaultMode& out) {
  if (tok == "crash-before-write") out = FaultMode::kCrashBeforeWrite;
  else if (tok == "crash-mid-blob") out = FaultMode::kCrashMidBlob;
  else if (tok == "corrupt-blob") out = FaultMode::kCorruptBlob;
  else if (tok == "stall-forever") out = FaultMode::kStallForever;
  else if (tok == "ignore-sigterm") out = FaultMode::kIgnoreSigterm;
  else if (tok == "slow-start") out = FaultMode::kSlowStart;
  else if (tok == "wrong-meta") out = FaultMode::kWrongMeta;
  else if (tok == "nonzero-exit") out = FaultMode::kNonzeroExit;
  else if (tok == "huge-blob") out = FaultMode::kHugeBlob;
  else return false;
  return true;
}

/// MODE[@K][:if-first-seed=S]
bool parse_fault_spec(const std::string& arg, FaultSpec& out) {
  std::string spec = arg;
  const std::size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    const std::string filter = spec.substr(colon + 1);
    spec.resize(colon);
    const std::string prefix = "if-first-seed=";
    if (filter.rfind(prefix, 0) != 0) return false;
    if (!parse_u64(filter.c_str() + prefix.size(), out.first_seed_filter)) {
      return false;
    }
    out.has_seed_filter = true;
  }
  const std::size_t at = spec.find('@');
  if (at != std::string::npos) {
    if (!parse_u64(spec.c_str() + at + 1, out.max_attempt)) return false;
    spec.resize(at);
  }
  return parse_fault_mode(spec, out.mode);
}

[[noreturn]] void crash_now() {
  // SIGKILL: the most honest "worker died" a test can inject — no unwind,
  // no atexit, no core-dump slow path.
  std::raise(SIGKILL);
  std::abort();  // unreachable; raise(SIGKILL) does not return
}

[[noreturn]] void stall_forever() {
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xcp;

  exp::ShardMeta meta;
  bool have_protocol = false;
  bool have_regime = false;
  std::uint64_t attempt = 1;
  std::uint64_t fault_delay_ms = 300;
  std::vector<FaultSpec> faults;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--protocol") {
      const char* v = value();
      if (v == nullptr || !exp::parse_protocol_token(v, meta.protocol)) {
        std::fprintf(stderr, "%s: bad --protocol token\n", argv[0]);
        return usage(argv[0]);
      }
      have_protocol = true;
    } else if (arg == "--regime") {
      const char* v = value();
      if (v == nullptr || !exp::parse_regime_token(v, meta.regime)) {
        std::fprintf(stderr, "%s: bad --regime token\n", argv[0]);
        return usage(argv[0]);
      }
      have_regime = true;
    } else if (arg == "--n") {
      const char* v = value();
      if (v == nullptr || !parse_i32(v, meta.n)) return usage(argv[0]);
    } else if (arg == "--first-seed") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, meta.first_seed)) {
        return usage(argv[0]);
      }
    } else if (arg == "--seeds") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, meta.seed_count)) {
        return usage(argv[0]);
      }
    } else if (arg == "--online") {
      const char* v = value();
      if (v == nullptr || !parse_bool(v, meta.online)) return usage(argv[0]);
    } else if (arg == "--early-stop") {
      const char* v = value();
      if (v == nullptr || !parse_bool(v, meta.early_stop)) {
        return usage(argv[0]);
      }
    } else if (arg == "--attempt") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, attempt) || attempt == 0) {
        return usage(argv[0]);
      }
    } else if (arg == "--fault") {
      const char* v = value();
      FaultSpec spec;
      if (v == nullptr || !parse_fault_spec(v, spec)) {
        std::fprintf(stderr, "%s: bad --fault spec\n", argv[0]);
        return usage(argv[0]);
      }
      faults.push_back(spec);
    } else if (arg == "--fault-delay-ms") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, fault_delay_ms)) {
        return usage(argv[0]);
      }
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    }
  }
  if (!have_protocol || !have_regime) return usage(argv[0]);

  // First matching spec wins: faults are deterministic functions of
  // (attempt, shard first-seed), so a schedule mixing per-shard modes is
  // just several --fault flags with if-first-seed filters.
  FaultMode fault = FaultMode::kNone;
  for (const FaultSpec& spec : faults) {
    if (attempt > spec.max_attempt) continue;
    if (spec.has_seed_filter && meta.first_seed != spec.first_seed_filter) {
      continue;
    }
    fault = spec.mode;
    break;
  }

  if (fault == FaultMode::kNonzeroExit) {
    std::fprintf(stderr, "%s: injected fault: nonzero-exit (attempt %llu)\n",
                 argv[0], static_cast<unsigned long long>(attempt));
    return 7;
  }
  if (fault == FaultMode::kCrashBeforeWrite) crash_now();
  if (fault == FaultMode::kStallForever) stall_forever();
  if (fault == FaultMode::kIgnoreSigterm) {
    // The misbehaving-teardown case for the dispatcher's SIGTERM -> grace
    // -> SIGKILL escalation: polite termination does nothing, the hard
    // kill after term_grace is the only thing that ends this worker.
    std::signal(SIGTERM, SIG_IGN);
    stall_forever();
  }
  if (fault == FaultMode::kSlowStart) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fault_delay_ms));
  }

  try {
    exp::CellOptions opts;
    opts.online.enabled = meta.online;
    opts.online.early_stop = meta.early_stop;
    const exp::CellAccum acc = exp::run_matrix_cell_accum(
        meta.protocol, meta.regime, meta.n,
        static_cast<std::size_t>(meta.seed_count), meta.first_seed, opts);

    exp::ShardMeta wire_meta = meta;
    if (fault == FaultMode::kWrongMeta) {
      // A worker that ran the wrong work and says so: the driver's meta
      // cross-check must reject it before merge.
      wire_meta.first_seed += 1;
    }
    std::vector<std::uint8_t> blob =
        exp::serialize_shard_blob(wire_meta, acc);
    if (fault == FaultMode::kCorruptBlob) {
      // Byte 8 is the first frame's tag low byte: XOR guarantees an
      // unknown-tag parse rejection, not a silently flipped counter.
      blob[8] ^= 0xff;
    }

    std::size_t write_len = blob.size();
    if (fault == FaultMode::kCrashMidBlob) write_len = blob.size() / 2;
    if (std::fwrite(blob.data(), 1, write_len, stdout) != write_len ||
        std::fflush(stdout) != 0) {
      std::fprintf(stderr, "%s: short write on stdout\n", argv[0]);
      return kShortWrite;
    }
    if (fault == FaultMode::kCrashMidBlob) crash_now();
    if (fault == FaultMode::kHugeBlob) {
      // Far beyond any pipe buffer on both streams: a driver that stops
      // draining before EOF (PR 5's close_all error path) deadlocks here.
      const std::vector<std::uint8_t> junk(64 * 1024, 0xaa);
      for (int chunk = 0; chunk < 16; ++chunk) {  // 1 MiB on stdout
        if (std::fwrite(junk.data(), 1, junk.size(), stdout) != junk.size()) {
          return kShortWrite;
        }
      }
      const std::string line(1024, '!');
      for (int chunk = 0; chunk < 256; ++chunk) {  // 256 KiB on stderr
        std::fprintf(stderr, "%s\n", line.c_str());
      }
      if (std::fflush(stdout) != 0) return kShortWrite;
    }
  } catch (const exp::WireError& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return kWireError;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return kInternal;
  }
  return 0;
}
