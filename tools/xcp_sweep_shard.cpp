// xcp_sweep_shard: one shard of a distributed property-matrix sweep.
//
// exp::distributed_sweep launches one of these per shard: scenario + cell
// + seed range in on the command line, one serialized accumulator blob
// (exp::serialize_shard_blob) out on stdout. The process is stateless and
// deterministic — per-seed determinism plus CellAccum's order-insensitive
// merge make the driver's fold byte-identical to a single-process sweep,
// whatever the shard count. Run with --help for the flag list.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "exp/runner.hpp"
#include "exp/shard.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --protocol TOKEN --regime TOKEN [--n N] [--first-seed S]\n"
      "          [--seeds COUNT] [--online 0|1] [--early-stop 0|1]\n"
      "\n"
      "Runs COUNT seeds of one property-matrix cell and writes a versioned\n"
      "accumulator blob to stdout (parse with exp::parse_shard_blob).\n"
      "protocol tokens: time-bounded universal-naive interledger-atomic\n"
      "                 weak-trusted weak-contract weak-committee\n"
      "regime tokens:   synchrony synchrony-drift partial-synchrony\n"
      "                 partial-adversary\n",
      argv0);
  return 2;
}

// Strict numeric parsing: the whole token must be a non-negative decimal
// in range. std::sto* would let "--seeds -1" wrap to 2^64-1 and throw
// (uncaught -> SIGABRT) on "--n abc"; bad values must be usage errors.
bool parse_u64(const char* s, std::uint64_t& out) {
  // Require a leading digit, not just "no leading '-'": strtoull itself
  // skips whitespace and accepts a sign, so " -1" would otherwise wrap to
  // 2^64-1.
  if (s == nullptr || *s < '0' || *s > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_i32(const char* s, std::int32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > 0x7fffffffu) return false;
  out = static_cast<std::int32_t>(v);
  return true;
}

bool parse_bool(const char* s, bool& out) {
  if (std::strcmp(s, "0") == 0) {
    out = false;
    return true;
  }
  if (std::strcmp(s, "1") == 0) {
    out = true;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xcp;

  exp::ShardMeta meta;
  bool have_protocol = false;
  bool have_regime = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--protocol") {
      const char* v = value();
      if (v == nullptr || !exp::parse_protocol_token(v, meta.protocol)) {
        std::fprintf(stderr, "%s: bad --protocol token\n", argv[0]);
        return usage(argv[0]);
      }
      have_protocol = true;
    } else if (arg == "--regime") {
      const char* v = value();
      if (v == nullptr || !exp::parse_regime_token(v, meta.regime)) {
        std::fprintf(stderr, "%s: bad --regime token\n", argv[0]);
        return usage(argv[0]);
      }
      have_regime = true;
    } else if (arg == "--n") {
      const char* v = value();
      if (v == nullptr || !parse_i32(v, meta.n)) return usage(argv[0]);
    } else if (arg == "--first-seed") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, meta.first_seed)) {
        return usage(argv[0]);
      }
    } else if (arg == "--seeds") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, meta.seed_count)) {
        return usage(argv[0]);
      }
    } else if (arg == "--online") {
      const char* v = value();
      if (v == nullptr || !parse_bool(v, meta.online)) return usage(argv[0]);
    } else if (arg == "--early-stop") {
      const char* v = value();
      if (v == nullptr || !parse_bool(v, meta.early_stop)) {
        return usage(argv[0]);
      }
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    }
  }
  if (!have_protocol || !have_regime) return usage(argv[0]);

  try {
    exp::CellOptions opts;
    opts.online.enabled = meta.online;
    opts.online.early_stop = meta.early_stop;
    const exp::CellAccum acc = exp::run_matrix_cell_accum(
        meta.protocol, meta.regime, meta.n,
        static_cast<std::size_t>(meta.seed_count), meta.first_seed, opts);
    const std::vector<std::uint8_t> blob =
        exp::serialize_shard_blob(meta, acc);
    if (std::fwrite(blob.data(), 1, blob.size(), stdout) != blob.size() ||
        std::fflush(stdout) != 0) {
      std::fprintf(stderr, "%s: short write on stdout\n", argv[0]);
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
  return 0;
}
