// xcp_node: one process of a multi-process notary-committee deployment.
//
// Nodes 0..m-1 each host one notary; node m hosts every participant
// (customers + escrows) and acts as the client: it broadcasts the deal
// evidence at t=0, waits for a verified quorum decision certificate at
// every participant, and prints the outcome plus the wire-encoded
// certificate. All nodes build the identical StandaloneCommittee scenario
// from the same flags (keys, committee config, evidence — see
// consensus/standalone.hpp), talk over the supervised socket transport,
// and detect dead peers by heartbeat.
//
// Addressing: --sock-dir DIR derives one unix-domain socket per node (the
// single-box default). For multi-host deployments, give explicit endpoints
// instead: --listen ADDR for this node plus one repeatable --peer N=ADDR
// per other node, where ADDR is any transport address ("tcp:<ipv4>:<port>"
// or "unix:<path>"). Explicit endpoints override the --sock-dir scheme
// per node, so the two can mix during migration.
//
//   xcp_node --node-id K (--sock-dir DIR | --listen ADDR --peer N=ADDR...)
//            [--notaries 4] [--n 2]
//            [--deal 13] [--seed 7] [--value commit|abort]
//            [--base-round-ms 100] [--heartbeat-ms 50]
//            [--peer-timeout-ms 600] [--wall-limit-ms 15000]
//            [--linger-ms 300]
//
// Output (stdout, line-oriented so harnesses can parse):
//   PEER-DOWN node=N silent-ms=X     when a peer misses its heartbeat deadline
//   DECIDED value=V node=K           notary nodes, on local decision
//   OUTCOME value=... cert=... ...   client node, once all participants have
//   CERT <hex>                       the decision certificate, wire-encoded
//
// Exit: 0 decided/certified, 3 wall-clock timeout, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "consensus/standalone.hpp"
#include "net/node_runtime.hpp"
#include "net/socket_transport.hpp"
#include "net/wire.hpp"

namespace {

using namespace xcp;

struct Args {
  int node_id = -1;
  std::string sock_dir;
  std::string listen_addr;               // explicit override for this node
  std::map<int, std::string> peer_addrs;  // explicit overrides, per node
  consensus::StandaloneCommittee sc;
  long heartbeat_ms = 50;
  long peer_timeout_ms = 600;
  long wall_limit_ms = 15'000;
  long linger_ms = 300;
};

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr,
               "xcp_node: %s\n"
               "usage: xcp_node --node-id K (--sock-dir DIR | --listen ADDR "
               "--peer N=ADDR...) [--notaries M] "
               "[--n N] [--deal D] [--seed S] [--value commit|abort] "
               "[--base-round-ms MS] [--heartbeat-ms MS] "
               "[--peer-timeout-ms MS] [--wall-limit-ms MS] [--linger-ms MS]\n",
               why);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--node-id") {
      a.node_id = std::atoi(next().c_str());
    } else if (flag == "--sock-dir") {
      a.sock_dir = next();
    } else if (flag == "--listen") {
      a.listen_addr = next();
    } else if (flag == "--peer") {
      const std::string spec = next();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        usage("--peer wants N=ADDR (e.g. --peer 1=tcp:10.0.0.2:9101)");
      }
      a.peer_addrs[std::atoi(spec.substr(0, eq).c_str())] =
          spec.substr(eq + 1);
    } else if (flag == "--notaries") {
      a.sc.notaries = std::atoi(next().c_str());
    } else if (flag == "--n") {
      a.sc.n = std::atoi(next().c_str());
    } else if (flag == "--deal") {
      a.sc.deal_id = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--seed") {
      a.sc.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--value") {
      const std::string v = next();
      if (v == "commit") {
        a.sc.evidence = consensus::Value::kCommit;
      } else if (v == "abort") {
        a.sc.evidence = consensus::Value::kAbort;
      } else {
        usage("--value must be commit or abort");
      }
    } else if (flag == "--base-round-ms") {
      a.sc.base_round = Duration::millis(std::atol(next().c_str()));
    } else if (flag == "--heartbeat-ms") {
      a.heartbeat_ms = std::atol(next().c_str());
    } else if (flag == "--peer-timeout-ms") {
      a.peer_timeout_ms = std::atol(next().c_str());
    } else if (flag == "--wall-limit-ms") {
      a.wall_limit_ms = std::atol(next().c_str());
    } else if (flag == "--linger-ms") {
      a.linger_ms = std::atol(next().c_str());
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  if (a.node_id < 0 || a.node_id > a.sc.notaries) {
    usage("--node-id must be in [0, notaries] (notaries => client node)");
  }
  if (a.sc.notaries < 1 || a.sc.n < 1) usage("need >=1 notary and >=1 escrow");
  // Without a --sock-dir fallback, every node needs an explicit endpoint:
  // --listen (or a --peer self-entry) for this node, --peer for the rest.
  if (a.sock_dir.empty()) {
    if (a.listen_addr.empty() && !a.peer_addrs.count(a.node_id)) {
      usage("need --sock-dir, or --listen for this node");
    }
    for (int node = 0; node <= a.sc.notaries; ++node) {
      if (node != a.node_id && !a.peer_addrs.count(node)) {
        usage(("need --sock-dir, or --peer " + std::to_string(node) +
               "=ADDR for every other node")
                  .c_str());
      }
    }
  }
  return a;
}

std::string node_addr(const Args& a, int node) {
  const auto it = a.peer_addrs.find(node);
  if (it != a.peer_addrs.end()) return it->second;
  return "unix:" + a.sock_dir + "/node-" + std::to_string(node) + ".sock";
}

std::string listen_addr(const Args& a) {
  return a.listen_addr.empty() ? node_addr(a, a.node_id) : a.listen_addr;
}

std::string hex_of(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xf]);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  const consensus::StandaloneCommittee& sc = args.sc;
  const int m = sc.notaries;
  const int client_node = m;
  const bool is_client = args.node_id == client_node;

  // Identical scenario in every process: keys, config, evidence.
  crypto::KeyRegistry keys = sc.make_keys();
  auto config = sc.make_config(keys);

  // Decorrelate per-process simulator randomness; protocol determinism
  // across processes comes from the shared scenario, not the sim seed.
  sim::Simulator sim(sc.seed ^
                     (0x9e3779b97f4a7c15ull *
                      (static_cast<std::uint64_t>(args.node_id) + 1)));
  net::Network network(sim, net::DelayModel::synchronous(Duration::millis(1)));

  net::SocketTransportOptions topts;
  topts.heartbeat_interval = std::chrono::milliseconds(args.heartbeat_ms);
  topts.peer_timeout = std::chrono::milliseconds(args.peer_timeout_ms);
  topts.jitter_seed = sc.seed;
  topts.wire.roster = &config->members;
  net::SocketTransport transport(static_cast<std::uint32_t>(args.node_id),
                                 listen_addr(args), topts);
  for (int node = 0; node <= m; ++node) {
    if (node == args.node_id) continue;
    transport.add_peer(static_cast<std::uint32_t>(node),
                       node_addr(args, node));
  }
  for (int i = 0; i < m; ++i) {
    transport.map_pid(sc.notary_pid(i), static_cast<std::uint32_t>(i));
  }
  for (int i = 0; i < sc.participant_count(); ++i) {
    transport.map_pid(sim::ProcessId(static_cast<std::uint32_t>(i)),
                      static_cast<std::uint32_t>(client_node));
  }
  transport.set_peer_down_handler([](std::uint32_t node,
                                     std::chrono::milliseconds silent) {
    std::printf("PEER-DOWN node=%u silent-ms=%lld\n", node,
                static_cast<long long>(silent.count()));
    std::fflush(stdout);
  });

  net::NodeRuntime runtime(sim, network, transport);
  const auto wall_limit = std::chrono::milliseconds(args.wall_limit_ms);
  const auto linger = std::chrono::milliseconds(args.linger_ms);

  if (!is_client) {
    // Filler processes claim the lower pids so the notary lands on its
    // protocol id; they are never attached to the network, so traffic to
    // them routes out the gateway.
    const int notary_index = args.node_id;
    for (std::uint32_t pid = 0; pid < sc.notary_pid(notary_index).value();
         ++pid) {
      sim.spawn<sim::Process>("filler_" + std::to_string(pid));
    }
    auto& notary = sim.spawn<consensus::Notary>(
        "notary_" + std::to_string(notary_index), config, keys);
    if (notary.id() != sc.notary_pid(notary_index)) {
      std::fprintf(stderr, "xcp_node: notary pid prediction broken\n");
      return 2;
    }
    network.attach(notary);

    const bool decided =
        runtime.run(wall_limit, [&] { return notary.decided(); });
    if (decided) {
      // Give the decision broadcast and relays time to drain.
      runtime.linger(linger);
      std::printf("DECIDED value=%s node=%d\n",
                  consensus::value_name(*notary.decision()), args.node_id);
      std::fflush(stdout);
      return 0;
    }
    std::fprintf(stderr, "xcp_node: notary %d undecided after %ld ms\n",
                 notary_index, args.wall_limit_ms);
    return 3;
  }

  // Client node: hosts every participant, broadcasts the evidence, waits
  // for a verified certificate at every participant.
  std::vector<consensus::DecisionCollector*> collectors;
  for (int i = 0; i < sc.participant_count(); ++i) {
    auto& c = sim.spawn<consensus::DecisionCollector>(
        "participant_" + std::to_string(i), config, keys);
    network.attach(c);
    collectors.push_back(&c);
  }
  auto msgs = sc.client_messages(keys);
  sim.schedule_at(TimePoint::origin(), [&] {
    for (const auto& msg : msgs) {
      network.send(msg.from, msg.to, msg.kind, msg.body);
    }
  });

  const bool all_done = runtime.run(wall_limit, [&] {
    for (const auto* c : collectors) {
      if (!c->done()) return false;
    }
    return true;
  });
  if (!all_done) {
    std::fprintf(stderr,
                 "xcp_node: client missing certificates after %ld ms\n",
                 args.wall_limit_ms);
    return 3;
  }
  runtime.linger(linger);

  consensus::CommitteeOutcome outcome;
  outcome.value = collectors[0]->value();
  outcome.cert = collectors[0]->cert();
  outcome.cert_valid = crypto::verify_quorum_cert(
      keys, outcome.cert, config->members,
      static_cast<std::size_t>(config->quorum()));
  std::printf("OUTCOME %s\n", outcome.canonical().c_str());
  net::WireContext wctx;
  wctx.roster = &config->members;
  std::printf("CERT %s\n",
              hex_of(net::serialize_certificate(outcome.cert, wctx)).c_str());
  std::fflush(stdout);
  return 0;
}
