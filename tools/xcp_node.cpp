// xcp_node: one process of a multi-process notary-committee deployment.
//
// Nodes 0..m-1 each host one notary; node m hosts every participant
// (customers + escrows) and acts as the client: it broadcasts the deal
// evidence at t=0, waits for a verified quorum decision certificate at
// every participant, and prints the outcome plus the wire-encoded
// certificate. All nodes build the identical StandaloneCommittee scenario
// from the same flags (keys, committee config, evidence — see
// consensus/standalone.hpp), talk over the supervised socket transport,
// and detect dead peers by heartbeat.
//
// Addressing: --sock-dir DIR derives one unix-domain socket per node (the
// single-box default). For multi-host deployments, give explicit endpoints
// instead: --listen ADDR for this node plus one repeatable --peer N=ADDR
// per other node, where ADDR is any transport address ("tcp:<ipv4>:<port>"
// or "unix:<path>"). Explicit endpoints override the --sock-dir scheme
// per node, so the two can mix during migration.
//
// Crash recovery (docs/ROBUSTNESS.md, crash-recovery rung): --state-dir DIR
// gives a notary a durable write-ahead journal at DIR/node-K.wal. Every
// prevote, precommit and decision is journaled (fsync'd) before the
// corresponding broadcast, so a restarted node replays the journal, refuses
// to equivocate against anything it already signed, announces its journaled
// tier in its Hello status word, and — when it comes back undecided —
// requests catch-up; peers that have decided answer with the decision
// certificate. --crash-at KIND:PHASE[:BYTES] arms the deterministic crash
// injector (KIND = prevote|precommit|decide, PHASE = before|torn|after;
// torn takes the byte count that reaches the file) for the restart harness.
//
//   xcp_node --node-id K (--sock-dir DIR | --listen ADDR --peer N=ADDR...)
//            [--notaries 4] [--n 2]
//            [--deal 13] [--seed 7] [--value commit|abort]
//            [--base-round-ms 100] [--heartbeat-ms 50]
//            [--peer-timeout-ms 600] [--wall-limit-ms 15000]
//            [--linger-ms 300]
//            [--state-dir DIR] [--crash-at KIND:PHASE[:BYTES]]
//            [--journal-compact]
//
// Output (stdout, line-oriented so harnesses can parse):
//   PEER-DOWN node=N silent-ms=X     when a peer misses its heartbeat deadline
//   RECOVERED node=K records=N dropped=B truncated=0|1 tier=T
//                                    after a journal replay (non-fresh file)
//   DECIDED value=V node=K           notary nodes, on local decision
//   COMPACTED records=N              after --journal-compact snapshotting
//   OUTCOME value=... cert=... ...   client node, once all participants have
//   CERT <hex>                       the decision certificate, wire-encoded
//
// Exit codes (net/node_exit.hpp, mirroring exp::worker_exit): 0 decided/
// certified, 2 usage, 3 wall-clock timeout, 4 unrecoverable wire error,
// 5 journal corrupt beyond recovery, 6 internal error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iterator>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "consensus/standalone.hpp"
#include "net/node_exit.hpp"
#include "net/node_runtime.hpp"
#include "net/socket_transport.hpp"
#include "net/wal.hpp"
#include "net/wire.hpp"

namespace {

using namespace xcp;

struct Args {
  int node_id = -1;
  std::string sock_dir;
  std::string listen_addr;               // explicit override for this node
  std::map<int, std::string> peer_addrs;  // explicit overrides, per node
  consensus::StandaloneCommittee sc;
  long heartbeat_ms = 50;
  long peer_timeout_ms = 600;
  long wall_limit_ms = 15'000;
  long linger_ms = 300;
  std::string state_dir;
  net::WalCrashPlan crash_plan;
  bool journal_compact = false;
};

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr,
               "xcp_node: %s\n"
               "usage: xcp_node --node-id K (--sock-dir DIR | --listen ADDR "
               "--peer N=ADDR...) [--notaries M] "
               "[--n N] [--deal D] [--seed S] [--value commit|abort] "
               "[--base-round-ms MS] [--heartbeat-ms MS] "
               "[--peer-timeout-ms MS] [--wall-limit-ms MS] [--linger-ms MS] "
               "[--state-dir DIR] [--crash-at KIND:PHASE[:BYTES]] "
               "[--journal-compact]\n",
               why);
  std::exit(net::node_exit::kUsage);
}

net::WalCrashPlan parse_crash_at(const std::string& spec) {
  net::WalCrashPlan plan;
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos) {
    usage("--crash-at wants KIND:PHASE[:BYTES] "
          "(e.g. --crash-at prevote:after)");
  }
  const std::string kind = spec.substr(0, c1);
  std::string phase = spec.substr(c1 + 1);
  const std::size_t c2 = phase.find(':');
  if (c2 != std::string::npos) {
    const long bytes = std::atol(phase.substr(c2 + 1).c_str());
    if (bytes < 1) usage("--crash-at torn byte count must be >= 1");
    plan.torn_bytes = static_cast<std::size_t>(bytes);
    phase = phase.substr(0, c2);
  }
  if (kind == "prevote") {
    plan.kind = net::WalRecordKind::kPrevote;
  } else if (kind == "precommit") {
    plan.kind = net::WalRecordKind::kPrecommit;
  } else if (kind == "decide") {
    plan.kind = net::WalRecordKind::kDecide;
  } else {
    usage("--crash-at kind must be prevote, precommit or decide");
  }
  if (phase == "before") {
    plan.phase = net::WalCrashPlan::Phase::kBefore;
  } else if (phase == "torn") {
    plan.phase = net::WalCrashPlan::Phase::kTorn;
  } else if (phase == "after") {
    plan.phase = net::WalCrashPlan::Phase::kAfter;
  } else {
    usage("--crash-at phase must be before, torn or after");
  }
  return plan;
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--node-id") {
      a.node_id = std::atoi(next().c_str());
    } else if (flag == "--sock-dir") {
      a.sock_dir = next();
    } else if (flag == "--listen") {
      a.listen_addr = next();
    } else if (flag == "--peer") {
      const std::string spec = next();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        usage("--peer wants N=ADDR (e.g. --peer 1=tcp:10.0.0.2:9101)");
      }
      a.peer_addrs[std::atoi(spec.substr(0, eq).c_str())] =
          spec.substr(eq + 1);
    } else if (flag == "--notaries") {
      a.sc.notaries = std::atoi(next().c_str());
    } else if (flag == "--n") {
      a.sc.n = std::atoi(next().c_str());
    } else if (flag == "--deal") {
      a.sc.deal_id = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--seed") {
      a.sc.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--value") {
      const std::string v = next();
      if (v == "commit") {
        a.sc.evidence = consensus::Value::kCommit;
      } else if (v == "abort") {
        a.sc.evidence = consensus::Value::kAbort;
      } else {
        usage("--value must be commit or abort");
      }
    } else if (flag == "--base-round-ms") {
      a.sc.base_round = Duration::millis(std::atol(next().c_str()));
    } else if (flag == "--heartbeat-ms") {
      a.heartbeat_ms = std::atol(next().c_str());
    } else if (flag == "--peer-timeout-ms") {
      a.peer_timeout_ms = std::atol(next().c_str());
    } else if (flag == "--wall-limit-ms") {
      a.wall_limit_ms = std::atol(next().c_str());
    } else if (flag == "--linger-ms") {
      a.linger_ms = std::atol(next().c_str());
    } else if (flag == "--state-dir") {
      a.state_dir = next();
    } else if (flag == "--crash-at") {
      a.crash_plan = parse_crash_at(next());
    } else if (flag == "--journal-compact") {
      a.journal_compact = true;
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  if (a.node_id < 0 || a.node_id > a.sc.notaries) {
    usage("--node-id must be in [0, notaries] (notaries => client node)");
  }
  if (a.sc.notaries < 1 || a.sc.n < 1) usage("need >=1 notary and >=1 escrow");
  if (a.crash_plan.armed() && a.state_dir.empty()) {
    usage("--crash-at needs --state-dir (it fires on journal appends)");
  }
  // Without a --sock-dir fallback, every node needs an explicit endpoint:
  // --listen (or a --peer self-entry) for this node, --peer for the rest.
  if (a.sock_dir.empty()) {
    if (a.listen_addr.empty() && !a.peer_addrs.count(a.node_id)) {
      usage("need --sock-dir, or --listen for this node");
    }
    for (int node = 0; node <= a.sc.notaries; ++node) {
      if (node != a.node_id && !a.peer_addrs.count(node)) {
        usage(("need --sock-dir, or --peer " + std::to_string(node) +
               "=ADDR for every other node")
                  .c_str());
      }
    }
  }
  return a;
}

std::string node_addr(const Args& a, int node) {
  const auto it = a.peer_addrs.find(node);
  if (it != a.peer_addrs.end()) return it->second;
  return "unix:" + a.sock_dir + "/node-" + std::to_string(node) + ".sock";
}

std::string listen_addr(const Args& a) {
  return a.listen_addr.empty() ? node_addr(a, a.node_id) : a.listen_addr;
}

std::string hex_of(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xf]);
  }
  return s;
}

int run_node(const Args& args) {
  const consensus::StandaloneCommittee& sc = args.sc;
  const int m = sc.notaries;
  const int client_node = m;
  const bool is_client = args.node_id == client_node;

  // Identical scenario in every process: keys, config, evidence.
  crypto::KeyRegistry keys = sc.make_keys();
  auto config = sc.make_config(keys);

  // Decorrelate per-process simulator randomness; protocol determinism
  // across processes comes from the shared scenario, not the sim seed.
  sim::Simulator sim(sc.seed ^
                     (0x9e3779b97f4a7c15ull *
                      (static_cast<std::uint64_t>(args.node_id) + 1)));
  net::Network network(sim, net::DelayModel::synchronous(Duration::millis(1)));

  net::SocketTransportOptions topts;
  topts.heartbeat_interval = std::chrono::milliseconds(args.heartbeat_ms);
  topts.peer_timeout = std::chrono::milliseconds(args.peer_timeout_ms);
  topts.jitter_seed = sc.seed;
  topts.wire.roster = &config->members;
  net::SocketTransport transport(static_cast<std::uint32_t>(args.node_id),
                                 listen_addr(args), topts);
  for (int node = 0; node <= m; ++node) {
    if (node == args.node_id) continue;
    transport.add_peer(static_cast<std::uint32_t>(node),
                       node_addr(args, node));
  }
  for (int i = 0; i < m; ++i) {
    transport.map_pid(sc.notary_pid(i), static_cast<std::uint32_t>(i));
  }
  for (int i = 0; i < sc.participant_count(); ++i) {
    transport.map_pid(sim::ProcessId(static_cast<std::uint32_t>(i)),
                      static_cast<std::uint32_t>(client_node));
  }
  transport.set_peer_down_handler([](std::uint32_t node,
                                     std::chrono::milliseconds silent) {
    std::printf("PEER-DOWN node=%u silent-ms=%lld\n", node,
                static_cast<long long>(silent.count()));
    std::fflush(stdout);
  });

  net::NodeRuntime runtime(sim, network, transport);
  const auto wall_limit = std::chrono::milliseconds(args.wall_limit_ms);
  const auto linger = std::chrono::milliseconds(args.linger_ms);

  // Catch-up serving is shared by both roles: requests (and Hellos from
  // recovered-but-behind peers) accumulate in `pending_catchup`; `respond`
  // is filled in per role and drained whenever new state could satisfy it.
  std::set<std::uint32_t> pending_catchup;
  std::function<bool(std::uint32_t)> respond;  // true = request satisfied
  auto serve_catchups = [&] {
    if (!respond) return;
    for (auto it = pending_catchup.begin(); it != pending_catchup.end();) {
      it = respond(*it) ? pending_catchup.erase(it) : std::next(it);
    }
  };
  transport.set_catchup_handler(
      [&](std::uint32_t node, std::uint64_t instance, std::uint64_t) {
        if (instance != config->instance) return;
        pending_catchup.insert(node);
        serve_catchups();
      });
  transport.set_peer_status_handler(
      [&](std::uint32_t node, std::uint64_t status) {
        // A peer that recovered from its journal but is not yet decided owes
        // nothing to us — but we may owe it the decision. Treat the Hello as
        // an implicit catch-up request (crash-before-vote rejoiners whose
        // explicit request raced the dial are still served).
        if (net::hello_status_recovered(status) &&
            net::hello_status_tier(status) < 2) {
          pending_catchup.insert(node);
          serve_catchups();
        }
      });
  // Only notary peers rejoin rounds; a decision sent to their protocol pid
  // is idempotent for receivers that already decided.
  auto notary_peer = [&](std::uint32_t node) {
    return static_cast<int>(node) < m;
  };

  if (!is_client) {
    // Filler processes claim the lower pids so the notary lands on its
    // protocol id; they are never attached to the network, so traffic to
    // them routes out the gateway.
    const int notary_index = args.node_id;
    for (std::uint32_t pid = 0; pid < sc.notary_pid(notary_index).value();
         ++pid) {
      sim.spawn<sim::Process>("filler_" + std::to_string(pid));
    }
    auto& notary = sim.spawn<consensus::Notary>(
        "notary_" + std::to_string(notary_index), config, keys);
    if (notary.id() != sc.notary_pid(notary_index)) {
      std::fprintf(stderr, "xcp_node: notary pid prediction broken\n");
      return net::node_exit::kUsage;
    }
    network.attach(notary);

    respond = [&](std::uint32_t node) {
      if (!notary.decided() || !notary.decision_cert()) return false;
      if (notary_peer(node)) {
        auto body = net::make_body<consensus::DecisionMsg>();
        body->cert = *notary.decision_cert();
        network.send(notary.id(), sc.notary_pid(static_cast<int>(node)),
                     net::kinds::bft_decision, body);
      }
      return true;
    };

    // Journal wiring: open (recovering any previous life's records) before
    // the simulator starts, so on_start sees the restored state.
    std::optional<net::WriteAheadLog> wal;
    bool recovered = false;
    if (!args.state_dir.empty()) {
      net::WalOptions wopts;
      wopts.crash_plan = args.crash_plan;
      wal.emplace(args.state_dir + "/node-" + std::to_string(args.node_id) +
                      ".wal",
                  std::move(wopts));
      const net::WalRecoverResult rec = wal->open();
      notary.set_wal(&*wal);
      if (!rec.records.empty()) notary.restore(rec.records);
      std::uint32_t tier = 0;
      for (const net::WalRecord& r : rec.records) {
        if (r.instance != config->instance) continue;
        tier = std::max(tier, r.kind == net::WalRecordKind::kDecide ? 2u : 1u);
      }
      recovered = !rec.fresh;
      transport.set_hello_status(net::hello_status_word(tier, recovered));
      if (recovered) {
        std::printf(
            "RECOVERED node=%d records=%zu dropped=%llu truncated=%d "
            "tier=%u\n",
            args.node_id, rec.records.size(),
            static_cast<unsigned long long>(rec.dropped_bytes),
            rec.truncated ? 1 : 0, tier);
        std::fflush(stdout);
        // Came back behind the committee: ask peers to ship what we missed.
        if (tier < 2) transport.request_catchup(config->instance);
      }
    }

    const bool decided =
        runtime.run(wall_limit, [&] { return notary.decided(); });
    if (decided) {
      transport.cancel_catchup();
      if (wal) {
        transport.set_hello_status(net::hello_status_word(2, recovered));
      }
      serve_catchups();
      // Give the decision broadcast, relays and catch-up answers time to
      // drain (rejoiners may dial in during the linger window).
      runtime.linger(linger);
      std::printf("DECIDED value=%s node=%d\n",
                  consensus::value_name(*notary.decision()), args.node_id);
      std::fflush(stdout);
      if (wal && args.journal_compact && notary.decision_cert()) {
        // Snapshot = the decision alone: it is final, so the vote records
        // that led to it carry no further amnesia-safety obligations.
        net::WalRecord snap;
        snap.kind = net::WalRecordKind::kDecide;
        snap.instance = config->instance;
        snap.round = notary.rounds_entered() - 1;
        snap.value = static_cast<std::uint8_t>(*notary.decision());
        net::WireContext wctx;
        wctx.roster = &config->members;
        snap.cert = net::serialize_certificate(*notary.decision_cert(), wctx);
        wal->compact({snap});
        std::printf("COMPACTED records=1\n");
        std::fflush(stdout);
      }
      return net::node_exit::kDecided;
    }
    std::fprintf(stderr, "xcp_node: notary %d undecided after %ld ms\n",
                 notary_index, args.wall_limit_ms);
    return net::node_exit::kTimeout;
  }

  // Client node: hosts every participant, broadcasts the evidence, waits
  // for a verified certificate at every participant.
  std::vector<consensus::DecisionCollector*> collectors;
  for (int i = 0; i < sc.participant_count(); ++i) {
    auto& c = sim.spawn<consensus::DecisionCollector>(
        "participant_" + std::to_string(i), config, keys);
    network.attach(c);
    collectors.push_back(&c);
  }
  respond = [&](std::uint32_t node) {
    if (!collectors[0]->done()) return false;
    if (notary_peer(node)) {
      auto body = net::make_body<consensus::DecisionMsg>();
      body->cert = collectors[0]->cert();
      network.send(collectors[0]->id(), sc.notary_pid(static_cast<int>(node)),
                   net::kinds::bft_decision, body);
    }
    return true;
  };
  auto msgs = sc.client_messages(keys);
  sim.schedule_at(TimePoint::origin(), [&] {
    for (const auto& msg : msgs) {
      network.send(msg.from, msg.to, msg.kind, msg.body);
    }
  });

  const bool all_done = runtime.run(wall_limit, [&] {
    for (const auto* c : collectors) {
      if (!c->done()) return false;
    }
    return true;
  });
  if (!all_done) {
    std::fprintf(stderr,
                 "xcp_node: client missing certificates after %ld ms\n",
                 args.wall_limit_ms);
    return net::node_exit::kTimeout;
  }
  transport.set_hello_status(net::hello_status_word(2, false));
  serve_catchups();
  runtime.linger(linger);

  consensus::CommitteeOutcome outcome;
  outcome.value = collectors[0]->value();
  outcome.cert = collectors[0]->cert();
  outcome.cert_valid = crypto::verify_quorum_cert(
      keys, outcome.cert, config->members,
      static_cast<std::size_t>(config->quorum()));
  std::printf("OUTCOME %s\n", outcome.canonical().c_str());
  net::WireContext wctx;
  wctx.roster = &config->members;
  std::printf("CERT %s\n",
              hex_of(net::serialize_certificate(outcome.cert, wctx)).c_str());
  std::fflush(stdout);
  return net::node_exit::kDecided;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    return run_node(args);
  } catch (const net::WalError& e) {
    std::fprintf(stderr, "xcp_node: %s\n", e.what());
    return net::node_exit::kJournalCorrupt;
  } catch (const net::WireError& e) {
    std::fprintf(stderr, "xcp_node: %s\n", e.what());
    return net::node_exit::kWireError;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xcp_node: internal error: %s\n", e.what());
    return net::node_exit::kInternal;
  }
}
