// Quickstart: run one cross-chain payment with the time-bounded protocol
// (Thm 1) — Alice pays Bob through one connector (Chloe) and two escrows —
// and check the paper's Definition-1 requirements on the execution trace.
//
//   $ ./quickstart
//
// This is the 30-line tour of the public API: configure, run, inspect.

#include <iostream>

#include "props/checkers.hpp"
#include "proto/timebounded.hpp"

int main() {
  using namespace xcp;

  // 1. Describe the deal: 2 escrows => Alice, Chloe_1, Bob. Bob receives
  //    1000 units; Chloe earns a 10-unit commission, so Alice pays 1010.
  proto::TimeBoundedConfig config;
  config.seed = 2024;
  config.spec = proto::DealSpec::uniform(/*deal_id=*/1, /*n=*/2,
                                         /*base=*/1000, /*commission=*/10);

  // 2. State the timing assumptions the timelock schedule is derived from
  //    (Delta, eps, drift bound rho, slack) and the environment that will
  //    actually be simulated — here, conforming synchrony.
  config.assumed.delta_max = Duration::millis(100);
  config.assumed.processing = Duration::millis(5);
  config.assumed.rho = 1e-3;
  config.assumed.slack = Duration::millis(10);
  config.env.delta_max = config.assumed.delta_max;
  config.env.actual_rho = config.assumed.rho;
  config.env.clock_offset_max = Duration::millis(50);

  // 3. Run. Everything is deterministic in (seed, config).
  const proto::RunRecord record = proto::run_time_bounded(config);

  // 4. Inspect: the per-participant summary table...
  std::cout << record.summary() << "\n";

  // ...the escrow timelock parameters the schedule derived...
  std::cout << "timelock windows: a_0 = " << record.schedule->a(0).str()
            << ", a_1 = " << record.schedule->a(1).str()
            << " (refund promises d_0 = " << record.schedule->d(0).str()
            << ", d_1 = " << record.schedule->d(1).str() << ")\n\n";

  // ...and the paper's correctness requirements, checked over the trace.
  const auto report = props::check_definition1(record, props::CheckOptions{});
  std::cout << "Definition 1 requirements:\n" << report.str();
  std::cout << (report.all_hold() ? "\nall requirements hold — Bob was paid "
                                    "and Alice holds chi.\n"
                                  : "\nVIOLATIONS FOUND (unexpected!)\n");
  return report.all_hold() ? 0 : 1;
}
