// Concurrent deals on one blockchain: a bank/chain serves many payments at
// once. Three independent weak-protocol payments run against a single
// simulated chain hosting one TM contract per deal; the middle deal's Alice
// loses patience and aborts while the others commit — isolation and global
// conservation hold.

#include <iostream>

#include "props/checkers.hpp"
#include "proto/weak/multi.hpp"

int main() {
  using namespace xcp;
  using namespace xcp::proto::weak;

  MultiWeakConfig config;
  config.seed = 31;
  config.tm = TmKind::kSmartContract;  // one chain, three contracts
  config.env.synchrony = proto::SynchronyKind::kPartiallySynchronous;
  config.env.gst = TimePoint::origin() + Duration::seconds(2);
  config.env.pre_gst_typical = Duration::millis(500);
  config.env.delta_max = Duration::millis(100);
  config.block_interval = Duration::millis(400);

  for (int d = 0; d < 3; ++d) {
    DealSetup setup;
    setup.spec = proto::DealSpec::uniform(/*deal_id=*/200 + d, /*n=*/2,
                                          /*base=*/1000 * (d + 1),
                                          /*commission=*/5);
    setup.patience = Duration::seconds(60);
    config.deals.push_back(std::move(setup));
  }
  // Deal 201's Alice gives up almost immediately.
  config.deals[1].patience_overrides.push_back({0, Duration::millis(50)});

  const auto records = run_weak_multi(config);

  std::int64_t grand_total = 0;
  for (const auto& record : records) {
    std::cout << "=== deal " << record.spec.deal_id << " ===\n"
              << record.summary() << "\n";
    const auto report =
        props::check_definition2(record, props::CheckOptions{});
    std::cout << "Definition 2: " << (report.all_hold() ? "all hold" : "VIOLATED")
              << "; outcome: " << (record.bob_paid() ? "committed" : "aborted")
              << "\n\n";
    for (const auto& p : record.participants) {
      grand_total += p.net_units(Currency::generic());
    }
  }
  std::cout << "global conservation across all deals: net "
            << grand_total << " (must be 0)\n";
  std::cout << "\nreading: the chain serializes every deal's evidence; each "
               "contract decides\nindependently, and per-deal certificate "
               "verification keeps a chi_c of one deal\nfrom releasing "
               "another deal's escrows.\n";
  return grand_total == 0 ? 0 : 1;
}
