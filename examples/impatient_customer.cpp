// Impatient customer (weak-liveness protocol, Thm 3): "each customer can, at
// any moment of their choice, lose patience and abort the transaction,
// without a risk of losing value."
//
// Alice starts a payment under partial synchrony, then loses patience after
// 300ms — long before the pre-GST network calms down. The transaction
// manager issues the abort certificate chi_a; every deposit is refunded; and
// certificate consistency guarantees no chi_c ever coexists.

#include <iostream>

#include "props/checkers.hpp"
#include "proto/weak/protocol.hpp"

int main() {
  using namespace xcp;
  using proto::weak::TmKind;

  proto::weak::WeakConfig config;
  config.seed = 4;
  config.spec = proto::DealSpec::uniform(/*deal_id=*/8, /*n=*/3,
                                         /*base=*/1000, /*commission=*/10);
  config.tm = TmKind::kTrustedParty;
  config.env.synchrony = proto::SynchronyKind::kPartiallySynchronous;
  config.env.gst = TimePoint::origin() + Duration::seconds(10);
  config.env.pre_gst_typical = Duration::seconds(3);
  config.env.delta_max = Duration::millis(100);
  config.patience = Duration::seconds(60);
  // Alice gives up after 300ms of (local) waiting.
  config.patience_overrides.push_back({0, Duration::millis(300)});

  const proto::RunRecord record = proto::weak::run_weak(config);
  std::cout << record.summary() << "\n";

  std::cout << "abort petitions: "
            << record.trace.count(props::EventKind::kAbortRequested)
            << ", TM decision: "
            << (record.trace.count_label(props::EventKind::kDecide, "abort")
                    ? "abort (chi_a)"
                    : "commit (chi_c)")
            << "\n\n";

  const auto report = props::check_definition2(record, props::CheckOptions{});
  std::cout << "Definition 2 requirements:\n" << report.str();

  std::cout << "\nreading: impatience is *allowed* behaviour here — contrast "
               "with the\ntime-bounded protocol, where giving up mid-flight "
               "would cost a connector its\nhop (see bench_thm2_impossibility)"
               ". The TM's certificate makes walking away\nsafe at any time; "
               "the price is that success now depends on everyone's\n"
               "patience (weak liveness), which Thm 2 shows is unavoidable "
               "under partial\nsynchrony.\n";
  return report.all_hold() ? 0 : 1;
}
