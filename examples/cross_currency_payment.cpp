// Cross-currency payment: the paper allows each hop's value to be "expressed
// in different currencies" (Sec. 2). Alice holds USD, Bob wants BTC; two
// connectors bridge USD -> EUR -> BTC, each taking its margin in kind.
//
// Shows: explicit per-hop amounts, per-currency net positions, and that the
// CS requirements hold per currency.

#include <iostream>

#include "props/checkers.hpp"
#include "proto/timebounded.hpp"

int main() {
  using namespace xcp;

  proto::TimeBoundedConfig config;
  config.seed = 7;
  // Hop values: Alice pays 1200 USD into e_0; e_0 pays Chloe_1 1200 USD;
  // Chloe_1 pays 1000 EUR into e_1; Chloe_2 pays 2 BTC into e_2 for Bob.
  config.spec = proto::DealSpec::explicit_hops(
      /*deal_id=*/42, {Amount(1200, Currency::usd()),
                       Amount(1000, Currency::eur()),
                       Amount(2, Currency::btc())});

  std::cout << "payment chain: alice --1200 USD--> chloe_1 --1000 EUR--> "
               "chloe_2 --2 BTC--> bob\n\n";

  const proto::RunRecord record = proto::run_time_bounded(config);
  std::cout << record.summary() << "\n";

  std::cout << "per-currency positions after the run:\n";
  for (const auto& p : record.participants) {
    if (p.is_escrow) continue;
    std::cout << "  " << p.role << ":";
    for (Currency c : {Currency::usd(), Currency::eur(), Currency::btc()}) {
      const auto net = p.net_units(c);
      if (net != 0) std::cout << " " << net << " " << c.code();
    }
    std::cout << "\n";
  }

  const auto report = props::check_definition1(record, props::CheckOptions{});
  std::cout << "\nDefinition 1:\n" << report.str();
  std::cout << "\nnote: each connector's 'commission' here is the spread it "
               "negotiated between\nits incoming and outgoing currencies — "
               "the protocol only guarantees she is\nnever out of pocket "
               "(CS3); choosing the spread is out of scope (Sec. 2).\n";
  return report.all_hold() ? 0 : 1;
}
