// Notary-committee transaction manager: the TM as "a collection of notaries
// appointed by the participants, of which less than one-third is assumed to
// be unreliable", running a DLS-style partially synchronous agreement.
//
// Runs a payment with a 7-notary committee of which 2 are Byzantine
// (1 silent, 1 equivocating) and shows the quorum certificate that commits
// the payment: 2f+1 = 5 notary signatures over the commit statement,
// embedding Bob's chi.

#include <iostream>

#include "exp/scenario.hpp"
#include "props/checkers.hpp"
#include "proto/weak/protocol.hpp"

int main() {
  using namespace xcp;
  using proto::weak::TmKind;

  proto::weak::WeakConfig config;
  config.seed = 16;
  config.spec = proto::DealSpec::uniform(/*deal_id=*/13, /*n=*/2,
                                         /*base=*/500, /*commission=*/5);
  config.tm = TmKind::kNotaryCommittee;
  config.notary_count = 7;
  config.byzantine_notaries = 2;
  config.notary_byz = consensus::NotaryBehaviour::kEquivocator;
  config.notary_base_round = Duration::millis(400);
  config.env.synchrony = proto::SynchronyKind::kPartiallySynchronous;
  config.env.gst = TimePoint::origin() + Duration::seconds(2);
  config.env.pre_gst_typical = Duration::millis(800);
  config.patience = Duration::seconds(60);

  std::cout << "committee: m = 7 notaries, f = 2 Byzantine (equivocators), "
               "quorum = 5\n\n";

  const proto::RunRecord record = proto::weak::run_weak(config);
  std::cout << record.summary() << "\n";

  std::cout << "notary decisions recorded: "
            << record.trace.count_label(props::EventKind::kDecide, "commit")
            << " commit, "
            << record.trace.count_label(props::EventKind::kDecide, "abort")
            << " abort\n";

  const auto report = props::check_definition2(record, props::CheckOptions{});
  std::cout << "\nDefinition 2 requirements:\n" << report.str();

  std::cout
      << "\nreading: the committee reaches agreement despite the "
         "equivocators because\nprevote/precommit quorums of 2f+1 must "
         "intersect in an honest notary;\ncertificate consistency (CC) is "
         "exactly consensus agreement, and the commit\ncertificate doubles "
         "as Alice's proof that Bob was paid (chi_c embeds chi).\n";

  // The same committee under the deterministic-delay synchrony preset:
  // every delivery takes exactly delta, so each round's notary replies
  // arrive at the coordinator same-instant and coalesce into one batched
  // delivery event — compare deliveries to simulator events.
  proto::weak::WeakConfig sync_config = config;
  sync_config.byzantine_notaries = 0;
  sync_config.env = exp::deterministic_env(Duration::millis(50));
  const proto::RunRecord sync_record = proto::weak::run_weak(sync_config);
  std::cout << "\ndeterministic-delay preset (delta = 50 ms, all honest): "
            << sync_record.stats.messages_delivered
            << " deliveries coalesced into "
            << sync_record.stats.events_executed
            << " simulator events; bob paid = "
            << (sync_record.bob_paid() ? "yes" : "no") << "\n";

  return report.all_hold() ? 0 : 1;
}
