// Byzantine connector: Chloe_1 takes Alice's money path hostage — she
// receives the certificate chi from her downstream escrow but never redeems
// it upstream (withhold-cert). The paper's safety requirements say nobody
// abiding loses money: the upstream escrow's timelock refunds Alice, and
// Chloe's sabotage costs only herself.
//
// Also runs the fake-certificate variant: a forged chi is rejected by every
// escrow, so all deposits are refunded.

#include <iostream>

#include "props/checkers.hpp"
#include "proto/timebounded.hpp"

int main() {
  using namespace xcp;

  auto base = [] {
    proto::TimeBoundedConfig config;
    config.seed = 99;
    config.spec = proto::DealSpec::uniform(/*deal_id=*/5, /*n=*/3,
                                           /*base=*/1000, /*commission=*/10);
    config.extra_horizon = Duration::seconds(5);
    return config;
  };

  {
    std::cout << "=== scenario 1: chloe_1 withholds chi ===\n";
    auto config = base();
    config.byzantine = {proto::ByzantineAssignment::customer(
        1, proto::ByzStrategy::kWithholdCert)};
    const auto record = proto::run_time_bounded(config);
    std::cout << record.summary() << "\n";

    const auto es = props::check_escrow_security(record);
    const auto cs1 = props::check_cs1(record, false);
    const auto cs3 = props::check_cs3(record);
    std::cout << "  " << es.str() << "\n  " << cs1.str() << "\n  "
              << cs3.str() << "\n";
    std::cout << "\nreading: e_1 paid chloe_2's chain on time (chi reached it"
                 " before its\ndeadline), but chloe_1 never redeemed chi at "
                 "e_0, so e_0 timed out and\nrefunded alice. Chloe_1's own "
                 "deposit went downstream — she alone lost\n(her choice); "
                 "every abiding participant is whole.\n\n";
  }

  {
    std::cout << "=== scenario 2: bob sends a forged chi ===\n";
    auto config = base();
    config.byzantine = {proto::ByzantineAssignment::customer(
        3, proto::ByzStrategy::kFakeCert)};
    const auto record = proto::run_time_bounded(config);
    std::cout << record.summary() << "\n";
    std::cout << "escrow deals:\n";
    for (const auto& d : record.escrow_deals) {
      std::cout << "  deal " << d.id << " at "
                << record.parts.role_name(d.escrow) << ": "
                << ledger::escrow_state_name(d.state) << "\n";
    }
    std::cout << "\nreading: the junk signature verifies nowhere; every "
                 "escrow timed out and\nrefunded its depositor. Authentication"
                 " is what makes withholding the *only*\neffective deviation."
                 "\n";
  }
  return 0;
}
