#!/usr/bin/env python3
"""Regression tests for bench_delta.py's --fail-threshold gate.

Exercises the baseline edge cases that used to misbehave: a benchmark
present only in the current run must report as "new" (never gate), and a
zero/near-zero baseline must neither divide-by-zero nor synthesize a
spurious hard failure. Run directly or via ctest; exits nonzero on the
first failing case.
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_delta.py")


def bench_json(path, entries):
    data = {"benchmarks": [
        {"name": name, "real_time": t, "time_unit": unit}
        for (name, t, unit) in entries
    ]}
    with open(path, "w", encoding="utf-8") as f:
        json.dump(data, f)


def run(prev, curr, *extra):
    proc = subprocess.run(
        [sys.executable, SCRIPT, prev, curr, *extra],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout


def main():
    failures = []

    def check(label, cond, detail=""):
        if not cond:
            failures.append(f"{label}: {detail}")

    with tempfile.TemporaryDirectory() as tmp:
        prev = os.path.join(tmp, "prev.json")
        curr = os.path.join(tmp, "curr.json")

        # 1. A gated benchmark that regressed beyond the threshold fails
        #    (the gate itself works).
        bench_json(prev, [("BM_Gated/1", 100.0, "ns")])
        bench_json(curr, [("BM_Gated/1", 200.0, "ns")])
        rc, out = run(prev, curr, "--fail-threshold", "40")
        check("regression gates", rc == 1, f"rc={rc}\n{out}")

        # 2. A benchmark new in the current run reports as "new" and does
        #    not gate, even when the gate filter matches it.
        bench_json(prev, [("BM_Old/1", 100.0, "ns")])
        bench_json(curr, [("BM_Old/1", 101.0, "ns"),
                          ("BM_Gated/1", 5000.0, "ns")])
        rc, out = run(prev, curr, "--fail-threshold", "40",
                      "--fail-filter", "BM_Gated")
        check("new bench exits 0", rc == 0, f"rc={rc}\n{out}")
        check("new bench reports as new", "_new_" in out, out)

        # 3. A zero baseline: no divide-by-zero crash, no gate, and the row
        #    is reported rather than silently dropped.
        bench_json(prev, [("BM_Gated/1", 0.0, "ns")])
        bench_json(curr, [("BM_Gated/1", 123.0, "ns")])
        rc, out = run(prev, curr, "--fail-threshold", "40")
        check("zero baseline exits 0", rc == 0, f"rc={rc}\n{out}")
        check("zero baseline row reported", "_no baseline_" in out, out)

        # 4. A near-zero baseline (broken artifact, not a measurement):
        #    would be a +1e8% "regression" — must not gate.
        bench_json(prev, [("BM_Gated/1", 1e-7, "ns")])
        bench_json(curr, [("BM_Gated/1", 123.0, "ns")])
        rc, out = run(prev, curr, "--fail-threshold", "40")
        check("near-zero baseline exits 0", rc == 0, f"rc={rc}\n{out}")
        check("near-zero baseline not gated", "❌" not in out, out)

        # 5. A legitimately fast sub-ns baseline still compares and still
        #    gates (the floor must not swallow real measurements).
        bench_json(prev, [("BM_Gated/1", 0.5, "ns")])
        bench_json(curr, [("BM_Gated/1", 1.5, "ns")])
        rc, out = run(prev, curr, "--fail-threshold", "40")
        check("fast baseline still gates", rc == 1, f"rc={rc}\n{out}")

        # 5b. A unit change between artifacts must compare in a common
        #     unit: 900 us -> 1.1 ms is a real +22% regression (gates),
        #     not a -99.9% improvement on raw values.
        bench_json(prev, [("BM_Gated/1", 900.0, "us")])
        bench_json(curr, [("BM_Gated/1", 1.1, "ms")])
        rc, out = run(prev, curr, "--fail-threshold", "10")
        check("unit change still gates", rc == 1, f"rc={rc}\n{out}")
        check("unit change delta sane", "+22.2%" in out, out)

        # 5c. ...and the reverse direction must not synthesize a spurious
        #     gated failure (1.1 ms -> 900 us is an improvement).
        bench_json(prev, [("BM_Gated/1", 1.1, "ms")])
        bench_json(curr, [("BM_Gated/1", 900.0, "us")])
        rc, out = run(prev, curr, "--fail-threshold", "10")
        check("reverse unit change exits 0", rc == 0, f"rc={rc}\n{out}")

        # 6. Missing baseline file degrades to report-only success.
        rc, out = run(os.path.join(tmp, "nope.json"), curr,
                      "--fail-threshold", "40")
        check("missing baseline exits 0", rc == 0, f"rc={rc}\n{out}")

        # 7. An improvement on a gated bench does not fail.
        bench_json(prev, [("BM_Gated/1", 200.0, "ns")])
        bench_json(curr, [("BM_Gated/1", 100.0, "ns")])
        rc, out = run(prev, curr, "--fail-threshold", "40")
        check("improvement exits 0", rc == 0, f"rc={rc}\n{out}")

    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print("bench_delta gate tests: all cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
