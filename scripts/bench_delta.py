#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and emit a markdown delta table.

Usage: bench_delta.py PREV.json CURR.json [--threshold PCT]

Report-only by design: always exits 0 (fail-soft — CI annotates the job
summary with the deltas but never fails the build on a perf swing, because
shared runners are far too noisy for a hard gate). Benchmarks present on
only one side are listed as added/removed. Aggregate entries (mean/median/
stddev rows from --benchmark_repetitions) are skipped; the smoke run uses
one repetition.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_delta: cannot read {path}: {e}", file=sys.stderr)
        return None
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        t = b.get("real_time")
        if name is None or t is None:
            continue
        out[name] = (float(t), b.get("time_unit", "ns"))
    return out


def fmt_time(value, unit):
    return f"{value:,.0f} {unit}"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("prev")
    ap.add_argument("curr")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="flag deltas beyond this percentage")
    args = ap.parse_args()

    prev = load(args.prev)
    curr = load(args.curr)
    if prev is None or curr is None or not curr:
        print("_bench delta: previous or current results unavailable; "
              "skipping comparison._")
        return 0

    print("### Benchmark delta vs previous artifact\n")
    print(f"_report-only; |Δ| > {args.threshold:.0f}% flagged; "
          "shared-runner numbers are noisy_\n")
    print("| benchmark | previous | current | Δ |")
    print("|---|---:|---:|---:|")
    for name in sorted(curr):
        t_curr, unit = curr[name]
        if name not in prev:
            print(f"| `{name}` | _new_ | {fmt_time(t_curr, unit)} | — |")
            continue
        t_prev, _ = prev[name]
        if t_prev <= 0:
            continue
        delta = 100.0 * (t_curr - t_prev) / t_prev
        flag = ""
        if delta >= args.threshold:
            flag = " ⚠️ slower"
        elif delta <= -args.threshold:
            flag = " 🟢 faster"
        print(f"| `{name}` | {fmt_time(t_prev, unit)} | "
              f"{fmt_time(t_curr, unit)} | {delta:+.1f}%{flag} |")
    removed = sorted(set(prev) - set(curr))
    for name in removed:
        t_prev, unit = prev[name]
        print(f"| `{name}` | {fmt_time(t_prev, unit)} | _removed_ | — |")
    return 0


if __name__ == "__main__":
    sys.exit(main())
