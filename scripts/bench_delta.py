#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and emit a markdown delta table.

Usage: bench_delta.py PREV.json CURR.json [--threshold PCT]
                      [--fail-threshold PCT] [--fail-filter REGEX]

Report-only by default: exits 0 regardless of deltas (fail-soft — CI
annotates the job summary but never fails the build on a perf swing,
because shared runners are far too noisy for a blanket hard gate).

--fail-threshold PCT opts specific benchmarks into a hard gate: any
benchmark whose name matches --fail-filter (default: all benchmarks) and
regressed by more than PCT percent makes the script exit 1. The intended
use is gating only the benches with known-stable cost profiles (the
timer-reset and trace-pipeline families) while everything else stays
report-only. Missing/unreadable inputs always degrade to "no previous
data" with exit 0, so the first CI run of a branch never trips the gate.

Benchmarks present on only one side are listed as added/removed; new
benchmarks and benchmarks whose baseline time is zero/near-zero (a broken
previous artifact) report as "new"/"no baseline" and are never gated.
Aggregate
entries (mean/median/stddev rows from --benchmark_repetitions) are
skipped; the smoke run uses one repetition.
"""

import argparse
import json
import re
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_delta: cannot read {path}: {e}", file=sys.stderr)
        return None
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        t = b.get("real_time")
        if name is None or t is None:
            continue
        out[name] = (float(t), b.get("time_unit", "ns"))
    return out


def fmt_time(value, unit):
    return f"{value:,.0f} {unit}"


# Unit multipliers to nanoseconds, for the baseline sanity floor.
_NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# A baseline below this (in ns) cannot be a real measurement — google
# benchmark reports sub-nanosecond times only for corrupt or placeholder
# entries. Such rows report as "no baseline" and never gate: dividing by
# them would either crash (zero) or synthesize a million-percent
# "regression" that hard-fails the build spuriously.
_MIN_BASELINE_NS = 1e-3


def to_ns(value, unit):
    return value * _NS_PER_UNIT.get(unit, 1.0)


def usable_baseline(value, unit):
    return to_ns(value, unit) > _MIN_BASELINE_NS


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("prev")
    ap.add_argument("curr")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="flag deltas beyond this percentage (report only)")
    ap.add_argument("--fail-threshold", type=float, default=None,
                    help="exit 1 when a gated benchmark regresses beyond "
                         "this percentage")
    ap.add_argument("--fail-filter", default=".*",
                    help="regex selecting which benchmarks the "
                         "--fail-threshold gate applies to")
    args = ap.parse_args()

    prev = load(args.prev)
    curr = load(args.curr)
    if prev is None or curr is None or not curr:
        print("_bench delta: previous or current results unavailable; "
              "skipping comparison._")
        return 0

    gate = re.compile(args.fail_filter) if args.fail_threshold is not None \
        else None
    gated_failures = []

    print("### Benchmark delta vs previous artifact\n")
    print(f"_report-only; |Δ| > {args.threshold:.0f}% flagged; "
          "shared-runner numbers are noisy_\n")
    if gate is not None:
        print(f"_hard gate: > +{args.fail_threshold:.0f}% on benchmarks "
              f"matching `{args.fail_filter}` fails the job_\n")
    print("| benchmark | previous | current | Δ |")
    print("|---|---:|---:|---:|")
    for name in sorted(curr):
        t_curr, unit = curr[name]
        if name not in prev:
            # A benchmark added since the baseline artifact has nothing to
            # regress against: report it as new, never gate it (the next
            # run's artifact becomes its baseline).
            print(f"| `{name}` | _new_ | {fmt_time(t_curr, unit)} | — |")
            continue
        t_prev, prev_unit = prev[name]
        if not usable_baseline(t_prev, prev_unit):
            # Zero/near-zero baselines are artifacts of a broken previous
            # run, not data: report the row (the old code dropped it
            # silently) and keep it out of the gate.
            print(f"| `{name}` | _no baseline_ | {fmt_time(t_curr, unit)} "
                  "| — |")
            continue
        # Compare in a common unit: a benchmark whose time_unit changed
        # between artifacts (e.g. us -> ms) would otherwise produce a
        # nonsense delta that either masks a real regression or trips the
        # gate spuriously.
        delta = 100.0 * (to_ns(t_curr, unit) - to_ns(t_prev, prev_unit)) \
            / to_ns(t_prev, prev_unit)
        flag = ""
        if delta >= args.threshold:
            flag = " ⚠️ slower"
        elif delta <= -args.threshold:
            flag = " 🟢 faster"
        if gate is not None and gate.search(name) \
                and delta > args.fail_threshold:
            flag += " ❌ gated"
            gated_failures.append((name, delta))
        print(f"| `{name}` | {fmt_time(t_prev, prev_unit)} | "
              f"{fmt_time(t_curr, unit)} | {delta:+.1f}%{flag} |")
    removed = sorted(set(prev) - set(curr))
    for name in removed:
        t_prev, unit = prev[name]
        print(f"| `{name}` | {fmt_time(t_prev, unit)} | _removed_ | — |")

    if gated_failures:
        print(f"\n**{len(gated_failures)} gated benchmark(s) regressed "
              f"beyond +{args.fail_threshold:.0f}%:**")
        for name, delta in gated_failures:
            print(f"- `{name}`: {delta:+.1f}%")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
