// Cross-process sweep sharding tests: the versioned accumulator wire format
// (round-trip, fuzz, corruption rejection) and the differential proof that
// distributed_sweep(K shards) == run_matrix_cell(single process)
// byte-for-byte across the 6x4 theorem matrix for K in {1, 2, 3, 7}.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "exp/dispatch.hpp"
#include "exp/runner.hpp"
#include "exp/shard.hpp"
#include "support/rng.hpp"

namespace xcp::exp {
namespace {

const std::vector<ProtocolKind> kAllProtocols{
    ProtocolKind::kUniversalNaive,    ProtocolKind::kTimeBounded,
    ProtocolKind::kInterledgerAtomic, ProtocolKind::kWeakTrusted,
    ProtocolKind::kWeakContract,      ProtocolKind::kWeakCommittee};
const std::vector<Regime> kAllRegimes{
    Regime::kSynchronyConforming, Regime::kSynchronyHighDrift,
    Regime::kPartialSynchrony, Regime::kPartialSynchronyAdversarial};

void expect_accums_identical(const CellAccum& a, const CellAccum& b) {
  EXPECT_EQ(a.safety_violations, b.safety_violations);
  EXPECT_EQ(a.termination_failures, b.termination_failures);
  EXPECT_EQ(a.liveness_failures, b.liveness_failures);
  EXPECT_EQ(a.early_stops, b.early_stops);
  EXPECT_EQ(a.decided_at_total.count(), b.decided_at_total.count());
  EXPECT_EQ(a.events_total, b.events_total);
  ASSERT_EQ(a.examples.size(), b.examples.size());
  for (std::size_t i = 0; i < a.examples.size(); ++i) {
    EXPECT_EQ(a.examples[i].seed, b.examples[i].seed) << i;
    EXPECT_EQ(a.examples[i].ordinal, b.examples[i].ordinal) << i;
    EXPECT_EQ(a.examples[i].text, b.examples[i].text) << i;
  }
}

void expect_cells_identical(const MatrixCell& a, const MatrixCell& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.safety_violations, b.safety_violations);
  EXPECT_EQ(a.termination_failures, b.termination_failures);
  EXPECT_EQ(a.liveness_failures, b.liveness_failures);
  EXPECT_EQ(a.early_stops, b.early_stops);
  EXPECT_EQ(a.decided_at_total.count(), b.decided_at_total.count());
  EXPECT_EQ(a.events_total, b.events_total);
  ASSERT_EQ(a.example_violations.size(), b.example_violations.size());
  for (std::size_t i = 0; i < a.example_violations.size(); ++i) {
    EXPECT_EQ(a.example_violations[i], b.example_violations[i]) << i;
  }
}

/// A randomized accumulator: arbitrary counters (full 64-bit range),
/// negative decided-at sums included, 0..kMaxExamples examples — strictly
/// (seed, ordinal)-increasing, like every accumulator a real fold or merge
/// produces (the parser enforces that invariant) — with texts that cover
/// empty strings, embedded NULs and high bytes.
CellAccum random_accum(Rng& rng) {
  CellAccum acc;
  acc.safety_violations = rng.next_u64();
  acc.termination_failures = rng.next_u64();
  acc.liveness_failures = rng.next_u64();
  acc.early_stops = rng.next_u64();
  acc.decided_at_total = Duration::micros(
      rng.next_int(std::numeric_limits<std::int32_t>::min(),
                   std::numeric_limits<std::int32_t>::max()) *
      (rng.next_bool(0.5) ? 1 : -1));
  acc.events_total = rng.next_u64();
  const std::size_t n_examples = rng.next_below(CellAccum::kMaxExamples + 1);
  std::uint64_t seed = rng.next_below(1000);
  std::uint32_t ordinal = static_cast<std::uint32_t>(rng.next_below(3));
  for (std::size_t i = 0; i < n_examples; ++i) {
    if (i > 0) {
      if (rng.next_bool(0.3)) {
        ordinal += 1 + static_cast<std::uint32_t>(rng.next_below(2));
      } else {
        seed += 1 + rng.next_below(9);
        ordinal = static_cast<std::uint32_t>(rng.next_below(3));
      }
    }
    CellAccum::Example ex;
    ex.seed = seed;
    ex.ordinal = ordinal;
    const std::size_t len = rng.next_below(40);
    for (std::size_t c = 0; c < len; ++c) {
      ex.text.push_back(static_cast<char>(rng.next_below(256)));
    }
    acc.examples.push_back(std::move(ex));
  }
  return acc;
}

// ------------------------------------------------------------- wire format

TEST(ShardWire, DefaultAccumRoundTripsAndMergesAsNoop) {
  const CellAccum empty;
  const std::vector<std::uint8_t> blob = serialize_cell_accum(empty);
  const CellAccum parsed = parse_cell_accum(blob);
  expect_accums_identical(parsed, empty);

  // Merging a parsed empty accumulator must be a no-op (empty shards and
  // idle worker slots go through exactly this path).
  Rng rng(7);
  CellAccum populated = random_accum(rng);
  const std::vector<std::uint8_t> before = serialize_cell_accum(populated);
  populated.merge(parse_cell_accum(blob));
  EXPECT_EQ(serialize_cell_accum(populated), before);
}

TEST(ShardWire, PopulatedAccumRoundTripsBitExactly) {
  CellAccum acc;
  acc.safety_violations = 3;
  acc.termination_failures = 1;
  acc.liveness_failures = 0xffffffffffffffffull;
  acc.early_stops = 42;
  acc.decided_at_total = Duration::micros(-123456789);
  acc.events_total = 1ull << 60;
  acc.examples.push_back({5, 0, std::string("plain text")});
  acc.examples.push_back({5, 1, std::string("embedded\0nul", 12)});
  acc.examples.push_back({9, 0, std::string("\xff\xfe high bytes \x80")});
  acc.examples.push_back({9, 2, std::string()});  // empty text

  const std::vector<std::uint8_t> blob = serialize_cell_accum(acc);
  const CellAccum parsed = parse_cell_accum(blob);
  expect_accums_identical(parsed, acc);
  // Serialization is canonical: re-serializing the parse is byte-identical.
  EXPECT_EQ(serialize_cell_accum(parsed), blob);
}

TEST(ShardWire, FuzzRoundTripSerializeParseBitExact) {
  Rng rng(20260730);
  for (int i = 0; i < 500; ++i) {
    const CellAccum acc = random_accum(rng);
    const std::vector<std::uint8_t> blob = serialize_cell_accum(acc);
    const CellAccum parsed = parse_cell_accum(blob);
    expect_accums_identical(parsed, acc);
    EXPECT_EQ(serialize_cell_accum(parsed), blob) << "iteration " << i;
  }
}

TEST(ShardWire, FuzzMergeThroughWireMatchesInProcessMerge) {
  // serialize -> parse -> merge must equal the in-process merge for any
  // accumulator contents and any shard count.
  Rng rng(99);
  for (int round = 0; round < 100; ++round) {
    const std::size_t k = 1 + rng.next_below(6);
    std::vector<CellAccum> parts;
    for (std::size_t i = 0; i < k; ++i) parts.push_back(random_accum(rng));

    CellAccum direct;
    for (const CellAccum& p : parts) {
      CellAccum copy = p;  // merge consumes
      direct.merge(std::move(copy));
    }
    CellAccum wired;
    for (const CellAccum& p : parts) {
      wired.merge(parse_cell_accum(serialize_cell_accum(p)));
    }
    expect_accums_identical(wired, direct);
  }
}

TEST(ShardWire, TruncationsAreRejected) {
  Rng rng(3);
  const CellAccum acc = random_accum(rng);
  const std::vector<std::uint8_t> blob = serialize_cell_accum(acc);
  // Every proper prefix must be a clean parse error — header cut short,
  // frame header cut short, payload cut short.
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_THROW(parse_cell_accum(blob.data(), len), WireError) << len;
  }
}

TEST(ShardWire, CorruptionsAreRejectedOrParseable) {
  // Single-byte corruption anywhere must never be UB: it either still
  // parses (a flipped counter bit) or throws WireError. Run the parse on
  // every position to shake out bounds bugs; ASan/UBSan builds turn any
  // miss into a crash.
  Rng rng(4);
  CellAccum acc = random_accum(rng);
  if (acc.examples.empty()) {
    acc.examples.push_back({1, 0, "corruption target"});
  }
  const std::vector<std::uint8_t> blob = serialize_cell_accum(acc);
  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0xff}}) {
      std::vector<std::uint8_t> bad = blob;
      bad[pos] ^= flip;
      try {
        (void)parse_cell_accum(bad);
      } catch (const WireError&) {
        // expected for structural damage
      }
    }
  }
}

TEST(ShardWire, VersionAndMagicAreEnforced) {
  const std::vector<std::uint8_t> blob = serialize_cell_accum(CellAccum{});

  std::vector<std::uint8_t> bad_magic = blob;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(parse_cell_accum(bad_magic), WireError);

  // Version bumped beyond the reader: deterministic rejection, not a
  // misparse (a v2 writer may have changed any field's meaning).
  std::vector<std::uint8_t> v_next = blob;
  v_next[4] = static_cast<std::uint8_t>(kWireVersion + 1);
  EXPECT_THROW(parse_cell_accum(v_next), WireError);

  // Version below the supported floor (0 is never valid).
  std::vector<std::uint8_t> v_zero = blob;
  v_zero[4] = 0;
  v_zero[5] = 0;
  EXPECT_THROW(parse_cell_accum(v_zero), WireError);

  // Reserved header bytes must be zero.
  std::vector<std::uint8_t> reserved = blob;
  reserved[6] = 1;
  EXPECT_THROW(parse_cell_accum(reserved), WireError);
}

TEST(ShardWire, StructuralDamageIsRejected) {
  const std::vector<std::uint8_t> blob = serialize_cell_accum(CellAccum{});

  // Trailing garbage after the last frame.
  std::vector<std::uint8_t> trailing = blob;
  trailing.push_back(0x7f);
  EXPECT_THROW(parse_cell_accum(trailing), WireError);

  // An unknown field tag (the meta tag is unknown to the bare-accum
  // parser; a wholly unassigned tag behaves the same).
  const std::vector<std::uint8_t> with_meta =
      serialize_shard_blob(ShardMeta{}, CellAccum{});
  EXPECT_THROW(parse_cell_accum(with_meta), WireError);

  // A duplicated field: append a copy of the first frame (tag 1, u64).
  std::vector<std::uint8_t> dup = blob;
  dup.insert(dup.end(), blob.begin() + 8, blob.begin() + 8 + 2 + 4 + 8);
  EXPECT_THROW(parse_cell_accum(dup), WireError);

  // A missing required field: drop the first frame entirely.
  std::vector<std::uint8_t> missing(blob.begin(), blob.begin() + 8);
  missing.insert(missing.end(), blob.begin() + 8 + 2 + 4 + 8, blob.end());
  EXPECT_THROW(parse_cell_accum(missing), WireError);
}

TEST(ShardWire, InvalidExampleListsAreRejected) {
  // The serializer trusts in-process accumulators, but the parser sits at
  // a trust boundary: merge()'s two-pointer example merge relies on
  // sorted, capped lists, so blobs violating the invariant must be
  // rejected, not silently mis-merged downstream.
  CellAccum oversize;
  for (std::uint64_t i = 0; i < CellAccum::kMaxExamples + 1; ++i) {
    oversize.examples.push_back({i, 0, "x"});
  }
  EXPECT_THROW(parse_cell_accum(serialize_cell_accum(oversize)), WireError);

  CellAccum unsorted;
  unsorted.examples.push_back({9, 0, "a"});
  unsorted.examples.push_back({3, 0, "b"});
  EXPECT_THROW(parse_cell_accum(serialize_cell_accum(unsorted)), WireError);

  CellAccum duplicate;
  duplicate.examples.push_back({3, 1, "a"});
  duplicate.examples.push_back({3, 1, "b"});
  EXPECT_THROW(parse_cell_accum(serialize_cell_accum(duplicate)), WireError);

  // Same seed with increasing ordinals is legal (one seed, two findings).
  CellAccum legal;
  legal.examples.push_back({3, 0, "a"});
  legal.examples.push_back({3, 1, "b"});
  expect_accums_identical(parse_cell_accum(serialize_cell_accum(legal)),
                          legal);
}

TEST(ShardWire, ShardBlobCarriesMeta) {
  ShardMeta meta;
  meta.protocol = ProtocolKind::kWeakCommittee;
  meta.regime = Regime::kPartialSynchronyAdversarial;
  meta.n = 3;
  meta.first_seed = 17;
  meta.seed_count = 5;
  meta.online = true;
  meta.early_stop = false;
  Rng rng(11);
  const CellAccum acc = random_accum(rng);

  const std::vector<std::uint8_t> blob = serialize_shard_blob(meta, acc);
  const ShardBlob parsed = parse_shard_blob(blob);
  EXPECT_TRUE(parsed.meta == meta);
  expect_accums_identical(parsed.accum, acc);

  // The envelope parser requires the meta frame.
  EXPECT_THROW(parse_shard_blob(serialize_cell_accum(acc)), WireError);
}

TEST(ShardWire, TokensRoundTrip) {
  for (const ProtocolKind k : kAllProtocols) {
    ProtocolKind back{};
    EXPECT_TRUE(parse_protocol_token(protocol_token(k), back));
    EXPECT_EQ(back, k);
  }
  for (const Regime r : kAllRegimes) {
    Regime back{};
    EXPECT_TRUE(parse_regime_token(regime_token(r), back));
    EXPECT_EQ(back, r);
  }
  ProtocolKind p{};
  Regime r{};
  EXPECT_FALSE(parse_protocol_token("no-such-protocol", p));
  EXPECT_FALSE(parse_regime_token("no-such-regime", r));
}

// ---------------------------------------------------------- shard planning

TEST(ShardPlan, RaggedPartitionsAreContiguousAndComplete) {
  for (const unsigned shards : {1u, 2u, 3u, 7u}) {
    for (const std::size_t seeds : {0u, 1u, 5u, 7u, 20u}) {
      const auto plan = plan_shards(100, seeds, shards);
      ASSERT_EQ(plan.size(), shards);
      std::uint64_t next = 100;
      std::uint64_t total = 0;
      for (const ShardRange& range : plan) {
        EXPECT_EQ(range.first_seed, next);
        next += range.count;
        total += range.count;
        // Balanced to within one seed.
        EXPECT_LE(range.count, seeds / shards + 1);
      }
      EXPECT_EQ(total, seeds);
    }
  }
}

TEST(ShardPlan, ZeroShardsIsRejected) {
  EXPECT_THROW(plan_shards(1, 10, 0), std::logic_error);
  EXPECT_THROW(plan_shards(1, 0, 0), std::logic_error);
}

TEST(ShardPlan, MoreShardsThanSeedsYieldsEmptyTrailingRanges) {
  const auto plan = plan_shards(7, 3, 9);
  ASSERT_EQ(plan.size(), 9u);
  // The first three shards get one seed each, the rest are empty.
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].count, i < 3 ? 1u : 0u) << i;
  }
  EXPECT_EQ(plan[0].first_seed, 7u);
  EXPECT_EQ(plan[1].first_seed, 8u);
  EXPECT_EQ(plan[2].first_seed, 9u);
  // Empty ranges still carry a well-defined (degenerate) start.
  for (std::size_t i = 3; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].first_seed, 10u) << i;
  }
}

TEST(ShardPlan, ZeroSeedRangeYieldsAllEmptyShards) {
  const auto plan = plan_shards(42, 0, 5);
  ASSERT_EQ(plan.size(), 5u);
  for (const ShardRange& range : plan) {
    EXPECT_EQ(range.count, 0u);
    EXPECT_EQ(range.first_seed, 42u);
  }
}

TEST(ShardWire, ErrorsCarryByteOffsetAndFrameContext) {
  // Same diagnostic shape as net::WireError: what() names the byte offset
  // (and the frame being decoded where there is one), and offset() returns
  // it, so a dispatcher log line localizes the damage without a hexdump.
  Rng rng(11);
  CellAccum acc = random_accum(rng);
  if (acc.examples.empty()) acc.examples.push_back({1, 0, "ctx"});
  const std::vector<std::uint8_t> blob = serialize_cell_accum(acc);

  // Truncation mid-payload: offset points past the header.
  try {
    parse_cell_accum(blob.data(), blob.size() - 1);
    FAIL() << "truncation not rejected";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("at offset"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(e.offset())), std::string::npos)
        << what << " vs " << e.offset();
    EXPECT_GT(e.offset(), 8u);
  }

  // A failure inside a frame names the frame's tag, and the offset stays
  // absolute (blob-relative), not frame-relative.
  CellAccum unsorted;
  unsorted.examples.push_back({5, 0, "b"});
  unsorted.examples.push_back({4, 0, "a"});
  try {
    parse_cell_accum(serialize_cell_accum(unsorted));
    FAIL() << "unsorted example list not rejected";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("field tag"), std::string::npos) << what;
    EXPECT_NE(what.find("at offset"), std::string::npos) << what;
    EXPECT_GT(e.offset(), 8u);
  }

  // An unknown tag: the message names the offending tag and the offset of
  // the frame that carried it.
  std::vector<std::uint8_t> unknown = blob;
  unknown[8] = 0x3f;  // first frame's tag byte
  try {
    parse_cell_accum(unknown);
    FAIL() << "unknown tag not rejected";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown field tag 63"), std::string::npos) << what;
    EXPECT_NE(what.find("offset 8"), std::string::npos) << what;
    EXPECT_EQ(e.offset(), 8u);
  }
}

TEST(ShardPlan, MinSeedsPerShardConcentratesWork) {
  // 10 seeds over 8 shards with a floor of 3: only 3 shards can hold >= 3
  // seeds, so the plan concentrates on the first three and leaves the rest
  // empty — still contiguous, still summing exactly.
  const auto plan = plan_shards(100, 10, 8, 3);
  ASSERT_EQ(plan.size(), 8u);
  EXPECT_EQ(plan[0].count, 4u);  // 10 = 4 + 3 + 3
  EXPECT_EQ(plan[1].count, 3u);
  EXPECT_EQ(plan[2].count, 3u);
  std::uint64_t next = 100;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].first_seed, next) << i;
    if (i >= 3) {
      EXPECT_EQ(plan[i].count, 0u) << i;
    }
    next += plan[i].count;
    total += plan[i].count;
  }
  EXPECT_EQ(total, 10u);

  // Fewer seeds than the floor: everything lands on shard 0 (the heuristic
  // never drops work, and never returns zero non-empty shards).
  const auto tiny = plan_shards(5, 2, 4, 100);
  EXPECT_EQ(tiny[0].count, 2u);
  for (std::size_t i = 1; i < tiny.size(); ++i) EXPECT_EQ(tiny[i].count, 0u);

  // Zero seeds stays all-empty regardless of the floor.
  for (const ShardRange& r : plan_shards(9, 0, 4, 7)) {
    EXPECT_EQ(r.count, 0u);
  }

  // A floor the partition already satisfies changes nothing: byte-identical
  // plan to the default.
  const auto def = plan_shards(1, 40, 4);
  const auto floored = plan_shards(1, 40, 4, 10);
  for (std::size_t i = 0; i < def.size(); ++i) {
    EXPECT_EQ(def[i].first_seed, floored[i].first_seed) << i;
    EXPECT_EQ(def[i].count, floored[i].count) << i;
  }
}

TEST(ShardPlan, MinSeedsZeroIsIdenticalToHistoricalPartition) {
  // The knob's default must preserve the pre-knob partition exactly, for
  // every shape the fuzz loop throws at it.
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t first = rng.next_u64() >> 16;
    const std::size_t seeds = static_cast<std::size_t>(rng.next_below(5000));
    const unsigned shards = 1 + static_cast<unsigned>(rng.next_below(64));
    const auto a = plan_shards(first, seeds, shards);
    const auto b = plan_shards(first, seeds, shards, 0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].first_seed, b[k].first_seed);
      EXPECT_EQ(a[k].count, b[k].count);
    }
  }
}

TEST(ShardPlan, MinSeedsFuzzInvariants) {
  // Under any (first, seeds, shards, min) shape: sizes stay `shards`,
  // ranges stay contiguous and sum exactly, and every non-empty range
  // meets the floor whenever the floor is satisfiable at all (i.e. unless
  // a single shard holds the whole remainder).
  Rng rng(78);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t first = rng.next_u64() >> 16;
    const std::size_t seeds = static_cast<std::size_t>(rng.next_below(5000));
    const unsigned shards = 1 + static_cast<unsigned>(rng.next_below(64));
    const std::size_t min = static_cast<std::size_t>(rng.next_below(200));
    const auto plan = plan_shards(first, seeds, shards, min);
    ASSERT_EQ(plan.size(), shards);
    std::uint64_t next = first;
    std::uint64_t total = 0;
    std::size_t nonempty = 0;
    for (const ShardRange& r : plan) {
      EXPECT_EQ(r.first_seed, next) << "iteration " << i;
      next += r.count;
      total += r.count;
      if (r.count > 0) ++nonempty;
    }
    EXPECT_EQ(total, seeds) << "iteration " << i;
    if (min > 0 && seeds > 0) {
      for (const ShardRange& r : plan) {
        if (r.count == 0) continue;
        if (nonempty > 1) {
          EXPECT_GE(r.count, min) << "iteration " << i;
        }
      }
    }
  }
}

TEST(ShardPlan, FuzzRaggedPartitionsAlwaysSumExactly) {
  Rng rng(20260807);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t first = rng.next_u64() >> 16;  // headroom, no wrap
    const std::size_t seeds = static_cast<std::size_t>(rng.next_below(5000));
    const unsigned shards = 1 + static_cast<unsigned>(rng.next_below(64));
    const auto plan = plan_shards(first, seeds, shards);
    ASSERT_EQ(plan.size(), shards);
    std::uint64_t next = first;
    std::uint64_t total = 0;
    for (const ShardRange& range : plan) {
      EXPECT_EQ(range.first_seed, next) << "iteration " << i;
      next += range.count;
      total += range.count;
      EXPECT_LE(range.count, seeds / shards + 1);
    }
    EXPECT_EQ(total, seeds) << "iteration " << i;
  }
}

// ------------------------------------------------- the differential proof

/// distributed_sweep (in-process shards, every accumulator still shipped
/// through serialize -> parse -> merge) vs run_matrix_cell, every cell of
/// the 6x4 theorem matrix, K in {1, 2, 3, 7}. seeds = 5 makes every K > 1
/// partition ragged and K = 7 include empty shards.
TEST(DistributedSweep, MatchesSingleProcessAcrossTheoremMatrix) {
  constexpr std::size_t kSeeds = 5;
  for (const ProtocolKind p : kAllProtocols) {
    for (const Regime r : kAllRegimes) {
      const MatrixCell single = run_matrix_cell(p, r, 2, kSeeds);
      for (const unsigned shards : {1u, 2u, 3u, 7u}) {
        const MatrixCell sharded =
            distributed_sweep(p, r, 2, kSeeds, shards);
        SCOPED_TRACE(std::string(protocol_kind_name(p)) + " / " +
                     regime_name(r) + " / K=" + std::to_string(shards));
        expect_cells_identical(sharded, single);
      }
    }
  }
}

TEST(DistributedSweep, ProcessTransportMatchesSingleProcess) {
  // $XCP_SWEEP_SHARD_BIN when set (CI, manual runs), else
  // ./xcp_sweep_shard (ctest runs from the build directory, where CMake
  // puts both this test and the tool).
  const std::string worker = default_worker_path();
  if (worker.empty()) {
    GTEST_SKIP() << "xcp_sweep_shard binary not found (set "
                    "XCP_SWEEP_SHARD_BIN or run from the build directory)";
  }
  DistributedOptions opts;
  opts.worker_path = worker;

  // Full matrix at K = 3 (ragged: 5 seeds split 2/2/1) through real worker
  // processes — the acceptance differential for the transport itself.
  constexpr std::size_t kSeeds = 5;
  for (const ProtocolKind p : kAllProtocols) {
    for (const Regime r : kAllRegimes) {
      const MatrixCell single = run_matrix_cell(p, r, 2, kSeeds);
      const MatrixCell sharded = distributed_sweep(p, r, 2, kSeeds, 3, 1,
                                                   opts);
      SCOPED_TRACE(std::string(protocol_kind_name(p)) + " / " +
                   regime_name(r));
      expect_cells_identical(sharded, single);
    }
  }

  // One violation-producing cell across every K, including K = 7 > seeds
  // (two empty shards whose blobs must merge as no-ops).
  const MatrixCell single = run_matrix_cell(
      ProtocolKind::kInterledgerAtomic, Regime::kPartialSynchrony, 2, kSeeds);
  for (const unsigned shards : {1u, 2u, 3u, 7u}) {
    const MatrixCell sharded =
        distributed_sweep(ProtocolKind::kInterledgerAtomic,
                          Regime::kPartialSynchrony, 2, kSeeds, shards, 1,
                          opts);
    SCOPED_TRACE("K=" + std::to_string(shards));
    expect_cells_identical(sharded, single);
  }
}

TEST(DistributedSweep, NonDefaultSeedRangeAndOptionsPropagate) {
  // first_seed != 1 and watch-only monitoring must flow through the worker
  // command line / meta cross-check unchanged.
  DistributedOptions opts;
  opts.cell.online.early_stop = false;
  const MatrixCell single =
      run_matrix_cell(ProtocolKind::kWeakContract,
                      Regime::kSynchronyConforming, 2, 6, 11, opts.cell);
  const MatrixCell sharded = distributed_sweep(
      ProtocolKind::kWeakContract, Regime::kSynchronyConforming, 2, 6, 3, 11,
      opts);
  expect_cells_identical(sharded, single);
  EXPECT_EQ(sharded.early_stops, 0u);
}

TEST(DistributedSweep, FailedWorkerIsAnErrorOrAFallbackNeverAWrongAnswer) {
  // A worker binary that cannot launch at all: with in-process fallback
  // disabled the sweep must throw — never return a cell computed from
  // fewer seeds than requested.
  DistributedOptions opts;
  opts.worker_path = "/nonexistent/xcp_sweep_shard";
  opts.dispatch.backoff_base = std::chrono::milliseconds(1);
  opts.dispatch.fallback_in_process = false;
  EXPECT_THROW(distributed_sweep(ProtocolKind::kTimeBounded,
                                 Regime::kSynchronyConforming, 2, 4, 2, 1,
                                 opts),
               DispatchError);

  // With the default fallback ladder the sweep degrades gracefully to
  // in-process execution — byte-identical result, every failed launch on
  // the record.
  opts.dispatch.fallback_in_process = true;
  DispatchReport report;
  opts.report = &report;
  const MatrixCell single = run_matrix_cell(ProtocolKind::kTimeBounded,
                                            Regime::kSynchronyConforming, 2,
                                            4);
  const MatrixCell swept = distributed_sweep(ProtocolKind::kTimeBounded,
                                             Regime::kSynchronyConforming, 2,
                                             4, 2, 1, opts);
  expect_cells_identical(swept, single);
  EXPECT_EQ(report.fallbacks, 2u);
  EXPECT_GE(report.launch_failures, 2u);
  EXPECT_FALSE(report.clean());
}

}  // namespace
}  // namespace xcp::exp
