// Concurrency tests for the thread-sharded runtime: cross-thread
// determinism of parallel_sweep (workers=1 vs workers=N must be
// bit-identical), concurrent MsgKind interning, and parallel pooled-body
// churn. These are the tests the CI ThreadSanitizer job runs alongside
// test_exp and test_integration: with the old process-global unsynchronised
// pools/interner they would race; with thread-local pools and the
// read-mostly interner they must be TSan-clean.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "net/message.hpp"
#include "net/msg_kind.hpp"
#include "proto/bodies.hpp"
#include "proto/weak/protocol.hpp"
#include "props/label.hpp"
#include "props/trace.hpp"
#include "support/hash.hpp"

namespace xcp {
namespace {

// ------------------------------------------- sweep determinism across shards

/// Digest of everything observable about a run: the full trace (timestamps,
/// actors, labels) plus message stats. Any cross-thread nondeterminism —
/// pool state leaking between runs, interner ids shifting, RNG misuse —
/// shows up here.
std::uint64_t run_digest(const proto::RunRecord& record) {
  HashWriter w;
  for (const auto& e : record.trace.events()) {
    w.write_u32(static_cast<std::uint32_t>(e.kind));
    w.write_i64(e.at.count());
    w.write_i64(e.local_at.count());
    w.write_u32(e.actor.value());
    w.write_u32(e.peer.value());
    w.write_str(e.label.name());
    w.write_u64(e.deal_id);
  }
  w.write_u64(record.stats.messages_sent);
  w.write_u64(record.stats.messages_delivered);
  return w.digest();
}

std::uint64_t weak_run_digest(std::uint64_t seed) {
  auto cfg = exp::thm3_config(proto::weak::TmKind::kNotaryCommittee, 2, seed);
  cfg.env.gst = TimePoint::origin() + Duration::millis(100);
  return run_digest(proto::weak::run_weak(cfg));
}

TEST(ShardedSweep, WorkerCountDoesNotChangeResults) {
  // The acceptance bar for the sharded runtime: parallel_sweep output is
  // bit-identical for workers=1 and workers=N over full protocol runs
  // (simulator + network + notary committee + pooled bodies + interned
  // kinds on every path).
  const auto fn = [](std::uint64_t seed) { return weak_run_digest(seed); };
  const auto serial = exp::parallel_sweep<std::uint64_t>(1, 12, fn, 1);
  const auto sharded = exp::parallel_sweep<std::uint64_t>(1, 12, fn, 4);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], sharded[i]) << "seed " << (i + 1);
  }
  // And re-running sharded is stable run-to-run, not just equal once.
  EXPECT_EQ(sharded, exp::parallel_sweep<std::uint64_t>(1, 12, fn, 3));
}

TEST(ShardedSweep, NestedSweepsRunInlineWithoutDeadlock) {
  // A sweep task that itself sweeps must not re-enter the pool (the
  // calling thread drains tasks while holding the pool's run mutex, and
  // pool workers must not wait on their own pool): nested sweeps run
  // inline on whichever thread hits them.
  const auto outer = [](std::uint64_t seed) {
    const auto inner = [seed](std::uint64_t inner_seed) {
      return seed * 100 + inner_seed;
    };
    const auto inner_results =
        exp::parallel_sweep<std::uint64_t>(1, 4, inner, 3);
    std::uint64_t sum = 0;
    for (const auto r : inner_results) sum += r;
    return sum;  // 4*100*seed + 10
  };
  const auto results = exp::parallel_sweep<std::uint64_t>(1, 6, outer, 3);
  ASSERT_EQ(results.size(), 6u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], 400 * (i + 1) + 10);
  }
}

TEST(ShardedSweep, PoolSurvivesManySmallSweeps) {
  // Back-to-back sweeps reuse the persistent workers; the job-handoff
  // logic (epoch bump, cursor reset, straggler quiescence) must not lose
  // or duplicate seeds across sweeps.
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    const auto fn = [&sum](std::uint64_t seed) {
      sum.fetch_add(seed, std::memory_order_relaxed);
      return seed;
    };
    const auto results = exp::parallel_sweep<std::uint64_t>(1, 9, fn, 3);
    EXPECT_EQ(sum.load(), 45u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], i + 1);
    }
  }
}

// ------------------------------------------------------ concurrent interning

TEST(ConcurrentIntern, SameNameSameIdAcrossThreads) {
  // N threads hammer the interner with a mix of pre-seeded kinds, a shared
  // set of fresh names, and thread-unique names. Every thread must observe
  // the same id for the same name, pre-seeded ids must not move, and the
  // table must stay consistent (name() round-trips).
  constexpr int kThreads = 8;
  constexpr int kSharedNames = 32;
  const std::uint32_t money_before = net::kinds::money.value();

  std::vector<std::vector<std::uint32_t>> seen(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen, &ready] {
      ++ready;
      while (ready.load() < kThreads) {
      }  // line up for maximal contention
      auto& mine = seen[static_cast<std::size_t>(t)];
      for (int i = 0; i < kSharedNames; ++i) {
        const std::string shared = "race-kind-" + std::to_string(i);
        mine.push_back(net::kind(shared).value());
        // Pre-seeded constants resolve lock-free of the insert path.
        ASSERT_EQ(net::kinds::money.value(), net::kind("$").value());
        const std::string unique =
            "race-kind-t" + std::to_string(t) + "-" + std::to_string(i);
        const net::MsgKind u = net::kind(unique);
        ASSERT_EQ(u.name(), unique);
        ASSERT_EQ(net::MsgKind::from_wire(u.value()), u);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(net::kinds::money.value(), money_before);
  for (int i = 0; i < kSharedNames; ++i) {
    const std::uint32_t expect = seen[0][static_cast<std::size_t>(i)];
    const std::string name = "race-kind-" + std::to_string(i);
    EXPECT_EQ(net::kind(name).value(), expect);
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)],
                expect)
          << "thread " << t << " name " << name;
    }
  }
}

TEST(ConcurrentIntern, NovelTraceLabelsAcrossThreads) {
  // Trace labels ride the same read-mostly interner as message kinds. N
  // threads intern a mix of pre-seeded labels, a shared set of novel label
  // names, and thread-unique names — concurrently with each other. Every
  // thread must observe one id per name, names must round-trip, and the
  // MsgKind/Label id space must stay unified (same name => same id through
  // either front end).
  constexpr int kThreads = 8;
  constexpr int kSharedLabels = 32;
  const std::uint32_t commit_before = props::labels::commit.value();

  std::vector<std::vector<std::uint32_t>> seen(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen, &ready] {
      ++ready;
      while (ready.load() < kThreads) {
      }  // line up for maximal contention
      auto& mine = seen[static_cast<std::size_t>(t)];
      for (int i = 0; i < kSharedLabels; ++i) {
        const std::string shared = "race-label-" + std::to_string(i);
        mine.push_back(props::Label(shared).value());
        // Pre-seeded labels resolve on the lock-free compare path.
        ASSERT_EQ(props::Label("commit"), props::labels::commit);
        // One id space: interning the same name as a message kind must
        // yield the label's id.
        ASSERT_EQ(net::kind(shared).value(), mine.back());
        const std::string unique =
            "race-label-t" + std::to_string(t) + "-" + std::to_string(i);
        const props::Label u(unique);
        ASSERT_EQ(u.name(), unique);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(props::labels::commit.value(), commit_before);
  for (int i = 0; i < kSharedLabels; ++i) {
    const std::uint32_t expect = seen[0][static_cast<std::size_t>(i)];
    const std::string name = "race-label-" + std::to_string(i);
    EXPECT_EQ(props::Label(name).value(), expect);
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)],
                expect)
          << "thread " << t << " label " << name;
    }
  }
}

TEST(ConcurrentTrace, RecorderChunksMigrateAcrossThreads) {
  // A sweep worker fills a trace from its thread-local chunk pool; the
  // caller that consumes the RunRecord destroys it, migrating the chunks
  // to the caller's pool (exactly like cross-thread body frees). Fill on
  // workers, destroy on main, then refill on main from the migrated
  // chunks — TSan must see a clean handoff.
  constexpr int kThreads = 4;
  std::vector<props::TraceRecorder> traces(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &traces] {
      props::TraceRecorder rec;
      for (int i = 0; i < 2'000; ++i) {  // several chunks per thread
        props::TraceEvent e;
        e.kind = props::EventKind::kSend;
        e.at = TimePoint::micros(i);
        e.actor = sim::ProcessId(static_cast<std::uint32_t>(t));
        e.label = props::Label::from_wire(net::kinds::money.value());
        rec.record(e);
      }
      traces[static_cast<std::size_t>(t)] = std::move(rec);
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& rec : traces) {
    EXPECT_EQ(rec.size(), 2'000u);
    EXPECT_EQ(rec.count(props::EventKind::kSend), 2'000u);
  }
  traces.clear();  // chunks migrate to this thread's pool
  props::TraceRecorder reuse;
  for (int i = 0; i < 2'000; ++i) {
    props::TraceEvent e;
    e.kind = props::EventKind::kDeliver;
    reuse.record(e);
  }
  EXPECT_EQ(reuse.count(props::EventKind::kDeliver), 2'000u);
}

// ------------------------------------------------- thread-local body pools

TEST(ThreadLocalPools, ParallelBodyChurnIsIsolated) {
  // Each thread churns pooled bodies; with a process-global freelist this
  // is the latent PR-1 data race (and a guaranteed TSan report). With
  // thread-local pools every thread owns its freelist outright.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> checksum{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &checksum] {
      std::uint64_t local = 0;
      for (int i = 0; i < 20'000; ++i) {
        auto body = net::make_body<proto::MoneyMsg>();
        body->deal_id = static_cast<std::uint64_t>(t * 100'000 + i);
        net::BodyPtr erased = std::move(body);  // the shape every send makes
        local += erased->describe().size();
      }
      checksum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(checksum.load(), 0u);
}

TEST(ThreadLocalPools, CrossThreadFreeMigratesSafely) {
  // Bodies allocated on a worker may be released on the main thread (e.g.
  // when RunRecords carrying shared state are aggregated). The block
  // migrates to the releasing thread's freelist; nothing is corrupted and
  // nothing is freed to the global heap.
  std::vector<net::BodyPtr> bodies;
  std::thread producer([&bodies] {
    for (int i = 0; i < 1'000; ++i) {
      auto b = net::make_body<proto::MoneyMsg>();
      b->deal_id = static_cast<std::uint64_t>(i);
      bodies.push_back(std::move(b));
    }
  });
  producer.join();
  ASSERT_EQ(bodies.size(), 1'000u);
  EXPECT_EQ(bodies.front()->describe(), bodies.front()->describe());
  bodies.clear();  // released on this thread — must be safe
  // And this thread's pool still works normally afterwards.
  auto b = net::make_body<proto::MoneyMsg>();
  b->deal_id = 7;
  EXPECT_EQ(b->deal_id, 7u);
}

}  // namespace
}  // namespace xcp
