// Unit tests of the property checkers themselves: each checker must fire on
// hand-built violating records and stay quiet on clean ones. A checker that
// cannot detect a planted violation would silently bless broken protocols.

#include <gtest/gtest.h>

#include "props/checkers.hpp"

namespace xcp::props {
namespace {

using proto::ParticipantOutcome;
using proto::RunRecord;

Amount gen(std::int64_t u) { return Amount(u, Currency::generic()); }

/// Builds a minimal clean record: n = 2 (alice, chloe_1, bob + two escrows),
/// successful payment with commission 5 (alice -105, chloe +5, bob +100).
RunRecord clean_record() {
  RunRecord r;
  r.protocol = "synthetic";
  r.spec = proto::DealSpec::uniform(1, 2, 100, 5);
  for (std::uint32_t i = 0; i <= 2; ++i) {
    r.parts.customers.push_back(sim::ProcessId(i));
  }
  for (std::uint32_t i = 3; i <= 4; ++i) {
    r.parts.escrows.push_back(sim::ProcessId(i));
  }
  auto add = [&](std::uint32_t pid, std::string role, bool is_escrow,
                 int index, std::int64_t initial, std::int64_t final_units) {
    ParticipantOutcome p;
    p.pid = sim::ProcessId(pid);
    p.role = std::move(role);
    p.is_escrow = is_escrow;
    p.index = index;
    p.terminated = true;
    p.terminated_global = TimePoint::origin() + Duration::seconds(1);
    p.terminated_local = p.terminated_global;
    p.final_state = "done";
    if (initial != 0) p.initial_holdings = {gen(initial)};
    if (final_units != 0) p.final_holdings = {gen(final_units)};
    r.participants.push_back(std::move(p));
  };
  add(0, "alice", false, 0, 105, 0);
  add(1, "chloe_1", false, 1, 100, 105);
  add(2, "bob", false, 2, 0, 100);
  add(3, "escrow_0", true, 0, 0, 0);
  add(4, "escrow_1", true, 1, 0, 0);
  // Alice holds chi; bob issued it.
  r.participants[0].received_payment_cert = true;
  r.participants[2].issued_payment_cert = true;
  r.stats.drained = true;
  r.stats.end_time = TimePoint::origin() + Duration::seconds(2);
  return r;
}

TEST(Checkers, CleanRecordPassesEverything) {
  const RunRecord r = clean_record();
  EXPECT_TRUE(check_conservation(r).holds);
  EXPECT_TRUE(check_escrow_security(r).holds);
  EXPECT_TRUE(check_cs1(r, false).holds);
  EXPECT_TRUE(check_cs2(r, false).holds);
  EXPECT_TRUE(check_cs3(r).holds);
  CheckOptions opts;
  opts.time_bounded = false;  // synthetic record has no schedule
  EXPECT_TRUE(check_strong_liveness(r, opts).holds);
  EXPECT_TRUE(check_certificate_consistency(r).holds);
}

TEST(Checkers, ConservationDetectsMintedValue) {
  RunRecord r = clean_record();
  r.participants[2].final_holdings = {gen(150)};  // bob magically richer
  const auto res = check_conservation(r);
  EXPECT_FALSE(res.holds);
  EXPECT_FALSE(res.violations.empty());
}

TEST(Checkers, EscrowSecurityDetectsEscrowLoss) {
  RunRecord r = clean_record();
  r.participants[3].initial_holdings = {gen(50)};
  r.participants[3].final_holdings = {gen(20)};  // escrow_0 lost 30
  EXPECT_FALSE(check_escrow_security(r).holds);
}

TEST(Checkers, EscrowSecuritySkipsByzantineEscrows) {
  RunRecord r = clean_record();
  r.participants[3].initial_holdings = {gen(50)};
  r.participants[3].final_holdings = {gen(20)};
  r.participants[3].abiding = false;  // its own fault
  EXPECT_TRUE(check_escrow_security(r).holds);
}

TEST(Checkers, Cs1FiresOnMoneyGoneWithoutCert) {
  RunRecord r = clean_record();
  r.participants[0].received_payment_cert = false;  // alice paid, no chi
  EXPECT_FALSE(check_cs1(r, false).holds);
  // But not applicable when her escrow deviates.
  r.participants[3].abiding = false;
  EXPECT_FALSE(check_cs1(r, false).applicable);
}

TEST(Checkers, Cs1NotEvaluatedBeforeTermination) {
  RunRecord r = clean_record();
  r.participants[0].received_payment_cert = false;
  r.participants[0].terminated = false;  // "upon termination" only
  EXPECT_TRUE(check_cs1(r, false).holds);
}

TEST(Checkers, Cs2FiresWhenBobIssuedButUnpaid) {
  RunRecord r = clean_record();
  r.participants[2].final_holdings.clear();  // unpaid
  EXPECT_FALSE(check_cs2(r, false).holds);
  // If he never issued chi, being unpaid is fine.
  r.participants[2].issued_payment_cert = false;
  EXPECT_TRUE(check_cs2(r, false).holds);
}

TEST(Checkers, Cs2WeakFormAcceptsAbortCert) {
  RunRecord r = clean_record();
  r.participants[2].final_holdings.clear();
  r.participants[2].received_abort_cert = true;
  EXPECT_TRUE(check_cs2(r, true).holds);
  r.participants[2].received_abort_cert = false;
  EXPECT_FALSE(check_cs2(r, true).holds);
}

TEST(Checkers, Cs3FiresOnConnectorLoss) {
  RunRecord r = clean_record();
  r.participants[1].final_holdings = {gen(40)};  // chloe down 60
  EXPECT_FALSE(check_cs3(r).holds);
}

TEST(Checkers, Cs3AcceptsRefundOutcome) {
  RunRecord r = clean_record();
  r.participants[1].final_holdings = {gen(100)};  // net 0: refunded
  EXPECT_TRUE(check_cs3(r).holds);
}

TEST(Checkers, Cs3CrossCurrencyPaidThrough) {
  RunRecord r = clean_record();
  r.spec = proto::DealSpec::explicit_hops(
      1, {Amount(105, Currency::usd()), Amount(100, Currency::eur())});
  // chloe paid 100 EUR out, received 105 USD.
  r.participants[1].initial_holdings = {Amount(100, Currency::eur())};
  r.participants[1].final_holdings = {Amount(105, Currency::usd())};
  EXPECT_TRUE(check_cs3(r).holds);
  // chloe paid out but upstream never delivered: violation.
  r.participants[1].final_holdings = {};
  EXPECT_FALSE(check_cs3(r).holds);
}

TEST(Checkers, StrongLivenessOnlyAppliesWhenAllAbide) {
  RunRecord r = clean_record();
  r.participants[2].final_holdings.clear();  // bob unpaid
  CheckOptions opts;
  EXPECT_FALSE(check_strong_liveness(r, opts).holds);
  r.participants[1].abiding = false;
  EXPECT_FALSE(check_strong_liveness(r, opts).applicable);
  r.participants[1].abiding = true;
  opts.environment_conforms = false;
  EXPECT_FALSE(check_strong_liveness(r, opts).applicable);
}

TEST(Checkers, CertificateConsistencyDetectsBoth) {
  RunRecord r = clean_record();
  TraceEvent commit;
  commit.kind = EventKind::kDecide;
  commit.label = "commit";
  TraceEvent abort;
  abort.kind = EventKind::kDecide;
  abort.label = "abort";
  r.trace.record(commit);
  EXPECT_TRUE(check_certificate_consistency(r).holds);
  r.trace.record(abort);
  EXPECT_FALSE(check_certificate_consistency(r).holds);
}

TEST(Checkers, CertificateConsistencyDetectsConflictingHoldings) {
  RunRecord r = clean_record();
  r.participants[0].received_commit_cert = true;
  r.participants[2].received_abort_cert = true;
  EXPECT_FALSE(check_certificate_consistency(r).holds);
}

TEST(Checkers, TerminationRequiresPayersToTerminate) {
  RunRecord r = clean_record();
  // alice made a payment (trace transfer) but never terminated.
  TraceEvent t;
  t.kind = EventKind::kTransfer;
  t.actor = r.parts.customers[0];
  r.trace.record(t);
  r.participants[0].terminated = false;
  CheckOptions opts;
  opts.time_bounded = false;
  EXPECT_FALSE(check_termination(r, opts).holds);
  r.participants[0].terminated = true;
  EXPECT_TRUE(check_termination(r, opts).holds);
}

TEST(Checkers, TerminationNotApplicableWhenNobodyActed) {
  RunRecord r = clean_record();
  CheckOptions opts;
  opts.time_bounded = false;
  // No transfers or cert issuance in the trace at all.
  r.participants[2].issued_payment_cert = false;
  EXPECT_FALSE(check_termination(r, opts).applicable);
}

TEST(Checkers, WeakLivenessSkippedAfterAbortRequest) {
  RunRecord r = clean_record();
  r.participants[2].final_holdings.clear();  // bob unpaid
  CheckOptions opts;
  EXPECT_FALSE(check_weak_liveness(r, opts).holds);
  TraceEvent e;
  e.kind = EventKind::kAbortRequested;
  r.trace.record(e);
  EXPECT_FALSE(check_weak_liveness(r, opts).applicable);
}

TEST(Checkers, ReportAggregation) {
  RunRecord r = clean_record();
  CheckOptions opts;
  opts.time_bounded = false;
  auto report = check_definition1(r, opts);
  EXPECT_TRUE(report.all_hold()) << report.str();
  EXPECT_TRUE(report.failed().empty());

  r.participants[1].final_holdings = {gen(40)};
  r.participants[2].final_holdings = {gen(165)};  // keep conservation intact
  report = check_definition1(r, opts);
  EXPECT_FALSE(report.all_hold());
  const auto failed = report.failed();
  EXPECT_NE(std::find(failed.begin(), failed.end(), "CS3"), failed.end());
}

TEST(Trace, QueryHelpers) {
  TraceRecorder t;
  TraceEvent a;
  a.kind = EventKind::kSend;
  a.actor = sim::ProcessId(1);
  a.label = "chi";
  t.record(a);
  TraceEvent b;
  b.kind = EventKind::kSend;
  b.actor = sim::ProcessId(2);
  b.label = "G";
  t.record(b);
  EXPECT_EQ(t.count(EventKind::kSend), 2u);
  EXPECT_EQ(t.count(EventKind::kSend, sim::ProcessId(1)), 1u);
  EXPECT_EQ(t.count_label(EventKind::kSend, "chi"), 1u);
  ASSERT_NE(t.first(EventKind::kSend, sim::ProcessId(2)), nullptr);
  EXPECT_EQ(t.first(EventKind::kSend, sim::ProcessId(2))->label, "G");
  EXPECT_EQ(t.all(EventKind::kSend).size(), 2u);
  EXPECT_EQ(t.first_label(EventKind::kSend, "nope"), nullptr);
}

}  // namespace
}  // namespace xcp::props
